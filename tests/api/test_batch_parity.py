"""Batched-vs-single parity: ``infer_batch`` must be *bitwise*
identical to per-image ``infer``.

This is the contract that makes the batched hot path safe to deploy:
a safety argument certified on single-image inference carries over to
the batched server unchanged.  Covered for both architectures and
under fault injection (recoverable transients in the dependable path,
weight corruption in the non-reliable path).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import PipelineConfig, QualifierConfig, build_pipeline
from repro.data import render_sign
from repro.faults.injector import FaultyExecutionUnit, flip_weight_bits
from repro.faults.models import TransientFault
from repro.models import small_cnn
from repro.reliable.executor import ReliableConv2D
from repro.reliable.operators import RedundantOperator
from repro.reliable.qualified import QualifiedValue
from tests.support.fuzz import assert_reports_equal


def assert_bitwise_parity(batch, singles, reports=False):
    """``reports=True`` additionally requires each batch result's
    ``reliable_report`` to be the serial report counter-for-counter
    (``elapsed_seconds`` aside) -- only meaningful when batch and
    serial runs share one deterministic execution, not when each run
    draws its own fault stream."""
    assert len(batch) == len(singles)
    for got, want in zip(batch, singles):
        np.testing.assert_array_equal(got.probabilities, want.probabilities)
        assert got.predicted_class == want.predicted_class
        assert got.decision == want.decision
        assert got.verdict.matches == want.verdict.matches
        assert got.verdict.distance == want.verdict.distance
        assert got.verdict.word == want.verdict.word
        assert got.verdict.reliable == want.verdict.reliable
        if reports:
            assert (got.reliable_report is None) == (
                want.reliable_report is None
            )
            if got.reliable_report is not None:
                assert_reports_equal(
                    got.reliable_report, want.reliable_report,
                    "batch vs serial reliable_report",
                )


@pytest.fixture(scope="module")
def images():
    return np.stack([
        render_sign(i % 8, size=32, rotation=np.deg2rad(3 * i))
        for i in range(8)
    ])


class TestParallelParity:
    def test_batch_matches_singles(self, images):
        pipeline = build_pipeline(
            PipelineConfig(architecture="parallel"),
            small_cnn(32, 8, conv1_filters=8),
        )
        batch = pipeline.infer_batch(images)
        singles = [pipeline.infer(image) for image in images]
        assert_bitwise_parity(batch, singles)

    def test_batch_matches_singles_with_views(self, images):
        pipeline = build_pipeline(
            PipelineConfig(architecture="parallel"),
            small_cnn(32, 8, conv1_filters=8),
        )
        views = np.stack([
            render_sign(i % 8, size=128, rotation=np.deg2rad(3 * i))
            for i in range(len(images))
        ])
        batch = pipeline.infer_batch(images, qualifier_views=views)
        singles = [
            pipeline.infer(image, qualifier_view=view)
            for image, view in zip(images, views)
        ]
        assert_bitwise_parity(batch, singles)

    def test_parity_under_weight_corruption(self, images, rng):
        """Exponent-bit flips drive activations to extreme values
        (inf/NaN included); batched and single inference must corrupt
        identically."""
        model = small_cnn(32, 8, conv1_filters=8)
        flip_weight_bits(model.layer("conv1"), 40, rng, bit_range=(23, 31))
        pipeline = build_pipeline(
            PipelineConfig(architecture="parallel"), model
        )
        with np.errstate(over="ignore", invalid="ignore"):
            batch = pipeline.infer_batch(images)
            singles = [pipeline.infer(image) for image in images]
        assert_bitwise_parity(batch, singles)


class TestIntegratedParity:
    @pytest.fixture(scope="class")
    def few_images(self, images):
        # The reliable partition runs Algorithm 3 one multiply at a
        # time in Python; keep the image count small.
        return images[:3]

    def test_batch_matches_singles(self, few_images):
        pipeline = build_pipeline(
            PipelineConfig(architecture="integrated", pin_sobel=True),
            small_cnn(32, 8, conv1_filters=8),
        )
        batch = pipeline.infer_batch(few_images)
        singles = [pipeline.infer(image) for image in few_images]
        assert_bitwise_parity(batch, singles, reports=True)
        for result in batch:
            assert result.reliable_report is not None

    def test_parity_under_transient_faults(self, few_images):
        """Transient PE faults in the dependable arithmetic are
        detected and rolled back, so recovered outputs -- batched or
        not -- equal the fault-free ones bitwise."""
        pipeline = build_pipeline(
            PipelineConfig(
                architecture="integrated",
                pin_sobel=True,
                qualifier=QualifierConfig(redundant=False),
            ),
            small_cnn(32, 8, conv1_filters=8),
        )
        conv1 = pipeline.model.layer("conv1")

        def faulted_conv(seed):
            return ReliableConv2D(
                conv1,
                RedundantOperator(FaultyExecutionUnit(
                    TransientFault(1e-5, np.random.default_rng(seed))
                )),
                bucket_ceiling=100_000,
                on_persistent_failure="mark",
            )

        pipeline.hybrid._reliable_conv = faulted_conv(1)
        batch = pipeline.infer_batch(few_images)
        # Reports are per-image now; the faults land somewhere in the
        # batch, not necessarily on image 0.
        assert sum(
            r.reliable_report.errors_detected for r in batch
        ) > 0
        assert all(
            r.reliable_report.persistent_failures == 0 for r in batch
        )

        pipeline.hybrid._reliable_conv = faulted_conv(2)
        singles = [pipeline.infer(image) for image in few_images]
        assert any(
            r.reliable_report.errors_detected > 0 for r in singles
        )
        # reports=False: the two runs draw different fault streams, so
        # only the *recovered* outputs are required to match.
        assert_bitwise_parity(batch, singles)


class TestBatchSerialGuard:
    """Tier-1 guard: ``infer_batch(imgs)`` bitwise equals
    ``[infer(i) for i in imgs]`` -- probabilities, verdicts, decisions
    *and* per-image report attribution -- including batches that mix
    clean, flagged and persistently-failed images, plus the empty and
    singleton edges."""

    SIZE = 24

    class ValueDependentFailure(RedundantOperator):
        """Deterministic persistent failure keyed on operand size:
        products above the cutoff never qualify, so scaled-up images
        overflow their (per-image) leaky bucket while unscaled images
        sail through -- identical behaviour batched or serial.  The
        custom operator type forces the scalar engine on both paths.
        """

        cutoff = 50.0

        def multiply(self, a, b):
            value = a * b
            return QualifiedValue(value, abs(value) <= self.cutoff)

    @pytest.fixture()
    def pipeline(self):
        pipeline = build_pipeline(
            PipelineConfig(architecture="integrated", pin_sobel=True),
            small_cnn(self.SIZE, 8, conv1_filters=8),
        )
        pipeline.hybrid._reliable_conv = ReliableConv2D(
            pipeline.model.layer("conv1"),
            self.ValueDependentFailure(),
            on_persistent_failure="mark",
        )
        return pipeline

    @pytest.fixture()
    def mixed_images(self):
        images = np.stack([
            render_sign(
                i % 8, size=self.SIZE, rotation=np.deg2rad(5 * i)
            )
            for i in range(4)
        ]).astype(np.float32)
        # Images 1 and 3 drive every bright-pixel product past the
        # operator's cutoff: their dependable arithmetic aborts.
        images[1] *= 100.0
        images[3] *= 100.0
        return images

    def test_mixed_batch_bitwise_equal_to_serial(
        self, pipeline, mixed_images
    ):
        with np.errstate(over="ignore", invalid="ignore"):
            batch = pipeline.infer_batch(mixed_images)
            singles = [pipeline.infer(img) for img in mixed_images]
        assert_bitwise_parity(batch, singles, reports=True)
        # The mix is real: exactly the scaled images failed.
        failed = [
            r.reliable_report.persistent_failures > 0 for r in batch
        ]
        assert failed == [False, True, False, True]
        # Per-image attribution reads like a single-image run: every
        # failed output is rebased to image index 0.
        for result, image_failed in zip(batch, failed):
            report = result.reliable_report
            assert bool(report.failed_outputs) == image_failed
            assert all(pos[0] == 0 for pos in report.failed_outputs)
            assert result.verdict.reliable is not image_failed

    def test_empty_batch(self, pipeline):
        empty = np.empty((0, 3, self.SIZE, self.SIZE), dtype=np.float32)
        assert len(pipeline.infer_batch(empty)) == 0

    @pytest.mark.parametrize("index", [0, 1])
    def test_singleton_batch(self, pipeline, mixed_images, index):
        image = mixed_images[index]
        with np.errstate(over="ignore", invalid="ignore"):
            batch = pipeline.infer_batch(image[None])
            single = pipeline.infer(image)
        assert_bitwise_parity(batch, [single], reports=True)

"""Batched-vs-single parity: ``infer_batch`` must be *bitwise*
identical to per-image ``infer``.

This is the contract that makes the batched hot path safe to deploy:
a safety argument certified on single-image inference carries over to
the batched server unchanged.  Covered for both architectures and
under fault injection (recoverable transients in the dependable path,
weight corruption in the non-reliable path).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import PipelineConfig, QualifierConfig, build_pipeline
from repro.data import render_sign
from repro.faults.injector import FaultyExecutionUnit, flip_weight_bits
from repro.faults.models import TransientFault
from repro.models import small_cnn
from repro.reliable.executor import ReliableConv2D
from repro.reliable.operators import RedundantOperator


def assert_bitwise_parity(batch, singles):
    assert len(batch) == len(singles)
    for got, want in zip(batch, singles):
        np.testing.assert_array_equal(got.probabilities, want.probabilities)
        assert got.predicted_class == want.predicted_class
        assert got.decision == want.decision
        assert got.verdict.matches == want.verdict.matches
        assert got.verdict.distance == want.verdict.distance
        assert got.verdict.word == want.verdict.word
        assert got.verdict.reliable == want.verdict.reliable


@pytest.fixture(scope="module")
def images():
    return np.stack([
        render_sign(i % 8, size=32, rotation=np.deg2rad(3 * i))
        for i in range(8)
    ])


class TestParallelParity:
    def test_batch_matches_singles(self, images):
        pipeline = build_pipeline(
            PipelineConfig(architecture="parallel"),
            small_cnn(32, 8, conv1_filters=8),
        )
        batch = pipeline.infer_batch(images)
        singles = [pipeline.infer(image) for image in images]
        assert_bitwise_parity(batch, singles)

    def test_batch_matches_singles_with_views(self, images):
        pipeline = build_pipeline(
            PipelineConfig(architecture="parallel"),
            small_cnn(32, 8, conv1_filters=8),
        )
        views = np.stack([
            render_sign(i % 8, size=128, rotation=np.deg2rad(3 * i))
            for i in range(len(images))
        ])
        batch = pipeline.infer_batch(images, qualifier_views=views)
        singles = [
            pipeline.infer(image, qualifier_view=view)
            for image, view in zip(images, views)
        ]
        assert_bitwise_parity(batch, singles)

    def test_parity_under_weight_corruption(self, images, rng):
        """Exponent-bit flips drive activations to extreme values
        (inf/NaN included); batched and single inference must corrupt
        identically."""
        model = small_cnn(32, 8, conv1_filters=8)
        flip_weight_bits(model.layer("conv1"), 40, rng, bit_range=(23, 31))
        pipeline = build_pipeline(
            PipelineConfig(architecture="parallel"), model
        )
        with np.errstate(over="ignore", invalid="ignore"):
            batch = pipeline.infer_batch(images)
            singles = [pipeline.infer(image) for image in images]
        assert_bitwise_parity(batch, singles)


class TestIntegratedParity:
    @pytest.fixture(scope="class")
    def few_images(self, images):
        # The reliable partition runs Algorithm 3 one multiply at a
        # time in Python; keep the image count small.
        return images[:3]

    def test_batch_matches_singles(self, few_images):
        pipeline = build_pipeline(
            PipelineConfig(architecture="integrated", pin_sobel=True),
            small_cnn(32, 8, conv1_filters=8),
        )
        batch = pipeline.infer_batch(few_images)
        singles = [pipeline.infer(image) for image in few_images]
        assert_bitwise_parity(batch, singles)
        for result in batch:
            assert result.reliable_report is not None

    def test_parity_under_transient_faults(self, few_images):
        """Transient PE faults in the dependable arithmetic are
        detected and rolled back, so recovered outputs -- batched or
        not -- equal the fault-free ones bitwise."""
        pipeline = build_pipeline(
            PipelineConfig(
                architecture="integrated",
                pin_sobel=True,
                qualifier=QualifierConfig(redundant=False),
            ),
            small_cnn(32, 8, conv1_filters=8),
        )
        conv1 = pipeline.model.layer("conv1")

        def faulted_conv(seed):
            return ReliableConv2D(
                conv1,
                RedundantOperator(FaultyExecutionUnit(
                    TransientFault(1e-5, np.random.default_rng(seed))
                )),
                bucket_ceiling=100_000,
                on_persistent_failure="mark",
            )

        pipeline.hybrid._reliable_conv = faulted_conv(1)
        batch = pipeline.infer_batch(few_images)
        batch_report = batch[0].reliable_report
        assert batch_report.errors_detected > 0
        assert batch_report.persistent_failures == 0

        pipeline.hybrid._reliable_conv = faulted_conv(2)
        singles = [pipeline.infer(image) for image in few_images]
        assert any(
            r.reliable_report.errors_detected > 0 for r in singles
        )
        assert_bitwise_parity(batch, singles)

"""The HybridPipeline facade: construction, inference, aggregation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import (
    BatchResult,
    HybridPipeline,
    PipelineConfig,
    QualifierConfig,
    build_pipeline,
)
from repro.core import (
    Decision,
    IntegratedHybridCNN,
    ParallelHybridCNN,
    ShapeQualifier,
)
from repro.data import STOP_CLASS_INDEX, render_sign
from repro.models import small_cnn
from repro.vision.filters import sobel_axis_stack


@pytest.fixture(scope="module")
def model():
    return small_cnn(32, 8, conv1_filters=8)


@pytest.fixture(scope="module")
def images():
    return np.stack([render_sign(i % 8, size=32) for i in range(6)])


class TestBuildPipeline:
    def test_parallel(self, model):
        pipeline = build_pipeline(PipelineConfig(), model)
        assert isinstance(pipeline, HybridPipeline)
        assert isinstance(pipeline.hybrid, ParallelHybridCNN)
        assert pipeline.model is model
        assert isinstance(pipeline.qualifier, ShapeQualifier)
        assert pipeline.safety_class == STOP_CLASS_INDEX
        assert pipeline.supports_qualifier_views

    def test_integrated(self, model):
        pipeline = build_pipeline(
            PipelineConfig(architecture="integrated"), model
        )
        assert isinstance(pipeline.hybrid, IntegratedHybridCNN)
        assert not pipeline.supports_qualifier_views

    def test_qualifier_config_is_applied(self, model):
        pipeline = build_pipeline(
            PipelineConfig(
                qualifier=QualifierConfig(threshold=1.5, redundant=False)
            ),
            model,
        )
        assert pipeline.qualifier.threshold == 1.5
        assert pipeline.qualifier.redundant is False

    def test_pin_sobel_sets_dependable_filters(self):
        pinned = small_cnn(32, 8, conv1_filters=8)
        build_pipeline(
            PipelineConfig(architecture="integrated", pin_sobel=True),
            pinned,
        )
        conv1 = pinned.layer("conv1")
        np.testing.assert_array_equal(
            conv1.weight.value[0],
            sobel_axis_stack("x", conv1.kernel_size, conv1.in_channels),
        )
        np.testing.assert_array_equal(
            conv1.weight.value[1],
            sobel_axis_stack("y", conv1.kernel_size, conv1.in_channels),
        )

    def test_pin_sobel_rejected_for_parallel(self):
        """Parallel has no in-network dependable partition; pinning
        would only clobber trained filters -- even when a partition
        is (pointlessly) configured."""
        with pytest.raises(ValueError, match="parallel"):
            build_pipeline(
                PipelineConfig(architecture="parallel", pin_sobel=True),
                small_cnn(32, 8, conv1_filters=8),
            )
        from repro.api import PartitionConfig

        with pytest.raises(ValueError, match="parallel"):
            build_pipeline(
                PipelineConfig(
                    architecture="parallel",
                    pin_sobel=True,
                    partition=PartitionConfig(),
                ),
                small_cnn(32, 8, conv1_filters=8),
            )

    def test_pin_sobel_requires_two_filters(self):
        from repro.api import PartitionConfig

        with pytest.raises(ValueError, match="two reliable filters"):
            build_pipeline(
                PipelineConfig(
                    architecture="integrated",
                    pin_sobel=True,
                    partition=PartitionConfig(
                        reliable_filters={"conv1": (0,)}
                    ),
                ),
                small_cnn(32, 8, conv1_filters=8),
            )

    def test_config_type_is_checked(self, model):
        with pytest.raises(TypeError):
            build_pipeline({"architecture": "parallel"}, model)


class TestInference:
    def test_infer_matches_direct_construction(self, model):
        pipeline = build_pipeline(PipelineConfig(), model)
        direct = ParallelHybridCNN(
            model, ShapeQualifier(), STOP_CLASS_INDEX
        )
        image = render_sign(0, size=32)
        ours = pipeline.infer(image)
        theirs = direct.infer(image)
        np.testing.assert_array_equal(ours.probabilities,
                                      theirs.probabilities)
        assert ours.decision == theirs.decision

    def test_qualifier_view_routes_to_qualifier(self, model):
        pipeline = build_pipeline(PipelineConfig(), model)
        cnn_view = render_sign(0, size=32, rotation=np.deg2rad(4))
        qualifier_view = render_sign(0, size=128, rotation=np.deg2rad(4))
        result = pipeline.infer(cnn_view, qualifier_view=qualifier_view)
        # At 128px the octagon detector sees enough resolution.
        assert result.verdict.matches

    def test_integrated_rejects_qualifier_views(self, model):
        pipeline = build_pipeline(
            PipelineConfig(architecture="integrated"), model
        )
        image = render_sign(0, size=32)
        with pytest.raises(ValueError, match="qualifier view"):
            pipeline.infer(image, qualifier_view=image)
        with pytest.raises(ValueError, match="qualifier view"):
            pipeline.infer_batch(image[None], qualifier_views=image[None])

    def test_infer_stream_matches_batch(self, model, images):
        pipeline = build_pipeline(PipelineConfig(), model)
        batch = pipeline.infer_batch(images)
        streamed = list(pipeline.infer_stream(iter(images), batch_size=4))
        assert len(streamed) == len(batch)
        for s, b in zip(streamed, batch):
            np.testing.assert_array_equal(s.probabilities, b.probabilities)
            assert s.decision == b.decision

    def test_mismatched_view_count_fails_fast(self, model, images):
        pipeline = build_pipeline(PipelineConfig(), model)
        with pytest.raises(ValueError, match="qualifier views"):
            pipeline.infer_batch(images, qualifier_views=images[:-1])

    def test_infer_stream_validates_batch_size(self, model, images):
        pipeline = build_pipeline(PipelineConfig(), model)
        with pytest.raises(ValueError):
            list(pipeline.infer_stream(iter(images), batch_size=0))


class TestBatchResult:
    def test_aggregates(self, model, images):
        pipeline = build_pipeline(PipelineConfig(), model)
        batch = pipeline.infer_batch(images)
        assert isinstance(batch, BatchResult)
        assert batch.n_images == len(images)
        assert len(batch) == len(images)
        assert batch.elapsed_seconds > 0
        assert batch.throughput > 0
        assert batch.probabilities.shape == (len(images), 8)
        assert batch.predicted_classes.shape == (len(images),)
        # Every decision kind has a stable key, zero counts included.
        assert set(batch.decision_counts) == {d.value for d in Decision}
        assert sum(batch.decision_counts.values()) == len(images)
        assert batch.confirmed_count == batch.decision_counts["confirmed"]
        assert "images in" in batch.summary()

    def test_empty_batch(self, model):
        """An empty batch is a quiet no-op, not a shape error."""
        pipeline = build_pipeline(PipelineConfig(), model)
        batch = pipeline.infer_batch(np.zeros((0, 3, 32, 32)))
        assert batch.n_images == 0
        assert batch.probabilities.shape[0] == 0
        assert batch.predicted_classes.shape == (0,)
        assert sum(batch.decision_counts.values()) == 0
        integrated = build_pipeline(
            PipelineConfig(architecture="integrated"), model
        )
        assert integrated.infer_batch(np.zeros((0, 3, 32, 32))).n_images == 0

    def test_container_protocol(self, model, images):
        batch = build_pipeline(PipelineConfig(), model).infer_batch(images)
        assert batch[0] is batch.results[0]
        assert [r for r in batch] == batch.results

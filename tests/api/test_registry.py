"""Registry semantics and pluggable extension scenarios."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import (
    ARCHITECTURES,
    BASELINES,
    OPERATORS,
    QUALIFIERS,
    PipelineConfig,
    Registry,
    RegistryError,
    build_baseline,
    build_operator,
    build_pipeline,
)
from repro.baselines import ActivationRangeGuard, OutputCage
from repro.models import small_cnn
from repro.reliable.operators import (
    PlainOperator,
    RedundantOperator,
    TMROperator,
)


class TestRegistry:
    def test_register_as_decorator_and_call(self):
        reg = Registry("thing")

        @reg.register("a")
        def build_a():
            return "a"

        reg.register("b", lambda: "b")
        assert reg.get("a")() == "a"
        assert reg.get("b")() == "b"
        assert reg.names() == ["a", "b"]
        assert "a" in reg and "c" not in reg
        assert len(reg) == 2

    def test_duplicate_requires_overwrite(self):
        reg = Registry("thing")
        reg.register("x", lambda: 1)
        with pytest.raises(RegistryError, match="already registered"):
            reg.register("x", lambda: 2)
        reg.register("x", lambda: 2, overwrite=True)
        assert reg.get("x")() == 2

    def test_unknown_key_lists_choices(self):
        reg = Registry("axis")
        reg.register("known", lambda: None)
        with pytest.raises(RegistryError, match="known"):
            reg.get("missing")

    def test_invalid_key(self):
        with pytest.raises(ValueError):
            Registry("thing").register("", lambda: None)


class TestBuiltinRegistrations:
    def test_architectures(self):
        assert "parallel" in ARCHITECTURES
        assert "integrated" in ARCHITECTURES

    def test_qualifiers(self):
        assert "shape" in QUALIFIERS

    def test_operators_back_the_reliable_kinds(self):
        assert isinstance(build_operator("plain"), PlainOperator)
        assert isinstance(build_operator("dmr"), RedundantOperator)
        assert isinstance(build_operator("redundant"), RedundantOperator)
        assert isinstance(build_operator("tmr"), TMROperator)

    def test_baselines(self):
        model = small_cnn(32, 8, conv1_filters=4)
        assert isinstance(build_baseline("ranger", model),
                          ActivationRangeGuard)
        assert isinstance(
            build_baseline("caging", model, min_confidence_quantile=0.05),
            OutputCage,
        )


class TestPluggableOperator:
    """OPERATORS feeds the factory table every kind-string surface
    reads: make_operator, ReliableConv2D, HybridPartition."""

    def test_registered_operator_reaches_partition_and_executor(self):
        from repro.core import HybridPartition
        from repro.reliable.operators import (
            _OPERATOR_KINDS,
            RedundantOperator,
            make_operator,
        )

        class QuadOperator(RedundantOperator):
            executions_per_op = 4

        try:
            OPERATORS.register("qmr-test", QuadOperator)
            assert "qmr-test" in OPERATORS
            assert isinstance(build_operator("qmr-test"), QuadOperator)
            assert isinstance(make_operator("qmr-test"), QuadOperator)
            partition = HybridPartition(redundancy="qmr-test")
            assert partition.redundancy_multiplier() == 4
        finally:
            _OPERATOR_KINDS.pop("qmr-test", None)

    def test_factory_table_registrations_visible_in_registry(self):
        """Sync is two-way: OPERATORS is a live view, not a copy."""
        from repro.reliable.operators import (
            _OPERATOR_KINDS,
            RedundantOperator,
            register_operator,
        )

        try:
            register_operator("table-side-test", RedundantOperator)
            assert "table-side-test" in OPERATORS
            assert isinstance(build_operator("table-side-test"),
                              RedundantOperator)
        finally:
            _OPERATOR_KINDS.pop("table-side-test", None)

    def test_duplicate_kind_rejected_across_layers(self):
        from repro.reliable.operators import RedundantOperator

        with pytest.raises(RegistryError, match="already registered"):
            OPERATORS.register("dmr", RedundantOperator)


class TestPluggableArchitecture:
    """A new scenario registers without touching repro.core."""

    def test_custom_architecture_builds_through_factory(self):
        class EchoHybrid:
            def __init__(self, model, qualifier, safety_class):
                self.model = model
                self.qualifier = qualifier
                self.safety_class = safety_class

            def infer(self, image):
                return "echo"

        try:
            @ARCHITECTURES.register("echo-test")
            def build_echo(model, qualifier, config):
                return EchoHybrid(model, qualifier, config.safety_class)

            model = small_cnn(32, 8, conv1_filters=4)
            pipeline = build_pipeline(
                PipelineConfig(architecture="echo-test", safety_class=2),
                model,
            )
            assert isinstance(pipeline.hybrid, EchoHybrid)
            assert pipeline.hybrid.safety_class == 2
            assert pipeline.infer(np.zeros((3, 32, 32))) == "echo"
        finally:
            ARCHITECTURES._entries.pop("echo-test", None)

"""Config validation and dict round-tripping."""

from __future__ import annotations

import json

import pytest

from repro.api import (
    Architecture,
    PartitionConfig,
    PipelineConfig,
    QualifierConfig,
    Redundancy,
)


class TestQualifierConfig:
    def test_defaults_mirror_shape_qualifier(self):
        config = QualifierConfig()
        assert config.kind == "shape"
        assert config.shape == "octagon"
        assert config.word_length == 32
        assert config.alphabet_size == 8
        assert config.redundant is True

    @pytest.mark.parametrize("kwargs", [
        {"kind": ""},
        {"word_length": 0},
        {"alphabet_size": 1},
        {"threshold": -0.1},
        {"n_samples": 16, "word_length": 32},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            QualifierConfig(**kwargs)

    def test_round_trip(self):
        config = QualifierConfig(threshold=2.5, redundant=False,
                                 edge_threshold=0.4)
        clone = QualifierConfig.from_dict(
            json.loads(json.dumps(config.to_dict()))
        )
        assert clone == config

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown keys"):
            QualifierConfig.from_dict({"worliength": 16})


class TestPartitionConfig:
    def test_defaults_match_core_partition(self):
        partition = PartitionConfig().to_partition()
        assert partition.reliable_filters == {"conv1": (0, 1)}
        assert partition.bifurcation_layer == "conv1"
        assert partition.redundancy == "dmr"

    def test_json_lists_normalise_to_tuples(self):
        config = PartitionConfig(reliable_filters={"conv1": [0, 2]})
        assert config.reliable_filters == {"conv1": (0, 2)}

    def test_core_validation_applies(self):
        with pytest.raises(ValueError):
            PartitionConfig(reliable_filters={"conv2": (0,)})
        with pytest.raises(ValueError):
            PartitionConfig(redundancy="qmr")

    def test_redundancy_enum_coerces(self):
        config = PartitionConfig(redundancy=Redundancy.TMR)
        assert config.redundancy == "tmr"

    def test_round_trip(self):
        config = PartitionConfig(
            reliable_filters={"conv1": (1, 3)}, redundancy="tmr"
        )
        clone = PartitionConfig.from_dict(
            json.loads(json.dumps(config.to_dict()))
        )
        assert clone == config


class TestPipelineConfig:
    def test_architecture_enum_coerces_to_value(self):
        config = PipelineConfig(architecture=Architecture.INTEGRATED)
        assert config.architecture == "integrated"

    def test_validation(self):
        with pytest.raises(ValueError):
            PipelineConfig(architecture="")
        with pytest.raises(ValueError):
            PipelineConfig(safety_class=-1)
        with pytest.raises(TypeError):
            PipelineConfig(qualifier={"kind": "shape"})
        with pytest.raises(TypeError):
            PipelineConfig(partition={"bifurcation_layer": "conv1"})

    def test_round_trip_parallel(self):
        config = PipelineConfig(name="rt", safety_class=3)
        clone = PipelineConfig.from_dict(
            json.loads(json.dumps(config.to_dict()))
        )
        assert clone == config

    def test_round_trip_integrated_with_nested_configs(self):
        config = PipelineConfig(
            architecture="integrated",
            qualifier=QualifierConfig(threshold=2.0),
            partition=PartitionConfig(redundancy="tmr"),
            pin_sobel=True,
        )
        clone = PipelineConfig.from_dict(
            json.loads(json.dumps(config.to_dict()))
        )
        assert clone == config
        assert clone.partition.redundancy == "tmr"


class TestPartitionEngineField:
    def test_default_is_auto(self):
        config = PartitionConfig()
        assert config.engine == "auto"
        assert config.to_partition().engine == "auto"

    def test_explicit_engine_round_trips(self):
        config = PartitionConfig(engine="vectorized")
        clone = PartitionConfig.from_dict(
            json.loads(json.dumps(config.to_dict()))
        )
        assert clone == config
        assert clone.engine == "vectorized"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            PartitionConfig(engine="warp-drive")

    def test_scalar_engine_reaches_reliable_executor(self):
        from repro.api import PipelineConfig, build_pipeline
        from repro.models import small_cnn

        pipeline = build_pipeline(
            PipelineConfig(
                architecture="integrated",
                partition=PartitionConfig(engine="scalar"),
            ),
            small_cnn(32, 8, conv1_filters=8),
        )
        assert pipeline.hybrid._reliable_conv.engine == "scalar"

"""Shared fixtures.

Expensive artefacts (the trained sign classifier) are session-scoped
so the whole suite trains once.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import make_dataset, render_sign, train_test_split
from repro.workflows.training import train_sign_model


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def stop_image() -> np.ndarray:
    """A slightly angled stop sign at qualifier-friendly resolution."""
    return render_sign(0, size=128, rotation=np.deg2rad(7))


@pytest.fixture(scope="session")
def circle_image() -> np.ndarray:
    return render_sign(1, size=128)


@pytest.fixture(scope="session")
def sign_data():
    """Small train/test split of the synthetic sign dataset."""
    dataset = make_dataset(12, size=32, seed=99)
    return train_test_split(dataset, test_fraction=0.25, seed=99)


@pytest.fixture(scope="session")
def trained_model():
    """A small CNN trained once for the whole session (~10 s)."""
    return train_sign_model(
        arch="small", image_size=32, n_per_class=30, epochs=6, seed=7
    )

"""Hybrid architectures and the reliable-result block."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    Decision,
    HybridPartition,
    IntegratedHybridCNN,
    ParallelHybridCNN,
    ReliableResultBlock,
    ShapeQualifier,
)
from repro.core.qualifier import QualifierVerdict
from repro.data import STOP_CLASS_INDEX, render_sign
from repro.models import alexnet_scaled, small_cnn
from repro.vision.filters import sobel_axis_stack


class TestReliableResultBlock:
    def setup_method(self):
        self.block = ReliableResultBlock(safety_class=0)

    @staticmethod
    def probs(winner, n=4):
        p = np.full(n, 0.1 / (n - 1))
        p[winner] = 0.9
        return p

    def test_confirmed(self):
        verdict = QualifierVerdict(matches=True, distance=0.0, word="w")
        predicted, decision = self.block.combine(self.probs(0), verdict)
        assert predicted == 0 and decision is Decision.CONFIRMED

    def test_rejected_by_qualifier(self):
        verdict = QualifierVerdict(matches=False, distance=9.0, word="w")
        _, decision = self.block.combine(self.probs(0), verdict)
        assert decision is Decision.REJECTED_BY_QUALIFIER

    def test_not_safety_critical(self):
        verdict = QualifierVerdict(matches=False, distance=9.0, word="w")
        predicted, decision = self.block.combine(self.probs(2), verdict)
        assert predicted == 2
        assert decision is Decision.NOT_SAFETY_CRITICAL

    def test_shape_without_class_flags_possible_false_negative(self):
        verdict = QualifierVerdict(matches=True, distance=0.0, word="w")
        _, decision = self.block.combine(self.probs(2), verdict)
        assert decision is Decision.SHAPE_WITHOUT_CLASS

    def test_unreliable_qualifier_never_confirms(self):
        verdict = QualifierVerdict(matches=True, distance=0.0, word="w",
                                   reliable=False)
        _, decision = self.block.combine(self.probs(0), verdict)
        assert decision is Decision.QUALIFIER_UNAVAILABLE


class TestPartition:
    def test_defaults_are_paper_plus_xy(self):
        partition = HybridPartition()
        assert partition.reliable_filters == {"conv1": (0, 1)}
        assert partition.bifurcation_layer == "conv1"
        assert partition.redundancy == "dmr"
        assert partition.redundancy_multiplier() == 2

    def test_validation_rules(self):
        with pytest.raises(ValueError):
            HybridPartition(reliable_filters={"conv2": (0,)})
        with pytest.raises(ValueError):
            HybridPartition(
                reliable_filters={"conv1": ()},
            )
        with pytest.raises(ValueError):
            HybridPartition(
                reliable_filters={"conv1": (0, 0)},
            )
        with pytest.raises(ValueError):
            HybridPartition(redundancy="qmr")
        # "plain" is a registered operator kind but executes once per
        # operation -- never acceptable for the dependable partition.
        with pytest.raises(ValueError, match="redundant"):
            HybridPartition(redundancy="plain")

    def test_validate_against_model(self):
        model = small_cnn(32, 8, conv1_filters=4)
        HybridPartition(
            reliable_filters={"conv1": (0, 3)}
        ).validate_against(model)
        with pytest.raises(ValueError):
            HybridPartition(
                reliable_filters={"conv1": (0, 9)}
            ).validate_against(model)
        with pytest.raises(KeyError):
            HybridPartition(
                reliable_filters={"convX": (0,)},
                bifurcation_layer="convX",
            ).validate_against(model)
        with pytest.raises(TypeError):
            HybridPartition(
                reliable_filters={"relu1": (0,)},
                bifurcation_layer="relu1",
            ).validate_against(model)

    def test_reliable_op_count_scales_with_filters(self):
        model = small_cnn(32, 8, conv1_filters=8)
        one = HybridPartition(reliable_filters={"conv1": (0,)})
        two = HybridPartition(reliable_filters={"conv1": (0, 1)})
        n1 = one.reliable_operation_count(model, (3, 32, 32))
        n2 = two.reliable_operation_count(model, (3, 32, 32))
        assert n2 == 2 * n1
        # One filter: 32x32 output (padding 2, stride 1), 5x5x3 taps.
        assert n1 == 32 * 32 * 75


@pytest.fixture(scope="module")
def hybrid_model():
    """Scaled AlexNet at 128px with Sobel x/y pinned in conv1."""
    model = alexnet_scaled(n_classes=8, input_size=128)
    conv1 = model.layer("conv1")
    conv1.set_filter(0, sobel_axis_stack("x", 7, 3))
    conv1.set_filter(1, sobel_axis_stack("y", 7, 3))
    return model


class TestParallelHybrid:
    def test_stop_sign_qualifier_path(self, hybrid_model):
        hybrid = ParallelHybridCNN(
            hybrid_model, ShapeQualifier(), STOP_CLASS_INDEX
        )
        result = hybrid.infer(
            render_sign(0, size=128, rotation=np.deg2rad(5))
        )
        assert result.verdict.matches
        assert result.decision in (
            Decision.CONFIRMED, Decision.SHAPE_WITHOUT_CLASS
        )
        np.testing.assert_allclose(result.probabilities.sum(), 1.0,
                                   rtol=1e-5)

    def test_circle_never_confirmed(self, hybrid_model):
        hybrid = ParallelHybridCNN(
            hybrid_model, ShapeQualifier(), STOP_CLASS_INDEX
        )
        result = hybrid.infer(render_sign(1, size=128))
        assert not result.verdict.matches
        assert result.decision is not Decision.CONFIRMED


class TestIntegratedHybrid:
    @pytest.fixture(scope="class")
    def hybrid(self, hybrid_model):
        return IntegratedHybridCNN(
            hybrid_model, ShapeQualifier(), STOP_CLASS_INDEX
        )

    def test_stop_sign_bifurcated_path(self, hybrid):
        result = hybrid.infer(
            render_sign(0, size=128, rotation=np.deg2rad(5))
        )
        assert result.verdict.matches
        assert result.reliable_report is not None
        assert result.reliable_report.operations > 0
        assert result.reliable_report.persistent_failures == 0

    def test_circle_rejected_on_feature_path(self, hybrid):
        result = hybrid.infer(render_sign(1, size=128))
        assert not result.verdict.matches
        assert result.decision is not Decision.CONFIRMED

    def test_confirmed_property(self, hybrid):
        result = hybrid.infer(
            render_sign(0, size=128, rotation=np.deg2rad(5))
        )
        assert result.confirmed == (
            result.decision is Decision.CONFIRMED
        )

    def test_partition_must_fit_model(self, hybrid_model):
        with pytest.raises(ValueError):
            IntegratedHybridCNN(
                hybrid_model, ShapeQualifier(), STOP_CLASS_INDEX,
                HybridPartition(
                    reliable_filters={"conv1": (0, 99)}
                ),
            )

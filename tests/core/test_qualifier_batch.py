"""Parity suite for the batched qualifier engine.

The contract under test (see :mod:`repro.core.qualifier_batch`):
``check_batch`` / ``check_feature_map_batch`` -- and both hybrid
architectures' ``infer_batch`` through them -- are **bitwise**
identical to per-image scalar calls: verdict flags, distances (on
storage bits), words and decisions, including degenerate inputs and
the redundant-disagreement rollback path.
"""

from __future__ import annotations

import struct

import numpy as np
import pytest

from repro.api import PipelineConfig, QualifierConfig, build_pipeline
from repro.core import qualifier_batch
from repro.core.qualifier import QualifierVerdict, ShapeQualifier
from repro.data import render_sign
from repro.models import small_cnn
from repro.vision.edges import to_grayscale
from repro.vision.filters import SOBEL_X, SOBEL_Y, correlate2d


def bits(value: float) -> bytes:
    return struct.pack("<d", value)


def assert_verdicts_bitwise_equal(got, want):
    __tracebackhide__ = True
    assert len(got) == len(want)
    for index, (g, w) in enumerate(zip(got, want)):
        assert g.matches == w.matches, f"matches differ at {index}"
        assert bits(g.distance) == bits(w.distance), (
            f"distance bits differ at {index}: {g.distance!r} vs "
            f"{w.distance!r}"
        )
        assert g.word == w.word, f"word differs at {index}"
        assert g.reliable == w.reliable, f"reliable differs at {index}"


@pytest.fixture(scope="module")
def sign_batch():
    """All eight classes at two rotations: octagons, circles,
    triangles ... through the same stack."""
    return np.stack([
        render_sign(i % 8, size=96, rotation=np.deg2rad(5 * i - 20))
        for i in range(16)
    ]).astype(np.float32)


@pytest.fixture(scope="module")
def feature_batch(sign_batch):
    """Sobel-pair responses, the integrated hybrid's bifurcated view."""
    maps = []
    for image in sign_batch[:8]:
        grey = to_grayscale(image)
        maps.append(np.stack([
            correlate2d(grey, SOBEL_X), correlate2d(grey, SOBEL_Y)
        ]))
    return np.stack(maps)


class TestCheckBatchParity:
    @pytest.mark.parametrize("redundant", [True, False])
    def test_bitwise_parity_across_shapes(self, sign_batch, redundant):
        qualifier = ShapeQualifier(redundant=redundant)
        batch = qualifier.check_batch(sign_batch)
        singles = [qualifier.check(image) for image in sign_batch]
        assert_verdicts_bitwise_equal(batch, singles)

    @pytest.mark.parametrize("size", [64, 96, 128])
    def test_parity_across_sizes(self, size):
        """The exactness argument must not depend on geometry (BLAS
        kernel selection by problem size burned the first frontend
        draft; this pins the fix)."""
        images = np.stack([
            render_sign(i, size=size, rotation=np.deg2rad(3 * i))
            for i in range(6)
        ])
        qualifier = ShapeQualifier()
        assert_verdicts_bitwise_equal(
            qualifier.check_batch(images),
            [qualifier.check(image) for image in images],
        )

    def test_parity_other_shape_and_params(self, sign_batch):
        qualifier = ShapeQualifier(
            shape="triangle", word_length=16, alphabet_size=6,
            threshold=2.5,
        )
        assert_verdicts_bitwise_equal(
            qualifier.check_batch(sign_batch),
            [qualifier.check(image) for image in sign_batch],
        )

    def test_fractional_paa_parity(self, sign_batch):
        """n_samples not divisible by word_length exercises the
        fractional-frame PAA, vectorized across the batch with the
        scalar accumulation order."""
        qualifier = ShapeQualifier(word_length=24, n_samples=100)
        assert_verdicts_bitwise_equal(
            qualifier.check_batch(sign_batch),
            [qualifier.check(image) for image in sign_batch],
        )

    def test_grayscale_input_parity(self, sign_batch):
        grey = np.stack([to_grayscale(image) for image in sign_batch])
        qualifier = ShapeQualifier()
        assert_verdicts_bitwise_equal(
            qualifier.check_batch(grey),
            [qualifier.check(image) for image in grey],
        )

    def test_explicit_edge_threshold_parity(self, sign_batch):
        qualifier = ShapeQualifier(edge_threshold=1.25)
        assert_verdicts_bitwise_equal(
            qualifier.check_batch(sign_batch),
            [qualifier.check(image) for image in sign_batch],
        )

    def test_empty_batch(self):
        assert ShapeQualifier().check_batch(
            np.zeros((0, 3, 32, 32), dtype=np.float32)
        ) == []

    def test_scalar_engine_matches(self, sign_batch):
        batched = ShapeQualifier(engine="batched")
        scalar = ShapeQualifier(engine="scalar")
        assert_verdicts_bitwise_equal(
            batched.check_batch(sign_batch),
            scalar.check_batch(sign_batch),
        )


class TestFeatureMapBatchParity:
    def test_bitwise_parity(self, feature_batch):
        qualifier = ShapeQualifier()
        batch = qualifier.check_feature_map_batch(feature_batch)
        singles = [
            qualifier.check_feature_map(fm) for fm in feature_batch
        ]
        assert_verdicts_bitwise_equal(batch, singles)

    def test_single_map_layouts(self, feature_batch):
        qualifier = ShapeQualifier()
        for stack in (feature_batch[:, :1], feature_batch[:, 0]):
            assert_verdicts_bitwise_equal(
                qualifier.check_feature_map_batch(stack),
                [qualifier.check_feature_map(fm) for fm in stack],
            )

    def test_too_many_maps_rejected(self, feature_batch):
        wide = np.concatenate([feature_batch, feature_batch], axis=1)
        with pytest.raises(ValueError, match="expected"):
            ShapeQualifier().check_feature_map_batch(wide)


class TestDegenerateInputs:
    """Empty edge masks, sub-3-point boundaries, flat series and
    all-background images must match scalar verdicts, never raise."""

    def test_all_zero_images(self):
        qualifier = ShapeQualifier()
        images = np.zeros((3, 3, 32, 32), dtype=np.float32)
        batch = qualifier.check_batch(images)
        assert_verdicts_bitwise_equal(
            batch, [qualifier.check(image) for image in images]
        )
        for verdict in batch:
            assert not verdict.matches and verdict.reliable
            assert verdict.distance == float("inf")

    def test_constant_images_have_empty_edge_maps(self):
        qualifier = ShapeQualifier()
        images = np.full((2, 3, 24, 24), 0.6, dtype=np.float32)
        assert_verdicts_bitwise_equal(
            qualifier.check_batch(images),
            [qualifier.check(image) for image in images],
        )

    def test_boundary_under_three_points(self):
        """An edge threshold at the exact magnitude peak leaves a
        single-pixel mask: the traced boundary has one point, below
        the 3-point floor of the distance series."""
        from repro.vision.edges import sobel_edges

        rng = np.random.default_rng(7)
        images = rng.random((2, 16, 16)).astype(np.float32)
        peak = float(min(sobel_edges(image).max() for image in images))
        qualifier = ShapeQualifier(edge_threshold=peak)
        # The construction must actually exercise the degenerate
        # branch: at least one image's mask is a sub-3-point contour.
        assert any(
            (sobel_edges(image) >= peak).sum() < 3 for image in images
        )
        batch = qualifier.check_batch(images)
        assert_verdicts_bitwise_equal(
            batch, [qualifier.check(image) for image in images]
        )
        degenerate = [v for v in batch if v.word == ""]
        assert degenerate, "expected at least one sub-3-point verdict"
        for verdict in degenerate:
            assert not verdict.matches
            assert verdict.distance == float("inf")

    def test_flat_series_circle(self, sign_batch):
        """A circle's centroid-distance series is flat; z-normalise
        maps it to zeros in both paths."""
        qualifier = ShapeQualifier(shape="circle", threshold=1.0)
        assert_verdicts_bitwise_equal(
            qualifier.check_batch(sign_batch),
            [qualifier.check(image) for image in sign_batch],
        )

    def test_all_background_feature_maps(self):
        qualifier = ShapeQualifier()
        maps = np.zeros((3, 2, 20, 20), dtype=np.float32)
        maps[1] = -0.0  # negative zero peak is still "no response"
        batch = qualifier.check_feature_map_batch(maps)
        assert_verdicts_bitwise_equal(
            batch, [qualifier.check_feature_map(fm) for fm in maps]
        )
        for verdict in batch:
            assert verdict == QualifierVerdict()

    def test_blank_image_with_non_positive_edge_threshold(self):
        """The scalar edge map blanks zero-magnitude images before the
        threshold comparison; an explicit threshold <= 0 must not turn
        a featureless frame into an all-foreground mask (which would
        let a blank image qualify)."""
        qualifier = ShapeQualifier(edge_threshold=0.0)
        images = np.zeros((2, 3, 24, 24), dtype=np.float32)
        batch = qualifier.check_batch(images)
        assert_verdicts_bitwise_equal(
            batch, [qualifier.check(image) for image in images]
        )
        for verdict in batch:
            assert not verdict.matches
            assert verdict.word == ""

    def test_mixed_degenerate_and_real(self, sign_batch):
        """Degenerate and live images interleaved in one batch."""
        qualifier = ShapeQualifier()
        images = np.concatenate([
            np.zeros((1,) + sign_batch.shape[1:], dtype=np.float32),
            sign_batch[:3],
            np.full((1,) + sign_batch.shape[1:], 2.0, dtype=np.float32),
        ])
        assert_verdicts_bitwise_equal(
            qualifier.check_batch(images),
            [qualifier.check(image) for image in images],
        )


class TestRedundantDisagreement:
    """Inject disagreement between the two batched runs; disagreeing
    images must take the scalar checkpoint/rollback path."""

    def _corrupt_first_run(self, monkeypatch, corrupt_indices):
        real = qualifier_batch._qualify_masks
        calls = {"n": 0}

        def flaky(qualifier, masks):
            results = real(qualifier, masks)
            calls["n"] += 1
            if calls["n"] == 1:  # first speculative run only
                for i in corrupt_indices:
                    matches, distance, word = results[i]
                    results[i] = (matches, distance + 1.0, word)
            return results

        monkeypatch.setattr(qualifier_batch, "_qualify_masks", flaky)
        return calls

    def test_disagreeing_images_fall_back_to_scalar(
        self, monkeypatch, sign_batch
    ):
        qualifier = ShapeQualifier()
        expected = [qualifier.check(image) for image in sign_batch]
        scalar_calls: list[int] = []
        real_check = ShapeQualifier.check

        def spying_check(self, image):
            scalar_calls.append(1)
            return real_check(self, image)

        monkeypatch.setattr(ShapeQualifier, "check", spying_check)
        self._corrupt_first_run(monkeypatch, corrupt_indices=(1, 4))
        batch = qualifier.check_batch(sign_batch)
        # The transient corruption is repaired by re-execution: every
        # verdict still equals the scalar one bitwise, and exactly the
        # two disagreeing images took the scalar rollback path.
        assert_verdicts_bitwise_equal(batch, expected)
        assert len(scalar_calls) == 2

    def test_persistent_disagreement_goes_unavailable(
        self, monkeypatch, sign_batch
    ):
        """When the scalar rollback path itself keeps disagreeing, the
        verdict degrades to unavailable -- never an exception."""
        qualifier = ShapeQualifier()
        images = sign_batch[:4]

        flips = {"n": 0}
        real_evaluate = ShapeQualifier._evaluate_once

        def flaky_evaluate(self, image):
            matches, distance, word = real_evaluate(self, image)
            flips["n"] += 1
            return matches, distance + float(flips["n"]), word

        self._corrupt_first_run(monkeypatch, corrupt_indices=(2,))
        monkeypatch.setattr(
            ShapeQualifier, "_evaluate_once", flaky_evaluate
        )
        batch = qualifier.check_batch(images)
        assert batch[2] == QualifierVerdict.unavailable()
        for i in (0, 1, 3):
            assert batch[i].reliable

    def test_feature_map_disagreement_falls_back(
        self, monkeypatch, feature_batch
    ):
        qualifier = ShapeQualifier()
        expected = [
            qualifier.check_feature_map(fm) for fm in feature_batch
        ]
        self._corrupt_first_run(monkeypatch, corrupt_indices=(0,))
        batch = qualifier.check_feature_map_batch(feature_batch)
        assert_verdicts_bitwise_equal(batch, expected)


class TestEnginePolicy:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            ShapeQualifier(engine="warp-drive")

    def test_auto_is_exact_for_stock_qualifier(self):
        assert qualifier_batch.batched_is_exact(ShapeQualifier())

    def test_subclass_falls_back_to_scalar(self, monkeypatch, sign_batch):
        class TightQualifier(ShapeQualifier):
            def _distance(self, word: str) -> float:
                return 0.0

        qualifier = TightQualifier()
        assert not qualifier_batch.batched_is_exact(qualifier)

        def exploding(*args, **kwargs):  # pragma: no cover
            raise AssertionError("batched engine must not run")

        monkeypatch.setattr(qualifier_batch, "batched_check", exploding)
        batch = qualifier.check_batch(sign_batch[:3])
        singles = [qualifier.check(image) for image in sign_batch[:3]]
        assert_verdicts_bitwise_equal(batch, singles)

    def test_scalar_engine_pins_per_image_loop(
        self, monkeypatch, sign_batch
    ):
        qualifier = ShapeQualifier(engine="scalar")

        def exploding(*args, **kwargs):  # pragma: no cover
            raise AssertionError("batched engine must not run")

        monkeypatch.setattr(qualifier_batch, "batched_check", exploding)
        qualifier.check_batch(sign_batch[:2])

    def test_auto_dispatches_batched_for_feature_maps(
        self, monkeypatch, feature_batch
    ):
        """The dispatch audit: ``engine="auto"`` must route feature
        maps through the batched engine exactly as it routes images.
        A silent per-map scalar degradation -- the integrated-hybrid
        batch regression's prime suspect -- fails here."""
        calls = {"batched": 0}
        real = qualifier_batch.batched_check_feature_map

        def spying(qualifier, maps):
            calls["batched"] += 1
            return real(qualifier, maps)

        monkeypatch.setattr(
            qualifier_batch, "batched_check_feature_map", spying
        )
        qualifier = ShapeQualifier()  # engine="auto"
        got = qualifier.check_feature_map_batch(feature_batch)
        assert calls["batched"] == 1
        singles = [
            qualifier.check_feature_map(fm) for fm in feature_batch
        ]
        assert_verdicts_bitwise_equal(got, singles)

    def test_feature_map_dispatch_honours_scalar_pins(
        self, monkeypatch, feature_batch
    ):
        """The same policy that degrades images to the scalar loop --
        subclassed qualifier, or an explicit ``engine="scalar"`` --
        degrades feature maps too (and only then)."""

        def exploding(*args, **kwargs):  # pragma: no cover
            raise AssertionError("batched engine must not run")

        monkeypatch.setattr(
            qualifier_batch, "batched_check_feature_map", exploding
        )

        class TightQualifier(ShapeQualifier):
            def _distance(self, word: str) -> float:
                return 0.0

        for qualifier in (
            TightQualifier(), ShapeQualifier(engine="scalar")
        ):
            qualifier.check_feature_map_batch(feature_batch[:2])

    def test_config_engine_reaches_qualifier(self):
        pipeline = build_pipeline(
            PipelineConfig(
                qualifier=QualifierConfig(engine="scalar"),
            ),
            small_cnn(32, 8, conv1_filters=8),
        )
        assert pipeline.qualifier.engine == "scalar"
        with pytest.raises(ValueError, match="engine"):
            QualifierConfig(engine="warp-drive")

    def test_qualifier_config_round_trips_engine(self):
        config = QualifierConfig(engine="batched")
        clone = QualifierConfig.from_dict(config.to_dict())
        assert clone == config and clone.engine == "batched"


class TestHybridWiring:
    """infer_batch of both architectures rides the batched engine and
    stays bitwise identical to per-image infer (the broad matrix lives
    in tests/api/test_batch_parity.py; this pins the engine wiring)."""

    def test_parallel_uses_batched_qualifier(self, monkeypatch, sign_batch):
        calls = {"batch": 0}
        real = ShapeQualifier.check_batch

        def spying(self, images):
            calls["batch"] += 1
            return real(self, images)

        monkeypatch.setattr(ShapeQualifier, "check_batch", spying)
        pipeline = build_pipeline(
            PipelineConfig(architecture="parallel"),
            small_cnn(96, 8, conv1_filters=8),
        )
        results = pipeline.infer_batch(sign_batch[:4])
        assert calls["batch"] == 1
        singles = [pipeline.infer(image) for image in sign_batch[:4]]
        for got, want in zip(results, singles):
            assert got.decision == want.decision
            assert bits(got.verdict.distance) == bits(want.verdict.distance)
            assert got.verdict.word == want.verdict.word

    def test_parallel_ragged_qualifier_views(self, sign_batch):
        """Per-scene qualifier renderings may differ in resolution;
        ragged view lists fall back to per-image qualification instead
        of raising on the stack."""
        from repro.data import render_sign

        pipeline = build_pipeline(
            PipelineConfig(architecture="parallel"),
            small_cnn(96, 8, conv1_filters=8),
        )
        views = [
            render_sign(0, size=128),
            render_sign(1, size=64),
            render_sign(2, size=96),
        ]
        results = pipeline.infer_batch(
            sign_batch[:3], qualifier_views=views
        )
        singles = [
            pipeline.infer(image, qualifier_view=view)
            for image, view in zip(sign_batch[:3], views)
        ]
        for got, want in zip(results, singles):
            assert got.decision == want.decision
            assert bits(got.verdict.distance) == bits(want.verdict.distance)
            assert got.verdict.word == want.verdict.word

    def test_integrated_uses_batched_feature_qualifier(
        self, monkeypatch, sign_batch
    ):
        calls = {"batch": 0}
        real = ShapeQualifier.check_feature_map_batch

        def spying(self, maps):
            calls["batch"] += 1
            return real(self, maps)

        monkeypatch.setattr(
            ShapeQualifier, "check_feature_map_batch", spying
        )
        pipeline = build_pipeline(
            PipelineConfig(architecture="integrated", pin_sobel=True),
            small_cnn(96, 8, conv1_filters=8),
        )
        small = sign_batch[:2]
        results = pipeline.infer_batch(small)
        assert calls["batch"] == 1
        singles = [pipeline.infer(image) for image in small]
        for got, want in zip(results, singles):
            assert got.decision == want.decision
            assert bits(got.verdict.distance) == bits(want.verdict.distance)
            assert got.verdict.word == want.verdict.word

"""Shape qualifier: templates, calibration, redundant execution."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.qualifier import (
    QualifierVerdict,
    ShapeQualifier,
    octagon_template_word,
    shape_template_word,
    shape_template_words,
)
from repro.data import SIGN_CLASSES, render_sign
from repro.sax.sax import SaxEncoder


@pytest.fixture(scope="module")
def qualifier():
    return ShapeQualifier()


class TestTemplates:
    def test_octagon_word_deterministic(self):
        assert octagon_template_word() == octagon_template_word()

    def test_phase_variants_nonempty_and_unique(self):
        encoder = SaxEncoder(32, 8)
        variants = shape_template_words("octagon", encoder)
        assert 1 <= len(variants) <= 4
        assert len(set(variants)) == len(variants)

    def test_different_shapes_different_words(self):
        encoder = SaxEncoder(32, 8)
        octagon = set(shape_template_words("octagon", encoder))
        triangle = set(shape_template_words("triangle", encoder))
        assert octagon.isdisjoint(triangle)

    def test_circle_template_flat(self):
        encoder = SaxEncoder(32, 8)
        word = shape_template_word("circle", encoder)
        assert len(set(word)) == 1  # one symbol throughout

    def test_unknown_shape_rejected(self):
        with pytest.raises(ValueError):
            shape_template_word("heptadecagon", SaxEncoder(32, 8))


class TestCalibration:
    """Threshold separation on the synthetic data: the reliability
    claim of the qualifier rests on this margin."""

    def test_stop_signs_match_across_rotations(self, qualifier):
        for deg in (-12.0, -5.0, 0.0, 7.0, 12.0):
            image = render_sign(0, size=128, rotation=np.deg2rad(deg))
            verdict = qualifier.check(image)
            assert verdict.matches, f"stop at {deg} deg must match"
            assert verdict.distance <= qualifier.threshold

    def test_all_other_classes_rejected(self, qualifier):
        for index, spec in enumerate(SIGN_CLASSES):
            if spec.name == "stop":
                continue
            image = render_sign(index, size=128)
            verdict = qualifier.check(image)
            assert not verdict.matches, f"{spec.name} must not match"

    def test_margin_is_comfortable(self, qualifier):
        """Non-octagons stay at least 2x the threshold away."""
        worst = min(
            qualifier.check(render_sign(i, size=128)).distance
            for i, spec in enumerate(SIGN_CLASSES)
            if spec.name != "stop"
        )
        assert worst >= 2.0 * qualifier.threshold

    def test_blank_image_rejected(self, qualifier):
        blank = np.zeros((3, 128, 128), dtype=np.float32)
        verdict = qualifier.check(blank)
        assert not verdict.matches
        assert verdict.distance == float("inf")


class TestVerdict:
    def test_truthiness(self):
        assert QualifierVerdict(matches=True, distance=0.0, word="w")
        assert not QualifierVerdict(matches=False, distance=9.0, word="w")
        assert not QualifierVerdict(matches=True, distance=0.0, word="w",
                                   reliable=False)

    def test_word_exposed_for_explainability(self, qualifier, stop_image):
        verdict = qualifier.check(stop_image)
        assert len(verdict.word) == qualifier.encoder.word_length


class TestRedundantExecution:
    def test_redundant_and_plain_agree_on_clean_input(self, stop_image):
        redundant = ShapeQualifier(redundant=True).check(stop_image)
        plain = ShapeQualifier(redundant=False).check(stop_image)
        assert redundant.matches == plain.matches
        assert redundant.distance == plain.distance

    def test_verdict_reliable_flag_on_clean_execution(self, qualifier,
                                                      stop_image):
        assert qualifier.check(stop_image).reliable


class TestFeatureMapPath:
    def test_two_map_magnitude_form(self, qualifier):
        from repro.nn import Conv2D
        from repro.vision.filters import sobel_axis_stack

        conv = Conv2D(3, 4, 7, stride=2, name="c")
        conv.set_filter(0, sobel_axis_stack("x", 7, 3))
        conv.set_filter(1, sobel_axis_stack("y", 7, 3))
        image = render_sign(0, size=128, rotation=np.deg2rad(5))
        maps = conv.forward(image[None])[0, :2]
        assert qualifier.check_feature_map(maps).matches

    def test_rejects_too_many_maps(self, qualifier, rng):
        with pytest.raises(ValueError):
            qualifier.check_feature_map(
                rng.standard_normal((3, 10, 10))
            )

    def test_zero_map_rejected(self, qualifier):
        verdict = qualifier.check_feature_map(np.zeros((16, 16)))
        assert not verdict.matches

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ShapeQualifier(threshold=-1.0)

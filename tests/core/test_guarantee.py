"""Reliability guarantee math and the cost model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.guarantee import (
    CostModel,
    ReliabilityGuarantee,
    bucket_overflow_probability,
    dmr_residual_risk,
    plain_sdc_probability,
    tmr_residual_risk,
)
from repro.core.partition import HybridPartition
from repro.models import small_cnn


class TestBasicFormulas:
    def test_plain_sdc_limits(self):
        assert plain_sdc_probability(0.0, 1000) == 0.0
        assert plain_sdc_probability(1.0, 1) == 1.0
        assert plain_sdc_probability(0.5, 0) == 0.0

    def test_plain_sdc_small_p_linear(self):
        p, n = 1e-9, 10_000
        np.testing.assert_allclose(
            plain_sdc_probability(p, n), p * n, rtol=1e-4
        )

    def test_dmr_quadratic_suppression(self):
        p, n = 1e-4, 100_000
        plain = plain_sdc_probability(p, n)
        dmr = dmr_residual_risk(p, n)
        assert dmr < plain * 1e-3

    def test_tmr_three_pairs(self):
        p, n = 1e-4, 1000
        np.testing.assert_allclose(
            tmr_residual_risk(p, n),
            1.0 - (1.0 - 3.0 * p * p / 32.0) ** n,
            rtol=1e-9,
        )

    def test_collision_scales_dmr_risk(self):
        base = dmr_residual_risk(1e-3, 1000, collision=1 / 32)
        certain = dmr_residual_risk(1e-3, 1000, collision=1.0)
        assert certain > base * 10

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            plain_sdc_probability(-0.1, 10)
        with pytest.raises(ValueError):
            dmr_residual_risk(2.0, 10)
        with pytest.raises(ValueError):
            plain_sdc_probability(0.5, -1)


class TestBucketOverflow:
    def test_zero_error_rate_never_overflows(self):
        assert bucket_overflow_probability(0.0, 10_000) == 0.0

    def test_certain_error_rate_overflows(self):
        assert bucket_overflow_probability(1.0, 10) == 1.0

    def test_monotone_in_ops(self):
        p_short = bucket_overflow_probability(0.01, 100)
        p_long = bucket_overflow_probability(0.01, 10_000)
        assert p_long > p_short

    def test_matches_simulation(self):
        """Markov DP must agree with a direct Monte-Carlo simulation."""
        from repro.reliable.leaky_bucket import LeakyBucket

        p_err, n_ops, trials = 0.05, 200, 4000
        rng = np.random.default_rng(0)
        overflows = 0
        for _ in range(trials):
            bucket = LeakyBucket(factor=2)
            for _ in range(n_ops):
                if rng.random() < p_err:
                    if bucket.record_error():
                        overflows += 1
                        break
                else:
                    bucket.record_success()
        simulated = overflows / trials
        analytic = bucket_overflow_probability(p_err, n_ops, factor=2)
        assert abs(simulated - analytic) < 0.03

    def test_ceiling_validation(self):
        with pytest.raises(ValueError):
            bucket_overflow_probability(0.1, 10, factor=3, ceiling=2)


@pytest.fixture(scope="module")
def model():
    return small_cnn(32, 8, conv1_filters=8)


@pytest.fixture(scope="module")
def partition():
    return HybridPartition(reliable_filters={"conv1": (0, 1)})


class TestCostModel:
    def test_duplication_is_double(self, model, partition):
        cost = CostModel(model, (3, 32, 32), partition)
        assert cost.full_duplication_ops() == 2 * cost.native_ops()
        assert cost.full_duplication_ops(3) == 3 * cost.native_ops()

    def test_hybrid_cheaper_than_duplication(self, model, partition):
        cost = CostModel(model, (3, 32, 32), partition)
        assert cost.hybrid_ops() < cost.full_duplication_ops()
        assert 0.0 < cost.savings_vs_duplication() < 1.0

    def test_hybrid_costlier_than_native(self, model, partition):
        cost = CostModel(model, (3, 32, 32), partition)
        assert cost.hybrid_ops() > cost.native_ops()

    def test_qualifier_ops_positive(self, model, partition):
        cost = CostModel(model, (3, 32, 32), partition)
        assert cost.qualifier_ops() > 0

    def test_copies_validation(self, model, partition):
        with pytest.raises(ValueError):
            CostModel(model, (3, 32, 32), partition).full_duplication_ops(1)


class TestGuarantee:
    def test_protected_path_beats_unprotected(self, model, partition):
        guarantee = ReliabilityGuarantee(
            model, (3, 32, 32), partition, fault_probability=1e-6
        )
        assert (
            guarantee.protected_path_sdc()
            < guarantee.unprotected_sdc() / 1e3
        )
        assert guarantee.improvement_factor() > 1e3

    def test_tmr_partition_uses_tmr_formula(self, model):
        partition = HybridPartition(
            reliable_filters={"conv1": (0, 1)}, redundancy="tmr"
        )
        g_tmr = ReliabilityGuarantee(
            model, (3, 32, 32), partition, fault_probability=1e-5
        )
        g_dmr = ReliabilityGuarantee(
            model, (3, 32, 32), HybridPartition(
                reliable_filters={"conv1": (0, 1)},
            ),
            fault_probability=1e-5,
        )
        # TMR residual is ~3x the DMR residual at equal n (three
        # colliding pairs instead of one).
        assert g_tmr.protected_path_sdc() > g_dmr.protected_path_sdc()

    def test_availability_loss_small_for_rare_faults(self, model,
                                                     partition):
        guarantee = ReliabilityGuarantee(
            model, (3, 32, 32), partition, fault_probability=1e-8
        )
        assert guarantee.availability_loss() < 1e-6

    def test_summary_mentions_key_numbers(self, model, partition):
        text = ReliabilityGuarantee(
            model, (3, 32, 32), partition
        ).summary()
        assert "reliable ops" in text
        assert "improvement factor" in text

"""Randomized differential parity: scalar vs batched qualifier.

The batched engine's contract -- ``check_batch`` bitwise equal to per
image ``check()`` calls, for any batch composition -- asserted over
fuzzed inputs from :mod:`tests.support.fuzz` instead of hand-picked
examples.  Shapes, dtypes, batch sizes and degenerate content (empty
edge maps, constant images, single pixels) all vary per case; every
case is replayable from its id alone.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.qualifier import ShapeQualifier
from tests.support.fuzz import (
    assert_verdicts_bitwise_equal,
    differential_cases,
    random_feature_map_batch,
    random_image_batch,
)


def _random_qualifier(rng: np.random.Generator, engine: str
                      ) -> ShapeQualifier:
    """A qualifier with fuzzed construction parameters (kept within
    the template-generating envelope)."""
    shape = str(rng.choice(["octagon", "triangle", "square", "circle"]))
    word_length = int(rng.choice([16, 32]))
    return ShapeQualifier(
        shape=shape,
        word_length=word_length,
        alphabet_size=int(rng.choice([4, 8])),
        threshold=float(rng.uniform(1.0, 5.0)),
        redundant=bool(rng.random() < 0.5),
        n_samples=128,
        engine=engine,
    )


@pytest.mark.parametrize("rng", differential_cases(10))
def test_check_batch_matches_scalar_loop(rng):
    images = random_image_batch(rng)
    batched = _random_qualifier(rng, engine="batched")
    scalar = ShapeQualifier(
        shape=batched.shape,
        word_length=batched.encoder.word_length,
        alphabet_size=batched.encoder.alphabet_size,
        threshold=batched.threshold,
        redundant=batched.redundant,
        n_samples=batched.n_samples,
        engine="scalar",
    )
    got = batched.check_batch(images)
    want = [scalar.check(image) for image in images]
    assert len(got) == len(want) == len(images)
    for i, (g, w) in enumerate(zip(got, want)):
        assert_verdicts_bitwise_equal(
            g, w, context=f"image {i} of {images.shape}"
        )


@pytest.mark.parametrize("rng", differential_cases(6, root_seed=7202611))
def test_check_feature_map_batch_matches_scalar_loop(rng):
    feature_maps = random_feature_map_batch(rng)
    batched = _random_qualifier(rng, engine="batched")
    scalar = ShapeQualifier(
        shape=batched.shape,
        word_length=batched.encoder.word_length,
        alphabet_size=batched.encoder.alphabet_size,
        threshold=batched.threshold,
        redundant=batched.redundant,
        n_samples=batched.n_samples,
        engine="scalar",
    )
    got = batched.check_feature_map_batch(feature_maps)
    want = [scalar.check_feature_map(fm) for fm in feature_maps]
    assert len(got) == len(want) == len(feature_maps)
    for i, (g, w) in enumerate(zip(got, want)):
        assert_verdicts_bitwise_equal(
            g, w, context=f"map {i} of {feature_maps.shape}"
        )


@pytest.mark.parametrize("rng", differential_cases(4, root_seed=555001))
def test_auto_engine_matches_scalar_loop(rng):
    """The default policy must carry the same guarantee end users see:
    ``engine="auto"`` on a stock qualifier is the batched engine."""
    images = random_image_batch(rng)
    auto = ShapeQualifier(engine="auto", redundant=True)
    scalar = ShapeQualifier(engine="scalar", redundant=True)
    for i, (g, w) in enumerate(zip(
        auto.check_batch(images),
        [scalar.check(image) for image in images],
    )):
        assert_verdicts_bitwise_equal(g, w, context=f"image {i}")

"""Exhaustive classification-contract tests for ``classify_outcome``.

Complements ``tests/faults/test_campaign.py``'s spot checks with the
full branch matrix, the ``atol`` boundary (exactly equal vs within
tolerance vs outside), and a property-style sweep asserting the
classifier is *total*: every observable combination maps to an
:class:`Outcome`, with the single documented exception (a non-aborted
run must provide a value).
"""

from __future__ import annotations

import itertools
import math

import pytest

from repro.faults.campaign import Outcome, classify_outcome


class TestEveryBranch:
    """One test per reachable branch of the decision tree."""

    @pytest.mark.parametrize("errors", [0, 1, 17])
    @pytest.mark.parametrize("fault_fired", [False, True])
    @pytest.mark.parametrize("value", [None, 1.0, 2.0])
    def test_abort_dominates_everything(self, value, fault_fired, errors):
        outcome = classify_outcome(
            1.0, value, fault_fired=fault_fired,
            errors_detected=errors, aborted=True,
        )
        assert outcome is Outcome.DETECTED_ABORTED

    @pytest.mark.parametrize("errors", [0, 3])
    def test_no_fault_is_clean_regardless_of_detections(self, errors):
        # errors without a fired fault (e.g. a flaky comparator) still
        # classify as CLEAN: the fault model never activated.
        outcome = classify_outcome(
            1.0, 1.0, fault_fired=False,
            errors_detected=errors, aborted=False,
        )
        assert outcome is Outcome.CLEAN

    def test_correct_value_no_detection_is_masked(self):
        outcome = classify_outcome(
            1.0, 1.0, fault_fired=True, errors_detected=0, aborted=False
        )
        assert outcome is Outcome.MASKED

    @pytest.mark.parametrize("errors", [1, 2, 100])
    def test_correct_value_with_detection_is_recovered(self, errors):
        outcome = classify_outcome(
            1.0, 1.0, fault_fired=True,
            errors_detected=errors, aborted=False,
        )
        assert outcome is Outcome.DETECTED_RECOVERED

    @pytest.mark.parametrize("errors", [0, 1, 5])
    def test_wrong_value_is_silent_corruption(self, errors):
        """Wrong output escaping = SDC whether or not something was
        detected along the way."""
        outcome = classify_outcome(
            1.0, -3.5, fault_fired=True,
            errors_detected=errors, aborted=False,
        )
        assert outcome is Outcome.SILENT_CORRUPTION

    def test_non_aborted_run_requires_value(self):
        with pytest.raises(ValueError):
            classify_outcome(
                1.0, None, fault_fired=True,
                errors_detected=0, aborted=False,
            )


class TestAtolBoundary:
    """``correct`` means ``abs(value - golden) <= atol`` -- inclusive."""

    GOLDEN = 10.0

    def test_exactly_equal_with_zero_atol(self):
        outcome = classify_outcome(
            self.GOLDEN, 10.0, fault_fired=True,
            errors_detected=0, aborted=False, atol=0.0,
        )
        assert outcome is Outcome.MASKED

    def test_any_deviation_with_zero_atol_is_sdc(self):
        nudged = math.nextafter(self.GOLDEN, math.inf)
        outcome = classify_outcome(
            self.GOLDEN, nudged, fault_fired=True,
            errors_detected=0, aborted=False, atol=0.0,
        )
        assert outcome is Outcome.SILENT_CORRUPTION

    def test_exactly_on_the_tolerance_counts_as_correct(self):
        outcome = classify_outcome(
            self.GOLDEN, self.GOLDEN + 0.5, fault_fired=True,
            errors_detected=1, aborted=False, atol=0.5,
        )
        assert outcome is Outcome.DETECTED_RECOVERED

    def test_within_tolerance(self):
        outcome = classify_outcome(
            self.GOLDEN, self.GOLDEN + 0.25, fault_fired=True,
            errors_detected=0, aborted=False, atol=0.5,
        )
        assert outcome is Outcome.MASKED

    def test_just_outside_tolerance(self):
        outside = math.nextafter(self.GOLDEN + 0.5, math.inf)
        outcome = classify_outcome(
            self.GOLDEN, outside, fault_fired=True,
            errors_detected=0, aborted=False, atol=0.5,
        )
        assert outcome is Outcome.SILENT_CORRUPTION

    @pytest.mark.parametrize("value", [math.nan, math.inf, -math.inf])
    def test_non_finite_values_are_never_correct(self, value):
        outcome = classify_outcome(
            self.GOLDEN, value, fault_fired=True,
            errors_detected=0, aborted=False, atol=1e12,
        )
        assert outcome is Outcome.SILENT_CORRUPTION


class TestTotality:
    """Property-style sweep: classification never raises and always
    lands in the Outcome enum for every observable combination, the
    lone exception being the documented value-less non-abort."""

    GOLDENS = [0.0, 1.0, -2.5, 1e30, math.inf, math.nan]
    VALUES = [None, 0.0, 1.0, -2.5, 1e30, -math.inf, math.nan]
    ATOLS = [0.0, 1e-9, 0.5, 1e30]

    def test_every_combination_classifies(self):
        combos = itertools.product(
            self.GOLDENS, self.VALUES, [False, True],
            [0, 1, 7], [False, True], self.ATOLS,
        )
        checked = 0
        for golden, value, fired, errors, aborted, atol in combos:
            if value is None and not aborted:
                with pytest.raises(ValueError):
                    classify_outcome(
                        golden, value, fault_fired=fired,
                        errors_detected=errors, aborted=aborted,
                        atol=atol,
                    )
                continue
            outcome = classify_outcome(
                golden, value, fault_fired=fired,
                errors_detected=errors, aborted=aborted, atol=atol,
            )
            assert isinstance(outcome, Outcome)
            checked += 1
        # The sweep genuinely covered the grid (minus the error arm).
        assert checked > 1000

    def test_partition_is_consistent(self):
        """Classified outcome agrees with the observables that
        produced it -- e.g. only aborted runs map to
        DETECTED_ABORTED, only un-fired runs map to CLEAN."""
        for golden, value, fired, errors, aborted, atol in (
            itertools.product(
                [1.0, math.nan], [1.0, 2.0], [False, True],
                [0, 2], [False, True], [0.0, 0.5],
            )
        ):
            outcome = classify_outcome(
                golden, value, fault_fired=fired,
                errors_detected=errors, aborted=aborted, atol=atol,
            )
            if outcome is Outcome.DETECTED_ABORTED:
                assert aborted
            if outcome is Outcome.CLEAN:
                assert not fired and not aborted
            if outcome in (Outcome.MASKED, Outcome.DETECTED_RECOVERED):
                assert fired and not aborted
                assert abs(value - golden) <= atol

"""Bit flips, fault models, injectors."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.faults.bitflip import flip_bit32, flip_bit64, random_bitflip
from repro.faults.injector import (
    FaultyExecutionUnit,
    corrupt_tensor,
    flip_weight_bits,
)
from repro.faults.models import (
    IntermittentFault,
    PermanentFault,
    TransientFault,
)
from repro.nn import Conv2D


class TestBitflip:
    def test_sign_bit(self):
        assert flip_bit32(1.0, 31) == -1.0
        assert flip_bit64(2.5, 63) == -2.5

    def test_flip_changes_value(self):
        for bit in (0, 10, 23, 30):
            assert flip_bit32(1.5, bit) != 1.5

    def test_double_flip_is_identity(self):
        value = 3.14159
        for bit in (0, 5, 22, 27, 31):
            assert flip_bit32(flip_bit32(value, bit), bit) == np.float32(
                value
            )

    def test_bounds(self):
        with pytest.raises(ValueError):
            flip_bit32(1.0, 32)
        with pytest.raises(ValueError):
            flip_bit64(1.0, 64)

    def test_random_flip_respects_bit_range(self, rng):
        # Exponent-only flips of 1.0 never just tweak the mantissa.
        for _ in range(50):
            flipped = random_bitflip(1.0, rng, bit_range=(23, 31))
            assert flipped != 1.0
            # Mantissa of 1.0 is zero; exponent flip keeps it zero, so
            # result is a power of two (or subnormal edge).
            mantissa = np.float32(flipped).view(np.uint32) & 0x7FFFFF
            assert mantissa == 0

    def test_random_flip_validation(self, rng):
        with pytest.raises(ValueError):
            random_bitflip(1.0, rng, width=16)
        with pytest.raises(ValueError):
            random_bitflip(1.0, rng, bit_range=(8, 40))


@given(st.floats(-1e30, 1e30, allow_nan=False), st.integers(0, 31))
@settings(max_examples=100, deadline=None)
# Exponent flip whose intermediate word is a *signalling* NaN: the
# float64 round trip used to quiet it (set mantissa bit 22), so the
# second flip restored a different word.
@example(value=7.922816723663084e+28, bit=28)
def test_flip32_involution_property(value, bit):
    once = flip_bit32(value, bit)
    twice = flip_bit32(once, bit)
    assert twice == float(np.float32(value))


class TestTransient:
    def test_zero_probability_never_fires(self, rng):
        fault = TransientFault(0.0, rng)
        assert all(not fault.fires() for _ in range(100))

    def test_one_probability_always_fires(self, rng):
        fault = TransientFault(1.0, rng)
        assert all(fault.fires() for _ in range(100))

    def test_rate_approximates_probability(self):
        fault = TransientFault(0.3, np.random.default_rng(0))
        hits = sum(fault.fires() for _ in range(5000))
        assert 0.25 < hits / 5000 < 0.35

    def test_apply_counts_activations(self, rng):
        fault = TransientFault(1.0, rng)
        fault.apply(1.0)
        fault.apply(2.0)
        assert fault.activations == 2

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            TransientFault(1.5)


class TestIntermittent:
    def test_burst_structure(self):
        fault = IntermittentFault(
            burst_start=0.05, burst_end=0.3,
            rng=np.random.default_rng(3),
        )
        fires = [fault.fires() for _ in range(2000)]
        # Bursty: consecutive-fire pairs must far exceed the
        # independent-fault expectation for the same rate.
        rate = sum(fires) / len(fires)
        pairs = sum(
            1 for a, b in zip(fires, fires[1:]) if a and b
        )
        expected_pairs_independent = rate * rate * len(fires)
        assert pairs > 2 * expected_pairs_independent

    def test_validation(self):
        with pytest.raises(ValueError):
            IntermittentFault(burst_start=2.0, burst_end=0.5)


class TestPermanent:
    def test_always_fires_same_corruption(self, rng):
        fault = PermanentFault(bit=28, rng=rng)
        a = fault.apply(7.0)
        b = fault.apply(7.0)
        assert a == b != 7.0

    def test_bit_validation(self):
        with pytest.raises(ValueError):
            PermanentFault(bit=33)


class TestFaultyUnit:
    def test_targets_multiply_only(self, rng):
        unit = FaultyExecutionUnit(
            PermanentFault(bit=30, rng=rng), targets="multiply"
        )
        assert unit.multiply(2.0, 3.0) != 6.0
        assert unit.add(2.0, 3.0) == 5.0

    def test_targets_add_only(self, rng):
        unit = FaultyExecutionUnit(
            PermanentFault(bit=30, rng=rng), targets="add"
        )
        assert unit.multiply(2.0, 3.0) == 6.0
        assert unit.add(2.0, 3.0) != 5.0

    def test_invalid_target(self, rng):
        with pytest.raises(ValueError):
            FaultyExecutionUnit(TransientFault(0.1, rng), targets="sub")


class TestTensorCorruption:
    def test_corrupt_returns_copy_and_flips(self, rng):
        tensor = np.ones((4, 4), dtype=np.float32)
        corrupted, flips = corrupt_tensor(tensor, 3, rng)
        assert len(flips) == 3
        assert (tensor == 1.0).all()          # original untouched
        assert (corrupted != 1.0).sum() >= 1  # flips may collide

    def test_flip_positions_reported(self, rng):
        tensor = np.zeros((2, 3), dtype=np.float32)
        corrupted, flips = corrupt_tensor(tensor, 1, rng)
        (position, bit) = flips[0]
        assert corrupted[position] != 0.0 or bit < 23  # 0.0 mantissa flips stay tiny but nonzero
        assert 0 <= bit < 32

    def test_zero_flips(self, rng):
        tensor = np.ones(5, dtype=np.float32)
        corrupted, flips = corrupt_tensor(tensor, 0, rng)
        np.testing.assert_array_equal(corrupted, tensor)
        assert flips == []

    def test_weight_injection_in_place(self, rng):
        conv = Conv2D(1, 2, 3, rng=rng)
        before = conv.weight.value.copy()
        flips = flip_weight_bits(conv, 4, rng)
        assert len(flips) == 4
        assert not np.array_equal(conv.weight.value, before)

    def test_negative_flips_rejected(self, rng):
        with pytest.raises(ValueError):
            corrupt_tensor(np.ones(3, dtype=np.float32), -1, rng)


class TestArrayBitflip:
    """Array flip primitives must match the scalar ones bit for bit."""

    @given(
        st.lists(
            st.floats(width=32, allow_nan=True, allow_infinity=True),
            min_size=1, max_size=16,
        ),
        st.integers(0, 31),
    )
    @settings(max_examples=50, deadline=None)
    def test_matches_scalar_flip(self, values, bit):
        from repro.faults.bitflip import flip_bit32_array

        array = flip_bit32_array(np.array(values, dtype=np.float64), bit)
        scalar = [flip_bit32(v, bit) for v in values]
        assert array.tobytes() == np.array(scalar, dtype=np.float64).tobytes()

    def test_per_element_bits(self):
        from repro.faults.bitflip import flip_bit32_array

        out = flip_bit32_array(
            np.array([1.0, 1.0], dtype=np.float64), np.array([31, 30])
        )
        assert out[0] == flip_bit32(1.0, 31)
        assert out[1] == flip_bit32(1.0, 30)

    def test_involution_through_snan_words(self):
        from repro.faults.bitflip import flip_bit32_array

        values = np.array([np.inf, 1.5, np.nan], dtype=np.float64)
        twice = flip_bit32_array(flip_bit32_array(values, 22), 22)
        expected = values.astype(np.float32).astype(np.float64)
        assert twice.tobytes() == expected.tobytes()

    def test_bit_out_of_range(self):
        from repro.faults.bitflip import flip_bit32_array

        with pytest.raises(ValueError):
            flip_bit32_array(np.array([1.0]), 32)


class TestArrayFaultApplication:
    def test_permanent_matches_scalar_elementwise(self):
        fault = PermanentFault(bit=30)
        values = np.array([[1.0, -2.5], [0.0, 3e7]], dtype=np.float64)
        out = fault.apply_array(values)
        reference = PermanentFault(bit=30)
        expected = np.array(
            [[reference.apply(float(v)) for v in row] for row in values]
        )
        assert out.tobytes() == expected.tobytes()
        assert fault.activations == values.size
        assert fault.deterministic

    def test_transient_array_rate_and_accounting(self):
        fault = TransientFault(0.25, np.random.default_rng(0))
        values = np.full(4000, 1.0, dtype=np.float64)
        out = fault.apply_array(values)
        # Every fired element flips exactly one bit of 1.0, which
        # always changes the carried word.
        changed = int((out != values).sum())
        assert changed == fault.activations
        # ~25% of elements hit.
        assert 800 <= fault.activations <= 1200
        assert not fault.deterministic

    def test_transient_zero_probability_is_identity(self):
        fault = TransientFault(0.0, np.random.default_rng(0))
        values = np.linspace(-1, 1, 10)
        out = fault.apply_array(values)
        assert out.tobytes() == values.astype(np.float64).tobytes()
        assert fault.activations == 0

    def test_base_fallback_preserves_sequential_state(self):
        # IntermittentFault has no vectorised override: the default
        # walks elements in C order, preserving the Gilbert chain.
        rng = np.random.default_rng(7)
        fault = IntermittentFault(0.3, 0.4, rng)
        reference = IntermittentFault(0.3, 0.4, np.random.default_rng(7))
        values = np.linspace(1.0, 2.0, 32)
        out = fault.apply_array(values)
        expected = np.array([reference.apply(float(v)) for v in values])
        assert out.tobytes() == expected.tobytes()


class TestArrayFaultyUnit:
    def test_faulty_unit_exposes_array_form(self):
        unit = FaultyExecutionUnit(PermanentFault(bit=5))
        array_unit = unit.as_array_unit()
        assert array_unit is not None
        assert array_unit.deterministic

    def test_targets_respected(self):
        unit = FaultyExecutionUnit(
            PermanentFault(bit=31), targets="multiply"
        ).as_array_unit()
        a = np.array([2.0]); b = np.array([3.0])
        assert unit.multiply(a, b)[0] == -6.0   # corrupted
        assert unit.add(a, b)[0] == 5.0          # untouched

    def test_transient_array_unit_not_deterministic(self):
        unit = FaultyExecutionUnit(
            TransientFault(0.5, np.random.default_rng(0))
        ).as_array_unit()
        assert not unit.deterministic

    def test_base_without_array_form_gives_none(self):
        from repro.reliable.execution_unit import PerfectExecutionUnit

        class Odd(PerfectExecutionUnit):
            def add(self, a, b):
                return a + b + 1e-9

        unit = FaultyExecutionUnit(PermanentFault(bit=5), Odd())
        assert unit.as_array_unit() is None

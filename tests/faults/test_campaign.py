"""Fault-injection campaigns and outcome classification."""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults.campaign import (
    CampaignResult,
    Outcome,
    classify_outcome,
    run_operator_campaign,
)
from repro.faults.models import PermanentFault, TransientFault


class TestClassification:
    def test_clean(self):
        outcome = classify_outcome(
            1.0, 1.0, fault_fired=False, errors_detected=0, aborted=False
        )
        assert outcome is Outcome.CLEAN

    def test_masked(self):
        outcome = classify_outcome(
            1.0, 1.0, fault_fired=True, errors_detected=0, aborted=False
        )
        assert outcome is Outcome.MASKED

    def test_detected_recovered(self):
        outcome = classify_outcome(
            1.0, 1.0, fault_fired=True, errors_detected=3, aborted=False
        )
        assert outcome is Outcome.DETECTED_RECOVERED

    def test_aborted(self):
        outcome = classify_outcome(
            1.0, None, fault_fired=True, errors_detected=5, aborted=True
        )
        assert outcome is Outcome.DETECTED_ABORTED

    def test_silent_corruption(self):
        outcome = classify_outcome(
            1.0, 2.0, fault_fired=True, errors_detected=0, aborted=False
        )
        assert outcome is Outcome.SILENT_CORRUPTION

    def test_wrong_value_despite_detection_is_sdc(self):
        outcome = classify_outcome(
            1.0, 2.0, fault_fired=True, errors_detected=1, aborted=False
        )
        assert outcome is Outcome.SILENT_CORRUPTION

    def test_missing_value_requires_abort(self):
        with pytest.raises(ValueError):
            classify_outcome(
                1.0, None, fault_fired=True,
                errors_detected=0, aborted=False,
            )


class TestCampaignResult:
    def test_rates(self):
        result = CampaignResult()
        result.record(Outcome.CLEAN)
        result.record(Outcome.SILENT_CORRUPTION)
        result.record(Outcome.DETECTED_RECOVERED)
        assert result.runs == 3
        assert result.silent_corruption_rate == 0.5
        assert result.detection_coverage == 0.5

    def test_no_faults_full_coverage(self):
        result = CampaignResult()
        result.record(Outcome.CLEAN)
        assert result.detection_coverage == 1.0
        assert result.silent_corruption_rate == 0.0

    def test_summary_mentions_counts(self):
        result = CampaignResult()
        result.record(Outcome.MASKED)
        text = result.summary()
        assert "masked=1" in text and "coverage" in text


class TestOperatorCampaigns:
    def test_plain_is_fully_vulnerable(self):
        result = run_operator_campaign(
            lambda rng: TransientFault(0.01, rng),
            operator_kind="plain", runs=60, seed=1,
        )
        faulted = result.runs - result.counts[Outcome.CLEAN]
        assert faulted > 0
        assert result.counts[Outcome.SILENT_CORRUPTION] == faulted

    def test_dmr_full_coverage_on_transients(self):
        result = run_operator_campaign(
            lambda rng: TransientFault(0.01, rng),
            operator_kind="dmr", runs=60, seed=1,
        )
        assert result.counts[Outcome.SILENT_CORRUPTION] == 0
        assert result.detection_coverage == 1.0
        assert result.counts[Outcome.DETECTED_RECOVERED] > 0

    def test_tmr_masks_transients(self):
        result = run_operator_campaign(
            lambda rng: TransientFault(0.01, rng),
            operator_kind="tmr", runs=60, seed=1,
        )
        assert result.counts[Outcome.SILENT_CORRUPTION] == 0
        assert result.counts[Outcome.MASKED] > 0

    def test_permanent_faults_defeat_temporal_redundancy(self):
        result = run_operator_campaign(
            lambda rng: PermanentFault(bit=28, rng=rng),
            operator_kind="dmr", runs=25, seed=2,
        )
        # Common-mode: every run silently corrupted.
        assert result.counts[Outcome.SILENT_CORRUPTION] == 25

    def test_campaign_is_seeded(self):
        a = run_operator_campaign(
            lambda rng: TransientFault(0.01, rng),
            operator_kind="dmr", runs=40, seed=7,
        )
        b = run_operator_campaign(
            lambda rng: TransientFault(0.01, rng),
            operator_kind="dmr", runs=40, seed=7,
        )
        assert a.counts == b.counts
        assert a.errors_detected == b.errors_detected

"""The engine's headline guarantee: bitwise worker-count invariance.

Same spec + seed run serial, with 2 workers and with 4 workers must
produce identical ``CampaignReport`` aggregates (fingerprints digest
every count, confusion pair and metric sum) and identical sorted JSONL
trial records; a resumed run must equal an uninterrupted one.
"""

from __future__ import annotations

import pytest

from repro.campaigns import (
    CampaignSpec,
    CampaignStore,
    FaultSpec,
    run_campaign,
)


def spec_for(tmp: str = "determinism") -> CampaignSpec:
    return CampaignSpec(
        name=tmp,
        target="reliable_conv",
        fault=FaultSpec(kind="transient", params={"probability": 0.02}),
        trials=24,
        seed=13,
        shard_size=5,
        grid={"operator_kind": ("plain", "dmr")},
        target_params={"vector_length": 8},
    )


def sorted_jsonl(store: CampaignStore) -> list[str]:
    return [record.to_json() for record in store.all_records()]


class TestWorkerCountInvariance:
    @pytest.fixture(scope="class")
    def runs(self, tmp_path_factory):
        results = {}
        for workers in (1, 2, 4):
            directory = tmp_path_factory.mktemp(f"workers-{workers}")
            spec = spec_for()
            report = run_campaign(
                spec, workers=workers, artifacts_dir=directory
            )
            results[workers] = (
                report,
                sorted_jsonl(CampaignStore(directory, spec)),
            )
        return results

    def test_aggregate_reports_bitwise_identical(self, runs):
        fingerprints = {
            report.fingerprint() for report, _ in runs.values()
        }
        assert len(fingerprints) == 1

    def test_deterministic_dicts_equal(self, runs):
        dicts = [
            report.deterministic_dict() for report, _ in runs.values()
        ]
        assert dicts[0] == dicts[1] == dicts[2]

    def test_sorted_jsonl_records_identical(self, runs):
        lines = [jsonl for _, jsonl in runs.values()]
        assert lines[0] == lines[1] == lines[2]
        assert len(lines[0]) == spec_for().total_trials

    def test_float_metric_sums_bitwise_equal(self, runs):
        reports = [report for report, _ in runs.values()]
        for index in reports[0].cells:
            sums = [r.cell(index).metric_sums for r in reports]
            assert sums[0] == sums[1] == sums[2]


class TestResume:
    def test_resume_after_interrupt_equals_uninterrupted(self, tmp_path):
        spec = spec_for("resume")
        interrupted = tmp_path / "interrupted"
        straight = tmp_path / "straight"

        # "Interrupt" after 3 of 10 shards, then resume to completion.
        partial = run_campaign(
            spec, artifacts_dir=interrupted, shard_limit=3
        )
        assert not partial.complete
        resumed = run_campaign(spec, artifacts_dir=interrupted)
        assert resumed.complete and resumed.resumed_shards == 3

        uninterrupted = run_campaign(spec, artifacts_dir=straight)
        assert resumed.fingerprint() == uninterrupted.fingerprint()
        assert sorted_jsonl(
            CampaignStore(interrupted, spec)
        ) == sorted_jsonl(CampaignStore(straight, spec))

    def test_resume_with_different_worker_count(self, tmp_path):
        spec = spec_for("resume-workers")
        directory = tmp_path / "art"
        run_campaign(
            spec, workers=2, artifacts_dir=directory, shard_limit=4
        )
        resumed = run_campaign(spec, workers=4, artifacts_dir=directory)
        serial = run_campaign(spec)
        assert resumed.fingerprint() == serial.fingerprint()

"""CampaignSpec / FaultSpec: validation, grids, round-tripping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.campaigns import (
    CampaignSpec,
    FaultSpec,
    iter_shards,
    trial_rng,
)
from repro.faults.models import (
    IntermittentFault,
    PermanentFault,
    TransientFault,
)


class TestFaultSpec:
    def test_builds_each_kind(self):
        rng = np.random.default_rng(0)
        assert isinstance(
            FaultSpec(kind="transient").build(rng), TransientFault
        )
        assert isinstance(
            FaultSpec(kind="intermittent").build(rng), IntermittentFault
        )
        assert isinstance(
            FaultSpec(kind="permanent", params={"bit": 5}).build(rng),
            PermanentFault,
        )

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="cosmic")

    def test_unknown_param_rejected(self):
        with pytest.raises(ValueError, match="does not accept"):
            FaultSpec(kind="transient", params={"bit": 3})

    def test_bad_value_surfaces_at_spec_time(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="transient", params={"probability": 1.5})

    def test_build_requires_explicit_rng(self):
        with pytest.raises(ValueError, match="explicit Generator"):
            FaultSpec(kind="transient").build(None)

    def test_override_and_roundtrip(self):
        spec = FaultSpec(kind="transient", params={"probability": 1e-3})
        hot = spec.override(probability=0.5)
        assert hot.params["probability"] == 0.5
        assert spec.params["probability"] == 1e-3
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_bit_range_normalised(self):
        spec = FaultSpec(
            kind="transient", params={"bit_range": [23, 31]}
        )
        assert spec.params["bit_range"] == (23, 31)
        assert FaultSpec.from_dict(spec.to_dict()) == spec


class TestCampaignSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            CampaignSpec(trials=0)
        with pytest.raises(ValueError):
            CampaignSpec(shard_size=0)
        with pytest.raises(ValueError):
            CampaignSpec(atol=-1.0)
        with pytest.raises(ValueError):
            CampaignSpec(target="")
        with pytest.raises(ValueError):
            CampaignSpec(grid={"axis": ()})
        with pytest.raises(TypeError):
            CampaignSpec(fault={"kind": "transient"})

    def test_grid_cells_enumerate_sorted_axis_product(self):
        spec = CampaignSpec(
            trials=5,
            grid={
                "operator_kind": ("plain", "dmr"),
                "fault.probability": (1e-3, 1e-2),
            },
        )
        cells = spec.cells()
        assert spec.n_cells == 4 and len(cells) == 4
        # "fault.probability" sorts first -> probability-major order.
        assert [c.overrides for c in cells] == [
            {"fault.probability": 1e-3, "operator_kind": "plain"},
            {"fault.probability": 1e-3, "operator_kind": "dmr"},
            {"fault.probability": 1e-2, "operator_kind": "plain"},
            {"fault.probability": 1e-2, "operator_kind": "dmr"},
        ]
        assert cells[2].fault.params["probability"] == 1e-2
        assert cells[1].params["operator_kind"] == "dmr"
        assert spec.total_trials == 20

    def test_invalid_fault_axis_value_rejected_eagerly(self):
        with pytest.raises(ValueError):
            CampaignSpec(grid={"fault.probability": (0.5, 2.0)})

    def test_roundtrip_and_hash_stability(self):
        spec = CampaignSpec(
            name="rt",
            target="reliable_conv",
            fault=FaultSpec(kind="permanent", params={"bit": 28}),
            trials=7,
            seed=11,
            grid={"operator_kind": ("dmr", "tmr")},
            target_params={"vector_length": 16},
            shard_size=3,
        )
        clone = CampaignSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.content_hash() == spec.content_hash()
        # JSON round-trip (lists for tuples) is equally lossless.
        import json

        jsoned = CampaignSpec.from_dict(
            json.loads(json.dumps(spec.to_dict()))
        )
        assert jsoned == spec

    def test_hash_changes_with_content(self):
        base = CampaignSpec(trials=10)
        assert (
            base.content_hash()
            != CampaignSpec(trials=11).content_hash()
        )
        assert (
            base.content_hash()
            != CampaignSpec(trials=10, seed=1).content_hash()
        )

    def test_shard_enumeration_covers_all_trials(self):
        spec = CampaignSpec(
            trials=10, shard_size=4, grid={"operator_kind": ("a", "b")}
        )
        shards = iter_shards(spec)
        assert [s.count for s in shards] == [4, 4, 2, 4, 4, 2]
        assert [s.index for s in shards] == list(range(6))
        covered = {
            (s.cell, t)
            for s in shards
            for t in range(s.start, s.start + s.count)
        }
        assert len(covered) == spec.total_trials


class TestSeeding:
    def test_stream_addressed_by_cell_and_trial_only(self):
        a = trial_rng(42, cell_index=3, trial_index=7).random(4)
        b = trial_rng(42, cell_index=3, trial_index=7).random(4)
        assert (a == b).all()

    def test_neighbouring_trials_independent(self):
        a = trial_rng(42, 0, 0).random(4)
        b = trial_rng(42, 0, 1).random(4)
        c = trial_rng(42, 1, 0).random(4)
        assert not (a == b).all()
        assert not (a == c).all()

    def test_matches_seedsequence_spawn_tree(self):
        """Direct addressing equals the documented spawn-tree walk."""
        spawned = (
            np.random.SeedSequence(9).spawn(4)[3].spawn(8)[7]
        )
        direct = np.random.SeedSequence(9, spawn_key=(3, 7))
        assert (
            spawned.generate_state(4).tolist()
            == direct.generate_state(4).tolist()
        )

    def test_negative_indices_rejected(self):
        with pytest.raises(ValueError):
            trial_rng(0, -1, 0)

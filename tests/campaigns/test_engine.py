"""Engine behaviour: targets, adapters, artifacts, error paths."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import CAMPAIGN_TARGETS
from repro.campaigns import (
    CampaignSpec,
    CampaignStore,
    FaultSpec,
    SpecMismatchError,
    TrialRecord,
    run_campaign,
)
from repro.faults.campaign import CampaignResult, Outcome
from repro.faults.models import PermanentFault


def small_spec(**overrides) -> CampaignSpec:
    defaults = dict(
        name="engine-test",
        target="reliable_conv",
        fault=FaultSpec(kind="transient", params={"probability": 0.02}),
        trials=30,
        seed=5,
        shard_size=8,
        target_params={"vector_length": 8, "operator_kind": "dmr"},
    )
    defaults.update(overrides)
    return CampaignSpec(**defaults)


class TestRegistry:
    def test_builtin_targets_registered(self):
        for name in (
            "reliable_conv", "baseline", "pipeline", "checkpoint_segment"
        ):
            assert name in CAMPAIGN_TARGETS

    def test_unknown_target_fails_with_listing(self):
        spec = small_spec(target="warp_core")
        with pytest.raises(KeyError, match="reliable_conv"):
            run_campaign(spec)


class TestSerialRun:
    def test_counts_and_rates(self):
        report = run_campaign(small_spec())
        assert report.complete and report.trials == 30
        assert sum(report.counts.values()) == 30
        # DMR detects-and-recovers transients: no silent corruption.
        assert report.counts[Outcome.SILENT_CORRUPTION.value] == 0
        assert report.detection_coverage == 1.0

    def test_baseline_target_has_no_detection(self):
        report = run_campaign(
            small_spec(
                target="baseline",
                fault=FaultSpec(
                    kind="transient", params={"probability": 0.05}
                ),
                target_params={"vector_length": 8},
            )
        )
        counts = report.counts
        assert counts[Outcome.DETECTED_RECOVERED.value] == 0
        assert counts[Outcome.DETECTED_ABORTED.value] == 0
        assert counts[Outcome.SILENT_CORRUPTION.value] > 0

    def test_permanent_fault_defeats_dmr(self):
        report = run_campaign(
            small_spec(
                fault=FaultSpec(kind="permanent", params={"bit": 28}),
                trials=10,
            )
        )
        assert (
            report.counts[Outcome.SILENT_CORRUPTION.value] == 10
        )

    def test_legacy_adapter(self):
        report = run_campaign(small_spec())
        legacy = report.to_campaign_result()
        assert isinstance(legacy, CampaignResult)
        assert legacy.runs == 30
        assert legacy.detection_coverage == report.detection_coverage
        assert "coverage" in legacy.summary()

    def test_fault_factory_hook_is_serial_only(self):
        spec = small_spec()
        factory = lambda rng: PermanentFault(bit=28, rng=rng)  # noqa: E731
        report = run_campaign(spec, fault_factory=factory)
        assert report.counts[Outcome.SILENT_CORRUPTION.value] == 30
        with pytest.raises(ValueError, match="serial"):
            run_campaign(spec, fault_factory=factory, workers=2)

    def test_keep_records_sorted(self):
        report = run_campaign(
            small_spec(grid={"operator_kind": ("plain", "dmr")}),
            keep_records=True,
        )
        keys = [r.sort_key for r in report.records]
        assert keys == sorted(keys)
        assert len(report.records) == 60

    def test_confusion_matrix_accumulates(self):
        report = run_campaign(small_spec())
        cell = report.cell(0)
        assert sum(cell.confusion.values()) == cell.trials
        for (expected, observed) in cell.confusion:
            assert expected == "exact"
            assert observed in ("exact", "deviant", "abort")

    def test_workers_validation(self):
        with pytest.raises(ValueError):
            run_campaign(small_spec(), workers=0)


class TestArtifacts:
    def test_partial_then_resume(self, tmp_path):
        spec = small_spec()
        partial = run_campaign(
            spec, artifacts_dir=tmp_path, shard_limit=2
        )
        assert not partial.complete
        assert partial.trials == 16
        resumed = run_campaign(spec, artifacts_dir=tmp_path)
        assert resumed.complete
        assert resumed.resumed_shards == 2
        fresh = run_campaign(spec)
        assert resumed.fingerprint() == fresh.fingerprint()

    def test_completed_run_is_all_cache(self, tmp_path):
        spec = small_spec()
        run_campaign(spec, artifacts_dir=tmp_path)
        again = run_campaign(spec, artifacts_dir=tmp_path)
        assert again.complete
        assert again.resumed_shards == 4  # ceil(30 / 8)

    def test_spec_mismatch_refused_then_overwritten(self, tmp_path):
        run_campaign(small_spec(), artifacts_dir=tmp_path)
        other = small_spec(seed=99)
        with pytest.raises(SpecMismatchError):
            run_campaign(other, artifacts_dir=tmp_path)
        report = run_campaign(
            other, artifacts_dir=tmp_path, overwrite=True
        )
        assert report.complete and report.resumed_shards == 0

    def test_orphaned_shards_without_manifest_refused(self, tmp_path):
        """Shard files whose spec.json is gone have unknowable
        provenance; adopting them would merge foreign trials."""
        spec = small_spec()
        run_campaign(spec, artifacts_dir=tmp_path)
        (tmp_path / "spec.json").unlink()
        with pytest.raises(SpecMismatchError, match="no ?spec.json"):
            run_campaign(spec, artifacts_dir=tmp_path)
        report = run_campaign(
            spec, artifacts_dir=tmp_path, overwrite=True
        )
        assert report.complete and report.resumed_shards == 0

    def test_jsonl_roundtrip(self, tmp_path):
        spec = small_spec(trials=9, shard_size=4)
        run_campaign(spec, artifacts_dir=tmp_path)
        store = CampaignStore(tmp_path, spec)
        records = store.all_records()
        assert len(records) == 9
        assert all(isinstance(r, TrialRecord) for r in records)
        line = records[0].to_json()
        assert TrialRecord.from_json(line) == records[0]

    def test_report_json_written_on_completion(self, tmp_path):
        spec = small_spec(trials=8, shard_size=8)
        report = run_campaign(spec, artifacts_dir=tmp_path)
        loaded = CampaignStore(tmp_path, spec).load_report()
        assert loaded.fingerprint() == report.fingerprint()


class TestReportSerialisation:
    def test_report_roundtrip(self):
        from repro.campaigns import CampaignReport

        report = run_campaign(
            small_spec(grid={"operator_kind": ("plain", "dmr")})
        )
        clone = CampaignReport.from_dict(report.to_dict())
        assert clone.fingerprint() == report.fingerprint()
        assert clone.counts == report.counts

    def test_to_text_mentions_cells_and_fingerprint(self):
        report = run_campaign(small_spec())
        text = report.to_text()
        assert "fingerprint" in text
        assert "coverage" in text


class TestDefaultRngIndependence:
    """The latent default-sharing bug: two fault models built without
    an explicit rng must not replay each other's stream."""

    def test_default_models_do_not_share_streams(self):
        from repro.faults.models import TransientFault

        a = TransientFault(0.5)
        b = TransientFault(0.5)
        assert a.rng is not b.rng
        # 64 draws colliding by chance ~ 2^-4096: a deterministic
        # shared stream is the only way these could be equal.
        assert not np.array_equal(a.rng.random(64), b.rng.random(64))

    def test_explicit_rng_still_reproducible(self):
        from repro.faults.models import TransientFault

        a = TransientFault(0.5, np.random.default_rng(3))
        b = TransientFault(0.5, np.random.default_rng(3))
        assert np.array_equal(a.rng.random(8), b.rng.random(8))


class TestReliableExecutionEngineParam:
    """Cells select the reliable-execution engine via target params."""

    def test_vectorized_cell_detects_and_recovers(self):
        report = run_campaign(
            small_spec(
                target_params={
                    "vector_length": 8,
                    "operator_kind": "dmr",
                    "engine": "vectorized",
                },
            )
        )
        assert report.complete and report.trials == 30
        assert report.counts[Outcome.SILENT_CORRUPTION.value] == 0
        assert report.detection_coverage == 1.0

    def test_default_engine_keeps_scalar_fault_stream(self):
        """engine defaults to "auto", which resolves to the scalar
        per-operation path for fault-injected trials -- so existing
        campaign results stay bitwise stable."""
        baseline = run_campaign(small_spec(), keep_records=True)
        explicit = run_campaign(
            small_spec(
                target_params={
                    "vector_length": 8,
                    "operator_kind": "dmr",
                    "engine": "scalar",
                },
            ),
            keep_records=True,
        )
        assert [r.to_dict() for r in baseline.records] == [
            r.to_dict() for r in explicit.records
        ]

    def test_unknown_engine_param_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            run_campaign(
                small_spec(
                    trials=1,
                    target_params={
                        "vector_length": 8,
                        "operator_kind": "dmr",
                        "engine": "warp-drive",
                    },
                )
            )

    def test_pipeline_target_accepts_engine_param(self):
        spec = CampaignSpec(
            name="pipeline-engine-test",
            target="pipeline",
            fault=FaultSpec(kind="transient", params={"probability": 0.0}),
            trials=1,
            seed=3,
            target_params={"input_size": 48, "engine": "vectorized"},
        )
        report = run_campaign(spec)
        assert report.complete and report.trials == 1

"""Hybrid interchange format: schema, export, validation, rebuild."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import HybridPartition, ShapeQualifier
from repro.data import render_sign
from repro.hybridir import (
    HybridGraph,
    LayerNode,
    QualifierSpec,
    ReliabilityAnnotation,
    ValidationError,
    build_hybrid,
    build_model,
    export_hybrid,
    load_hybrid,
    save_hybrid,
    validate_graph,
)
from repro.models import alexnet_scaled, small_cnn
from repro.vision.filters import sobel_axis_stack


@pytest.fixture(scope="module")
def live_setup():
    model = small_cnn(32, 8, conv1_filters=4)
    conv1 = model.layer("conv1")
    conv1.set_filter(0, sobel_axis_stack("x", conv1.kernel_size, 3))
    conv1.set_filter(1, sobel_axis_stack("y", conv1.kernel_size, 3))
    partition = HybridPartition(reliable_filters={"conv1": (0, 1)})
    qualifier = ShapeQualifier(threshold=2.5)
    return model, partition, qualifier


@pytest.fixture(scope="module")
def graph(live_setup):
    model, partition, qualifier = live_setup
    return export_hybrid(model, partition, qualifier, 0, (3, 32, 32))


class TestExport:
    def test_topology_captured(self, graph, live_setup):
        model, _, _ = live_setup
        assert graph.layer_names() == [layer.name for layer in model]
        conv_node = graph.layers[0]
        assert conv_node.op == "conv2d"
        assert conv_node.attrs["out_channels"] == 4

    def test_reliability_annotation_captured(self, graph):
        annotation = graph.reliability
        assert annotation.reliable_filters == {"conv1": [0, 1]}
        assert annotation.redundancy == "dmr"
        assert annotation.qualifier.threshold == 2.5
        assert annotation.qualifier.shape == "octagon"

    def test_json_round_trip(self, graph):
        data = json.loads(json.dumps(graph.to_dict()))
        rebuilt = HybridGraph.from_dict(data)
        assert rebuilt.to_dict() == graph.to_dict()

    def test_schema_version_enforced(self, graph):
        data = graph.to_dict()
        data["schema_version"] = 999
        with pytest.raises(ValueError):
            HybridGraph.from_dict(data)


class TestValidation:
    def test_valid_graph_passes(self, graph):
        validate_graph(graph)

    def _mutate(self, graph, fn):
        data = graph.to_dict()
        fn(data)
        return HybridGraph.from_dict(data)

    def test_unknown_op_rejected(self, graph):
        bad = self._mutate(
            graph, lambda d: d["layers"][0].update({"op": "conv9d"})
        )
        with pytest.raises(ValidationError, match="unknown op"):
            validate_graph(bad)

    def test_missing_attr_rejected(self, graph):
        bad = self._mutate(
            graph,
            lambda d: d["layers"][0]["attrs"].pop("stride"),
        )
        with pytest.raises(ValidationError, match="missing attrs"):
            validate_graph(bad)

    def test_channel_mismatch_rejected(self, graph):
        bad = self._mutate(
            graph,
            lambda d: d["layers"][0]["attrs"].update(
                {"in_channels": 5}
            ),
        )
        with pytest.raises(ValidationError, match="channels"):
            validate_graph(bad)

    def test_unknown_reliable_layer_rejected(self, graph):
        def mutate(d):
            d["reliability"]["reliable_filters"] = {"ghost": [0]}
            d["reliability"]["bifurcation_layer"] = "ghost"

        with pytest.raises(ValidationError, match="unknown layer"):
            validate_graph(self._mutate(graph, mutate))

    def test_non_conv_reliable_layer_rejected(self, graph):
        def mutate(d):
            d["reliability"]["reliable_filters"] = {"relu1": [0]}
            d["reliability"]["bifurcation_layer"] = "relu1"

        with pytest.raises(ValidationError, match="only conv2d"):
            validate_graph(self._mutate(graph, mutate))

    def test_filter_out_of_range_rejected(self, graph):
        def mutate(d):
            d["reliability"]["reliable_filters"]["conv1"] = [0, 7]

        with pytest.raises(ValidationError, match="outside"):
            validate_graph(self._mutate(graph, mutate))

    def test_safety_class_out_of_range(self, graph):
        def mutate(d):
            d["reliability"]["safety_class"] = 12

        with pytest.raises(ValidationError, match="safety class"):
            validate_graph(self._mutate(graph, mutate))

    def test_bad_qualifier_params_rejected(self, graph):
        def mutate(d):
            d["reliability"]["qualifier"]["word_length"] = 4096

        with pytest.raises(ValidationError, match="word_length"):
            validate_graph(self._mutate(graph, mutate))

    def test_duplicate_names_rejected(self, graph):
        def mutate(d):
            d["layers"][1]["name"] = d["layers"][0]["name"]

        with pytest.raises(ValidationError, match="duplicate"):
            validate_graph(self._mutate(graph, mutate))


class TestRebuild:
    def test_build_model_matches_topology(self, graph, live_setup):
        model, _, _ = live_setup
        rebuilt = build_model(graph)
        assert rebuilt.output_shape((3, 32, 32)) == (8,)
        assert [l.name for l in rebuilt] == [l.name for l in model]

    def test_build_hybrid_runs(self, graph):
        hybrid = build_hybrid(graph)
        result = hybrid.infer(
            render_sign(0, size=32).astype(np.float32)
        )
        assert result.decision is not None

    def test_save_load_preserves_weights_and_behaviour(
        self, graph, live_setup, tmp_path
    ):
        model, _, _ = live_setup
        base = tmp_path / "net"
        save_hybrid(graph, model, base)
        assert (tmp_path / "net.json").exists()
        assert (tmp_path / "net.npz").exists()
        hybrid = load_hybrid(base)
        x = render_sign(3, size=32).astype(np.float32)
        np.testing.assert_allclose(
            hybrid.model.forward(x[None]),
            model.forward(x[None]),
            rtol=1e-6,
        )

    def test_full_alexnet_exports(self):
        model = alexnet_scaled(n_classes=8, input_size=64)
        graph = export_hybrid(
            model, HybridPartition(), ShapeQualifier(), 0, (3, 64, 64)
        )
        validate_graph(graph)
        assert len(graph.layers) == len(model)

"""End-to-end scenarios crossing subsystem boundaries.

Each test tells one complete story a downstream user would live:
train -> configure the hybrid -> ship it through the interchange
format -> run it under faults -> check the safety contract.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    Decision,
    HybridPartition,
    IntegratedHybridCNN,
    ParallelHybridCNN,
    ReliabilityGuarantee,
    ShapeQualifier,
)
from repro.data import STOP_CLASS_INDEX, render_sign
from repro.faults.injector import FaultyExecutionUnit
from repro.faults.models import PermanentFault, TransientFault
from repro.hybridir import export_hybrid, load_hybrid, save_hybrid
from repro.models import alexnet_scaled
from repro.reliable.executor import ReliableConv2D
from repro.reliable.operators import RedundantOperator
from repro.reliable.spatial import PEArray, SpatialRedundantOperator
from repro.vision.filters import sobel_axis_stack


@pytest.fixture(scope="module")
def shipped_hybrid(tmp_path_factory):
    """A hybrid built, saved through the IR and reloaded -- the
    deployment path."""
    model = alexnet_scaled(n_classes=8, input_size=128)
    conv1 = model.layer("conv1")
    conv1.set_filter(0, sobel_axis_stack("x", conv1.kernel_size, 3))
    conv1.set_filter(1, sobel_axis_stack("y", conv1.kernel_size, 3))
    graph = export_hybrid(
        model, HybridPartition(), ShapeQualifier(),
        STOP_CLASS_INDEX, (3, 128, 128),
    )
    base = tmp_path_factory.mktemp("ship") / "stopnet"
    save_hybrid(graph, model, base)
    return load_hybrid(base)


class TestDeploymentRoundTrip:
    def test_reloaded_hybrid_confirms_stop(self, shipped_hybrid):
        result = shipped_hybrid.infer(
            render_sign(0, size=128, rotation=np.deg2rad(4))
        )
        assert result.verdict.matches
        assert result.verdict.distance <= 3.0

    def test_reloaded_hybrid_rejects_circle(self, shipped_hybrid):
        result = shipped_hybrid.infer(render_sign(1, size=128))
        assert not result.verdict.matches
        assert result.decision is not Decision.CONFIRMED


class TestTrainedParallelHybrid:
    """The Figure 1 deployment with an actually trained classifier."""

    def test_full_decision_matrix(self, trained_model):
        qualifier = ShapeQualifier()
        hybrid = ParallelHybridCNN(
            trained_model.model, qualifier, STOP_CLASS_INDEX
        )
        # The classifier sees 32px (its training size); the qualifier
        # needs shape resolution, so feed it the 128px view via the
        # result block directly.
        from repro.nn.layers.activations import softmax

        outcomes = {}
        for class_index in range(8):
            cnn_view = render_sign(class_index, size=32)
            qual_view = render_sign(class_index, size=128)
            logits = trained_model.model.forward(cnn_view[None])
            verdict = qualifier.check(qual_view)
            _, decision = hybrid.result_block.combine(
                softmax(logits)[0], verdict
            )
            outcomes[class_index] = decision
        assert outcomes[STOP_CLASS_INDEX] is Decision.CONFIRMED
        for class_index, decision in outcomes.items():
            if class_index != STOP_CLASS_INDEX:
                assert decision in (
                    Decision.NOT_SAFETY_CRITICAL,
                    # a misclassification towards stop would be
                    # rejected, never confirmed:
                    Decision.REJECTED_BY_QUALIFIER,
                )


class TestFaultedDeployment:
    def test_transients_in_dependable_path_fully_recovered(
        self, shipped_hybrid, rng
    ):
        conv1 = shipped_hybrid.model.layer("conv1")
        clean = shipped_hybrid.infer(
            render_sign(0, size=128, rotation=np.deg2rad(4))
        )
        shipped_hybrid._reliable_conv = ReliableConv2D(
            conv1,
            RedundantOperator(
                FaultyExecutionUnit(TransientFault(1e-5, rng))
            ),
            bucket_ceiling=10_000,
            on_persistent_failure="mark",
        )
        faulted = shipped_hybrid.infer(
            render_sign(0, size=128, rotation=np.deg2rad(4))
        )
        assert faulted.reliable_report.errors_detected > 0
        assert faulted.verdict.matches == clean.verdict.matches
        np.testing.assert_allclose(
            faulted.probabilities, clean.probabilities, rtol=1e-5
        )

    def test_spatial_array_keeps_hybrid_alive_with_dead_pe(
        self, shipped_hybrid, rng
    ):
        from repro.reliable.execution_unit import PerfectExecutionUnit

        units = [PerfectExecutionUnit() for _ in range(4)]
        units[1] = FaultyExecutionUnit(PermanentFault(bit=27, rng=rng))
        array = PEArray(units)
        shipped_hybrid._reliable_conv = ReliableConv2D(
            shipped_hybrid.model.layer("conv1"),
            SpatialRedundantOperator(array),
            bucket_ceiling=100_000,
            on_persistent_failure="mark",
        )
        result = shipped_hybrid.infer(
            render_sign(0, size=128, rotation=np.deg2rad(4))
        )
        assert result.verdict.matches
        assert array.degraded
        assert array.elements[1].retired


class TestGuaranteeConsistency:
    def test_analytic_model_accepts_shipped_configuration(
        self, shipped_hybrid
    ):
        guarantee = ReliabilityGuarantee(
            shipped_hybrid.model,
            (3, 128, 128),
            shipped_hybrid.partition,
            fault_probability=1e-8,
        )
        assert guarantee.protected_path_sdc() < 1e-12
        assert guarantee.improvement_factor() > 1e6
        summary = guarantee.summary()
        assert "improvement factor" in summary

"""Hypothesis property tests for the NN framework."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.nn.initializers import glorot_uniform, he_normal
from repro.nn.layers import Flatten, MaxPool2D, ReLU
from repro.nn.layers.activations import softmax
from repro.nn.layers.conv import conv_output_size, im2col


finite_images = npst.arrays(
    dtype=np.float32,
    shape=st.tuples(
        st.integers(1, 3), st.integers(1, 3),
        st.integers(4, 10), st.integers(4, 10),
    ),
    elements=st.floats(-100, 100, width=32),
)


@given(finite_images)
@settings(max_examples=30, deadline=None)
def test_relu_idempotent(x):
    relu = ReLU()
    once = relu.forward(x)
    np.testing.assert_array_equal(relu.forward(once), once)


@given(finite_images)
@settings(max_examples=30, deadline=None)
def test_relu_output_nonnegative(x):
    assert (ReLU().forward(x) >= 0).all()


@given(finite_images)
@settings(max_examples=30, deadline=None)
def test_flatten_preserves_content(x):
    out = Flatten().forward(x)
    np.testing.assert_array_equal(out.ravel(), x.ravel())


@given(finite_images)
@settings(max_examples=30, deadline=None)
def test_maxpool_never_exceeds_input_max(x):
    pool = MaxPool2D(2, stride=2)
    if x.shape[2] < 2 or x.shape[3] < 2:
        return
    out = pool.forward(x)
    assert out.max() <= x.max() + 1e-6
    assert out.min() >= x.min() - 1e-6


@given(
    npst.arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(1, 5), st.integers(2, 8)),
        elements=st.floats(-50, 50),
    )
)
@settings(max_examples=40, deadline=None)
def test_softmax_is_distribution(x):
    out = softmax(x)
    assert (out >= 0).all()
    np.testing.assert_allclose(out.sum(axis=-1), 1.0, rtol=1e-6)


@given(
    size=st.integers(1, 64),
    kernel=st.integers(1, 11),
    stride=st.integers(1, 4),
    padding=st.integers(0, 5),
)
@settings(max_examples=60, deadline=None)
def test_conv_output_size_consistent_with_im2col(
    size, kernel, stride, padding
):
    if size + 2 * padding < kernel:
        return
    out = conv_output_size(size, kernel, stride, padding)
    x = np.zeros((1, 1, size, size), dtype=np.float32)
    cols = im2col(x, (kernel, kernel), stride, padding)
    assert cols.shape[1] == out and cols.shape[2] == out


@given(
    shape=st.sampled_from([(4, 8), (8, 4), (4, 4, 3, 3), (16,)]),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=30, deadline=None)
def test_initializers_finite_and_seeded(shape, seed):
    rng1 = np.random.default_rng(seed)
    rng2 = np.random.default_rng(seed)
    a = glorot_uniform(shape, rng1)
    b = glorot_uniform(shape, rng2)
    np.testing.assert_array_equal(a, b)
    assert np.isfinite(a).all()
    h = he_normal(shape, np.random.default_rng(seed))
    assert h.shape == shape and np.isfinite(h).all()

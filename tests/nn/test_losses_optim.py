"""Losses and optimisers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.losses import CrossEntropyLoss, MSELoss
from repro.nn.parameter import Parameter
from repro.nn.optim import SGD, Adam, Momentum
from tests.nn.test_conv import numerical_gradient


class TestCrossEntropy:
    def test_perfect_prediction_near_zero(self):
        loss = CrossEntropyLoss()
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        assert loss.forward(logits, np.array([0, 1])) < 1e-6

    def test_uniform_is_log_classes(self):
        loss = CrossEntropyLoss()
        logits = np.zeros((3, 4))
        value = loss.forward(logits, np.array([0, 1, 2]))
        np.testing.assert_allclose(value, np.log(4.0), rtol=1e-6)

    def test_gradient_matches_numerical(self, rng):
        loss = CrossEntropyLoss()
        logits = rng.standard_normal((3, 5))
        labels = np.array([1, 4, 0])

        def f():
            return loss.forward(logits, labels)

        f()
        analytic = loss.backward()
        numeric = numerical_gradient(f, logits, eps=1e-5)
        np.testing.assert_allclose(analytic, numeric, atol=1e-5)

    def test_shape_validation(self):
        loss = CrossEntropyLoss()
        with pytest.raises(ValueError):
            loss.forward(np.zeros((2, 3, 4)), np.array([0, 1]))
        with pytest.raises(ValueError):
            loss.forward(np.zeros((2, 3)), np.array([0]))


class TestMSE:
    def test_zero_for_equal(self, rng):
        x = rng.standard_normal((3, 4)).astype(np.float32)
        assert MSELoss().forward(x, x) == 0.0

    def test_value_and_gradient(self):
        loss = MSELoss()
        pred = np.array([1.0, 3.0], dtype=np.float32)
        target = np.array([0.0, 1.0], dtype=np.float32)
        value = loss.forward(pred, target)
        np.testing.assert_allclose(value, (1.0 + 4.0) / 2.0)
        np.testing.assert_allclose(loss.backward(), [1.0, 2.0])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            MSELoss().forward(np.zeros(3), np.zeros(4))


def quadratic_param():
    """A parameter whose loss is ||x - 3||^2 (minimum at 3)."""
    return Parameter(np.array([0.0, 0.0], dtype=np.float32))


def quadratic_grad(param):
    param.grad = 2.0 * (param.value - 3.0)


@pytest.mark.parametrize("opt_cls, kwargs", [
    (SGD, {"lr": 0.1}),
    (Momentum, {"lr": 0.05, "momentum": 0.8}),
    (Adam, {"lr": 0.3}),
])
def test_optimizers_minimise_quadratic(opt_cls, kwargs):
    param = quadratic_param()
    opt = opt_cls([param], **kwargs)
    for _ in range(100):
        opt.zero_grad()
        quadratic_grad(param)
        opt.step()
    np.testing.assert_allclose(param.value, [3.0, 3.0], atol=0.05)


def test_frozen_parameter_not_updated():
    param = quadratic_param()
    param.frozen = True
    opt = SGD([param], lr=0.1)
    quadratic_grad(param)
    opt.step()
    np.testing.assert_array_equal(param.value, [0.0, 0.0])


def test_sgd_weight_decay_shrinks():
    param = Parameter(np.array([1.0], dtype=np.float32))
    opt = SGD([param], lr=0.1, weight_decay=0.5)
    opt.step()  # zero gradient, decay only
    np.testing.assert_allclose(param.value, [0.95], rtol=1e-6)

def test_adam_bias_correction_first_step():
    param = Parameter(np.array([0.0], dtype=np.float32))
    opt = Adam([param], lr=0.1)
    param.grad = np.array([1.0], dtype=np.float32)
    opt.step()
    # With bias correction the first step is ~lr regardless of betas.
    np.testing.assert_allclose(param.value, [-0.1], atol=1e-6)


def test_learning_rate_must_be_positive():
    with pytest.raises(ValueError):
        SGD([quadratic_param()], lr=0.0)

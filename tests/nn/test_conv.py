"""Conv2D: geometry, forward correctness, gradients, filter access."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.layers.conv import (
    Conv2D,
    col2im,
    conv_output_size,
    im2col,
    pad_nchw,
)


def numerical_gradient(f, x, eps=1e-3):
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        i = it.multi_index
        orig = x[i]
        x[i] = orig + eps
        plus = f()
        x[i] = orig - eps
        minus = f()
        x[i] = orig
        grad[i] = (plus - minus) / (2 * eps)
        it.iternext()
    return grad


class TestGeometry:
    def test_output_size_basic(self):
        assert conv_output_size(32, 5, 1, 0) == 28
        assert conv_output_size(32, 5, 1, 2) == 32
        assert conv_output_size(227, 11, 4, 0) == 55  # AlexNet conv1

    def test_output_size_rejects_too_small(self):
        with pytest.raises(ValueError):
            conv_output_size(3, 5, 1, 0)

    def test_layer_output_shape(self):
        conv = Conv2D(3, 96, 11, stride=4)
        assert conv.output_shape((3, 227, 227)) == (96, 55, 55)

    def test_output_shape_channel_mismatch(self):
        conv = Conv2D(3, 8, 3)
        with pytest.raises(ValueError):
            conv.output_shape((4, 16, 16))

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            Conv2D(3, 8, 0)
        with pytest.raises(ValueError):
            Conv2D(3, 8, 3, stride=0)
        with pytest.raises(ValueError):
            Conv2D(3, 8, 3, padding=-1)


class TestIm2Col:
    def test_shapes(self, rng):
        x = rng.standard_normal((2, 3, 8, 8)).astype(np.float32)
        cols = im2col(x, (3, 3), stride=1, padding=0)
        assert cols.shape == (2, 6, 6, 27)

    def test_values_match_direct_slicing(self, rng):
        x = rng.standard_normal((1, 2, 6, 6)).astype(np.float32)
        cols = im2col(x, (2, 2), stride=2, padding=0)
        patch = x[0, :, 2:4, 4:6].reshape(-1)
        np.testing.assert_array_equal(cols[0, 1, 2], patch)

    def test_padding_adds_zeros(self, rng):
        x = np.ones((1, 1, 2, 2), dtype=np.float32)
        cols = im2col(x, (3, 3), stride=1, padding=1)
        # Top-left output: only the bottom-right 2x2 of the kernel
        # overlaps the image.
        corner = cols[0, 0, 0].reshape(3, 3)
        assert corner[0].sum() == 0.0
        assert corner[:, 0].sum() == 0.0

    def test_col2im_inverts_scatter(self, rng):
        x = rng.standard_normal((2, 3, 7, 7)).astype(np.float32)
        cols = im2col(x, (3, 3), 2, 1)
        back = col2im(cols, x.shape, (3, 3), 2, 1)
        # Each pixel is restored multiplied by how many windows cover
        # it; verify via an all-ones scatter count.
        ones = np.ones_like(cols)
        counts = col2im(ones, x.shape, (3, 3), 2, 1)
        assert (counts > 0).any()
        np.testing.assert_allclose(back, x * counts, rtol=1e-5)

    def test_pad_nchw_zero_is_noop(self, rng):
        x = rng.standard_normal((1, 1, 4, 4))
        assert pad_nchw(x, 0) is x


class TestForward:
    def test_matches_manual_convolution(self, rng):
        conv = Conv2D(2, 3, 3, stride=1, padding=0, rng=rng)
        x = rng.standard_normal((1, 2, 5, 5)).astype(np.float32)
        out = conv.forward(x)
        # Manual: one output element.
        w = conv.weight.value
        b = conv.bias.value
        manual = (x[0, :, 1:4, 2:5] * w[1]).sum() + b[1]
        np.testing.assert_allclose(out[0, 1, 1, 2], manual, rtol=1e-5)

    def test_identity_kernel_passthrough(self):
        conv = Conv2D(1, 1, 1)
        conv.weight.value[:] = 1.0
        conv.bias.value[:] = 0.0
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        np.testing.assert_array_equal(conv.forward(x), x)

    def test_bias_applied_per_channel(self, rng):
        conv = Conv2D(1, 2, 1, rng=rng)
        conv.weight.value[:] = 0.0
        conv.bias.value[:] = [1.5, -2.0]
        out = conv.forward(np.zeros((1, 1, 3, 3), dtype=np.float32))
        assert (out[0, 0] == 1.5).all()
        assert (out[0, 1] == -2.0).all()

    def test_rejects_wrong_input_rank(self, rng):
        conv = Conv2D(3, 4, 3, rng=rng)
        with pytest.raises(ValueError):
            conv.forward(np.zeros((3, 8, 8), dtype=np.float32))

    def test_rejects_wrong_channels(self, rng):
        conv = Conv2D(3, 4, 3, rng=rng)
        with pytest.raises(ValueError):
            conv.forward(np.zeros((1, 2, 8, 8), dtype=np.float32))


class TestBackward:
    def test_input_gradient_matches_numerical(self, rng):
        conv = Conv2D(2, 3, 3, stride=2, padding=1, rng=rng)
        x = rng.standard_normal((2, 2, 6, 6))
        target = rng.standard_normal(
            conv.forward(x.astype(np.float32)).shape
        ).astype(np.float32)

        def loss():
            out = conv.forward(x.astype(np.float32), training=True)
            return float(((out - target) ** 2).sum())

        out = conv.forward(x.astype(np.float32), training=True)
        conv.zero_grad()
        dx = conv.backward(2 * (out - target))
        ndx = numerical_gradient(loss, x)
        np.testing.assert_allclose(dx, ndx, atol=5e-2)

    def test_weight_gradient_matches_numerical(self, rng):
        conv = Conv2D(1, 2, 3, rng=rng)
        x = rng.standard_normal((1, 1, 5, 5)).astype(np.float32)
        target = rng.standard_normal(conv.forward(x).shape).astype(
            np.float32
        )

        def loss():
            out = conv.forward(x, training=True)
            return float(((out - target) ** 2).sum())

        out = conv.forward(x, training=True)
        conv.zero_grad()
        conv.backward(2 * (out - target))
        nw = numerical_gradient(loss, conv.weight.value)
        np.testing.assert_allclose(conv.weight.grad, nw, atol=5e-2)

    def test_bias_gradient_is_sum(self, rng):
        conv = Conv2D(1, 2, 3, rng=rng)
        x = rng.standard_normal((2, 1, 5, 5)).astype(np.float32)
        conv.forward(x, training=True)
        conv.zero_grad()
        grad = np.ones((2, 2, 3, 3), dtype=np.float32)
        conv.backward(grad)
        np.testing.assert_allclose(conv.bias.grad, [18.0, 18.0])

    def test_backward_without_forward_raises(self, rng):
        conv = Conv2D(1, 1, 3, rng=rng)
        with pytest.raises(RuntimeError):
            conv.backward(np.zeros((1, 1, 3, 3), dtype=np.float32))

    def test_gradients_accumulate(self, rng):
        conv = Conv2D(1, 1, 3, rng=rng)
        x = rng.standard_normal((1, 1, 5, 5)).astype(np.float32)
        grad = np.ones((1, 1, 3, 3), dtype=np.float32)
        conv.forward(x, training=True)
        conv.backward(grad)
        first = conv.weight.grad.copy()
        conv.forward(x, training=True)
        conv.backward(grad)
        np.testing.assert_allclose(conv.weight.grad, 2 * first, rtol=1e-5)


class TestFilterAccess:
    def test_set_get_roundtrip(self, rng):
        conv = Conv2D(3, 8, 5, rng=rng)
        kernel = rng.standard_normal((3, 5, 5)).astype(np.float32)
        conv.set_filter(2, kernel)
        np.testing.assert_array_equal(conv.get_filter(2), kernel)

    def test_get_returns_copy(self, rng):
        conv = Conv2D(3, 8, 5, rng=rng)
        got = conv.get_filter(0)
        got[:] = 99.0
        assert not (conv.get_filter(0) == 99.0).all()

    def test_set_rejects_wrong_shape(self, rng):
        conv = Conv2D(3, 8, 5, rng=rng)
        with pytest.raises(ValueError):
            conv.set_filter(0, np.zeros((3, 3, 3), dtype=np.float32))

    def test_replacement_changes_only_that_map(self, rng):
        conv = Conv2D(3, 4, 3, rng=rng)
        x = rng.standard_normal((1, 3, 8, 8)).astype(np.float32)
        before = conv.forward(x)
        conv.set_filter(1, np.zeros((3, 3, 3), dtype=np.float32))
        after = conv.forward(x)
        assert not np.array_equal(before[0, 1], after[0, 1])
        np.testing.assert_array_equal(before[0, 0], after[0, 0])
        np.testing.assert_array_equal(before[0, 2:], after[0, 2:])


class TestOpsCount:
    def test_operations_per_image(self):
        conv = Conv2D(3, 96, 11, stride=4)
        ops = conv.operations_per_image((3, 227, 227))
        assert ops == 96 * 55 * 55 * 11 * 11 * 3

    def test_patches_match_forward(self, rng):
        conv = Conv2D(2, 3, 3, stride=2, rng=rng)
        x = rng.standard_normal((1, 2, 7, 7)).astype(np.float32)
        patches = conv.input_patches(x)
        wmat = conv.weight.value.reshape(3, -1)
        manual = patches @ wmat.T + conv.bias.value
        np.testing.assert_allclose(
            manual.transpose(0, 3, 1, 2), conv.forward(x), rtol=1e-5
        )


class TestCol2ImVectorized:
    """The kernel-offset slice-add col2im must equal the historical
    patch-by-patch scatter loop bitwise (float accumulation order is
    part of the contract -- it feeds every training backward pass)."""

    @staticmethod
    def _col2im_reference(cols, input_shape, kernel, stride, padding):
        n, c, h, w = input_shape
        kh, kw = kernel
        out_h = conv_output_size(h, kh, stride, padding)
        out_w = conv_output_size(w, kw, stride, padding)
        xp = np.zeros(
            (n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype
        )
        patches = cols.reshape(n, out_h, out_w, c, kh, kw)
        for i in range(out_h):
            hi = i * stride
            for j in range(out_w):
                wj = j * stride
                xp[:, :, hi : hi + kh, wj : wj + kw] += patches[:, i, j]
        if padding:
            return xp[:, :, padding:-padding, padding:-padding]
        return xp

    @pytest.mark.parametrize("geometry", [
        (2, 3, 8, 8, 3, 1, 1),
        (1, 1, 7, 9, 3, 2, 0),
        (3, 2, 12, 10, 5, 2, 2),
        (2, 4, 11, 11, 4, 3, 1),
        (1, 3, 6, 6, 2, 1, 0),
        (2, 1, 9, 7, 3, 3, 2),
    ])
    def test_bitwise_parity_with_loop(self, rng, geometry):
        n, c, h, w, k, stride, padding = geometry
        out_h = conv_output_size(h, k, stride, padding)
        out_w = conv_output_size(w, k, stride, padding)
        cols = rng.standard_normal(
            (n, out_h, out_w, c * k * k)
        ).astype(np.float32)
        got = col2im(cols, (n, c, h, w), (k, k), stride, padding)
        want = self._col2im_reference(
            cols, (n, c, h, w), (k, k), stride, padding
        )
        assert got.tobytes() == want.tobytes()

    def test_float64_gradients_too(self, rng):
        cols = rng.standard_normal((2, 6, 6, 3 * 9))
        got = col2im(cols, (2, 3, 8, 8), (3, 3), 1, 0)
        want = self._col2im_reference(cols, (2, 3, 8, 8), (3, 3), 1, 0)
        assert got.dtype == np.float64
        assert got.tobytes() == want.tobytes()

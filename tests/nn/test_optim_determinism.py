"""Regression: optimiser state is keyed by parameter slot, not id().

Stateful optimisers (Momentum, Adam) used to keep per-parameter state
in ``id(param)``-keyed dicts. ``id()`` is a heap address: two
identically-configured runs got identical *values* but the state
containers iterated in address order, and any future serialisation or
replay of that state would have been process-specific. The lint rule
AMBIENT-ID now bans it; state lives in slot-indexed lists. These tests
pin the observable guarantees of that change.
"""

from __future__ import annotations

import numpy as np

from repro.nn.optim import SGD, Adam, Momentum
from repro.nn.parameter import Parameter
from repro.reliable.bits import word_view


def _words_equal(a: np.ndarray, b: np.ndarray) -> bool:
    """Bitwise array equality via int64 storage words -- the
    sanctioned comparator (float == would miss -0.0/NaN flips)."""
    return bool(np.all(word_view(a) == word_view(b)))


def _params(seed: int = 7) -> list[Parameter]:
    rng = np.random.default_rng(seed)
    return [
        Parameter(rng.normal(size=(4, 3)).astype(np.float32), name="w"),
        Parameter(rng.normal(size=(3,)).astype(np.float32), name="b"),
        Parameter(rng.normal(size=(2, 2)).astype(np.float32), name="v"),
    ]


def _grads(step: int, params: list[Parameter]) -> None:
    rng = np.random.default_rng(1000 + step)
    for param in params:
        param.grad = rng.normal(size=param.shape).astype(np.float32)


def _run(optim_factory, steps: int = 5) -> list[np.ndarray]:
    params = _params()
    optim = optim_factory(params)
    for step in range(steps):
        _grads(step, params)
        optim.step()
        optim.zero_grad()
    return [p.value.copy() for p in params]


def _assert_bitwise_identical(a: list[np.ndarray], b: list[np.ndarray]):
    assert len(a) == len(b)
    for left, right in zip(a, b):
        assert _words_equal(left, right)


def test_momentum_two_runs_bitwise_identical():
    _assert_bitwise_identical(
        _run(lambda p: Momentum(p, lr=0.05, momentum=0.9)),
        _run(lambda p: Momentum(p, lr=0.05, momentum=0.9)),
    )


def test_adam_two_runs_bitwise_identical():
    _assert_bitwise_identical(
        _run(lambda p: Adam(p, lr=1e-3)),
        _run(lambda p: Adam(p, lr=1e-3)),
    )


def test_state_is_slot_indexed_not_id_keyed():
    params = _params()
    momentum = Momentum(params, lr=0.05)
    adam = Adam(params, lr=1e-3)
    assert isinstance(momentum._velocity, list)
    assert len(momentum._velocity) == len(params)
    assert isinstance(adam._m, list) and isinstance(adam._v, list)
    for slot, param in enumerate(params):
        assert momentum._velocity[slot].shape == param.shape
        assert adam._m[slot].shape == param.shape


def test_state_tracks_slot_after_value_rebinding():
    """Replacing a Parameter's ndarray (as FilterPin-style pinning
    does) must not orphan optimiser state: the slot, not the object's
    address, is the key."""
    params = _params()
    momentum = Momentum(params, lr=0.05)
    _grads(0, params)
    momentum.step()
    before = momentum._velocity[1].copy()
    params[1].value = params[1].value.copy()  # new ndarray, same slot
    _grads(1, params)
    momentum.step()
    after = momentum._velocity[1]
    assert after.shape == before.shape
    assert not _words_equal(after, before)


def test_frozen_parameter_skips_update_and_keeps_state_aligned():
    params = _params()
    adam = Adam(params, lr=1e-3)
    params[0].frozen = True
    frozen_before = params[0].value.copy()
    _grads(0, params)
    adam.step()
    assert _words_equal(params[0].value, frozen_before)
    assert not _words_equal(params[1].value, _params()[1].value)


def test_sgd_remains_stateless_and_deterministic():
    _assert_bitwise_identical(
        _run(lambda p: SGD(p, lr=0.05, weight_decay=1e-4)),
        _run(lambda p: SGD(p, lr=0.05, weight_decay=1e-4)),
    )

"""Dense, activations, pooling, LRN, dropout, flatten."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.layers import (
    Dense,
    Dropout,
    Flatten,
    LocalResponseNorm,
    MaxPool2D,
    ReLU,
    Softmax,
)
from repro.nn.layers.activations import softmax
from tests.nn.test_conv import numerical_gradient


class TestDense:
    def test_forward_affine(self, rng):
        dense = Dense(3, 2, rng=rng)
        x = rng.standard_normal((4, 3)).astype(np.float32)
        expected = x @ dense.weight.value + dense.bias.value
        np.testing.assert_allclose(dense.forward(x), expected, rtol=1e-6)

    def test_forward_is_batch_size_invariant_when_enabled(self, rng):
        """A sample's output must not depend on its batch: the hybrid
        pipeline's batched path promises bitwise parity with per-image
        inference, and Dense is the one layer where a naive batched
        GEMM breaks it (BLAS dispatches shape-dependent kernels).  The
        invariant mode is opt-in (the hybrids set it on their model);
        training and calibration keep the blocked GEMM."""
        dense = Dense(128, 16, rng=rng)
        dense.batch_invariant = True
        x = rng.standard_normal((32, 128)).astype(np.float32)
        batched = dense.forward(x)
        singles = np.concatenate(
            [dense.forward(x[i : i + 1]) for i in range(len(x))]
        )
        np.testing.assert_array_equal(batched, singles)
        # Single-sample outputs are identical in both modes, so
        # enabling the flag never changes per-image inference.
        dense.batch_invariant = False
        np.testing.assert_array_equal(
            dense.forward(x[:1]), singles[:1]
        )

    def test_gradients(self, rng):
        dense = Dense(4, 3, rng=rng)
        x = rng.standard_normal((2, 4))
        target = rng.standard_normal((2, 3)).astype(np.float32)

        def loss():
            out = dense.forward(x.astype(np.float32), training=True)
            return float(((out - target) ** 2).sum())

        out = dense.forward(x.astype(np.float32), training=True)
        dense.zero_grad()
        dx = dense.backward(2 * (out - target))
        np.testing.assert_allclose(
            dx, numerical_gradient(loss, x), atol=2e-2
        )
        nw = numerical_gradient(loss, dense.weight.value)
        dense.zero_grad()
        dense.forward(x.astype(np.float32), training=True)
        dense.backward(2 * (out - target))
        np.testing.assert_allclose(dense.weight.grad, nw, atol=2e-2)

    def test_shape_validation(self, rng):
        dense = Dense(4, 3, rng=rng)
        with pytest.raises(ValueError):
            dense.forward(np.zeros((2, 5), dtype=np.float32))
        with pytest.raises(ValueError):
            dense.output_shape((5,))

    def test_ops_count(self):
        assert Dense(128, 64).operations_per_image((128,)) == 128 * 64


class TestReLU:
    def test_forward_clamps_negatives(self):
        relu = ReLU()
        x = np.array([[-1.0, 0.0, 2.5]], dtype=np.float32)
        np.testing.assert_array_equal(
            relu.forward(x), [[0.0, 0.0, 2.5]]
        )

    def test_backward_masks(self):
        relu = ReLU()
        x = np.array([[-1.0, 3.0]], dtype=np.float32)
        relu.forward(x, training=True)
        grad = relu.backward(np.array([[5.0, 5.0]], dtype=np.float32))
        np.testing.assert_array_equal(grad, [[0.0, 5.0]])

    def test_backward_without_forward_raises(self):
        with pytest.raises(RuntimeError):
            ReLU().backward(np.ones((1, 1), dtype=np.float32))


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        out = softmax(rng.standard_normal((5, 7)))
        np.testing.assert_allclose(out.sum(axis=1), np.ones(5), rtol=1e-6)

    def test_shift_invariance(self, rng):
        x = rng.standard_normal((2, 4))
        np.testing.assert_allclose(
            softmax(x), softmax(x + 100.0), rtol=1e-5
        )

    def test_handles_large_logits(self):
        out = softmax(np.array([[1000.0, 0.0]]))
        assert np.isfinite(out).all()
        assert out[0, 0] > 0.999

    def test_layer_backward_matches_numerical(self, rng):
        layer = Softmax()
        x = rng.standard_normal((2, 4))
        target = rng.standard_normal((2, 4)).astype(np.float32)

        def loss():
            out = layer.forward(x.astype(np.float32), training=True)
            return float(((out - target) ** 2).sum())

        out = layer.forward(x.astype(np.float32), training=True)
        dx = layer.backward(2 * (out - target))
        np.testing.assert_allclose(
            dx, numerical_gradient(loss, x), atol=1e-2
        )


class TestMaxPool:
    def test_forward_values(self):
        pool = MaxPool2D(2)
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = pool.forward(x)
        np.testing.assert_array_equal(
            out[0, 0], [[5.0, 7.0], [13.0, 15.0]]
        )

    def test_overlapping_alexnet_geometry(self, rng):
        pool = MaxPool2D(3, stride=2)
        x = rng.standard_normal((1, 2, 7, 7)).astype(np.float32)
        out = pool.forward(x)
        assert out.shape == (1, 2, 3, 3)
        assert out[0, 0, 0, 0] == x[0, 0, :3, :3].max()

    def test_backward_routes_to_argmax(self):
        pool = MaxPool2D(2)
        x = np.array(
            [[[[1.0, 2.0], [3.0, 4.0]]]], dtype=np.float32
        )
        pool.forward(x, training=True)
        dx = pool.backward(np.array([[[[7.0]]]], dtype=np.float32))
        np.testing.assert_array_equal(
            dx[0, 0], [[0.0, 0.0], [0.0, 7.0]]
        )

    def test_backward_overlap_accumulates(self, rng):
        pool = MaxPool2D(3, stride=2)
        x = rng.standard_normal((1, 1, 7, 7))
        target = rng.standard_normal((1, 1, 3, 3)).astype(np.float32)

        def loss():
            out = pool.forward(x.astype(np.float32), training=True)
            return float(((out - target) ** 2).sum())

        out = pool.forward(x.astype(np.float32), training=True)
        dx = pool.backward(2 * (out - target))
        np.testing.assert_allclose(
            dx, numerical_gradient(loss, x), atol=2e-2
        )

    def test_rejects_bad_pool_size(self):
        with pytest.raises(ValueError):
            MaxPool2D(0)


class TestLRN:
    def test_alexnet_defaults(self):
        lrn = LocalResponseNorm()
        assert (lrn.size, lrn.k, lrn.alpha, lrn.beta) == (
            5, 2.0, 1e-4, 0.75,
        )

    def test_forward_matches_direct_formula(self, rng):
        lrn = LocalResponseNorm(size=3, k=1.0, alpha=0.3, beta=0.5)
        x = rng.standard_normal((1, 4, 2, 2)).astype(np.float32)
        out = lrn.forward(x)
        # Channel 1's window is channels 0..2.
        window = (x[0, 0:3] ** 2).sum(axis=0)
        denom = (1.0 + 0.1 * window) ** 0.5
        np.testing.assert_allclose(out[0, 1], x[0, 1] / denom, rtol=1e-5)

    def test_backward_matches_numerical(self, rng):
        lrn = LocalResponseNorm(size=3)
        x = rng.standard_normal((1, 5, 2, 2))
        target = rng.standard_normal(x.shape).astype(np.float32)

        def loss():
            out = lrn.forward(x.astype(np.float32), training=True)
            return float(((out - target) ** 2).sum())

        out = lrn.forward(x.astype(np.float32), training=True)
        dx = lrn.backward(2 * (out - target))
        np.testing.assert_allclose(
            dx, numerical_gradient(loss, x), atol=2e-2
        )

    def test_rejects_even_size(self):
        with pytest.raises(ValueError):
            LocalResponseNorm(size=4)


class TestDropout:
    def test_identity_at_inference(self, rng):
        drop = Dropout(0.5, rng=rng)
        x = rng.standard_normal((4, 10)).astype(np.float32)
        np.testing.assert_array_equal(drop.forward(x), x)

    def test_training_zeroes_and_scales(self):
        drop = Dropout(0.5, rng=np.random.default_rng(0))
        x = np.ones((100, 100), dtype=np.float32)
        out = drop.forward(x, training=True)
        kept = out != 0.0
        assert 0.4 < kept.mean() < 0.6
        np.testing.assert_allclose(out[kept], 2.0)

    def test_backward_uses_same_mask(self):
        drop = Dropout(0.5, rng=np.random.default_rng(0))
        x = np.ones((10, 10), dtype=np.float32)
        out = drop.forward(x, training=True)
        grad = drop.backward(np.ones_like(x))
        np.testing.assert_array_equal(grad == 0.0, out == 0.0)

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            Dropout(-0.1)


class TestFlatten:
    def test_roundtrip(self, rng):
        flat = Flatten()
        x = rng.standard_normal((2, 3, 4, 5)).astype(np.float32)
        out = flat.forward(x, training=True)
        assert out.shape == (2, 60)
        back = flat.backward(out)
        np.testing.assert_array_equal(back, x)

    def test_output_shape(self):
        assert Flatten().output_shape((3, 4, 5)) == (60,)

"""Sequential container, trainer, filter pinning, serialisation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    Adam,
    Conv2D,
    Dense,
    FilterPin,
    Flatten,
    MaxPool2D,
    ReLU,
    Sequential,
    Trainer,
    load_model,
    save_model,
)
from repro.vision.filters import sobel_filter_stack


def tiny_model(rng=None, name_prefix=""):
    rng = rng or np.random.default_rng(0)
    return Sequential([
        Conv2D(1, 4, 3, rng=rng, name=f"{name_prefix}conv1"),
        ReLU(name=f"{name_prefix}relu1"),
        MaxPool2D(2, name=f"{name_prefix}pool1"),
        Flatten(name=f"{name_prefix}flat"),
        Dense(4 * 3 * 3, 2, rng=rng, name=f"{name_prefix}fc"),
    ])


def tiny_task(rng, n=160):
    x = rng.standard_normal((n, 1, 8, 8)).astype(np.float32)
    y = (x.mean(axis=(1, 2, 3)) > 0).astype(np.int64)
    return x, y


class TestSequential:
    def test_duplicate_names_rejected(self, rng):
        with pytest.raises(ValueError):
            Sequential([ReLU(name="a"), ReLU(name="a")])

    def test_layer_lookup(self, rng):
        model = tiny_model(rng)
        assert model.layer("conv1") is model[0]
        assert model.index_of("fc") == 4
        with pytest.raises(KeyError):
            model.layer("nope")

    def test_forward_until_from_composes(self, rng):
        model = tiny_model(rng)
        x = rng.standard_normal((2, 1, 8, 8)).astype(np.float32)
        full = model.forward(x)
        mid = model.forward_until(x, 2)
        resumed = model.forward_from(mid, 2)
        np.testing.assert_allclose(full, resumed, rtol=1e-6)

    def test_output_shape_chain(self, rng):
        model = tiny_model(rng)
        assert model.output_shape((1, 8, 8)) == (2,)

    def test_shapes_lists_every_stage(self, rng):
        shapes = tiny_model(rng).shapes((1, 8, 8))
        assert shapes[0] == (1, 8, 8)
        assert shapes[-1] == (2,)
        assert len(shapes) == 6

    def test_operation_counts(self, rng):
        counts = tiny_model(rng).operation_counts((1, 8, 8))
        assert counts["conv1"] == 4 * 6 * 6 * 9
        assert counts["relu1"] == 0
        assert counts["fc"] == 36 * 2

    def test_parameter_count(self, rng):
        model = tiny_model(rng)
        expected = (4 * 1 * 9 + 4) + (36 * 2 + 2)
        assert model.parameter_count() == expected

    def test_summary_mentions_layers(self, rng):
        text = tiny_model(rng).summary((1, 8, 8))
        assert "conv1" in text and "fc" in text


class TestTrainer:
    def test_learns_separable_task(self, rng):
        model = tiny_model(rng)
        x, y = tiny_task(rng)
        trainer = Trainer(model, Adam(model.parameters(), lr=0.01), rng=rng)
        history = trainer.fit(x, y, epochs=12, batch_size=32)
        assert history.accuracy[-1] > 0.85
        assert history.loss[-1] < history.loss[0]
        assert history.epochs == 12

    def test_validation_tracked(self, rng):
        model = tiny_model(rng)
        x, y = tiny_task(rng)
        trainer = Trainer(model, Adam(model.parameters(), lr=0.01), rng=rng)
        history = trainer.fit(
            x[:100], y[:100], epochs=2, validation=(x[100:], y[100:])
        )
        assert len(history.val_accuracy) == 2

    def test_empty_dataset_rejected(self, rng):
        model = tiny_model(rng)
        trainer = Trainer(model, Adam(model.parameters()))
        with pytest.raises(ValueError):
            trainer.fit(
                np.zeros((0, 1, 8, 8), dtype=np.float32),
                np.zeros(0, dtype=np.int64),
                epochs=1,
            )


class TestFilterPin:
    def test_pin_sets_kernel_at_construction(self, rng):
        model = tiny_model(rng)
        conv = model.layer("conv1")
        kernel = sobel_filter_stack(3, 1)
        FilterPin(conv, 0, kernel)
        np.testing.assert_array_equal(conv.get_filter(0), kernel)

    def test_pinned_filter_constant_through_training(self, rng):
        model = tiny_model(rng)
        conv = model.layer("conv1")
        kernel = sobel_filter_stack(3, 1)
        pin = FilterPin(conv, 0, kernel, reset_every="batch")
        x, y = tiny_task(rng)
        trainer = Trainer(
            model, Adam(model.parameters(), lr=0.01), pins=[pin], rng=rng
        )
        trainer.fit(x, y, epochs=3)
        np.testing.assert_array_equal(conv.get_filter(0), kernel)
        # Other filters trained freely.
        assert pin.drift_history, "drift must have been recorded"

    def test_unpinned_filter_drifts(self, rng):
        model = tiny_model(rng)
        conv = model.layer("conv1")
        kernel = sobel_filter_stack(3, 1)
        conv.set_filter(0, kernel)
        x, y = tiny_task(rng)
        trainer = Trainer(model, Adam(model.parameters(), lr=0.01), rng=rng)
        trainer.fit(x, y, epochs=3)
        drift = np.linalg.norm(conv.get_filter(0) - kernel)
        assert drift > 1e-3

    def test_epoch_mode_resets_once_per_epoch(self, rng):
        model = tiny_model(rng)
        conv = model.layer("conv1")
        pin = FilterPin(
            conv, 1, np.zeros((1, 3, 3), dtype=np.float32),
            reset_every="epoch",
        )
        x, y = tiny_task(rng, n=64)
        trainer = Trainer(
            model, Adam(model.parameters(), lr=0.01), pins=[pin], rng=rng
        )
        trainer.fit(x, y, epochs=4, batch_size=16)
        assert len(pin.drift_history) == 4

    def test_invalid_reset_mode(self, rng):
        model = tiny_model(rng)
        with pytest.raises(ValueError):
            FilterPin(
                model.layer("conv1"), 0,
                np.zeros((1, 3, 3), dtype=np.float32),
                reset_every="step",
            )


class TestSerialization:
    def test_roundtrip(self, rng, tmp_path):
        model = tiny_model(rng)
        path = tmp_path / "weights.npz"
        save_model(model, path)
        clone = tiny_model(np.random.default_rng(42))
        load_model(clone, path)
        x = rng.standard_normal((2, 1, 8, 8)).astype(np.float32)
        np.testing.assert_allclose(
            model.forward(x), clone.forward(x), rtol=1e-6
        )

    def test_missing_parameter_raises(self, rng, tmp_path):
        model = tiny_model(rng)
        path = tmp_path / "weights.npz"
        save_model(model, path)
        other = tiny_model(rng, name_prefix="x")
        with pytest.raises(KeyError):
            load_model(other, path)

    def test_shape_mismatch_raises(self, rng, tmp_path):
        model = tiny_model(rng)
        path = tmp_path / "weights.npz"
        save_model(model, path)
        bigger = Sequential([
            Conv2D(1, 8, 3, rng=rng, name="conv1"),
            ReLU(name="relu1"),
            MaxPool2D(2, name="pool1"),
            Flatten(name="flat"),
            Dense(8 * 3 * 3, 2, rng=rng, name="fc"),
        ])
        with pytest.raises(ValueError):
            load_model(bigger, path)

"""AlexNet variants and the small CNN."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import (
    AlexNetConfig,
    alexnet,
    alexnet_full,
    alexnet_scaled,
    small_cnn,
)
from repro.models.alexnet import FULL_CONFIG, SCALED_CONFIG


class TestFullAlexNet:
    def test_paper_geometry(self):
        model = alexnet_full()
        conv1 = model.layer("conv1")
        # "96 11*11*3 filters" on a 227*227*3 input.
        assert conv1.weight.value.shape == (96, 3, 11, 11)
        assert conv1.stride == 4
        assert model.output_shape((3, 227, 227)) == (43,)

    def test_parameter_count_near_original(self):
        # Krizhevsky's AlexNet has ~60M parameters (ours differs only
        # in the 43-class head).
        count = alexnet_full().parameter_count()
        assert 55e6 < count < 63e6

    def test_layer_names_stable(self):
        model = alexnet_full()
        for name in ("conv1", "conv2", "conv3", "conv4", "conv5",
                     "fc6", "fc7", "fc8", "lrn1", "lrn2"):
            model.layer(name)  # must not raise


class TestScaledAlexNet:
    def test_same_topology_as_full(self):
        full_names = [type(l).__name__ for l in alexnet_full()]
        scaled_names = [type(l).__name__ for l in alexnet_scaled()]
        assert full_names == scaled_names

    def test_forward_shape(self, rng):
        model = alexnet_scaled(n_classes=8, input_size=64)
        x = rng.standard_normal((2, 3, 64, 64)).astype(np.float32)
        assert model.forward(x).shape == (2, 8)

    def test_conv1_filters_configurable(self):
        model = alexnet_scaled(conv1_filters=24)
        assert model.layer("conv1").out_channels == 24

    def test_input_size_128_supported(self):
        model = alexnet_scaled(input_size=128)
        assert model.output_shape((3, 128, 128)) == (8,)

    def test_seeded_construction_reproducible(self):
        a = alexnet_scaled(rng=np.random.default_rng(5))
        b = alexnet_scaled(rng=np.random.default_rng(5))
        np.testing.assert_array_equal(
            a.layer("conv1").weight.value,
            b.layer("conv1").weight.value,
        )


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            AlexNetConfig(input_size=8, conv1_kernel=11).validate()
        with pytest.raises(ValueError):
            AlexNetConfig(conv_channels=(1, 2, 3)).validate()

    def test_no_lrn_variant(self, rng):
        config = AlexNetConfig(
            input_size=64, conv1_kernel=7, conv1_stride=2,
            conv_channels=(8, 8, 8, 8, 8), dense_units=(16, 16),
            n_classes=4, use_lrn=False,
        )
        model = alexnet(config, rng)
        with pytest.raises(KeyError):
            model.layer("lrn1")
        assert model.output_shape((3, 64, 64)) == (4,)

    def test_reference_configs_valid(self):
        FULL_CONFIG.validate()
        SCALED_CONFIG.validate()


class TestSmallCNN:
    def test_forward_and_shapes(self, rng):
        model = small_cnn(32, 8, rng=rng)
        x = rng.standard_normal((3, 3, 32, 32)).astype(np.float32)
        assert model.forward(x).shape == (3, 8)

    def test_has_addressable_conv1(self):
        model = small_cnn(conv1_filters=12)
        assert model.layer("conv1").out_channels == 12

    def test_trains_fast_on_signs(self, trained_model):
        # Session fixture: small CNN on the synthetic signs.
        assert trained_model.test_accuracy > 0.9

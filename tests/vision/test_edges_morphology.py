"""Edge maps, greyscale conversion, morphology."""

from __future__ import annotations

import numpy as np
import pytest

from repro.vision.edges import edge_map, sobel_edges, to_grayscale
from repro.vision.morphology import binary_dilate, binary_erode


class TestGrayscale:
    def test_passthrough_2d(self, rng):
        image = rng.random((5, 5)).astype(np.float32)
        np.testing.assert_array_equal(to_grayscale(image), image)

    def test_luma_weights_for_rgb(self):
        image = np.zeros((3, 2, 2), dtype=np.float32)
        image[1] = 1.0  # pure green
        np.testing.assert_allclose(to_grayscale(image), 0.587, rtol=1e-5)

    def test_mean_for_other_channel_counts(self):
        image = np.stack([
            np.zeros((2, 2)), np.ones((2, 2)),
        ]).astype(np.float32)
        np.testing.assert_allclose(to_grayscale(image), 0.5)

    def test_rejects_bad_rank(self):
        with pytest.raises(ValueError):
            to_grayscale(np.zeros((1, 2, 3, 4)))


class TestEdgeMap:
    def test_detects_square_outline(self):
        image = np.zeros((20, 20), dtype=np.float32)
        image[5:15, 5:15] = 1.0
        mask = edge_map(image)
        assert mask.any()
        # Edges near the square boundary, none in the centre.
        assert not mask[9:11, 9:11].any()
        assert mask[4:7, 8:12].any()

    def test_blank_image_no_edges(self):
        assert not edge_map(np.zeros((8, 8), dtype=np.float32)).any()

    def test_explicit_threshold(self):
        image = np.zeros((10, 10), dtype=np.float32)
        image[:, 5:] = 1.0
        strict = edge_map(image, threshold=1e9)
        assert not strict.any()
        lax = edge_map(image, threshold=1e-3)
        assert lax.sum() >= edge_map(image).sum()

    def test_works_on_rgb(self, stop_image):
        assert edge_map(stop_image).any()

    def test_sobel_edges_shape(self, stop_image):
        assert sobel_edges(stop_image).shape == (128, 128)


class TestMorphology:
    def test_dilate_grows_single_pixel(self):
        mask = np.zeros((5, 5), dtype=bool)
        mask[2, 2] = True
        grown = binary_dilate(mask)
        assert grown.sum() == 9
        assert grown[1:4, 1:4].all()

    def test_dilate_connects_gap(self):
        mask = np.zeros((3, 5), dtype=bool)
        mask[1, 0] = True
        mask[1, 4] = True
        grown = binary_dilate(mask, iterations=2)
        assert grown[1].all()

    def test_erode_inverse_of_dilate_on_large_blob(self):
        mask = np.zeros((9, 9), dtype=bool)
        mask[2:7, 2:7] = True
        restored = binary_erode(binary_dilate(mask))
        np.testing.assert_array_equal(restored, mask)

    def test_zero_iterations_identity(self):
        mask = np.random.default_rng(0).random((6, 6)) > 0.5
        np.testing.assert_array_equal(binary_dilate(mask, 0), mask)

    def test_negative_iterations_rejected(self):
        with pytest.raises(ValueError):
            binary_dilate(np.zeros((2, 2), dtype=bool), -1)

"""Randomized differential parity for the batched vision primitives.

The batched qualifier engine stands on three vectorized primitives
whose outputs must equal their scalar references exactly:

* :func:`largest_component_batch` (bincount selection over union-find
  representatives) vs BFS ``label_components`` + ``largest_component``;
* :func:`trace_boundary_batch` (lockstep Moore walk) vs the sequential
  ``trace_boundary``;
* :func:`centroid_distance_series_batch` (length-grouped row-wise
  extraction) vs per-contour ``centroid_distance_series``.

Fuzzed masks cover empty, full, single-pixel, sparse-fragment and
dense-blob geometries at random rectangle sizes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.vision.contours import (
    label_components,
    largest_component,
    largest_component_batch,
    trace_boundary,
    trace_boundary_batch,
)
from repro.vision.series import (
    centroid_distance_series,
    centroid_distance_series_batch,
)
from tests.support.fuzz import (
    assert_arrays_bitwise_equal,
    differential_cases,
    random_mask_batch,
)


@pytest.mark.parametrize("rng", differential_cases(8, root_seed=314159))
def test_vision_primitives_match_scalar_references(rng):
    masks = random_mask_batch(rng)
    components, found = largest_component_batch(masks)
    boundaries = trace_boundary_batch(components)
    contours = []
    for i, mask in enumerate(masks):
        context = f"mask {i} of {masks.shape}"
        if not mask.any():
            assert not found[i], context
            assert not components[i].any(), context
            assert boundaries[i] is None, context
            continue
        assert found[i], context
        labels, count = label_components(mask)
        want_component, area = largest_component(labels)
        assert_arrays_bitwise_equal(
            components[i], want_component, context
        )
        want_points = trace_boundary(want_component)
        assert boundaries[i] is not None, context
        assert_arrays_bitwise_equal(
            boundaries[i], want_points, context
        )
        if len(want_points) >= 3:
            contours.append(want_points)
    if contours:
        n_samples = int(rng.choice([64, 128]))
        got_series = centroid_distance_series_batch(
            contours, n_samples=n_samples
        )
        for j, points in enumerate(contours):
            assert_arrays_bitwise_equal(
                got_series[j],
                centroid_distance_series(points, n_samples=n_samples),
                f"series {j}",
            )


def test_series_batch_rejects_degenerate_contours():
    with pytest.raises(ValueError):
        centroid_distance_series_batch(
            [np.array([[0, 0], [0, 1]])]
        )


def test_series_batch_empty_input():
    assert centroid_distance_series_batch([]).shape == (0, 128)


def test_trace_batch_matches_scalar_on_single_pixel():
    mask = np.zeros((1, 5, 7), dtype=bool)
    mask[0, 2, 3] = True
    [points] = trace_boundary_batch(mask)
    assert_arrays_bitwise_equal(points, trace_boundary(mask[0]))

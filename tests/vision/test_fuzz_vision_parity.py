"""Randomized differential parity for the batched vision primitives.

The batched qualifier engine stands on three vectorized primitives
whose outputs must equal their scalar references exactly:

* :func:`largest_component_batch` (bincount selection over union-find
  representatives) vs BFS ``label_components`` + ``largest_component``;
* :func:`trace_boundary_batch` (lockstep Moore walk) vs the sequential
  ``trace_boundary``;
* :func:`centroid_distance_series_batch` (length-grouped row-wise
  extraction) vs per-contour ``centroid_distance_series``.

Fuzzed masks cover empty, full, single-pixel, sparse-fragment and
dense-blob geometries at random rectangle sizes.

The frontend batch forms (grayscale, correlation, Sobel, edge maps,
labelling, dilation) carry the same contract and are fuzzed here
against their scalar references on mixed rendered/noise/degenerate
image batches.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.vision.contours import (
    label_components,
    label_components_batch,
    largest_component,
    largest_component_batch,
    trace_boundary,
    trace_boundary_batch,
)
from repro.vision.edges import (
    edge_map,
    edge_map_batch,
    sobel_edges,
    sobel_edges_batch,
    to_grayscale,
    to_grayscale_batch,
)
from repro.vision.filters import (
    correlate2d,
    correlate2d_batch,
    gradient_magnitude,
    gradient_magnitude_batch,
)
from repro.vision.morphology import binary_dilate, binary_dilate_batch
from repro.vision.series import (
    centroid_distance_series,
    centroid_distance_series_batch,
)
from tests.support.fuzz import (
    assert_arrays_bitwise_equal,
    differential_cases,
    random_image_batch,
    random_mask_batch,
)


@pytest.mark.parametrize("rng", differential_cases(8, root_seed=314159))
def test_vision_primitives_match_scalar_references(rng):
    masks = random_mask_batch(rng)
    components, found = largest_component_batch(masks)
    boundaries = trace_boundary_batch(components)
    contours = []
    for i, mask in enumerate(masks):
        context = f"mask {i} of {masks.shape}"
        if not mask.any():
            assert not found[i], context
            assert not components[i].any(), context
            assert boundaries[i] is None, context
            continue
        assert found[i], context
        labels, count = label_components(mask)
        want_component, area = largest_component(labels)
        assert_arrays_bitwise_equal(
            components[i], want_component, context
        )
        want_points = trace_boundary(want_component)
        assert boundaries[i] is not None, context
        assert_arrays_bitwise_equal(
            boundaries[i], want_points, context
        )
        if len(want_points) >= 3:
            contours.append(want_points)
    if contours:
        n_samples = int(rng.choice([64, 128]))
        got_series = centroid_distance_series_batch(
            contours, n_samples=n_samples
        )
        for j, points in enumerate(contours):
            assert_arrays_bitwise_equal(
                got_series[j],
                centroid_distance_series(points, n_samples=n_samples),
                f"series {j}",
            )


@pytest.mark.parametrize("rng", differential_cases(8, root_seed=628318))
def test_vision_frontend_batches_match_scalar_references(rng):
    images = random_image_batch(rng)
    kernel = rng.normal(size=(3, 3))
    iterations = int(rng.integers(0, 3))
    threshold = float(rng.uniform(0.05, 0.5))

    gray = to_grayscale_batch(images)
    corr = correlate2d_batch(gray, kernel)
    magnitude = gradient_magnitude_batch(gray)
    edges = sobel_edges_batch(images)
    masks_default = edge_map_batch(images)
    masks_fixed = edge_map_batch(images, threshold=threshold)
    labels, counts = label_components_batch(masks_default)
    dilated = binary_dilate_batch(masks_default, iterations=iterations)

    for i, image in enumerate(images):
        context = f"image {i} of {images.shape}"
        want_gray = to_grayscale(image)
        assert_arrays_bitwise_equal(gray[i], want_gray, context)
        assert_arrays_bitwise_equal(
            corr[i], correlate2d(want_gray, kernel), context
        )
        assert_arrays_bitwise_equal(
            magnitude[i], gradient_magnitude(want_gray), context
        )
        assert_arrays_bitwise_equal(edges[i], sobel_edges(image), context)
        assert_arrays_bitwise_equal(
            masks_default[i], edge_map(image), context
        )
        assert_arrays_bitwise_equal(
            masks_fixed[i], edge_map(image, threshold=threshold), context
        )
        want_labels, want_count = label_components(masks_default[i])
        assert counts[i] == want_count, context
        assert_arrays_bitwise_equal(labels[i], want_labels, context)
        assert_arrays_bitwise_equal(
            dilated[i],
            binary_dilate(masks_default[i], iterations=iterations),
            context,
        )


def test_series_batch_rejects_degenerate_contours():
    with pytest.raises(ValueError):
        centroid_distance_series_batch(
            [np.array([[0, 0], [0, 1]])]
        )


def test_series_batch_empty_input():
    assert centroid_distance_series_batch([]).shape == (0, 128)


def test_trace_batch_matches_scalar_on_single_pixel():
    mask = np.zeros((1, 5, 7), dtype=bool)
    mask[0, 2, 3] = True
    [points] = trace_boundary_batch(mask)
    assert_arrays_bitwise_equal(points, trace_boundary(mask[0]))

"""Sobel kernels, stacks, correlation, gradient magnitude."""

from __future__ import annotations

import numpy as np
import pytest

from repro.vision.filters import (
    SOBEL_X,
    SOBEL_Y,
    correlate2d,
    embed_kernel,
    gradient_magnitude,
    prewitt_kernels,
    scharr_kernels,
    sobel_axis_stack,
    sobel_filter_stack,
)


class TestKernels:
    def test_sobel_shapes_and_antisymmetry(self):
        assert SOBEL_X.shape == (3, 3)
        np.testing.assert_array_equal(SOBEL_Y, SOBEL_X.T)
        # Derivative kernels must sum to zero (no DC response).
        assert SOBEL_X.sum() == 0.0
        assert SOBEL_Y.sum() == 0.0

    def test_scharr_prewitt_zero_dc(self):
        for gx, gy in (scharr_kernels(), prewitt_kernels()):
            assert gx.sum() == 0.0
            assert gy.sum() == 0.0
            np.testing.assert_array_equal(gy, gx.T)

    def test_embed_centres_kernel(self):
        out = embed_kernel(SOBEL_X, 7)
        assert out.shape == (7, 7)
        np.testing.assert_array_equal(out[2:5, 2:5], SOBEL_X)
        assert out.sum() == 0.0

    def test_embed_rejects_too_small_target(self):
        with pytest.raises(ValueError):
            embed_kernel(SOBEL_X, 2)

    def test_filter_stack_alternates_axes(self):
        stack = sobel_filter_stack(3, 3)
        assert stack.shape == (3, 3, 3)
        np.testing.assert_array_equal(stack[0], SOBEL_X)
        np.testing.assert_array_equal(stack[1], SOBEL_Y)
        np.testing.assert_array_equal(stack[2], SOBEL_X)

    def test_filter_stack_embedded_at_11(self):
        stack = sobel_filter_stack(11, 3)
        assert stack.shape == (3, 11, 11)
        np.testing.assert_array_equal(stack[0, 4:7, 4:7], SOBEL_X)

    def test_axis_stack_uniform(self):
        sx = sobel_axis_stack("x", 5, 3)
        assert sx.shape == (3, 5, 5)
        np.testing.assert_array_equal(sx[0], sx[1])
        np.testing.assert_array_equal(sx[0], sx[2])
        with pytest.raises(ValueError):
            sobel_axis_stack("z", 5, 3)


class TestCorrelate:
    def test_output_shape_same(self, rng):
        image = rng.standard_normal((12, 15)).astype(np.float32)
        assert correlate2d(image, SOBEL_X).shape == (12, 15)

    def test_vertical_edge_detected_by_sobel_x(self):
        image = np.zeros((8, 8), dtype=np.float32)
        image[:, 4:] = 1.0
        response = correlate2d(image, SOBEL_X)
        # Peak response along the edge column, zero far from it.
        assert abs(response[4, 3]) + abs(response[4, 4]) > 0
        assert response[4, 1] == 0.0

    def test_horizontal_edge_invisible_to_sobel_x(self):
        image = np.zeros((8, 8), dtype=np.float32)
        image[4:, :] = 1.0
        response = correlate2d(image, SOBEL_X)
        np.testing.assert_allclose(response, 0.0, atol=1e-6)

    def test_constant_image_zero_response(self):
        image = np.full((6, 6), 3.3, dtype=np.float32)
        np.testing.assert_allclose(
            correlate2d(image, SOBEL_X), 0.0, atol=1e-5
        )

    def test_border_replication_no_frame_artifacts(self):
        # A constant image must produce zero response at the borders
        # too (zero padding would create a spurious frame).
        image = np.full((10, 10), 5.0, dtype=np.float32)
        mag = gradient_magnitude(image)
        np.testing.assert_allclose(mag, 0.0, atol=1e-4)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            correlate2d(np.zeros((2, 2, 2)), SOBEL_X)


class TestGradientMagnitude:
    def test_isotropy_of_edges(self):
        # A vertical and a horizontal edge of equal contrast must give
        # equal peak magnitudes.
        vert = np.zeros((16, 16), dtype=np.float32)
        vert[:, 8:] = 1.0
        horiz = vert.T.copy()
        assert np.isclose(
            gradient_magnitude(vert).max(),
            gradient_magnitude(horiz).max(),
        )

    def test_nonnegative(self, rng):
        image = rng.standard_normal((9, 9)).astype(np.float32)
        assert (gradient_magnitude(image) >= 0).all()

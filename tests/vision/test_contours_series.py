"""Contour tracing, components, centroid-distance series."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.shapes2d import disk_mask, polygon_mask, regular_polygon
from repro.vision.contours import (
    label_components,
    largest_contour,
    trace_boundary,
)
from repro.vision.series import (
    centroid,
    centroid_distance_series,
    resample_series,
    shape_signature,
)


class TestComponents:
    def test_empty_mask(self):
        labels, count = label_components(np.zeros((4, 4), dtype=bool))
        assert count == 0
        assert (labels == 0).all()

    def test_two_separate_blobs(self):
        mask = np.zeros((8, 8), dtype=bool)
        mask[1:3, 1:3] = True
        mask[5:7, 5:7] = True
        labels, count = label_components(mask)
        assert count == 2
        assert labels[1, 1] != labels[5, 5]

    def test_diagonal_touch_is_connected(self):
        mask = np.zeros((4, 4), dtype=bool)
        mask[0, 0] = True
        mask[1, 1] = True
        _, count = label_components(mask)
        assert count == 1


class TestTraceBoundary:
    def test_single_pixel(self):
        mask = np.zeros((3, 3), dtype=bool)
        mask[1, 1] = True
        points = trace_boundary(mask)
        np.testing.assert_array_equal(points, [[1, 1]])

    def test_square_boundary_complete(self):
        mask = np.zeros((10, 10), dtype=bool)
        mask[2:8, 2:8] = True
        points = trace_boundary(mask)
        # Perimeter of a 6x6 block is 20 boundary pixels.
        assert len(points) == 20
        as_set = {tuple(p) for p in points}
        assert (2, 2) in as_set and (7, 7) in as_set
        assert (3, 3) not in as_set  # interior

    def test_disk_boundary_circular(self):
        mask = disk_mask((30, 30), (15.0, 15.0), 10.0)
        points = trace_boundary(mask)
        distances = np.hypot(
            points[:, 0] - 15.0, points[:, 1] - 15.0
        )
        assert abs(distances.mean() - 10.0) < 1.0
        assert distances.std() < 0.7

    def test_boundary_points_are_foreground(self):
        mask = disk_mask((20, 20), (10.0, 10.0), 6.0)
        points = trace_boundary(mask)
        assert mask[points[:, 0], points[:, 1]].all()

    def test_empty_mask_raises(self):
        with pytest.raises(ValueError):
            trace_boundary(np.zeros((3, 3), dtype=bool))

    def test_ring_traces_outer_edge(self):
        outer = disk_mask((40, 40), (20.0, 20.0), 15.0)
        inner = disk_mask((40, 40), (20.0, 20.0), 10.0)
        ring = outer & ~inner
        points = trace_boundary(ring)
        distances = np.hypot(points[:, 0] - 20.0, points[:, 1] - 20.0)
        # Moore tracing from the topmost pixel walks the outer edge.
        assert distances.min() > 13.0


class TestLargestContour:
    def test_picks_bigger_component(self):
        mask = np.zeros((20, 20), dtype=bool)
        mask[1:4, 1:4] = True      # 9 px
        mask[8:16, 8:16] = True    # 64 px
        contour = largest_contour(mask)
        assert contour.area == 64
        assert (contour.points >= 8).all()

    def test_raises_on_empty(self):
        with pytest.raises(ValueError):
            largest_contour(np.zeros((5, 5), dtype=bool))

    def test_contour_centroid(self):
        mask = disk_mask((21, 21), (10.0, 10.0), 7.0)
        contour = largest_contour(mask)
        cr, cc = contour.centroid()
        assert abs(cr - 10.0) < 0.5 and abs(cc - 10.0) < 0.5


class TestCentroid:
    def test_simple_mean(self):
        points = np.array([[0, 0], [0, 2], [2, 0], [2, 2]])
        assert centroid(points) == (1.0, 1.0)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            centroid(np.zeros((3,)))


class TestDistanceSeries:
    def test_circle_series_flat(self):
        mask = disk_mask((64, 64), (32.0, 32.0), 20.0)
        contour = largest_contour(mask)
        series = centroid_distance_series(contour, n_samples=90)
        assert series.shape == (90,)
        assert series.std() / series.mean() < 0.05

    def test_octagon_series_has_eight_peaks(self):
        verts = regular_polygon((64.0, 64.0), 50.0, 8, np.pi / 8)
        mask = polygon_mask((128, 128), verts)
        contour = largest_contour(mask)
        series = centroid_distance_series(contour, n_samples=128)
        from repro.workflows.shape_series import count_corners

        assert count_corners(series) == 8

    def test_series_range_matches_geometry(self):
        verts = regular_polygon((64.0, 64.0), 50.0, 8, np.pi / 8)
        mask = polygon_mask((128, 128), verts)
        series = centroid_distance_series(
            largest_contour(mask), n_samples=128
        )
        # Octagon: apothem = R*cos(pi/8) ~ 0.924 R.
        assert 44.0 < series.min() < 49.0
        assert 48.0 < series.max() < 52.0

    def test_needs_three_points(self):
        with pytest.raises(ValueError):
            centroid_distance_series(np.array([[0, 0], [1, 1]]), 16)

    def test_resample_series(self):
        series = np.linspace(0.0, 1.0, 11)
        out = resample_series(series, 5)
        np.testing.assert_allclose(out, np.linspace(0, 1, 5))
        with pytest.raises(ValueError):
            resample_series(np.array([1.0]), 4)

    def test_shape_signature_end_to_end(self, stop_image):
        series = shape_signature(stop_image, n_samples=128)
        assert series.shape == (128,)
        # Stop sign radius at scale 0.8 on 128px: about 51 px.
        assert 40.0 < series.mean() < 55.0


class TestArrayLabelling:
    """The array-parallel labeller must reproduce the BFS labelling
    *exactly* -- numbering included -- on any mask; the batched
    qualifier engine's exactness contract rests on it."""

    @pytest.mark.parametrize("density", [0.03, 0.1, 0.3, 0.5, 0.8, 1.0])
    def test_matches_bfs_on_random_masks(self, density):
        from repro.vision.contours import (
            label_components_array,
            label_components_batch,
        )

        rng = np.random.default_rng(int(density * 1000))
        masks = rng.random((12, 19, 23)) < density
        batch_labels, batch_counts = label_components_batch(masks)
        for i, mask in enumerate(masks):
            bfs_labels, bfs_count = label_components(mask)
            array_labels, array_count = label_components_array(mask)
            assert array_count == bfs_count
            np.testing.assert_array_equal(array_labels, bfs_labels)
            assert batch_counts[i] == bfs_count
            np.testing.assert_array_equal(batch_labels[i], bfs_labels)

    def test_empty_and_full(self):
        from repro.vision.contours import label_components_array

        labels, count = label_components_array(np.zeros((5, 7), dtype=bool))
        assert count == 0 and (labels == 0).all()
        labels, count = label_components_array(np.ones((5, 7), dtype=bool))
        assert count == 1 and (labels == 1).all()

    def test_largest_component_batch_matches_largest_contour(self):
        from repro.vision.contours import (
            label_components,
            largest_component,
            largest_component_batch,
        )

        rng = np.random.default_rng(4)
        masks = rng.random((8, 21, 17)) < 0.45
        components, found = largest_component_batch(masks)
        for i, mask in enumerate(masks):
            assert found[i] == mask.any()
            if not found[i]:
                assert not components[i].any()
                continue
            expected, _ = largest_component(label_components(mask)[0])
            np.testing.assert_array_equal(components[i], expected)

    def test_largest_component_tie_breaks_to_first_seed(self):
        from repro.vision.contours import largest_component_batch

        mask = np.zeros((1, 5, 9), dtype=bool)
        mask[0, 1, 1:3] = True  # two pixels, seen first
        mask[0, 3, 6:8] = True  # two pixels, later in row-major order
        components, found = largest_component_batch(mask)
        assert found[0]
        np.testing.assert_array_equal(components[0], mask[0] & (
            np.arange(9)[None, :] < 5
        ))


class TestBatchedFrontendParity:
    """Batched edge/dilate twins equal their scalar forms exactly."""

    def test_edge_map_batch_bitwise(self, stop_image, circle_image):
        from repro.vision.edges import edge_map, edge_map_batch

        stack = np.stack([
            np.asarray(stop_image, dtype=np.float32),
            np.asarray(circle_image, dtype=np.float32),
        ])
        for threshold in (None, 0.75):
            batch = edge_map_batch(stack, threshold=threshold)
            for i in range(len(stack)):
                np.testing.assert_array_equal(
                    batch[i], edge_map(stack[i], threshold=threshold)
                )

    def test_edge_map_batch_zero_images(self):
        from repro.vision.edges import edge_map_batch

        masks = edge_map_batch(np.zeros((3, 3, 12, 12), dtype=np.float32))
        assert not masks.any()

    def test_binary_dilate_batch(self):
        from repro.vision.morphology import binary_dilate
        from repro.vision.morphology import binary_dilate_batch

        rng = np.random.default_rng(11)
        masks = rng.random((6, 14, 15)) < 0.2
        for iterations in (0, 1, 2):
            batch = binary_dilate_batch(masks, iterations)
            for i in range(len(masks)):
                np.testing.assert_array_equal(
                    batch[i], binary_dilate(masks[i], iterations)
                )

    def test_correlate2d_batch_bitwise(self):
        from repro.vision.filters import (
            SOBEL_X,
            correlate2d,
            correlate2d_batch,
        )

        rng = np.random.default_rng(5)
        # Multiple sizes: exactness must not depend on geometry.
        for h, w in ((9, 11), (40, 40), (96, 96)):
            images = rng.standard_normal((5, h, w)).astype(np.float32)
            batch = correlate2d_batch(images, SOBEL_X)
            for i in range(len(images)):
                np.testing.assert_array_equal(
                    batch[i], correlate2d(images[i], SOBEL_X)
                )

"""Seeded randomized differential-parity harness.

The engine matrix keeps growing -- scalar vs batched qualifier, scalar
vs vectorized reliable conv, loop vs whole-array ECC decode -- and
every pairing carries the same contract: *bitwise identical results*.
Hand-enumerated parity cases rot as the input space grows; this
harness replaces them with systematic fuzzing, applying the same
discipline the engines themselves use (speculate with the fast path,
verify against the reference).

Design rules:

* **Deterministic by construction.**  Every case derives its generator
  from ``np.random.SeedSequence(root_seed, spawn_key=(index,))`` --
  the campaign engine's spawning scheme -- so a failing case's id
  (``caseNN``) is enough to replay it exactly, and adding cases never
  reshuffles existing ones.
* **Degenerates are first-class.**  Random inputs are biased toward
  the boundary cases that break batched code: empty masks, constant
  images, single pixels, tiny shapes, ragged batch sizes, mixed
  dtypes.
* **Bitwise assertions only.**  Comparisons go through storage bytes
  (``tobytes``, ``struct.pack``) -- float equality would wave through
  exactly the drift these tests exist to catch.
"""

from __future__ import annotations

import struct

import numpy as np
import pytest

from repro.data import render_sign

#: One root for the whole suite: cases are identified by (root, index).
DEFAULT_ROOT_SEED = 20260729


def case_rng(index: int, root_seed: int = DEFAULT_ROOT_SEED
             ) -> np.random.Generator:
    """The case's private, replayable generator."""
    return np.random.default_rng(
        np.random.SeedSequence(root_seed, spawn_key=(index,))
    )


def differential_cases(n: int, root_seed: int = DEFAULT_ROOT_SEED):
    """``pytest.mark.parametrize`` values for ``n`` fuzz cases.

    Usage::

        @pytest.mark.parametrize("rng", differential_cases(12))
        def test_parity(rng): ...
    """
    return [
        pytest.param(
            case_rng(index, root_seed), id=f"case{index:02d}"
        )
        for index in range(n)
    ]


# ---------------------------------------------------------------------------
# Input generators
# ---------------------------------------------------------------------------

#: Dtypes a caller may realistically hand the qualifier; every path
#: casts to float32 internally, and parity must survive the cast.
IMAGE_DTYPES = (np.float32, np.float64, np.uint8)


def random_image_batch(rng: np.random.Generator) -> np.ndarray:
    """A random ``(n, 3, h, w)`` or ``(n, h, w)`` image batch.

    Mixes rendered signs (the realistic path), noise, and degenerate
    images (all-zero, constant, single bright pixel, tiny blob) in one
    batch, with randomized batch size, resolution and dtype.
    """
    n = int(rng.integers(1, 9))
    size = int(rng.choice([16, 24, 32, 48, 64]))
    grayscale = bool(rng.random() < 0.25)
    dtype = IMAGE_DTYPES[int(rng.integers(len(IMAGE_DTYPES)))]
    images = []
    for _ in range(n):
        kind = int(rng.integers(6))
        if kind <= 1:  # rendered sign, random class and rotation
            image = render_sign(
                int(rng.integers(8)),
                size=size,
                rotation=float(rng.uniform(-np.pi, np.pi)),
            )
        elif kind == 2:  # uniform noise
            image = rng.random((3, size, size))
        elif kind == 3:  # all zeros: no contour anywhere
            image = np.zeros((3, size, size))
        elif kind == 4:  # constant: zero gradient everywhere
            image = np.full((3, size, size), float(rng.uniform(0.1, 1.0)))
        else:  # single bright pixel / tiny blob
            image = np.zeros((3, size, size))
            r, c = rng.integers(0, size, 2)
            image[:, r, c] = 1.0
            if rng.random() < 0.5:
                image[
                    :,
                    max(0, r - 1) : r + 2,
                    max(0, c - 1) : c + 2,
                ] = 1.0
        image = np.asarray(image, dtype=np.float64)
        if grayscale:
            image = image.mean(axis=0)
        if dtype == np.uint8:
            image = (np.clip(image, 0.0, 1.0) * 255).astype(np.uint8)
        else:
            image = image.astype(dtype)
        images.append(image)
    return np.stack(images)


def near_duplicate_images(
    rng: np.random.Generator, size: int | None = None
) -> list[tuple[str, np.ndarray]]:
    """A base image plus its near-duplicates, labelled by how they
    relate to the base at storage-bit granularity.

    The content-addressed response cache keys requests by storage
    words (``repro.serving.cache.response_digest``), so its sharing
    decisions must track *exactly* the distinctions the word-view
    comparators make: an exact copy shares, while a one-bit nudge, a
    signed-zero flip, a NaN payload, or a dtype change must key -- and
    therefore compute -- separately.  Labels: ``base`` / ``dup``
    (bitwise equal to base) and ``onebit`` / ``negzero`` / ``nan*`` /
    ``f64`` (each distinct from base and from each other).  ``size``
    pins the resolution (serving tests must match their model's input
    size); None randomizes it.
    """
    if size is None:
        size = int(rng.choice([16, 24, 32]))
    base = render_sign(
        int(rng.integers(8)),
        size=size,
        rotation=float(rng.uniform(-np.pi, np.pi)),
    ).astype(np.float32)
    row = int(rng.integers(size))
    col = int(rng.integers(size))

    onebit = base.copy()
    words = onebit.view(np.uint32)
    words[0, row, col] ^= np.uint32(1)  # one ULP in one pixel

    negzero = base.copy()
    negzero[1, row, col] = np.float32(-0.0)
    poszero = negzero.copy()
    poszero[1, row, col] = np.float32(0.0)  # same *values* as negzero

    nan_a = base.copy()
    nan_a.view(np.uint32)[2, row, col] = np.uint32(0x7FC00001)
    nan_b = base.copy()
    nan_b.view(np.uint32)[2, row, col] = np.uint32(0x7FC00002)

    return [
        ("base", base),
        ("dup", base.copy()),
        ("onebit", onebit),
        ("negzero", negzero),
        ("poszero", poszero),
        ("nan-payload-a", nan_a),
        ("nan-payload-b", nan_b),
        ("f64", base.astype(np.float64)),
    ]


def duplicate_heavy_traffic(
    rng: np.random.Generator,
    n_requests: int = 48,
    size: int | None = None,
) -> list[tuple[str, np.ndarray]]:
    """A request schedule dominated by duplicates: every
    near-duplicate variant appears at least once, the remainder are
    repeat draws -- the traffic shape that exercises cache hits,
    in-flight coalescing, and near-miss key distinctness all at once.
    Returns ``(label, image)`` pairs; equal labels mean bitwise-equal
    images (``base`` and ``dup`` are bitwise equal across labels)."""
    variants = near_duplicate_images(rng, size=size)
    traffic = list(variants)
    while len(traffic) < n_requests:
        label, image = variants[int(rng.integers(len(variants)))]
        traffic.append((label, image))
    order = rng.permutation(len(traffic))
    return [traffic[int(i)] for i in order]


def random_feature_map_batch(rng: np.random.Generator) -> np.ndarray:
    """A random reliable-feature-map batch for the integrated path:
    ``(n, h, w)``, ``(n, 1, h, w)`` or ``(n, 2, h, w)``, with some
    all-zero (dead) maps and sign-flipped responses mixed in."""
    n = int(rng.integers(1, 7))
    size = int(rng.choice([12, 20, 32, 48]))
    channels = int(rng.choice([0, 1, 2]))  # 0: no channel axis
    shape = (
        (n, size, size) if channels == 0 else (n, channels, size, size)
    )
    maps = rng.normal(0.0, 1.0, size=shape)
    for i in range(n):
        kind = int(rng.integers(4))
        if kind == 0:
            maps[i] = 0.0  # dead map: peak <= 0 short-circuit
        elif kind == 1:
            # An octagon-ish edge response: qualify-able content.
            sign = render_sign(
                0, size=size, rotation=float(rng.uniform(0, np.pi))
            ).mean(axis=0)
            maps[i] = sign - sign.mean()
    return maps.astype(np.float32)


def random_mask_batch(rng: np.random.Generator) -> np.ndarray:
    """A random boolean ``(n, h, w)`` mask stack biased toward
    labelling/tracing edge cases (empty, full, sparse, dense,
    single-pixel)."""
    n = int(rng.integers(1, 8))
    h = int(rng.integers(1, 40))
    w = int(rng.integers(1, 40))
    masks = np.zeros((n, h, w), dtype=bool)
    for i in range(n):
        kind = int(rng.integers(5))
        if kind == 0:
            pass  # empty
        elif kind == 1:
            masks[i] = True  # full
        elif kind == 2:
            masks[i, rng.integers(h), rng.integers(w)] = True
        elif kind == 3:
            masks[i] = rng.random((h, w)) < 0.08  # sparse fragments
        else:
            masks[i] = rng.random((h, w)) < 0.6  # dense blob(s)
    return masks


def random_codewords(
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Random SEC-DED codewords with injected bit errors.

    Returns ``(data, corrupted_code)``: random uint32 data words
    encoded, then randomly hit with 0, 1 or 2 bit flips per word
    (clean / correctable / uncorrectable), including flips in parity
    positions.
    """
    from repro.reliable.ecc import _N_POSITIONS, encode_words

    n = int(rng.integers(1, 200))
    data = rng.integers(0, 2**32, size=n, dtype=np.uint64).astype(
        np.uint32
    )
    code = encode_words(data)
    flips = rng.integers(0, 3, size=n)
    for i in range(n):
        positions = rng.choice(
            _N_POSITIONS, size=int(flips[i]), replace=False
        )
        for bit in positions:
            code[i] ^= np.uint64(1) << np.uint64(bit)
    return data, code


# ---------------------------------------------------------------------------
# Bitwise assertions
# ---------------------------------------------------------------------------


def float_bits(value: float) -> bytes:
    """The 64-bit storage pattern of a float (NaN-safe comparison)."""
    return struct.pack("<d", value)


def assert_arrays_bitwise_equal(got: np.ndarray, want: np.ndarray,
                                context: str = "") -> None:
    assert got.shape == want.shape, (
        f"{context}: shape {got.shape} != {want.shape}"
    )
    assert got.dtype == want.dtype, (
        f"{context}: dtype {got.dtype} != {want.dtype}"
    )
    assert got.tobytes() == want.tobytes(), (
        f"{context}: storage bytes differ"
    )


def assert_verdicts_bitwise_equal(got, want, context: str = "") -> None:
    """Verdict equality at storage-bit granularity: flags, distance
    bits, word, reliability."""
    assert got.matches == want.matches, (
        f"{context}: matches {got.matches} != {want.matches}"
    )
    assert float_bits(got.distance) == float_bits(want.distance), (
        f"{context}: distance bits {got.distance!r} != {want.distance!r}"
    )
    assert got.word == want.word, (
        f"{context}: word {got.word!r} != {want.word!r}"
    )
    assert got.reliable == want.reliable, (
        f"{context}: reliable {got.reliable} != {want.reliable}"
    )


def assert_reports_equal(got, want, context: str = "") -> None:
    """Execution-report equality over the scalar/vectorized contract
    fields (operations, error/rollback/failure counters, kind)."""
    fields = (
        "operations",
        "errors_detected",
        "rollbacks",
        "persistent_failures",
        "operator_kind",
    )
    for field in fields:
        assert getattr(got, field) == getattr(want, field), (
            f"{context}: report.{field} "
            f"{getattr(got, field)!r} != {getattr(want, field)!r}"
        )
    assert got.failed_outputs == want.failed_outputs, (
        f"{context}: failed_outputs differ"
    )

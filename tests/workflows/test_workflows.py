"""Experiment workflows: structure and paper-claim assertions.

These are integration tests; the session-scoped ``trained_model``
fixture keeps them fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import small_cnn
from repro.workflows import (
    run_bucket_dynamics,
    run_confusion_comparison,
    run_cost_comparison,
    run_coverage_study,
    run_figure3,
    run_figure4,
    run_table1,
    time_sax_qualifier,
)
from repro.workflows.shape_series import (
    ascii_plot,
    count_corners,
    qualifier_verdicts_by_class,
)


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table1(full=False, seed=0)

    def test_ordering_matches_paper(self, result):
        """native << plain < redundant (the paper's Table 1 shape)."""
        assert result.native_seconds < result.plain_seconds
        assert result.plain_seconds < result.redundant_seconds

    def test_redundant_ratio_in_band(self, result):
        # Paper: 2.15x.  Python wrapper overhead compresses the
        # wall-clock ratio; it must still land clearly above 1 and
        # not beyond the theoretical 2.15 plus margin.
        assert 1.1 < result.redundant_over_plain < 2.6

    def test_unit_execution_ratio_exact(self, result):
        assert result.unit_execution_ratio == 2.0

    def test_per_op_python_orders_of_magnitude_above_native(self, result):
        assert result.plain_over_native > 100

    def test_extrapolation_consistent(self, result):
        # Extrapolated full-scale plain time should be within an
        # order of magnitude of the paper's 301.91 s.
        projected = result.extrapolated_plain_full()
        assert 30.0 < projected < 3000.0

    def test_to_text_contains_rows(self, result):
        text = result.to_text()
        assert "Algorithm 1" in text and "Algorithm 2" in text

    def test_sax_timing_order_of_magnitude(self):
        seconds = time_sax_qualifier(image_size=227, repeats=1)
        # Paper: 1.942 s naive; ours is vectorised but must stay well
        # under the reliable-conv times and above trivial noise.
        assert 1e-4 < seconds < 10.0


class TestFigure3:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure3(rotation_deg=7.0)

    def test_eight_corners_clearly_identified(self, result):
        assert result.corner_count == 8

    def test_word_and_series_shapes(self, result):
        assert len(result.sax_word) == 32
        assert result.series.shape == (128,)

    def test_text_rendering(self, result):
        text = result.to_text()
        assert result.sax_word in text
        assert "corners detected: 8" in text

    def test_only_stop_matches_octagon(self):
        verdicts = qualifier_verdicts_by_class()
        assert verdicts["stop"] is True
        assert sum(verdicts.values()) == 1

    def test_count_corners_on_synthetic_wave(self):
        angles = np.linspace(0, 2 * np.pi, 128, endpoint=False)
        wave = 10.0 + np.cos(8 * angles)
        assert count_corners(wave) == 8

    def test_ascii_plot_dimensions(self):
        plot = ascii_plot(np.sin(np.linspace(0, 6, 50)), height=7,
                          width=40)
        lines = plot.splitlines()
        assert len(lines) == 7
        assert all(len(line) == 40 for line in lines)
        with pytest.raises(ValueError):
            ascii_plot(np.zeros(4), height=1)


class TestFigure4:
    @pytest.fixture(scope="class")
    def result(self, trained_model):
        return run_figure4(trained=trained_model)

    def test_one_measurement_per_filter(self, result):
        assert len(result.confidences) == result.n_filters
        assert len(result.accuracies) == result.n_filters

    def test_confidence_varies_substantially(self, result):
        """The paper's headline Figure 4 observation."""
        assert result.confidence_spread > 0.02

    def test_model_restored_after_sweep(self, trained_model):
        # Sweep must not leave a Sobel filter behind: accuracy of the
        # fixture model is unchanged.
        from repro.analysis import accuracy

        value = accuracy(
            trained_model.model, trained_model.test_x,
            trained_model.test_y,
        )
        assert value == trained_model.test_accuracy

    def test_reference_line_present(self, result):
        assert 0.0 <= result.original_accuracy <= 1.0
        assert "original accuracy" in result.to_text()

    def test_most_sensitive_filter_valid_index(self, result):
        assert 0 <= result.most_sensitive_filter() < result.n_filters


class TestConfusionComparison:
    def test_single_replacement_no_substantial_difference(
        self, trained_model
    ):
        """Paper: 'we compare both the confusion matrices ... and note
        no substantial difference in classification accuracy.'"""
        comparison = run_confusion_comparison(trained=trained_model)
        assert abs(comparison.accuracy_drop) < 0.15
        n_test = len(trained_model.test_y)
        assert comparison.original.max_abs_difference(
            comparison.replaced
        ) <= max(3, n_test // 10)

    def test_text_includes_matrices(self, trained_model):
        comparison = run_confusion_comparison(trained=trained_model)
        text = comparison.to_text()
        assert "original confusion matrix" in text
        assert "stop" in text


class TestCostComparison:
    @pytest.fixture(scope="class")
    def result(self):
        return run_cost_comparison(
            small_cnn(32, 8, conv1_filters=8), (3, 32, 32)
        )

    def test_hybrid_between_native_and_duplicated(self, result):
        assert result.native_ops < result.hybrid_ops
        assert result.hybrid_ops < result.duplicated_ops

    def test_sweep_monotone(self, result):
        ops = [row[1] for row in result.partition_sweep]
        assert ops == sorted(ops)

    def test_guarantee_numbers_attached(self, result):
        assert result.protected_sdc < result.unprotected_sdc

    def test_text(self, result):
        text = result.to_text()
        assert "hybrid saves" in text


class TestBucketDynamics:
    def test_canonical_rows_match_paper_sentence(self):
        result = run_bucket_dynamics(factors=(2,))
        by_pattern = {
            pattern: overflowed
            for _, _, pattern, overflowed in result.rows
        }
        assert by_pattern["ssssssEssssss"] is False
        assert by_pattern["ssssssEEssssss"] is True
        assert by_pattern["ssEssssssEss"] is False

    def test_text_table(self):
        text = run_bucket_dynamics().to_text()
        assert "ABORT" in text and "survive" in text


class TestCoverageStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return run_coverage_study(
            fault_kinds=("transient", "permanent"),
            probabilities=(1e-2,),
            runs=60,
            seed=3,
        )

    def test_row_grid_complete(self, result):
        assert len(result.rows) == 2 * 3  # 2 fault kinds x 3 operators

    def test_dmr_beats_plain_on_transients(self, result):
        rows = {
            (r.fault_kind, r.operator_kind): r for r in result.rows
        }
        assert rows[("transient", "plain")].coverage == 0.0
        assert rows[("transient", "dmr")].coverage == 1.0
        assert rows[("transient", "tmr")].sdc_rate == 0.0

    def test_permanent_faults_all_protections_fail(self, result):
        rows = {
            (r.fault_kind, r.operator_kind): r for r in result.rows
        }
        for op in ("plain", "dmr", "tmr"):
            assert rows[("permanent", op)].sdc_rate == 1.0

    def test_wilson_bound_at_least_point(self, result):
        for row in result.rows:
            assert row.sdc_upper_bound >= row.sdc_rate - 1e-12

    def test_text_table(self, result):
        assert "coverage" in result.to_text()

"""Golden regression pin for the migrated hybrid fault study.

``run_hybrid_under_faults`` now runs on the campaign engine; this
test pins a small-seed summary -- per-row decisions, detected-error
counts and the campaign's decision counts per outcome class -- so any
future engine change that silently alters workflow results fails
loudly instead of drifting.

The pinned numbers come from classification decisions and integer
fault-stream draws (not raw float aggregates), so they are stable
across platforms and BLAS builds.
"""

from __future__ import annotations

import pytest

from repro.campaigns import run_campaign
from repro.workflows import run_hybrid_under_faults
from repro.workflows.hybrid_fault_study import build_hybrid_fault_spec

PROBABILITIES = (0.0, 2e-4)
INPUT_SIZE = 64
SEED = 0

#: (fault_probability, decision, qualifier_matches, errors_detected,
#:  rollbacks, persistent_failures)
#:
#: Re-pinned 198 -> 202 detected errors when the DMR qualifier moved
#: from float ``==`` to 64-bit word comparison: a sign-bit upset on a
#: zero result (+0.0 vs -0.0 -- common on Sobel feature maps, which
#: are full of exact zeros) used to be silently qualified and now
#: correctly disagrees, triggering a rollback that also shifts the
#: downstream fault-stream draws.  Verified by re-running this
#: campaign with the old comparator restored: it reproduces 198/198
#: exactly, so the vectorized-engine work itself leaves the campaign
#: untouched.
GOLDEN_ROWS = [
    (0.0, "confirmed", True, 0, 0, 0),
    (2e-4, "confirmed", True, 202, 202, 0),
]

#: Decision counts per outcome class for the same campaign.
GOLDEN_OUTCOME_COUNTS = {
    "clean": 1,
    "masked": 0,
    "detected_recovered": 1,
    "detected_aborted": 0,
    "silent_corruption": 0,
}


@pytest.fixture(scope="module")
def result():
    return run_hybrid_under_faults(
        probabilities=PROBABILITIES, input_size=INPUT_SIZE, seed=SEED
    )


class TestGoldenRows:
    def test_row_for_each_probability(self, result):
        assert [
            row.fault_probability for row in result.rows
        ] == list(PROBABILITIES)

    def test_rows_match_golden(self, result):
        observed = [
            (
                row.fault_probability,
                row.decision,
                row.qualifier_matches,
                row.errors_detected,
                row.rollbacks,
                row.persistent_failures,
            )
            for row in result.rows
        ]
        assert observed == GOLDEN_ROWS

    def test_safety_invariant_still_holds(self, result):
        assert result.never_silently_confirmed_under_abort()


class TestGoldenCampaignAggregates:
    def test_outcome_counts_pinned(self):
        spec = build_hybrid_fault_spec(
            probabilities=PROBABILITIES,
            input_size=INPUT_SIZE,
            seed=SEED,
        )
        report = run_campaign(spec)
        assert report.counts == GOLDEN_OUTCOME_COUNTS
        # Both rows took the golden decision: the confusion matrix is
        # purely diagonal.
        for cell in report.cells.values():
            assert cell.confusion == {("confirmed", "confirmed"): 1}

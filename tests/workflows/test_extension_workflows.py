"""Extension workflows: rollback distance, hybrid under faults."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workflows import (
    expected_cost,
    optimal_segment_size,
    run_hybrid_under_faults,
    run_rollback_distance,
)


class TestExpectedCost:
    def test_zero_faults_favor_large_segments(self):
        # Without faults, cost/op -> 2 + c/s: monotone decreasing in s.
        costs = [expected_cost(s, 0.0, 8.0) for s in (1, 4, 64, 1024)]
        assert costs == sorted(costs, reverse=True)
        assert costs[-1] == pytest.approx(2.0, abs=0.01)

    def test_high_faults_favor_small_segments(self):
        assert expected_cost(1, 0.05, 8.0) < expected_cost(256, 0.05, 8.0)

    def test_optimum_shrinks_with_fault_rate(self):
        sizes = (1, 4, 16, 64, 256, 1024)
        optima = [
            optimal_segment_size(p, 8.0, candidates=sizes)
            for p in (1e-5, 1e-3, 1e-1)
        ]
        assert optima[0] >= optima[1] >= optima[2]
        assert optima[2] <= 4

    def test_no_compare_cost_makes_op_level_optimal(self):
        # With free comparisons, the paper's s = 1 is always best.
        assert optimal_segment_size(0.01, 0.0) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_cost(0, 0.1, 1.0)
        with pytest.raises(ValueError):
            expected_cost(4, 1.0, 1.0)


class TestRollbackDistanceWorkflow:
    @pytest.fixture(scope="class")
    def result(self):
        return run_rollback_distance(trials=25, seed=1)

    def test_grid_complete(self, result):
        assert len(result.analytic) == 4 * 5

    def test_simulation_tracks_analytic(self, result):
        for (p, s), simulated in result.simulated.items():
            analytic = result.analytic[(p, s)]
            assert simulated == pytest.approx(analytic, rel=0.35), (
                f"p={p} s={s}"
            )

    def test_text_marks_optima(self, result):
        assert "*" in result.to_text()


class TestHybridUnderFaults:
    @pytest.fixture(scope="class")
    def result(self):
        # One clean and one moderately-faulty inference at a small
        # input size keeps this test under ~10 s.
        return run_hybrid_under_faults(
            probabilities=(0.0, 1e-4), input_size=96, seed=0
        )

    def test_clean_run_confirms(self, result):
        clean = result.rows[0]
        assert clean.fault_probability == 0.0
        assert clean.decision == "confirmed"
        assert clean.errors_detected == 0

    def test_faulty_run_recovers_and_still_confirms(self, result):
        faulty = result.rows[1]
        assert faulty.errors_detected > 0
        assert faulty.rollbacks == faulty.errors_detected
        assert faulty.persistent_failures == 0
        assert faulty.decision == "confirmed"
        assert faulty.qualifier_matches

    def test_safety_invariant(self, result):
        assert result.never_silently_confirmed_under_abort()

    def test_text_table(self, result):
        assert "decision" in result.to_text()

"""MUT-DEFAULT corpus: None defaults materialised inside (clean)."""


def append_result(value, results=None):
    results = [] if results is None else results
    results.append(value)
    return results


def merge(config, overrides=None):
    return {**config, **(overrides or {})}


def scale(value, factor=1.0, label="x"):
    return value * factor  # immutable defaults are fine

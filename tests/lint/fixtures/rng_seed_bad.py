"""RNG-SEED corpus (linted with strict paths matching this file).

Unseeded, literal-seeded, and module-level generators: all flagged.
"""

import numpy as np

MODULE_RNG = np.random.default_rng(1234)  # module-level shared stream


class FaultSource:
    rng = np.random.default_rng()  # class attribute: shared + fresh entropy

    def unseeded(self):
        return np.random.default_rng()  # fresh entropy

    def constant(self):
        return np.random.default_rng(0)  # every caller gets one stream

"""AMBIENT-TIME corpus: clock-free compute (none flagged)."""


def stamp_result(value: float, logical_step: int) -> dict:
    # Logical clocks replay; wall clocks do not.
    return {"value": value, "at": logical_step}

"""REDUCE-ORDER corpus: tap-sequential accumulation (none flagged)."""

import numpy as np


def correlate_tap_sequential(image, taps):
    """Fixed summation tree: accumulate one tap at a time, in a
    deterministic order independent of input shape."""
    acc = np.zeros_like(image)
    for offset, weight in taps:
        acc = acc + weight * np.roll(image, offset)
    return acc

"""LOCK-GUARD corpus: guarded attributes touched bare (flagged)."""

import threading


class Server:
    _guarded_by = {"_lock": ("_accepting", "_pending")}

    def __init__(self):
        self._lock = threading.Lock()
        self._accepting = True  # __init__ is exempt
        self._pending = 0

    def submit(self):
        if not self._accepting:  # read outside the lock
            raise RuntimeError("closed")
        self._pending += 1  # write outside the lock

    def deferred(self):
        with self._lock:
            def flip():
                self._accepting = False  # closure runs after release
            return flip

"""FLOAT-APPROX corpus: word-level comparison (none flagged)."""

import numpy as np

from repro.reliable.bits import word_view


def words_agree(a: np.ndarray, b: np.ndarray) -> bool:
    return bool((word_view(a) == word_view(b)).all())

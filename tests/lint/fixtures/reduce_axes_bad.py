"""REDUCE-AXES corpus: multi-axis reductions (all flagged)."""

import numpy as np


def collapse(batch):
    return np.sum(batch, axis=(1, 2))


def collapse_method(batch):
    return batch.sum(axis=(0, 1))


def product(batch):
    return np.prod(batch, axis=(2, 3))

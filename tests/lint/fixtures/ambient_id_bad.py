"""AMBIENT-ID corpus: id()-keyed state (all flagged)."""

import numpy as np


class Optimizer:
    def __init__(self, params):
        self.params = params
        self.state = {id(p): np.zeros_like(p) for p in params}

    def update(self, param):
        return self.state[id(param)]

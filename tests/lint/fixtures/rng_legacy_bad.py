"""RNG-LEGACY corpus: numpy hidden-global-stream API (all flagged)."""

import numpy as np
import numpy.random as npr


def seed_everything(seed: int) -> None:
    np.random.seed(seed)  # global stream


def noise(shape):
    return np.random.rand(*shape)


def aliased(n: int):
    return npr.randint(0, 10, size=n)  # aliased module import


def legacy_object():
    return np.random.RandomState(7)  # legacy generator class

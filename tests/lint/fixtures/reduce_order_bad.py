"""REDUCE-ORDER corpus: BLAS-shaped contractions (all flagged)."""

import numpy as np


def gemm(patches, weights):
    return patches @ weights.T  # matmul operator


def contraction(a, b):
    return np.einsum("ij,jk->ik", a, b)


def tensor_contraction(maps, kernel):
    return np.tensordot(maps, kernel, axes=2)


def dot_call(a, b):
    return np.dot(a, b)


def dot_method(a, b):
    return a.dot(b)  # method form, same BLAS dispatch

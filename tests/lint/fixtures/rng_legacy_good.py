"""RNG-LEGACY corpus: explicit Generator discipline (none flagged)."""

import numpy as np


def noise(shape, rng: np.random.Generator):
    return rng.normal(size=shape)  # method on an explicit Generator


def spawn_stream(seed: int, trial: int) -> np.random.Generator:
    seq = np.random.SeedSequence(seed, spawn_key=(trial,))
    return np.random.default_rng(seq)

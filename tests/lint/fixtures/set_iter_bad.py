"""SET-ITER corpus: hash-order iteration feeding numbers (flagged)."""


def accumulate(values):
    total = 0.0
    for v in set(values):  # hash-order float accumulation
        total += v
    return total


def direct_sum(values):
    return sum({abs(v) for v in values})  # sum over a set comprehension


def literal_iteration():
    return [name.upper() for name in {"paa", "sax", "mindist"}]

"""LRU-METHOD corpus: module-level caches only (none flagged)."""

import functools
from functools import lru_cache


@lru_cache(maxsize=None)
def symbol_table(alphabet: int) -> tuple:
    return tuple(range(alphabet))


class Encoder:
    @staticmethod
    @functools.cache
    def breakpoints(alphabet: int) -> tuple:
        return tuple(range(alphabet))  # static: no self in the key

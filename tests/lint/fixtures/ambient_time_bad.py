"""AMBIENT-TIME corpus: clock reads in compute code (all flagged)."""

import time
from time import perf_counter


def stamp_result(value: float) -> dict:
    return {"value": value, "at": time.time()}


def profile_inline():
    return perf_counter()  # from-import alias


def monotonic_guard() -> float:
    return time.monotonic()

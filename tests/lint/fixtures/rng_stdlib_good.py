"""RNG-STDLIB corpus: explicit instances / unrelated names (clean)."""

import random


def pick(items, seed: int):
    return random.Random(seed).choice(items)  # explicit seeded instance


def draw(rng: random.Random) -> float:
    return rng.random()  # method on an explicit instance, not the module

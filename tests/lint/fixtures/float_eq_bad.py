"""FLOAT-EQ corpus: value-level float equality (all flagged)."""

import math

import numpy as np


def qualify(result: float, redundant: float) -> bool:
    return result == 0.0  # literal float comparison


def check_nan(value: float) -> bool:
    return value != float("nan")  # float() conversion comparison


def against_constant(x: float) -> bool:
    return x == np.inf  # numpy float constant


def arithmetic(x: float) -> bool:
    return x == 2.0 * 3.0  # arithmetic over float literals


def chained(a: float, b: float) -> bool:
    return 0.0 == a == b  # chained comparison with a float literal


def converted(a, b) -> bool:
    return float(a) == math.pi  # both sides float-like

"""Pragma whose citation names a real file."""


def near_origin(a):
    return a == 0.1  # repro: allow[FLOAT-EQ] -- pinned by tests/test_present_parity.py

"""The file cited by the pragma in src/mod.py."""

from mod import near_origin


def test_near_origin():
    assert near_origin(0.1)

"""Compute-scoped code leaking ambient state through call chains."""

from util.helpers import stamp, wrapped_stamp


def evaluate(values):
    total = 0.0
    for value in values:
        total += value
    return total, stamp()  # one hop to time.time()


def evaluate_relayed(values):
    return sum(values), wrapped_stamp()  # two hops

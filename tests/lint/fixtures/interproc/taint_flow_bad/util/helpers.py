"""Unscoped helpers: the lexical rules never look here."""

import time


def stamp():
    return time.time()


def wrapped_stamp():
    # Second hop: taint must travel through this relay.
    return stamp()

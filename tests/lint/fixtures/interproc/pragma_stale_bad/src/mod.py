"""Pragma whose citation points at a file that does not exist."""


def near_origin(a):
    return a == 0.1  # repro: allow[FLOAT-EQ] -- pinned by tests/test_missing_parity.py

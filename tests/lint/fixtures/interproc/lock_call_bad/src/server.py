"""_requires_lock helper invoked without the declared lock held."""

import threading


class Server:
    _guarded_by = {"_lock": ("_count",)}
    _requires_lock = {"_bump": ("_lock",)}

    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0

    def _bump(self):
        # Legal lexically: the annotation says the caller holds _lock.
        self._count += 1

    def unlocked_call(self):
        self._bump()  # LOCK-CALL: no lock held here

    def locked_call(self):
        with self._lock:
            self._bump()

"""Compute-scoped code whose helpers take everything as parameters."""

from util.helpers import scale, shift


def evaluate(values, timestamp):
    # Ambient state (the timestamp) is injected by the caller at the
    # boundary, so the verdict path itself stays deterministic.
    total = 0.0
    for value in values:
        total += scale(value)
    return shift(total, timestamp)

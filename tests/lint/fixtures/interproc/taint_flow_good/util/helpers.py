"""Pure helpers: nothing ambient, nothing to propagate."""


def scale(value):
    return value * 2.0


def shift(value, offset):
    return value + offset

"""Registered builder reached only through registry indirection."""

from registry import BUILDERS


@BUILDERS.register("widget")
def build_widget():
    return object()

"""Entry points tying the fixture together."""

from pkg import make_widget
from registry import BUILDERS


def dispatch(name):
    builder = BUILDERS.get(name)
    return builder()


def top():
    return make_widget()

"""Minimal registry matching the repro.api ALL-CAPS convention."""


class Registry:
    def __init__(self):
        self._items = {}

    def register(self, key):
        def decorate(fn):
            self._items[key] = fn
            return fn

        return decorate

    def get(self, key):
        return self._items[key]


BUILDERS = Registry()

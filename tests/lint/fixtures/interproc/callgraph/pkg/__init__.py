"""Package facade: re-exports resolved by the call graph."""

from pkg.impl import Widget, make_widget  # noqa: F401

"""Classes and helpers exercising every call shape the graph resolves."""

import time


class Helper:
    def assist(self):
        return 1


class Base:
    def ping(self):
        return "ping"


class Widget(Base):
    def __init__(self):
        self.helper = Helper()

    def run(self):
        self.ping()  # inherited method, resolved via base walk
        self.helper.assist()  # attr-typed method call
        return stamp()  # bare same-module call


def make_widget():
    return Widget()  # instantiation -> __init__ edge


def stamp():
    return time.time()

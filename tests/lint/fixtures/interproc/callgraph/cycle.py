"""Mutually recursive pair: the graph and taint walk must terminate."""


def ping(n):
    if n:
        return pong(n - 1)
    return 0


def pong(n):
    return ping(n)

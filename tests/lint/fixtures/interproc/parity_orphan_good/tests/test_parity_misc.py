"""Parity test covering both the scalar and batch paths."""

from ops import double, double_batch


def test_double_batch_matches_scalar():
    values = [1, 2, 3]
    assert double_batch(values) == [double(v) for v in values]

"""Public batch API covered by a parity test."""


def double(value):
    return value * 2


def double_batch(values):
    return [double(value) for value in values]

"""Lock order inversion only visible through the call graph."""

import threading

LOCK_A = threading.Lock()
LOCK_B = threading.Lock()


def forward():
    with LOCK_A:
        helper()  # acquires LOCK_B transitively: order A -> B


def helper():
    with LOCK_B:
        pass


def backward():
    with LOCK_B:
        with LOCK_A:  # order B -> A: inversion
            pass

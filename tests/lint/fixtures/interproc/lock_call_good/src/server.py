"""_requires_lock helper whose every call site holds the lock."""

import threading


class Server:
    _guarded_by = {"_lock": ("_count",)}
    _requires_lock = {"_bump": ("_lock",)}

    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0

    def _bump(self):
        self._count += 1

    def locked_call(self):
        with self._lock:
            self._bump()

    def locked_twice(self):
        with self._lock:
            self._bump()
            self._bump()

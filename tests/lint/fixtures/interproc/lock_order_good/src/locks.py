"""Consistent lock order everywhere, including through calls."""

import threading

LOCK_A = threading.Lock()
LOCK_B = threading.Lock()


def forward():
    with LOCK_A:
        helper()


def helper():
    with LOCK_B:
        pass


def also_forward():
    with LOCK_A:
        with LOCK_B:
            pass

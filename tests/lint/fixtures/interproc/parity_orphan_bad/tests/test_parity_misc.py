"""Parity test that only exercises the scalar path."""

from ops import double


def test_double():
    assert double(3) == 6

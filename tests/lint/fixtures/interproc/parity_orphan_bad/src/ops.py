"""Public batch API with no parity/fuzz test referencing it."""


def double(value):
    return value * 2


def double_batch(values):  # PARITY-ORPHAN: no parity test names this
    return [double(value) for value in values]

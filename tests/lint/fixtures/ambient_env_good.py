"""AMBIENT-ENV corpus: explicit configuration (none flagged)."""


def threshold(config) -> float:
    return config.qualifier_threshold  # resolved at the boundary


def engine_default(engine: str = "auto") -> str:
    return engine

"""AMBIENT-ENV corpus: environment reads in compute code (flagged)."""

import os


def threshold() -> float:
    return float(os.environ["QUALIFIER_THRESHOLD"])  # subscript read


def engine_default() -> str:
    return os.environ.get("REPRO_ENGINE", "auto")


def debug_enabled() -> bool:
    return os.getenv("REPRO_DEBUG") is not None

"""FLOAT-APPROX corpus: value-level comparator calls (all flagged)."""

import math

import numpy as np
from numpy import allclose


def tolerance(a, b) -> bool:
    return np.allclose(a, b)


def tolerance_imported(a, b) -> bool:
    return allclose(a, b)


def scalar_tolerance(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=1e-9)


def exact_but_value_level(a, b) -> bool:
    return np.array_equal(a, b)  # inherits ==' NaN/signed-zero holes

"""LRU-METHOD corpus: cached instance methods (all flagged)."""

import functools
from functools import lru_cache


class Encoder:
    @lru_cache(maxsize=None)
    def symbols(self, word: str) -> tuple:
        return tuple(word)

    @functools.cache
    def table(self):
        return {}

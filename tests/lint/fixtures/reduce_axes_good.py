"""REDUCE-AXES corpus: one axis at a time (none flagged)."""

import numpy as np


def collapse(batch):
    return np.sum(np.sum(batch, axis=2), axis=1)  # fixed reduction order


def collapse_single(batch):
    return batch.sum(axis=0)  # single-axis reduction is deterministic

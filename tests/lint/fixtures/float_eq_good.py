"""FLOAT-EQ corpus: sanctioned comparisons (none flagged)."""

from repro.reliable.bits import same_word, word_view


def qualify(result: float, redundant: float) -> bool:
    return same_word(result, redundant)  # storage-word comparator


def qualify_array(a, b) -> bool:
    return bool((word_view(a) == word_view(b)).all())  # int64 words


def engine_choice(engine: str) -> bool:
    return engine == "auto"  # string comparison is fine


def count_check(n: int) -> bool:
    return n == 0  # int comparison is fine


def ordering(x: float) -> bool:
    return x <= 0.5  # ordering comparisons are not equality

"""SET-ITER corpus: pinned iteration order (none flagged)."""


def accumulate(values):
    total = 0.0
    for v in sorted(set(values)):  # sorted() pins the order
        total += v
    return total


def membership(values, probe) -> bool:
    return probe in set(values)  # membership tests are order-free

"""RNG-SEED corpus: campaign-derived streams (none flagged)."""

import numpy as np


def trial_stream(root: np.random.SeedSequence, trial: int):
    child = root.spawn(1)[0] if trial else root
    return np.random.default_rng(child)  # derived from a SeedSequence


def from_parameter(seed: int):
    return np.random.default_rng(seed)  # caller-controlled seed

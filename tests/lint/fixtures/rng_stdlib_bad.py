"""RNG-STDLIB corpus: process-global stdlib stream (all flagged)."""

import random


def jitter() -> float:
    return random.random()


def pick(items):
    return random.choice(items)


def scramble(items) -> None:
    random.shuffle(items)

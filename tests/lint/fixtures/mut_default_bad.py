"""MUT-DEFAULT corpus: shared mutable defaults (all flagged)."""


def append_result(value, results=[]):
    results.append(value)
    return results


def merge(config, overrides={}):
    return {**config, **overrides}


def tag(item, seen=set(), *, labels=list()):
    seen.add(item)
    return labels

"""AMBIENT-ID corpus: slot-indexed state (none flagged)."""

import numpy as np


class Optimizer:
    def __init__(self, params):
        self.params = list(params)
        self.state = [np.zeros_like(p) for p in self.params]

    def update(self, slot: int):
        return self.state[slot]

"""LOCK-GUARD corpus: every access under the declared lock (clean)."""

import threading


class Server:
    _guarded_by = {"_lock": ("_accepting", "_pending")}

    def __init__(self):
        self._lock = threading.Lock()
        self._accepting = True
        self._pending = 0

    def submit(self):
        with self._lock:
            if not self._accepting:
                raise RuntimeError("closed")
            self._pending += 1

    def stop(self):
        with self._lock:
            self._accepting = False
            drained = self._pending
        return drained  # local once outside

    def unguarded_ok(self):
        return self._lock  # undeclared attributes stay clean

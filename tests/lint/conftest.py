"""Shared helpers for the lint test suite."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint import LintConfig, lint_file, run_lint

FIXTURES = Path(__file__).parent / "fixtures"
INTERPROC = FIXTURES / "interproc"
REPO_ROOT = Path(__file__).resolve().parents[2]

#: The interproc fixture projects contain files named like tests (the
#: PARITY-ORPHAN corpus needs them); they are lint subjects, not suite
#: members.
collect_ignore_glob = ["fixtures/*"]


def permissive_config(root: Path) -> LintConfig:
    """A config under which *every* rule applies to every file --
    fixtures opt into all scopes so each rule can be exercised in
    isolation from the repo's path policy."""
    return LintConfig(
        root=root,
        exclude=[],
        scopes={"parity": ["*"], "compute": ["*"], "src": ["*"]},
        rule_options={"RNG-SEED": {"strict_paths": ["*"]}},
    )


@pytest.fixture
def fixtures_config() -> LintConfig:
    return permissive_config(FIXTURES)


def lint_fixture(name: str, config: LintConfig | None = None):
    """Findings for one corpus file under the permissive config."""
    config = config or permissive_config(FIXTURES)
    return lint_file(FIXTURES / name, config)


def project_config(root: Path) -> LintConfig:
    """Config for an interproc fixture mini-project: the fixture dir is
    the repo root, ``compute/`` + ``src/`` are compute/parity-scoped
    (``util/`` and friends deliberately are not -- that boundary is
    what TAINT-FLOW watches)."""
    return LintConfig(
        root=root,
        roots=["."],
        exclude=["*/__pycache__/*"],
        scopes={
            "parity": ["compute/*", "src/*"],
            "compute": ["compute/*", "src/*"],
            "src": ["src/*"],
        },
    )


def lint_project_fixture(name: str):
    """Full ``--project`` run over one interproc fixture project."""
    root = INTERPROC / name
    return run_lint([root], project_config(root), project=True)

"""Shared helpers for the lint test suite."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint import LintConfig, lint_file

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]


def permissive_config(root: Path) -> LintConfig:
    """A config under which *every* rule applies to every file --
    fixtures opt into all scopes so each rule can be exercised in
    isolation from the repo's path policy."""
    return LintConfig(
        root=root,
        exclude=[],
        scopes={"parity": ["*"], "compute": ["*"], "src": ["*"]},
        rule_options={"RNG-SEED": {"strict_paths": ["*"]}},
    )


@pytest.fixture
def fixtures_config() -> LintConfig:
    return permissive_config(FIXTURES)


def lint_fixture(name: str, config: LintConfig | None = None):
    """Findings for one corpus file under the permissive config."""
    config = config or permissive_config(FIXTURES)
    return lint_file(FIXTURES / name, config)

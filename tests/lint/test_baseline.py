"""Baseline add / match / expire behaviour."""

from __future__ import annotations

import json

from repro.lint import Baseline, run_lint
from repro.lint.baseline import BaselineEntry

from tests.lint.conftest import permissive_config

VIOLATION = "def f(x):\n    return x == 0.5\n"
FIXED = "def f(x):\n    return x <= 0.5\n"


def _tree(tmp_path, source: str):
    path = tmp_path / "mod.py"
    path.write_text(source)
    return path


def test_unbaselined_finding_fails_the_gate(tmp_path):
    _tree(tmp_path, VIOLATION)
    result = run_lint([tmp_path], permissive_config(tmp_path))
    assert not result.ok
    assert [f.rule for f in result.findings] == ["FLOAT-EQ"]


def test_baselined_finding_passes_the_gate(tmp_path):
    _tree(tmp_path, VIOLATION)
    config = permissive_config(tmp_path)
    first = run_lint([tmp_path], config)
    baseline = Baseline.from_findings(first.findings)
    second = run_lint([tmp_path], config, baseline)
    assert second.ok
    assert second.findings == []
    assert len(second.baselined) == 1


def test_baseline_add_then_expire(tmp_path):
    """The full lifecycle: grandfather a finding, fix the code, and
    the now-dead entry fails the run until pruned."""
    path = _tree(tmp_path, VIOLATION)
    config = permissive_config(tmp_path)
    baseline = Baseline.from_findings(run_lint([tmp_path], config).findings)

    path.write_text(FIXED)
    after_fix = run_lint([tmp_path], config, baseline)
    assert after_fix.findings == []
    assert len(after_fix.stale_baseline) == 1
    assert not after_fix.ok, "a stale entry must fail the gate"

    pruned = Baseline.from_findings(
        after_fix.findings + after_fix.baselined
    )
    assert pruned.entries == []
    assert run_lint([tmp_path], config, pruned).ok


def test_count_budget_covers_identical_lines_only_up_to_count(tmp_path):
    source = (
        "def f(x):\n"
        "    a = x == 0.5\n"
        "    b = x == 0.5\n"
        "    return a or b\n"
    )
    _tree(tmp_path, source)
    config = permissive_config(tmp_path)
    findings = run_lint([tmp_path], config).findings
    assert len(findings) == 2
    # Identical lines share a fingerprint; a count-1 entry covers one.
    entry = BaselineEntry(
        rule="FLOAT-EQ",
        path=findings[0].path,
        fingerprint=findings[0].fingerprint,
        count=1,
    )
    result = run_lint([tmp_path], config, Baseline([entry]))
    assert len(result.findings) == 1
    assert len(result.baselined) == 1
    assert result.stale_baseline == []


def test_fingerprint_survives_line_drift(tmp_path):
    path = _tree(tmp_path, VIOLATION)
    config = permissive_config(tmp_path)
    baseline = Baseline.from_findings(run_lint([tmp_path], config).findings)
    # Prepend unrelated code: line numbers move, the offending line
    # text does not.
    path.write_text("import math\n\n\n" + VIOLATION)
    result = run_lint([tmp_path], config, baseline)
    assert result.ok
    assert len(result.baselined) == 1


def test_save_load_round_trip_and_notes(tmp_path):
    entry = BaselineEntry(
        rule="FLOAT-EQ",
        path="src/mod.py",
        fingerprint="ab" * 20,
        count=2,
        note="audited 2026-08: analytic guard",
    )
    path = tmp_path / "baseline.json"
    Baseline([entry]).save(path)
    loaded = Baseline.load(path)
    assert loaded.entries == [entry]
    data = json.loads(path.read_text())
    assert data["version"] == 1


def test_missing_baseline_file_is_empty(tmp_path):
    assert Baseline.load(tmp_path / "absent.json").entries == []


def test_unsupported_version_is_rejected(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"version": 99, "entries": []}))
    try:
        Baseline.load(path)
    except ValueError as error:
        assert "version" in str(error)
    else:  # pragma: no cover
        raise AssertionError("expected ValueError")

"""The whole-program pass: call graph resolution and project rules.

Each inter-procedural rule gets a bad+good fixture *project* (a
directory, not a file -- the hazards only exist across files), and the
call graph is unit-tested against a fixture package exercising every
resolution shape it claims to handle.
"""

from __future__ import annotations

import pytest

from repro.lint import LintConfig, run_lint
from repro.lint.callgraph import CallGraph
from repro.lint.engine import iter_python_files
from repro.lint.project import build_project, module_name_for

from tests.lint.conftest import (
    INTERPROC,
    lint_project_fixture,
    project_config,
)

#: rule id -> (bad fixture project, minimum findings, good project)
PROJECT_CORPUS = {
    "TAINT-FLOW": ("taint_flow_bad", 2, "taint_flow_good"),
    "LOCK-CALL": ("lock_call_bad", 1, "lock_call_good"),
    "LOCK-ORDER": ("lock_order_bad", 2, "lock_order_good"),
    "PARITY-ORPHAN": ("parity_orphan_bad", 1, "parity_orphan_good"),
    "PRAGMA-STALE": ("pragma_stale_bad", 1, "pragma_stale_good"),
}


@pytest.mark.parametrize("rule_id", sorted(PROJECT_CORPUS))
def test_bad_project_triggers_rule(rule_id):
    bad, minimum, _ = PROJECT_CORPUS[rule_id]
    result = lint_project_fixture(bad)
    hits = [f for f in result.findings if f.rule == rule_id]
    assert len(hits) >= minimum, (
        f"{bad}: expected >= {minimum} {rule_id} findings, got "
        f"{[(f.path, f.line, f.rule) for f in result.findings]}"
    )
    for finding in hits:
        assert finding.line > 0
        assert finding.message


@pytest.mark.parametrize("rule_id", sorted(PROJECT_CORPUS))
def test_good_project_is_fully_clean(rule_id):
    _, _, good = PROJECT_CORPUS[rule_id]
    result = lint_project_fixture(good)
    assert result.findings == [], (
        f"{good} should be clean under every rule, got "
        f"{[(f.rule, f.path, f.line) for f in result.findings]}"
    )


def test_taint_finding_reports_the_full_witness_chain():
    """The two-hop relay (compute.evaluate_relayed -> wrapped_stamp ->
    stamp -> time.time) must surface the whole chain and the concrete
    source, not just the first edge."""
    result = lint_project_fixture("taint_flow_bad")
    relayed = [
        f
        for f in result.findings
        if f.rule == "TAINT-FLOW" and "evaluate_relayed" in f.message
    ]
    assert len(relayed) == 1
    message = relayed[0].message
    assert "wrapped_stamp" in message
    assert "util.helpers.stamp" in message
    assert "time.time" in message


def test_lock_call_finding_lands_on_the_unlocked_site():
    result = lint_project_fixture("lock_call_bad")
    hits = [f for f in result.findings if f.rule == "LOCK-CALL"]
    assert [f.snippet for f in hits] == [
        "self._bump()  # LOCK-CALL: no lock held here"
    ]


def test_lock_order_flags_both_directions():
    """The inversion is only visible because forward() acquires LOCK_B
    *transitively* (through helper()); both sites are reported."""
    result = lint_project_fixture("lock_order_bad")
    hits = [f for f in result.findings if f.rule == "LOCK-ORDER"]
    assert len(hits) == 2
    lines = sorted(f.line for f in hits)
    assert lines == [11, 21]


# -- call graph unit tests -------------------------------------------------


def _graph(name: str = "callgraph"):
    root = INTERPROC / name
    config = project_config(root)
    model = build_project(iter_python_files([root], config), config)
    return model, CallGraph(model)


def test_module_names_strip_src_and_init():
    assert module_name_for("src/repro/core/runner.py") == "repro.core.runner"
    assert module_name_for("src/repro/api/__init__.py") == "repro.api"
    assert module_name_for("tests/lint/test_project.py") == (
        "tests.lint.test_project"
    )


def test_resolve_follows_package_reexports():
    _, graph = _graph()
    assert graph.resolve("pkg.make_widget") == "pkg.impl.make_widget"
    assert graph.resolve("pkg.impl.make_widget") == "pkg.impl.make_widget"
    assert graph.resolve("pkg.no_such_thing") is None
    assert graph.resolve("os.path.join") is None


def test_instantiation_edges_point_at_init():
    _, graph = _graph()
    callees = {e.callee for e in graph.edges["pkg.impl.make_widget"]}
    assert "pkg.impl.Widget.__init__" in callees


def test_method_calls_resolve_through_bases_attrs_and_module():
    _, graph = _graph()
    callees = {e.callee for e in graph.edges["pkg.impl.Widget.run"]}
    assert callees == {
        "pkg.impl.Base.ping",  # inherited, via base-class walk
        "pkg.impl.Helper.assist",  # via inferred attr type of self.helper
        "pkg.impl.stamp",  # bare same-module call
    }


def test_registry_get_edges_reach_registered_builders():
    _, graph = _graph()
    assert graph.registered_builders("BUILDERS") == ["builders.build_widget"]
    callees = {e.callee for e in graph.edges["main.dispatch"]}
    assert "builders.build_widget" in callees


def test_cycles_terminate_and_do_not_taint():
    _, graph = _graph()
    assert {e.callee for e in graph.edges["cycle.ping"]} == {"cycle.pong"}
    assert {e.callee for e in graph.edges["cycle.pong"]} == {"cycle.ping"}
    tainted = graph.propagate_taint()
    assert "cycle.ping" not in tainted
    assert "cycle.pong" not in tainted


def test_taint_propagates_with_a_witness_chain():
    _, graph = _graph()
    tainted = graph.propagate_taint()
    assert "pkg.impl.stamp" in tainted  # direct time.time()
    assert "pkg.impl.Widget.run" in tainted  # one hop away
    chain, source = graph.taint_chain("pkg.impl.Widget.run", tainted)
    assert chain == ["pkg.impl.Widget.run", "pkg.impl.stamp"]
    assert source is not None
    assert source["rule"] == "AMBIENT-TIME"
    assert source["what"] == "time.time"


def test_caller_files_walks_the_reverse_graph():
    _, graph = _graph()
    impacted = graph.caller_files({"pkg/impl.py"})
    assert "main.py" in impacted  # main.top -> pkg.impl.make_widget
    assert "cycle.py" not in impacted


def test_summary_cache_hits_on_unchanged_content():
    root = INTERPROC / "callgraph"
    config = project_config(root)
    files = iter_python_files([root], config)
    first = build_project(files, config)
    assert first.summaries
    second = build_project(files, config)
    assert second.cache_hits == len(second.summaries)
    assert second.cache_misses == 0
    assert second.summaries == first.summaries


def test_project_stats_are_reported():
    result = lint_project_fixture("callgraph")
    assert result.project is not None
    assert result.project["modules"] == 6
    assert result.project["functions"] > 0
    assert result.project["call_edges"] >= 6
    assert (
        result.project["cache_hits"] + result.project["cache_misses"]
        == result.project["modules"]
    )


def test_project_pass_off_by_default(tmp_path):
    src = tmp_path / "mod.py"
    src.write_text("def f():\n    return 1\n")
    config = LintConfig(
        root=tmp_path,
        roots=["."],
        exclude=[],
        scopes={"parity": [], "compute": [], "src": []},
    )
    result = run_lint([tmp_path], config)
    assert result.project is None

"""Suppression pragma semantics."""

from __future__ import annotations

from repro.lint import lint_file

from tests.lint.conftest import permissive_config


def _lint_source(tmp_path, source: str):
    path = tmp_path / "mod.py"
    path.write_text(source)
    return lint_file(path, permissive_config(tmp_path))


def test_trailing_pragma_suppresses_its_line(tmp_path):
    findings = _lint_source(
        tmp_path,
        "def f(x):\n"
        "    return x == 0.5  # repro: allow[FLOAT-EQ] -- audited\n",
    )
    assert findings == []


def test_standalone_pragma_suppresses_next_code_line(tmp_path):
    findings = _lint_source(
        tmp_path,
        "def f(x):\n"
        "    # repro: allow[FLOAT-EQ] -- audited\n"
        "    # (continued justification comment)\n"
        "\n"
        "    return x == 0.5\n",
    )
    assert findings == []


def test_pragma_must_name_the_right_rule(tmp_path):
    findings = _lint_source(
        tmp_path,
        "def f(x):\n"
        "    return x == 0.5  # repro: allow[AMBIENT-TIME] -- wrong id\n",
    )
    assert [f.rule for f in findings] == ["FLOAT-EQ"]


def test_pragma_does_not_leak_to_other_lines(tmp_path):
    findings = _lint_source(
        tmp_path,
        "def f(x):\n"
        "    a = x == 0.5  # repro: allow[FLOAT-EQ] -- this line only\n"
        "    return x == 1.5\n",
    )
    assert [(f.rule, f.line) for f in findings] == [("FLOAT-EQ", 3)]


def test_multiple_ids_in_one_pragma(tmp_path):
    findings = _lint_source(
        tmp_path,
        "import time\n"
        "def f(x):\n"
        "    # repro: allow[FLOAT-EQ, AMBIENT-TIME] -- both audited\n"
        "    return x == 0.5 and time.time()\n",
    )
    assert findings == []


def test_allow_file_suppresses_whole_file(tmp_path):
    findings = _lint_source(
        tmp_path,
        "# repro: allow-file[FLOAT-EQ] -- generated comparison table\n"
        "def f(x):\n"
        "    a = x == 0.5\n"
        "    return x == 1.5\n",
    )
    assert findings == []


def test_allow_file_is_per_rule(tmp_path):
    findings = _lint_source(
        tmp_path,
        "# repro: allow-file[FLOAT-EQ]\n"
        "import time\n"
        "def f(x):\n"
        "    return x == 0.5 and time.time()\n",
    )
    assert [f.rule for f in findings] == ["AMBIENT-TIME"]

"""Rule behaviour against the fixture corpus.

One triggering and one clean snippet per rule: the bad file must
produce at least the expected number of findings *of that rule*, and
the good file must produce no findings at all (under a config where
every rule applies everywhere -- clean means clean).
"""

from __future__ import annotations

import pytest

from repro.lint import RULES, Severity

from tests.lint.conftest import lint_fixture

#: rule id -> (bad fixture, minimum findings, good fixture)
CORPUS = {
    "FLOAT-EQ": ("float_eq_bad.py", 6, "float_eq_good.py"),
    "FLOAT-APPROX": ("float_approx_bad.py", 4, "float_approx_good.py"),
    "RNG-LEGACY": ("rng_legacy_bad.py", 4, "rng_legacy_good.py"),
    "RNG-STDLIB": ("rng_stdlib_bad.py", 3, "rng_stdlib_good.py"),
    "RNG-SEED": ("rng_seed_bad.py", 4, "rng_seed_good.py"),
    "REDUCE-ORDER": ("reduce_order_bad.py", 5, "reduce_order_good.py"),
    "REDUCE-AXES": ("reduce_axes_bad.py", 3, "reduce_axes_good.py"),
    "AMBIENT-TIME": ("ambient_time_bad.py", 3, "ambient_time_good.py"),
    "AMBIENT-ENV": ("ambient_env_bad.py", 3, "ambient_env_good.py"),
    "AMBIENT-ID": ("ambient_id_bad.py", 2, "ambient_id_good.py"),
    "SET-ITER": ("set_iter_bad.py", 3, "set_iter_good.py"),
    "LOCK-GUARD": ("lock_guard_bad.py", 3, "lock_guard_good.py"),
    "MUT-DEFAULT": ("mut_default_bad.py", 4, "mut_default_good.py"),
    "LRU-METHOD": ("lru_method_bad.py", 2, "lru_method_good.py"),
}


def test_corpus_covers_every_registered_rule():
    from tests.lint.test_project import PROJECT_CORPUS

    assert not set(CORPUS) & set(PROJECT_CORPUS)
    assert set(CORPUS) | set(PROJECT_CORPUS) == set(RULES), (
        "every rule needs a bad+good fixture pair (and every fixture "
        "pair a registered rule)"
    )


@pytest.mark.parametrize("rule_id", sorted(CORPUS))
def test_bad_fixture_triggers_rule(rule_id):
    bad, minimum, _ = CORPUS[rule_id]
    findings = lint_fixture(bad)
    hits = [f for f in findings if f.rule == rule_id]
    assert len(hits) >= minimum, (
        f"{bad}: expected >= {minimum} {rule_id} findings, got "
        f"{[(f.line, f.rule) for f in findings]}"
    )
    for finding in hits:
        assert finding.path.endswith(bad)
        assert finding.line > 0
        assert finding.message


@pytest.mark.parametrize("rule_id", sorted(CORPUS))
def test_good_fixture_is_fully_clean(rule_id):
    _, _, good = CORPUS[rule_id]
    findings = lint_fixture(good)
    assert findings == [], (
        f"{good} should be clean under every rule, got "
        f"{[(f.rule, f.line) for f in findings]}"
    )


def test_severities_split_hazard_vs_hygiene():
    assert RULES["FLOAT-EQ"].severity is Severity.ERROR
    assert RULES["LOCK-GUARD"].severity is Severity.ERROR
    assert RULES["MUT-DEFAULT"].severity is Severity.WARNING
    assert RULES["LRU-METHOD"].severity is Severity.WARNING


def test_lock_rule_flags_closure_access():
    findings = lint_fixture("lock_guard_bad.py")
    closure_hits = [
        f
        for f in findings
        if f.rule == "LOCK-GUARD" and "closure" in (f.snippet or "")
    ]
    assert closure_hits, (
        "an access inside a nested function must count as outside the "
        "lock (the closure runs after release)"
    )


def test_scope_restricts_rules_to_configured_paths(tmp_path):
    """The same source is flagged inside a parity path and ignored
    outside it -- path scoping is what keeps the gate quiet on
    orchestration code."""
    from repro.lint import LintConfig, lint_file

    source = "def f(x):\n    return x == 1.5\n"
    parity = tmp_path / "parity" / "mod.py"
    parity.parent.mkdir()
    parity.write_text(source)
    other = tmp_path / "other" / "mod.py"
    other.parent.mkdir()
    other.write_text(source)
    config = LintConfig(
        root=tmp_path,
        exclude=[],
        scopes={"parity": ["parity/*"], "compute": [], "src": []},
    )
    assert [f.rule for f in lint_file(parity, config)] == ["FLOAT-EQ"]
    assert lint_file(other, config) == []

"""JSON report schema stability and human rendering."""

from __future__ import annotations

import json

from repro.lint import run_lint
from repro.lint.reporters import (
    REPORT_SCHEMA,
    REPORT_VERSION,
    render_human,
    render_json,
    render_rule_list,
)

from tests.lint.conftest import permissive_config


def _result(tmp_path, source: str):
    (tmp_path / "mod.py").write_text(source)
    return run_lint([tmp_path], permissive_config(tmp_path))


def test_json_report_top_level_schema_is_pinned(tmp_path):
    """CI consumes this artifact; the key set is a contract. Adding or
    renaming keys requires a REPORT_VERSION bump."""
    result = _result(tmp_path, "def f(x):\n    return x == 0.5\n")
    payload = json.loads(render_json(result))
    assert set(payload) == {
        "schema",
        "version",
        "ok",
        "files_scanned",
        "findings",
        "baselined",
        "stale_baseline",
        "summary",
        "project",
    }
    assert payload["schema"] == REPORT_SCHEMA == "repro-lint-report"
    assert payload["version"] == REPORT_VERSION == 2
    assert payload["ok"] is False
    assert payload["project"] is None  # project pass did not run
    assert set(payload["summary"]) == {"new", "baselined", "stale", "by_rule"}
    assert payload["summary"]["by_rule"] == {"FLOAT-EQ": 1}


def test_json_finding_shape_is_pinned(tmp_path):
    result = _result(tmp_path, "def f(x):\n    return x == 0.5\n")
    payload = json.loads(render_json(result))
    (finding,) = payload["findings"]
    assert set(finding) == {
        "rule",
        "severity",
        "path",
        "line",
        "col",
        "message",
        "snippet",
        "fingerprint",
    }
    assert finding["rule"] == "FLOAT-EQ"
    assert finding["severity"] == "error"
    assert finding["line"] == 2
    assert len(finding["fingerprint"]) == 40  # sha1 hex


def test_json_output_is_deterministic(tmp_path):
    result = _result(tmp_path, "def f(x):\n    return x == 0.5\n")
    assert render_json(result) == render_json(result)


def test_human_report_names_rule_and_location(tmp_path):
    result = _result(tmp_path, "def f(x):\n    return x == 0.5\n")
    text = render_human(result)
    assert "mod.py:2:" in text
    assert "FLOAT-EQ" in text
    assert "1 finding(s)" in text


def test_human_report_clean_summary(tmp_path):
    result = _result(tmp_path, "def f(x):\n    return x <= 0.5\n")
    assert "0 findings in 1 file(s)" in render_human(result)


def test_project_stats_render_in_both_formats(tmp_path):
    (tmp_path / "mod.py").write_text("def f(x):\n    return x <= 0.5\n")
    config = permissive_config(tmp_path)
    config.roots = ["."]
    result = run_lint([tmp_path], config, project=True)
    payload = json.loads(render_json(result))
    assert set(payload["project"]) == {
        "modules",
        "functions",
        "call_edges",
        "cache_hits",
        "cache_misses",
    }
    assert payload["project"]["modules"] == 1
    assert "project pass:" in render_human(result)


def test_rule_list_mentions_every_rule():
    from repro.lint import RULES

    listing = render_rule_list()
    for rule_id in RULES:
        assert rule_id in listing

"""CLI exit codes and flags (in-process via ``main(argv)``)."""

from __future__ import annotations

import json
import subprocess

import pytest

from repro.lint.cli import main

CLEAN = "def f(x):\n    return x <= 0.5\n"
VIOLATION = "def f(x):\n    return x == 0.5\n"

#: lint.toml making every rule apply everywhere, so CLI behaviour can
#: be tested without replicating the repo's path policy.
PERMISSIVE_TOML = """
[lint]
roots = ["."]
exclude = []
baseline = "lint-baseline.json"

[lint.scopes]
parity = ["*"]
compute = ["*"]
src = ["*"]

[lint.rules."RNG-SEED"]
strict_paths = ["*"]
"""


def _repo(tmp_path, source: str):
    (tmp_path / "lint.toml").write_text(PERMISSIVE_TOML)
    (tmp_path / "mod.py").write_text(source)
    return tmp_path


def test_exit_zero_on_clean_tree(tmp_path, capsys):
    root = _repo(tmp_path, CLEAN)
    assert main(["--root", str(root)]) == 0
    assert "0 findings" in capsys.readouterr().out


def test_exit_one_on_violation(tmp_path, capsys):
    root = _repo(tmp_path, VIOLATION)
    assert main(["--root", str(root)]) == 1
    assert "FLOAT-EQ" in capsys.readouterr().out


@pytest.mark.parametrize(
    "fixture_name",
    [
        "float_eq_bad.py",
        "rng_legacy_bad.py",
        "reduce_order_bad.py",
        "ambient_time_bad.py",
        "lock_guard_bad.py",
        "mut_default_bad.py",
    ],
)
def test_exit_one_on_each_fixture_violation_class(
    tmp_path, capsys, fixture_name
):
    """Acceptance criterion: a test proves the linter exits non-zero
    on each class of fixture violation."""
    from tests.lint.conftest import FIXTURES

    root = _repo(tmp_path, CLEAN)
    (tmp_path / fixture_name).write_text(
        (FIXTURES / fixture_name).read_text()
    )
    assert main(["--root", str(root)]) == 1
    capsys.readouterr()


def test_json_format_and_artifact_output(tmp_path, capsys):
    root = _repo(tmp_path, VIOLATION)
    artifact = tmp_path / "out" / "report.json"
    code = main(
        [
            "--root",
            str(root),
            "--format",
            "json",
            "--json-output",
            str(artifact),
        ]
    )
    assert code == 1
    stdout_payload = json.loads(capsys.readouterr().out)
    file_payload = json.loads(artifact.read_text())
    assert stdout_payload == file_payload
    assert file_payload["ok"] is False


def test_update_baseline_then_gate_passes(tmp_path, capsys):
    root = _repo(tmp_path, VIOLATION)
    assert main(["--root", str(root)]) == 1
    assert main(["--root", str(root), "--update-baseline"]) == 0
    assert (root / "lint-baseline.json").exists()
    assert main(["--root", str(root)]) == 0
    capsys.readouterr()


def test_stale_baseline_fails_until_updated(tmp_path, capsys):
    root = _repo(tmp_path, VIOLATION)
    main(["--root", str(root), "--update-baseline"])
    (root / "mod.py").write_text(CLEAN)
    assert main(["--root", str(root)]) == 1
    assert "stale baseline" in capsys.readouterr().out
    assert main(["--root", str(root), "--update-baseline"]) == 0
    assert main(["--root", str(root)]) == 0
    assert json.loads((root / "lint-baseline.json").read_text())[
        "entries"
    ] == []
    capsys.readouterr()


def test_no_baseline_flag_ignores_grandfathering(tmp_path, capsys):
    root = _repo(tmp_path, VIOLATION)
    main(["--root", str(root), "--update-baseline"])
    assert main(["--root", str(root)]) == 0
    assert main(["--root", str(root), "--no-baseline"]) == 1
    capsys.readouterr()


def test_list_rules_exits_zero(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "FLOAT-EQ" in out and "LOCK-GUARD" in out


def test_bad_config_is_usage_error(tmp_path, capsys):
    (tmp_path / "lint.toml").write_text("not [valid toml\n")
    assert main(["--root", str(tmp_path)]) == 2
    capsys.readouterr()


def test_unparseable_file_fails_the_gate(tmp_path, capsys):
    root = _repo(tmp_path, "def broken(:\n")
    assert main(["--root", str(root)]) == 1
    assert "PARSE-ERROR" in capsys.readouterr().out


def _git(root, *argv):
    subprocess.run(
        ["git", *argv],
        cwd=root,
        check=True,
        capture_output=True,
        env={
            "GIT_AUTHOR_NAME": "t",
            "GIT_AUTHOR_EMAIL": "t@t",
            "GIT_COMMITTER_NAME": "t",
            "GIT_COMMITTER_EMAIL": "t@t",
            "HOME": str(root),
            "PATH": "/usr/bin:/bin:/usr/local/bin",
        },
    )


def test_changed_lints_only_modified_files(tmp_path, capsys):
    root = _repo(tmp_path, CLEAN)
    # A committed violation elsewhere in the tree must NOT be linted
    # by --changed; only the post-commit edit is.
    (root / "legacy.py").write_text(VIOLATION)
    _git(root, "init", "-q")
    _git(root, "add", "-A")
    _git(root, "commit", "-qm", "seed")

    assert main(["--root", str(root), "--changed"]) == 0
    assert "nothing modified" in capsys.readouterr().out

    (root / "mod.py").write_text(VIOLATION)  # tracked, modified
    (root / "fresh.py").write_text(VIOLATION)  # untracked
    assert main(["--root", str(root), "--changed"]) == 1
    out = capsys.readouterr().out
    assert "mod.py" in out and "fresh.py" in out
    assert "legacy.py" not in out


def test_changed_relints_callers_of_a_modified_helper(tmp_path, capsys):
    """Impact analysis: an innocent edit to helper.py must pull
    caller.py (whose violation sits on a call into the helper) back
    into the lint set through the reverse call graph."""
    root = _repo(tmp_path, CLEAN)
    (root / "helper.py").write_text("def helper(x):\n    return x + 1\n")
    (root / "caller.py").write_text(
        "from helper import helper\n"
        "\n"
        "\n"
        "def use(x):\n"
        "    return helper(x) == 0.5\n"
    )
    _git(root, "init", "-q")
    _git(root, "add", "-A")
    _git(root, "commit", "-qm", "seed")

    # The committed violation in caller.py is invisible to --changed...
    assert main(["--root", str(root), "--changed"]) == 0
    capsys.readouterr()

    # ...until its helper is touched: the clean edit re-lints callers.
    (root / "helper.py").write_text("def helper(x):\n    return x + 2\n")
    assert main(["--root", str(root), "--changed"]) == 1
    out = capsys.readouterr().out
    assert "caller.py" in out and "FLOAT-EQ" in out
    assert "mod.py" not in out


PRAGMA_STALE = (
    "def f(x):\n"
    "    return x == 0.5  "
    "# repro: allow[FLOAT-EQ] -- pinned by tests/test_gone.py\n"
)


def test_project_flag_catches_stale_pragma_citations(tmp_path, capsys):
    root = _repo(tmp_path, PRAGMA_STALE)
    # Lexically the pragma suppresses FLOAT-EQ and the gate passes...
    assert main(["--root", str(root)]) == 0
    capsys.readouterr()
    # ...but the project pass notices the cited test does not exist.
    assert main(["--root", str(root), "--project"]) == 1
    assert "PRAGMA-STALE" in capsys.readouterr().out


def test_project_stats_land_in_the_json_artifact(tmp_path, capsys):
    root = _repo(tmp_path, CLEAN)
    artifact = tmp_path / "out" / "report.json"
    code = main(
        [
            "--root",
            str(root),
            "--project",
            "--format",
            "json",
            "--json-output",
            str(artifact),
        ]
    )
    assert code == 0
    capsys.readouterr()
    payload = json.loads(artifact.read_text())
    assert payload["version"] == 2
    assert payload["project"]["modules"] == 1
    assert (
        payload["project"]["cache_hits"]
        + payload["project"]["cache_misses"]
        == 1
    )

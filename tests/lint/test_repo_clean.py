"""The acceptance gate: the shipped tree lints clean.

Runs the linter in-process over the repo's own ``src``, ``tests`` and
``benchmarks`` with the committed ``lint.toml`` and baseline -- the
same invocation CI performs. Every finding here is either a real
regression or needs an explicit ``# repro: allow[...]`` justification.
"""

from __future__ import annotations

from repro.lint import Baseline, load_config, run_lint

from tests.lint.conftest import REPO_ROOT


def test_shipped_tree_lints_clean():
    config = load_config(REPO_ROOT)
    baseline = Baseline.load(REPO_ROOT / config.baseline_path)
    result = run_lint(
        [REPO_ROOT / root for root in config.roots],
        config,
        baseline,
        project=True,
    )
    assert result.files_scanned > 100, "expected to scan the whole tree"
    assert result.project is not None
    assert result.project["call_edges"] > 1000, (
        "the call graph should resolve most of the tree"
    )
    assert result.stale_baseline == [], (
        "baseline entries no longer match the tree; prune with "
        "scripts/lint.py --update-baseline"
    )
    assert result.findings == [], "\n".join(
        f"{f.path}:{f.line}: {f.rule}: {f.message}"
        for f in result.findings
    )


def test_fixture_corpus_is_excluded_from_the_gate():
    """tests/lint/fixtures/ is deliberately full of violations; the
    repo config must keep it out of the gate run."""
    config = load_config(REPO_ROOT)
    assert config.is_excluded("tests/lint/fixtures/float_eq_bad.py")
    assert config.is_excluded("benchmarks/artifacts/generated.py")
    assert not config.is_excluded("src/repro/core/guarantee.py")

"""Catalog ingestion of chaos campaign summaries (the third kind).

A ``chaos_summary`` payload classifies as ``"chaos"`` (before the
campaign sniff -- it carries a ``spec_hash`` too), validates its
outcome table, and lands with outcome counts exploded into queryable
metrics.
"""

from __future__ import annotations

import pytest

from repro.catalog import CatalogError, CatalogStore, classify_payload


def chaos_payload(**overrides) -> dict:
    payload = {
        "chaos_campaign": "serving-chaos",
        "target": "serving_chaos",
        "spec_hash": "b" * 64,
        "trials": 14,
        "invariants_held_trials": 14,
        "outcomes": {
            "clean": 2,
            "masked": 4,
            "detected_recovered": 8,
            "detected_aborted": 0,
            "silent_corruption": 0,
        },
        "fingerprint": "c" * 64,
    }
    payload.update(overrides)
    return payload


def test_chaos_summary_classifies_before_campaign():
    # Carries spec_hash like a campaign report; the chaos_campaign +
    # outcomes shape must win.
    assert classify_payload(chaos_payload()) == "chaos"


def test_chaos_ingest_round_trip_and_metrics():
    with CatalogStore() as store:
        artifact_id, created = store.ingest(chaos_payload(), "run.json")
        assert created
        record = store.get(artifact_id)
        assert record.kind == "chaos"
        assert record.bench == "serving-chaos"
        assert record.batch is None
        assert record.payload["outcomes"]["detected_recovered"] == 8
        metrics = store.metrics_for(artifact_id)
        assert metrics["trials"] == 14.0
        assert metrics["invariants_held_trials"] == 14.0
        assert metrics["outcome_silent_corruption"] == 0.0
        assert metrics["outcome_detected_recovered"] == 8.0


def test_chaos_ingest_is_idempotent():
    with CatalogStore() as store:
        first, created_first = store.ingest(chaos_payload(), "a.json")
        second, created_second = store.ingest(chaos_payload(), "b.json")
        assert created_first and not created_second
        assert first == second


@pytest.mark.parametrize(
    "overrides, fragment",
    [
        ({"chaos_campaign": ""}, "chaos_campaign"),
        ({"fingerprint": 12}, "fingerprint"),
        ({"trials": -1}, "trials"),
        ({"invariants_held_trials": True}, "invariants_held_trials"),
        ({"outcomes": [1, 2]}, "outcomes"),
        ({"outcomes": {"clean": -3}}, "clean"),
    ],
)
def test_invalid_chaos_summaries_rejected(overrides, fragment):
    with CatalogStore() as store:
        with pytest.raises(CatalogError, match=fragment):
            store.ingest(chaos_payload(**overrides), "bad.json")


def test_real_chaos_summary_ingests(tmp_path):
    """End to end: run a minimal serving_chaos campaign, summarize,
    ingest -- the exact CI smoke path."""
    from repro.campaigns.engine import run_campaign
    from repro.chaos.campaign import chaos_campaign_spec, chaos_summary

    spec = chaos_campaign_spec(
        faults=("none", "timeout"), trials=1, seed=5, n_requests=6
    )
    summary = chaos_summary(run_campaign(spec, workers=1))
    with CatalogStore(tmp_path / "cat.db") as store:
        artifact_id, created = store.ingest(summary, "smoke.json")
        assert created
        assert store.get(artifact_id).kind == "chaos"
        assert store.metrics_for(artifact_id)["outcome_silent_corruption"] == 0.0

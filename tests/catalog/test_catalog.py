"""Catalog store + CLI behaviour: ingest idempotence, validation,
kind sniffing, queries, and agreement with the producer-side timing
schema.
"""

from __future__ import annotations

import json

import pytest

from benchmarks.timing_schema import validate_timing_payload
from repro.catalog import (
    CatalogError,
    CatalogStore,
    classify_payload,
    content_hash_of,
)
from repro.catalog.cli import main as catalog_main


def timing_payload(**overrides) -> dict:
    payload = {
        "bench": "demo_bench",
        "batch": 64,
        "serial_seconds": 1.25,
        "served_seconds": 0.25,
        "speedup_vs_serial": 5.0,
        "min_speedup_vs_serial_asserted": 3.0,
    }
    payload.update(overrides)
    return payload


def campaign_payload(**overrides) -> dict:
    payload = {
        "spec_name": "demo-campaign",
        "spec_hash": "a" * 64,
        "target": "qualifier",
        "total_trials_expected": 20,
        "cells": [
            {"index": 0, "trials": 10, "counts": {}},
            {"index": 1, "trials": 10, "counts": {}},
        ],
        "elapsed_seconds": 3.5,
        "workers": 2,
        "resumed_shards": 0,
    }
    payload.update(overrides)
    return payload


# ---------------------------------------------------------------------------
# Store semantics
# ---------------------------------------------------------------------------


def test_ingest_is_idempotent_and_content_addressed():
    with CatalogStore() as store:
        id_a, created_a = store.ingest(timing_payload(), name="one")
        id_b, created_b = store.ingest(timing_payload(), name="two")
        assert created_a and not created_b
        assert id_a == id_b  # same content, same row, name ignored
        assert len(store) == 1

        changed = timing_payload(speedup_vs_serial=6.0)
        id_c, created_c = store.ingest(changed, name="one")
        assert created_c and id_c != id_a
        assert len(store) == 2


def test_kind_sniffing_and_rejection():
    assert classify_payload(timing_payload()) == "timing"
    assert classify_payload(campaign_payload()) == "campaign"
    with pytest.raises(CatalogError, match="neither"):
        classify_payload({"hello": "world"})
    with CatalogStore() as store:
        with pytest.raises(CatalogError, match="neither"):
            store.ingest({"hello": "world"}, name="junk")


def test_invalid_artifacts_rejected_with_reasons():
    with CatalogStore() as store:
        with pytest.raises(CatalogError, match="positive finite"):
            store.ingest(
                timing_payload(serial_seconds=-1.0), name="bad"
            )
        with pytest.raises(CatalogError, match="speedup"):
            bad = timing_payload()
            del bad["speedup_vs_serial"]
            store.ingest(bad, name="bad")
        with pytest.raises(CatalogError, match="spec_name"):
            store.ingest(campaign_payload(spec_name=""), name="bad")
        assert len(store) == 0  # nothing malformed was filed


def test_validation_agrees_with_producer_schema():
    """The catalog's consumer-side mirror and the benches' producer
    schema accept and reject the same timing payloads."""
    cases = [
        timing_payload(),
        timing_payload(batch="64"),
        timing_payload(serial_seconds=float("inf")),
        timing_payload(bench=""),
        {"bench": "x", "batch": 1, "only_seconds": 1.0},
        timing_payload(min_x_asserted=-2.0),
    ]
    with CatalogStore() as store:
        for case in cases:
            producer_ok = not validate_timing_payload(case)
            try:
                store.ingest(dict(case), name="case")
                consumer_ok = True
            except CatalogError:
                consumer_ok = False
            assert producer_ok == consumer_ok, case


def test_metrics_and_trend_queries():
    with CatalogStore() as store:
        store.ingest(timing_payload(), name="t1")
        store.ingest(
            timing_payload(
                bench="other", speedup_vs_serial=2.0, speedup=4.0
            ),
            name="t2",
        )
        store.ingest(campaign_payload(), name="c1")

        record = store.get("t1")
        metrics = store.metrics_for(record.id)
        assert metrics["speedup_vs_serial"] == 5.0
        assert metrics["serial_seconds"] == 1.25

        campaign = store.get("c1")
        assert campaign.kind == "campaign"
        assert store.metrics_for(campaign.id)["trials"] == 20.0

        rows = store.trend()  # default family: speedup + speedup_vs_*
        values = {(name, key): v for name, _b, _batch, key, v in rows}
        assert values[("t1", "speedup_vs_serial")] == 5.0
        assert values[("t2", "speedup_vs_serial")] == 2.0
        assert values[("t2", "speedup")] == 4.0
        assert len(rows) == 3  # campaigns contribute no speedups

        only = store.trend(bench="other")
        assert {row[0] for row in only} == {"t2"}


def test_get_by_id_name_and_hash_prefix():
    with CatalogStore() as store:
        artifact_id, _ = store.ingest(timing_payload(), name="t1")
        digest = content_hash_of(timing_payload())
        assert store.get(artifact_id).name == "t1"
        assert store.get("t1").id == artifact_id
        assert store.get(digest[:12]).id == artifact_id
        with pytest.raises(KeyError):
            store.get("no-such-artifact")


def test_durability_roundtrip(tmp_path):
    db = tmp_path / "catalog.sqlite"
    with CatalogStore(db) as store:
        store.ingest(timing_payload(), name="t1")
    with CatalogStore(db) as store:
        assert len(store) == 1
        assert store.get("t1").payload["speedup_vs_serial"] == 5.0


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def test_cli_ingest_list_show_trend_roundtrip(tmp_path, capsys):
    artifact = tmp_path / "demo_bench_timing.json"
    artifact.write_text(json.dumps(timing_payload()))
    db = str(tmp_path / "catalog.sqlite")

    assert catalog_main(["--db", db, "ingest", str(tmp_path)]) == 0
    assert "1 new" in capsys.readouterr().out

    # Idempotent: the second ingest files nothing.
    assert catalog_main(["--db", db, "ingest", str(artifact)]) == 0
    assert "0 new, 1 unchanged" in capsys.readouterr().out

    assert catalog_main(["--db", db, "--json", "list"]) == 0
    listing = json.loads(capsys.readouterr().out)
    assert [a["name"] for a in listing["artifacts"]] == [
        "demo_bench_timing"
    ]

    assert catalog_main(
        ["--db", db, "--json", "show", "demo_bench_timing"]
    ) == 0
    shown = json.loads(capsys.readouterr().out)
    assert shown["payload"]["speedup_vs_serial"] == 5.0
    assert shown["metrics"]["speedup_vs_serial"] == 5.0

    assert catalog_main(["--db", db, "--json", "trend"]) == 0
    trend = json.loads(capsys.readouterr().out)
    assert trend["rows"] == [{
        "name": "demo_bench_timing",
        "bench": "demo_bench",
        "batch": 64,
        "key": "speedup_vs_serial",
        "value": 5.0,
    }]


def test_cli_reports_invalid_files_without_dying(tmp_path, capsys):
    good = tmp_path / "good_timing.json"
    good.write_text(json.dumps(timing_payload()))
    bad = tmp_path / "bad_timing.json"
    bad.write_text(json.dumps({"bench": "x"}))
    db = str(tmp_path / "catalog.sqlite")

    # Non-strict: the good file lands, the bad one is reported and
    # the exit code is nonzero so CI notices.
    assert catalog_main(["--db", db, "ingest", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "1 new" in out and "1 failed" in out

    assert catalog_main(["--db", db, "--json", "list"]) == 0
    listing = json.loads(capsys.readouterr().out)
    assert len(listing["artifacts"]) == 1


def test_cli_trend_reproduces_shipped_artifacts(tmp_path, capsys):
    """The acceptance loop on the real repo artifacts: every shipped
    timing JSON's speedup columns must come back, value-exact, from
    ``catalog.py trend``."""
    from pathlib import Path

    shipped = sorted(Path("benchmarks/artifacts").glob("*.json"))
    assert shipped, "no shipped timing artifacts found"
    db = str(tmp_path / "catalog.sqlite")
    assert catalog_main(
        ["--db", db, "ingest", "benchmarks/artifacts"]
    ) == 0
    capsys.readouterr()
    assert catalog_main(["--db", db, "--json", "trend"]) == 0
    rows = json.loads(capsys.readouterr().out)["rows"]
    catalogued = {
        (row["name"], row["key"]): row["value"] for row in rows
    }
    for path in shipped:
        payload = json.loads(path.read_text())
        for key, value in payload.items():
            if key == "speedup" or key.startswith("speedup_vs_"):
                assert catalogued[(path.stem, key)] == value, (
                    f"{path.stem}.{key} not reproduced from catalog"
                )

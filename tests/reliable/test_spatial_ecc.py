"""Spatial redundancy (PE arrays) and SEC-DED weight storage."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.injector import FaultyExecutionUnit
from repro.faults.models import PermanentFault, TransientFault
from repro.reliable.convolution import ConvolutionStats, reliable_convolution
from repro.reliable.ecc import (
    DecodeReport,
    ECCProtectedTensor,
    decode_words,
    encode_words,
)
from repro.reliable.execution_unit import PerfectExecutionUnit
from repro.reliable.leaky_bucket import LeakyBucket
from repro.reliable.spatial import (
    ArrayExhaustedError,
    PEArray,
    SpatialRedundantOperator,
)


class TestPEArray:
    def test_needs_two_elements(self):
        with pytest.raises(ValueError):
            PEArray(n_elements=1)

    def test_round_robin_pairs_distinct(self):
        array = PEArray(n_elements=4)
        for _ in range(10):
            first, second = array.pick_pair()
            assert first.index != second.index

    def test_retirement_on_bucket_overflow(self):
        array = PEArray(n_elements=3, bucket_factor=2, bucket_ceiling=4)
        pe = array.elements[0]
        array.report_disagreement(pe)
        assert not pe.retired
        array.report_disagreement(pe)
        assert pe.retired
        assert array.degraded

    def test_exhaustion_raises(self):
        array = PEArray(n_elements=2, bucket_ceiling=2)
        for pe in array.elements:
            array.report_disagreement(pe)
        with pytest.raises(ArrayExhaustedError):
            array.pick_pair()

    def test_health_summary_text(self):
        array = PEArray(n_elements=2)
        text = array.health_summary()
        assert "PE0" in text and "PE1" in text


class TestSpatialOperator:
    def test_clean_array_agrees(self, rng):
        operator = SpatialRedundantOperator(PEArray(n_elements=4))
        result = operator.multiply(3.0, 4.0)
        assert result.ok and result.value == 12.0

    def test_permanent_fault_detected_not_silent(self, rng):
        """The case temporal DMR silently loses (common mode)."""
        units = [PerfectExecutionUnit() for _ in range(4)]
        units[1] = FaultyExecutionUnit(PermanentFault(bit=28, rng=rng))
        operator = SpatialRedundantOperator(PEArray(units))
        detections = 0
        for _ in range(16):
            if not operator.multiply(2.0, 3.0).ok:
                detections += 1
        assert detections > 0

    def test_graceful_degradation_completes_correctly(self, rng):
        units = [PerfectExecutionUnit() for _ in range(4)]
        units[2] = FaultyExecutionUnit(PermanentFault(bit=28, rng=rng))
        array = PEArray(units)
        x = rng.standard_normal(100)
        w = rng.standard_normal(100)
        golden = sum(float(a) * float(b) for a, b in zip(x, w))
        stats = ConvolutionStats()
        result = reliable_convolution(
            x, w, 0.0, SpatialRedundantOperator(array),
            bucket=LeakyBucket(ceiling=100_000), stats=stats,
        )
        assert abs(result.value - golden) < 1e-9
        assert stats.errors_detected > 0
        assert array.degraded
        assert array.elements[2].retired
        healthy = [pe for pe in array.elements if not pe.retired]
        assert len(healthy) == 3

    def test_transient_faults_recovered_without_retirement(self, rng):
        units = [
            FaultyExecutionUnit(TransientFault(0.01, rng))
            for _ in range(4)
        ]
        array = PEArray(units)
        x = rng.standard_normal(50)
        w = rng.standard_normal(50)
        reliable_convolution(
            x, w, 0.0, SpatialRedundantOperator(array),
            bucket=LeakyBucket(ceiling=100_000),
        )
        # Isolated transients must not retire healthy silicon.
        assert not array.degraded


class TestECC:
    def test_clean_roundtrip(self, rng):
        values = rng.standard_normal((4, 4)).astype(np.float32)
        storage = ECCProtectedTensor(values)
        out, report = storage.read()
        np.testing.assert_array_equal(out, values)
        assert report.clean

    def test_every_single_bit_flip_corrected(self, rng):
        values = rng.standard_normal(3).astype(np.float32)
        for bit in range(39):
            storage = ECCProtectedTensor(values)
            storage.flip_stored_bit(1, bit)
            out, report = storage.read()
            np.testing.assert_array_equal(out, values)
            assert report.corrected == 1, f"bit {bit}"
            assert report.uncorrectable == 0

    def test_double_flip_detected_uncorrectable(self, rng):
        values = rng.standard_normal(4).astype(np.float32)
        storage = ECCProtectedTensor(values)
        storage.flip_stored_bit(2, 5)
        storage.flip_stored_bit(2, 17)
        _, report = storage.read()
        assert report.uncorrectable == 1
        assert report.uncorrectable_indices == [2]

    def test_scrubbing_on_read(self, rng):
        values = rng.standard_normal(8).astype(np.float32)
        storage = ECCProtectedTensor(values)
        storage.flip_stored_bit(3, 10)
        storage.read()
        _, second = storage.read()
        assert second.clean

    def test_flip_validation(self, rng):
        storage = ECCProtectedTensor(np.zeros(2, dtype=np.float32))
        with pytest.raises(IndexError):
            storage.flip_stored_bit(5, 0)
        with pytest.raises(ValueError):
            storage.flip_stored_bit(0, 39)

    def test_shape_preserved(self, rng):
        values = rng.standard_normal((2, 3, 4)).astype(np.float32)
        out, _ = ECCProtectedTensor(values).read()
        assert out.shape == (2, 3, 4)


@given(st.lists(st.integers(0, 2**32 - 1), min_size=1, max_size=16))
@settings(max_examples=60, deadline=None)
def test_encode_decode_identity_property(words):
    data = np.array(words, dtype=np.uint32)
    decoded, report = decode_words(encode_words(data))
    np.testing.assert_array_equal(decoded, data)
    assert report.clean


@given(
    st.integers(0, 2**32 - 1),
    st.integers(0, 38),
)
@settings(max_examples=100, deadline=None)
def test_single_flip_always_corrected_property(word, bit):
    code = encode_words(np.array([word], dtype=np.uint32))
    code[0] ^= np.uint64(1 << bit)
    decoded, report = decode_words(code)
    assert decoded[0] == word
    assert report.corrected == 1


@given(
    st.integers(0, 2**32 - 1),
    st.integers(0, 38),
    st.integers(0, 38),
)
@settings(max_examples=100, deadline=None)
def test_double_flip_never_silent_property(word, bit_a, bit_b):
    """SEC-DED contract: two flips are either corrected back to the
    original (impossible -- they'd cancel only if equal, which we
    exclude) or flagged uncorrectable; never silently wrong."""
    if bit_a == bit_b:
        return
    code = encode_words(np.array([word], dtype=np.uint32))
    code[0] ^= np.uint64((1 << bit_a) | (1 << bit_b))
    decoded, report = decode_words(code)
    if report.uncorrectable == 0:
        # If the decoder claims success the data must be right.
        assert decoded[0] == word
    else:
        assert report.uncorrectable == 1


class TestMemoryProtectionWorkflows:
    def test_spatial_vs_temporal_outcomes(self):
        from repro.workflows import run_spatial_vs_temporal

        result = run_spatial_vs_temporal()
        assert not result.temporal_detected       # silent common mode
        assert not result.temporal_correct
        assert result.spatial_detected
        assert result.spatial_correct
        assert result.spatial_degraded
        assert result.retired_pe == 2

    def test_ecc_study_protects_moderate_flips(self, trained_model):
        from repro.workflows import run_ecc_study

        result = run_ecc_study(
            trained_model, flip_counts=(8, 32), seed=1
        )
        for row in result.rows:
            # ECC accuracy stays at clean level while flips remain
            # mostly single-per-word.
            if row.uncorrectable == 0:
                assert row.ecc_accuracy == pytest.approx(
                    result.clean_accuracy, abs=0.02
                )
        assert "flips" in result.to_text()


class TestVectorizedDecodeReport:
    """decode_words is one mask-classification pass; its DecodeReport
    must stay identical to the historical per-word syndrome loop."""

    @staticmethod
    def _decode_reference(code):
        """The pre-vectorization per-word classification loop."""
        from repro.reliable.ecc import (
            _ALL_MASK,
            _COVER_MASKS,
            _N_POSITIONS,
        )

        code = np.asarray(code, dtype=np.uint64).copy()
        syndrome = np.zeros(code.shape, dtype=np.uint64)
        for bit, mask in enumerate(_COVER_MASKS):
            failed = np.bitwise_count(code & mask) & np.uint64(1)
            syndrome |= failed << np.uint64(bit)
        overall = np.bitwise_count(code & _ALL_MASK) & np.uint64(1)
        report = DecodeReport()
        flat = code.reshape(-1)
        for i in range(flat.size):
            s = int(syndrome.reshape(-1)[i])
            odd = int(overall.reshape(-1)[i]) == 1
            if s == 0 and not odd:
                continue
            if odd:
                if s < _N_POSITIONS:
                    flat[i] ^= np.uint64(1 << s)
                    report.corrected += 1
                else:
                    report.uncorrectable += 1
                    report.uncorrectable_indices.append(i)
            else:
                report.uncorrectable += 1
                report.uncorrectable_indices.append(i)
        return code, report

    def test_mixed_batch_report_pinned(self, rng):
        values = rng.standard_normal(64).astype(np.float32)
        code = encode_words(values.view(np.uint32))
        # Clean words, single data-bit, single parity-bit, the overall
        # parity bit itself, and double flips -- all in one batch.
        code[3] ^= np.uint64(1 << 7)            # single data bit
        code[9] ^= np.uint64(1 << 2)            # single Hamming parity
        code[12] ^= np.uint64(1)                # overall parity bit
        code[20] ^= np.uint64((1 << 5) | (1 << 9))   # double flip
        code[41] ^= np.uint64((1 << 0) | (1 << 38))  # double incl. bit 0
        data, report = decode_words(code)
        ref_code, ref_report = self._decode_reference(code)
        assert report.corrected == ref_report.corrected == 3
        assert report.uncorrectable == ref_report.uncorrectable == 2
        assert report.uncorrectable_indices == \
            ref_report.uncorrectable_indices == [20, 41]
        ref_decoded, _ = decode_words(ref_code)  # already corrected
        np.testing.assert_array_equal(data, ref_decoded)
        clean = np.ones(64, dtype=bool)
        clean[[20, 41]] = False
        np.testing.assert_array_equal(
            data[clean].view(np.float32), values[clean]
        )

    def test_random_flip_storm_matches_reference(self, rng):
        values = rng.standard_normal(128).astype(np.float32)
        code = encode_words(values.view(np.uint32))
        for _ in range(60):
            word = int(rng.integers(0, code.size))
            bit = int(rng.integers(0, 39))
            code[word] ^= np.uint64(1 << bit)
        data, report = decode_words(code.copy())
        ref_code, ref_report = self._decode_reference(code.copy())
        assert report.corrected == ref_report.corrected
        assert report.uncorrectable == ref_report.uncorrectable
        assert report.uncorrectable_indices == \
            ref_report.uncorrectable_indices
        # Compare the decoded data words, not just the report.
        ref_decoded, _ = decode_words(ref_code)
        np.testing.assert_array_equal(data, ref_decoded)

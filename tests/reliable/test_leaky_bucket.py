"""Leaky bucket: the paper's Algorithm 3 error-counter semantics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reliable.leaky_bucket import LeakyBucket
from repro.workflows.fault_study import drive_bucket


class TestGeometry:
    def test_default_ceiling_is_2f_minus_1(self):
        assert LeakyBucket(factor=2).ceiling == 3
        assert LeakyBucket(factor=3).ceiling == 5

    def test_explicit_ceiling(self):
        assert LeakyBucket(factor=2, ceiling=10).ceiling == 10

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            LeakyBucket(factor=0)
        with pytest.raises(ValueError):
            LeakyBucket(factor=3, ceiling=2)


class TestPaperSemantics:
    """'A stream of correctly executed operations will cancel one,
    but not two successive errors.'"""

    def test_single_error_survives(self):
        bucket = LeakyBucket()
        assert not drive_bucket(bucket, "ssssEssss")
        assert bucket.level == 0  # fully drained

    def test_two_successive_errors_abort(self):
        assert drive_bucket(LeakyBucket(), "ssssEEssss")

    def test_two_separated_errors_survive(self):
        assert not drive_bucket(LeakyBucket(), "EssssssE")

    def test_one_success_between_errors_still_aborts(self):
        # One success leaks only 1 of the 2 added per error.
        assert drive_bucket(LeakyBucket(), "EsE")

    def test_two_successes_between_errors_survive(self):
        assert not drive_bucket(LeakyBucket(), "EssE")


class TestMechanics:
    def test_error_adds_factor(self):
        bucket = LeakyBucket(factor=2, ceiling=100)
        bucket.record_error()
        assert bucket.level == 2

    def test_success_leaks_one_floored(self):
        bucket = LeakyBucket(factor=2, ceiling=100)
        bucket.record_success()
        assert bucket.level == 0
        bucket.record_error()
        bucket.record_success()
        assert bucket.level == 1

    def test_overflow_flag(self):
        bucket = LeakyBucket(factor=2, ceiling=3)
        assert not bucket.record_error()
        assert bucket.record_error()
        assert bucket.overflowed

    def test_statistics(self):
        bucket = LeakyBucket(ceiling=100)
        drive_bucket(bucket, "EsEss")
        assert bucket.total_errors == 2
        assert bucket.total_successes == 3

    def test_reset(self):
        bucket = LeakyBucket(ceiling=100)
        drive_bucket(bucket, "EEE")
        bucket.reset()
        assert bucket.level == 0
        assert bucket.total_errors == 0


@given(st.integers(1, 5), st.integers(0, 200))
@settings(max_examples=50, deadline=None)
def test_successes_never_overflow(factor, n_successes):
    bucket = LeakyBucket(factor=factor)
    for _ in range(n_successes):
        bucket.record_success()
    assert bucket.level == 0
    assert not bucket.overflowed


@given(
    st.integers(1, 4),
    st.lists(st.sampled_from("Es"), min_size=0, max_size=60),
)
@settings(max_examples=100, deadline=None)
def test_level_invariants(factor, events):
    """Level stays within [0, ceiling+factor) and matches a simple
    reference recomputation."""
    bucket = LeakyBucket(factor=factor)
    reference = 0
    for event in events:
        if event == "E":
            bucket.record_error()
            reference += factor
        else:
            bucket.record_success()
            reference = max(0, reference - 1)
    assert bucket.level == reference
    assert 0 <= bucket.level


@given(st.integers(2, 4))
@settings(max_examples=20, deadline=None)
def test_isolated_errors_never_abort_with_enough_spacing(factor):
    """For factor >= 2, errors separated by >= factor successes can
    never overflow (each error fully drains before the next arrives).
    factor == 1 is excluded: its default ceiling (2*1-1 = 1) makes any
    single error an immediate abort, by design."""
    bucket = LeakyBucket(factor=factor)
    pattern = ("E" + "s" * factor) * 10
    assert not drive_bucket(bucket, pattern)


def test_factor_one_aborts_on_first_error():
    """With factor 1 the default ceiling is 1: fail-fast semantics."""
    assert drive_bucket(LeakyBucket(factor=1), "sssEsss")


@given(st.integers(0, 50), st.integers(2, 4), st.integers(0, 6))
@settings(max_examples=30, deadline=None)
def test_bulk_successes_equal_repeated_singles(count, factor, errors):
    """record_successes(k) is exactly k record_success() calls, from
    any starting level -- the vectorized engine's bulk-leak contract."""
    bulk = LeakyBucket(factor=factor, ceiling=1000)
    single = LeakyBucket(factor=factor, ceiling=1000)
    for _ in range(errors):
        bulk.record_error()
        single.record_error()
    bulk.record_successes(count)
    for _ in range(count):
        single.record_success()
    assert bulk.level == single.level
    assert bulk.total_successes == single.total_successes


def test_bulk_successes_rejects_negative():
    import pytest

    with pytest.raises(ValueError):
        LeakyBucket().record_successes(-1)

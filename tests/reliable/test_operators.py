"""Qualified values, operators (Algorithms 1 and 2), voting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults.injector import FaultyExecutionUnit
from repro.faults.models import PermanentFault, TransientFault
from repro.reliable.execution_unit import (
    Float32ExecutionUnit,
    PerfectExecutionUnit,
)
from repro.reliable.operators import (
    PlainOperator,
    RedundantOperator,
    TMROperator,
    make_operator,
)
from repro.reliable.qualified import QualifiedValue
from repro.reliable.voting import majority_vote


class TestQualifiedValue:
    def test_truthiness_is_qualifier(self):
        assert QualifiedValue(1.0, True)
        assert not QualifiedValue(1.0, False)

    def test_unwrap(self):
        assert QualifiedValue(2.5, True).unwrap() == 2.5
        with pytest.raises(ValueError):
            QualifiedValue(2.5, False).unwrap()

    def test_combine_ands_qualifiers(self):
        good = QualifiedValue(1.0, True)
        bad = QualifiedValue(2.0, False)
        assert QualifiedValue.combine(good, good, 3.0).ok
        assert not QualifiedValue.combine(good, bad, 3.0).ok

    def test_frozen(self):
        value = QualifiedValue(1.0, True)
        with pytest.raises(Exception):
            value.value = 2.0


class TestExecutionUnits:
    def test_perfect_unit_exact(self):
        unit = PerfectExecutionUnit()
        assert unit.multiply(3.0, 4.0) == 12.0
        assert unit.add(1.5, 2.5) == 4.0

    def test_float32_unit_rounds(self):
        unit = Float32ExecutionUnit()
        # 0.1 is not representable; float32 product differs from
        # float64 product.
        exact = 0.1 * 0.1
        rounded = unit.multiply(0.1, 0.1)
        assert rounded != exact
        assert abs(rounded - exact) < 1e-8


class TestPlainOperator:
    """Algorithm 1: qualifier preset True."""

    def test_returns_product_and_true(self):
        op = PlainOperator()
        result = op.multiply(3.0, 5.0)
        assert result.value == 15.0 and result.ok

    def test_qualifies_corrupted_result(self, rng):
        # The defining weakness: a fault slips through qualified True.
        unit = FaultyExecutionUnit(PermanentFault(bit=30, rng=rng))
        op = PlainOperator(unit)
        result = op.multiply(3.0, 5.0)
        assert result.ok
        assert result.value != 15.0

    def test_executions_per_op(self):
        assert PlainOperator.executions_per_op == 1


class TestRedundantOperator:
    """Algorithm 2: dual execution, compare."""

    def test_agreement_qualifies(self):
        op = RedundantOperator()
        result = op.add(2.0, 3.0)
        assert result.value == 5.0 and result.ok

    def test_transient_disagreement_detected(self, rng):
        unit = FaultyExecutionUnit(TransientFault(0.5, rng))
        op = RedundantOperator(unit)
        outcomes = [op.multiply(2.0, 3.0) for _ in range(200)]
        flagged = [r for r in outcomes if not r.ok]
        assert flagged, "50% transient faults must trip comparisons"

    def test_permanent_fault_is_common_mode_blind_spot(self, rng):
        unit = FaultyExecutionUnit(PermanentFault(bit=28, rng=rng))
        op = RedundantOperator(unit)
        result = op.multiply(2.0, 3.0)
        assert result.ok          # both copies equally wrong -> agree
        assert result.value != 6.0

    def test_executions_per_op(self):
        assert RedundantOperator.executions_per_op == 2


class TestTMROperator:
    def test_clean_execution(self):
        result = TMROperator().multiply(4.0, 2.5)
        assert result.value == 10.0 and result.ok

    def test_single_fault_masked(self, rng):
        # A fault hitting one of three executions is outvoted.
        unit = FaultyExecutionUnit(TransientFault(0.2, rng))
        op = TMROperator(unit)
        masked = 0
        for _ in range(300):
            result = op.multiply(2.0, 3.0)
            if result.ok and result.value == 6.0:
                masked += 1
        assert masked > 250

    def test_all_disagree_unqualified(self):
        class Countdown(PerfectExecutionUnit):
            def __init__(self):
                self.n = 0

            def multiply(self, a, b):
                self.n += 1
                return a * b + self.n  # three distinct wrong values

        result = TMROperator(Countdown()).multiply(1.0, 1.0)
        assert not result.ok


class _SignedZeroUnit(PerfectExecutionUnit):
    """First call returns +0.0, second returns -0.0: a sign-bit upset
    on a zero result, invisible to float ``==``."""

    def __init__(self):
        self.calls = 0

    def multiply(self, a, b):
        self.calls += 1
        return 0.0 if self.calls % 2 == 1 else -0.0


class _NaNUnit(PerfectExecutionUnit):
    """Deterministically produces a true NaN (inf - inf) on add."""

    def add(self, a, b):
        return float("inf") - float("inf")


class TestWordComparison:
    """Qualifiers compare 64-bit storage words, as hardware does.

    Regression suite for the float ``==`` bugs: identical NaNs used
    to never agree (infinite rollback until bucket overflow) and
    +0.0/-0.0 used to agree silently.
    """

    def test_identical_nan_results_qualify(self):
        result = RedundantOperator(_NaNUnit()).add(
            float("inf"), float("-inf")
        )
        assert np.isnan(result.value)
        assert result.ok  # same NaN word on both executions -> agree

    def test_signed_zero_disagreement_detected(self):
        result = RedundantOperator(_SignedZeroUnit()).multiply(0.0, 1.0)
        assert not result.ok  # +0.0 vs -0.0: different sign words

    def test_tmr_masks_signed_zero_minority(self):
        # Executions produce +0.0, -0.0, +0.0: the word voter must
        # pick +0.0 with agreement 2, not merge the zeros into 3.
        class ThirdPositive(_SignedZeroUnit):
            def multiply(self, a, b):
                self.calls += 1
                return -0.0 if self.calls == 2 else 0.0

        result = TMROperator(ThirdPositive()).multiply(0.0, 1.0)
        assert result.ok
        assert not np.signbit(result.value)

    def test_nan_never_poisons_rollback_loop(self):
        """End-to-end form of the NaN bug: a reliable convolution whose
        accumulate yields NaN must terminate with the NaN qualified,
        not spin into bucket overflow."""
        from repro.reliable.convolution import reliable_convolution

        result = reliable_convolution(
            [float("inf")], [1.0], float("-inf"),
            RedundantOperator(),
        )
        assert np.isnan(result.value)
        assert result.ok


class TestVoting:
    def test_majority(self):
        assert majority_vote([1.0, 1.0, 2.0]) == (1.0, 2)

    def test_unanimous(self):
        assert majority_vote([3.0, 3.0, 3.0]) == (3.0, 3)

    def test_tie_prefers_earliest(self):
        value, agreement = majority_vote([2.0, 1.0, 1.0, 2.0])
        assert value == 2.0 and agreement == 2

    def test_all_distinct(self):
        value, agreement = majority_vote([1.0, 2.0, 3.0])
        assert value == 1.0 and agreement == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            majority_vote([])

    def test_nan_votes_count_by_word(self):
        # Counter over raw floats would split identical NaNs (object
        # identity) and could elect a minority finite value.
        nan = float("nan")
        value, agreement = majority_vote([nan, nan, 1.0])
        assert np.isnan(value) and agreement == 2

    def test_signed_zeros_vote_apart(self):
        value, agreement = majority_vote([0.0, -0.0, -0.0])
        assert agreement == 2
        assert np.signbit(value)

    def test_signed_zero_tie_prefers_earliest(self):
        value, agreement = majority_vote([0.0, -0.0])
        assert agreement == 1
        assert not np.signbit(value)


class TestFactory:
    @pytest.mark.parametrize("kind, cls", [
        ("plain", PlainOperator),
        ("dmr", RedundantOperator),
        ("redundant", RedundantOperator),
        ("tmr", TMROperator),
    ])
    def test_kinds(self, kind, cls):
        assert isinstance(make_operator(kind), cls)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_operator("quintuple")

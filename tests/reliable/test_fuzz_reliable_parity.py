"""Randomized differential parity: reliable conv engines and ECC.

Two references, fuzzed through :mod:`tests.support.fuzz`:

* ``ReliableConv2D(engine="vectorized")`` vs the scalar Algorithm 3
  loop -- outputs and execution reports bitwise/field equal across
  random layer geometry, operators, filter subsets and batch sizes;
* :func:`repro.reliable.ecc.decode_words` (whole-array mask
  classification) vs an independent per-word Python decode of the same
  SEC-DED layout, across random data and injected 0/1/2-bit upsets.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.layers.conv import Conv2D
from repro.reliable import ecc
from repro.reliable.executor import ReliableConv2D
from tests.support.fuzz import (
    assert_arrays_bitwise_equal,
    assert_reports_equal,
    differential_cases,
    random_codewords,
)

# ---------------------------------------------------------------------------
# Reliable convolution: scalar vs vectorized
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("rng", differential_cases(8, root_seed=90210))
def test_vectorized_conv_matches_scalar(rng):
    in_channels = int(rng.integers(1, 4))
    out_channels = int(rng.integers(1, 5))
    kernel = int(rng.choice([1, 3, 5]))
    stride = int(rng.choice([1, 2]))
    padding = int(rng.choice([0, 1]))
    size = int(rng.integers(kernel + padding, 13))
    layer = Conv2D(
        in_channels,
        out_channels,
        kernel,
        stride=stride,
        padding=padding,
        rng=rng,
        name="fuzz-conv",
    )
    operator = str(rng.choice(["plain", "dmr", "tmr"]))
    n = int(rng.integers(1, 3))
    x = rng.normal(0.0, 1.0, size=(n, in_channels, size, size)).astype(
        np.float32
    )
    if rng.random() < 0.5:
        filters = None
    else:
        count = int(rng.integers(1, out_channels + 1))
        filters = sorted(
            int(f)
            for f in rng.choice(out_channels, size=count, replace=False)
        )
    scalar = ReliableConv2D(layer, operator, engine="scalar")
    vectorized = ReliableConv2D(layer, operator, engine="vectorized")
    out_s, rep_s = scalar.forward(x, filters=filters)
    out_v, rep_v = vectorized.forward(x, filters=filters)
    context = (
        f"{operator} {in_channels}->{out_channels} k{kernel} s{stride} "
        f"p{padding} n{n} filters={filters}"
    )
    assert_arrays_bitwise_equal(out_v, out_s, context)
    assert_reports_equal(rep_v, rep_s, context)


# ---------------------------------------------------------------------------
# ECC: whole-array decode vs per-word loop reference
# ---------------------------------------------------------------------------


def _reference_decode(code: np.ndarray):
    """Per-word Python decode of the extended Hamming(39,32) layout --
    written independently from the module's documented bit layout, so
    it can disagree with a vectorization bug in ``decode_words``."""
    corrected_words = []
    corrected = 0
    uncorrectable_indices = []
    for index, word in enumerate(int(w) for w in code.reshape(-1)):
        syndrome = 0
        for bit, mask in enumerate(int(m) for m in ecc._COVER_MASKS):
            if bin(word & mask).count("1") % 2:
                syndrome |= 1 << bit
        odd = bin(word & int(ecc._ALL_MASK)).count("1") % 2 == 1
        if odd:
            if syndrome < ecc._N_POSITIONS:
                word ^= 1 << syndrome
                corrected += 1
            else:
                uncorrectable_indices.append(index)
        elif syndrome != 0:
            uncorrectable_indices.append(index)
        data = 0
        for bit, pos in enumerate(ecc._DATA_POSITIONS):
            data |= ((word >> pos) & 1) << bit
        corrected_words.append(data)
    data_array = np.array(corrected_words, dtype=np.uint64).astype(
        np.uint32
    ).reshape(code.shape)
    return data_array, corrected, uncorrectable_indices


@pytest.mark.parametrize("rng", differential_cases(6, root_seed=424242))
def test_decode_words_matches_loop_reference(rng):
    data, code = random_codewords(rng)
    got_data, got_report = ecc.decode_words(code.copy())
    want_data, want_corrected, want_uncorrectable = _reference_decode(
        code
    )
    assert_arrays_bitwise_equal(got_data, want_data, "decoded data")
    assert got_report.corrected == want_corrected
    assert got_report.uncorrectable == len(want_uncorrectable)
    assert got_report.uncorrectable_indices == want_uncorrectable
    # Words never touched by injection must round-trip to their data.
    clean = np.setdiff1d(
        np.arange(len(data)),
        np.array(want_uncorrectable, dtype=np.int64),
    )
    np.testing.assert_array_equal(got_data[clean], data[clean])

"""Fixed-point execution unit (FPGA DSP model)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reliable.convolution import reliable_convolution
from repro.reliable.fixed_point import (
    Q7_8,
    Q15_16,
    FixedPointExecutionUnit,
    QFormat,
)
from repro.reliable.operators import PlainOperator, RedundantOperator


class TestQFormat:
    def test_q7_8_ranges(self):
        assert Q7_8.scale == 256
        assert Q7_8.max_value == pytest.approx(127.99609375)
        assert Q7_8.min_value == -128.0
        assert Q7_8.resolution == 1 / 256

    def test_quantize_rounds_to_grid(self):
        assert Q7_8.quantize(0.5) == 0.5
        assert Q7_8.quantize(1 / 512) in (0.0, 1 / 256)
        assert Q7_8.quantize(0.123) == pytest.approx(
            round(0.123 * 256) / 256
        )

    def test_quantize_saturates(self):
        assert Q7_8.quantize(1e9) == Q7_8.max_value
        assert Q7_8.quantize(-1e9) == Q7_8.min_value

    def test_validation(self):
        with pytest.raises(ValueError):
            QFormat(-1, 8)
        with pytest.raises(ValueError):
            QFormat(0, 0)


class TestUnit:
    def test_exact_small_products(self):
        unit = FixedPointExecutionUnit(Q7_8)
        assert unit.multiply(2.0, 3.0) == 6.0
        assert unit.add(1.5, 2.25) == 3.75

    def test_rounding_error_bounded_by_resolution(self, rng):
        unit = FixedPointExecutionUnit(Q15_16)
        for _ in range(100):
            a = float(rng.uniform(-10, 10))
            b = float(rng.uniform(-10, 10))
            result = unit.multiply(a, b)
            # Quantising both inputs can each be off by res/2; the
            # product error is bounded by ~(|a|+|b|+1) * resolution.
            bound = (abs(a) + abs(b) + 1.0) * Q15_16.resolution
            assert abs(result - a * b) <= bound

    def test_saturation_counted(self):
        unit = FixedPointExecutionUnit(Q7_8)
        result = unit.multiply(100.0, 100.0)
        assert result == Q7_8.max_value
        assert unit.saturations == 1
        result = unit.add(-120.0, -120.0)
        assert result == Q7_8.min_value
        assert unit.saturations == 2

    def test_deterministic_for_redundancy(self, rng):
        """Fixed point is bit-exact reproducible, so DMR comparison
        never false-positives on clean hardware."""
        unit = FixedPointExecutionUnit(Q15_16)
        operator = RedundantOperator(unit)
        for _ in range(200):
            a = float(rng.uniform(-100, 100))
            b = float(rng.uniform(-100, 100))
            assert operator.multiply(a, b).ok
            assert operator.add(a, b).ok


class TestFixedPointConvolution:
    def test_quantized_conv_close_to_float(self, rng):
        x = rng.uniform(-1, 1, 27)
        w = rng.uniform(-1, 1, 27)
        exact = reliable_convolution(x, w, 0.1, PlainOperator()).value
        quantized = reliable_convolution(
            x, w, 0.1,
            PlainOperator(FixedPointExecutionUnit(Q15_16)),
        ).value
        assert abs(exact - quantized) < 27 * 4 * Q15_16.resolution

    def test_coarse_format_larger_error(self, rng):
        x = rng.uniform(-1, 1, 27)
        w = rng.uniform(-1, 1, 27)
        exact = reliable_convolution(x, w, 0.0, PlainOperator()).value
        err_q78 = abs(exact - reliable_convolution(
            x, w, 0.0, PlainOperator(FixedPointExecutionUnit(Q7_8))
        ).value)
        err_q1516 = abs(exact - reliable_convolution(
            x, w, 0.0, PlainOperator(FixedPointExecutionUnit(Q15_16))
        ).value)
        assert err_q1516 <= err_q78 + 1e-9


@given(
    st.floats(-100.0, 100.0),
    st.floats(-100.0, 100.0),
)
@settings(max_examples=100, deadline=None)
def test_add_commutative_property(a, b):
    unit = FixedPointExecutionUnit(Q15_16)
    assert unit.add(a, b) == unit.add(b, a)


@given(st.floats(-50.0, 50.0))
@settings(max_examples=100, deadline=None)
def test_quantize_idempotent(value):
    q = Q7_8.quantize(value)
    assert Q7_8.quantize(q) == q

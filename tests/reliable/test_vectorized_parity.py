"""Parity suite: the vectorized engine vs scalar Algorithm 3.

The speculate-then-verify engine's contract
(:mod:`repro.reliable.vectorized`) is *bitwise identity* with the
scalar per-operation path whenever speculation is exact: same output
words, same ``ExecutionReport`` counters, same abort point, same
``failed_outputs``.  This suite sweeps that contract property-style
across operators {plain, dmr, tmr}, fault-free and (deterministically)
fault-injected units, ``filters=`` subsets and batch sizes, then
checks the stochastic-injection and fallback behaviours separately.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults.injector import FaultyExecutionUnit
from repro.faults.models import PermanentFault, TransientFault
from repro.nn import Conv2D
from repro.reliable.errors import PersistentFailureError
from repro.reliable.execution_unit import (
    Float32ExecutionUnit,
    PerfectExecutionUnit,
    as_array_unit,
)
from repro.reliable.executor import ReliableConv2D, engine_names
from repro.reliable.operators import (
    PlainOperator,
    RedundantOperator,
    TMROperator,
)
from repro.reliable.vectorized import (
    can_speculate,
    speculation_is_exact,
)


@pytest.fixture
def conv(rng):
    return Conv2D(2, 3, 3, stride=1, rng=rng, name="conv")


@pytest.fixture
def batch(rng):
    return rng.standard_normal((2, 2, 6, 6)).astype(np.float32)


OPERATOR_CLASSES = {
    "plain": PlainOperator,
    "dmr": RedundantOperator,
    "tmr": TMROperator,
}

#: Deterministic units: speculation must be provably exact for all of
#: these.  The permanent-fault units include exponent/sign flips that
#: drive values through inf and NaN -- the words the fixed comparators
#: must agree on.
def _units():
    return {
        "perfect": PerfectExecutionUnit(),
        "float32": Float32ExecutionUnit(),
        "stuck-exponent": FaultyExecutionUnit(PermanentFault(bit=30)),
        "stuck-sign": FaultyExecutionUnit(PermanentFault(bit=31)),
        "stuck-mantissa-f32": FaultyExecutionUnit(
            PermanentFault(bit=3), Float32ExecutionUnit()
        ),
    }


def _report_key(report):
    return (
        report.operations,
        report.errors_detected,
        report.rollbacks,
        report.persistent_failures,
        [tuple(int(x) for x in pos) for pos in report.failed_outputs],
        report.operator_kind,
    )


def _assert_bitwise(scalar, vectorized, context):
    out_s, rep_s = scalar
    out_v, rep_v = vectorized
    assert out_s.shape == out_v.shape, context
    assert out_s.tobytes() == out_v.tobytes(), context
    assert _report_key(rep_s) == _report_key(rep_v), context


class TestExactParity:
    @pytest.mark.parametrize("op_name", sorted(OPERATOR_CLASSES))
    @pytest.mark.parametrize("unit_name", sorted(_units()))
    @pytest.mark.parametrize("filters", [None, [1], [0, 2], []])
    def test_bitwise_identical(
        self, conv, batch, op_name, unit_name, filters
    ):
        op_cls = OPERATOR_CLASSES[op_name]
        scalar = ReliableConv2D(
            conv, op_cls(_units()[unit_name]), engine="scalar",
            bucket_ceiling=50,
        ).forward(batch, filters=filters)
        vectorized = ReliableConv2D(
            conv, op_cls(_units()[unit_name]), engine="vectorized",
            bucket_ceiling=50,
        ).forward(batch, filters=filters)
        _assert_bitwise(scalar, vectorized, (op_name, unit_name, filters))

    @pytest.mark.parametrize("op_name", sorted(OPERATOR_CLASSES))
    def test_single_image_matches_batch_slice(self, conv, batch, op_name):
        """Per-image independence: each batched image's words equal its
        own single-image run (the per-image bucket contract)."""
        op_cls = OPERATOR_CLASSES[op_name]
        executor = ReliableConv2D(conv, op_cls(), engine="vectorized")
        full, _ = executor.forward(batch)
        for i in range(len(batch)):
            single, _ = executor.forward(batch[i : i + 1])
            assert single[0].tobytes() == full[i].tobytes()

    def test_exactness_predicate(self):
        assert speculation_is_exact(RedundantOperator())
        assert speculation_is_exact(
            TMROperator(Float32ExecutionUnit())
        )
        assert speculation_is_exact(
            PlainOperator(FaultyExecutionUnit(PermanentFault(bit=7)))
        )
        assert not speculation_is_exact(
            RedundantOperator(
                FaultyExecutionUnit(
                    TransientFault(0.1, np.random.default_rng(0))
                )
            )
        )

    def test_auto_resolution_policy(self, conv):
        assert ReliableConv2D(conv, "dmr")._resolve_engine() == "vectorized"
        faulty = RedundantOperator(
            FaultyExecutionUnit(TransientFault(0.1, np.random.default_rng(0)))
        )
        assert ReliableConv2D(conv, faulty)._resolve_engine() == "scalar"
        assert (
            ReliableConv2D(conv, "tmr", engine="scalar")._resolve_engine()
            == "scalar"
        )


class TestStochasticInjection:
    """Array-level injection on the speculative passes: campaigns still
    exercise detection, rollback and abort through the engine."""

    def _faulty(self, probability, seed, **kwargs):
        return RedundantOperator(
            FaultyExecutionUnit(
                TransientFault(probability, np.random.default_rng(seed))
            )
        ), kwargs

    def test_detects_and_repairs_transients(self, conv, batch):
        operator, _ = self._faulty(0.01, seed=3)
        executor = ReliableConv2D(
            conv, operator, engine="vectorized", bucket_ceiling=10_000
        )
        out, report = executor.forward(batch)
        assert report.errors_detected > 0
        assert report.rollbacks == report.errors_detected
        assert report.persistent_failures == 0
        clean, clean_report = ReliableConv2D(
            conv, "dmr", engine="vectorized"
        ).forward(batch)
        # Every disagreeing element was repaired through scalar
        # Algorithm 3 back to the fault-free words.
        assert out.tobytes() == clean.tobytes()
        # Stats-compatible accounting: the speculative attempt of each
        # disagreeing element plus its scalar re-execution come on top
        # of the clean per-element operation count.
        assert report.operations > clean_report.operations

    def test_persistent_disagreement_marks_and_continues(self, conv, batch):
        operator, _ = self._faulty(0.9, seed=4)
        executor = ReliableConv2D(
            conv, operator, engine="vectorized",
            on_persistent_failure="mark",
        )
        out, report = executor.forward(batch, filters=[0])
        assert report.persistent_failures > 0
        assert report.failed_outputs
        for img, f, i, j in report.failed_outputs:
            assert f == 0
            assert np.isnan(out[img, f, i, j])
        # Filters outside the reliable partition stay clean.
        assert not np.isnan(out[:, 1:]).any()

    def test_persistent_disagreement_raises(self, conv, batch):
        operator, _ = self._faulty(0.9, seed=5)
        executor = ReliableConv2D(conv, operator, engine="vectorized")
        with pytest.raises(PersistentFailureError):
            executor.forward(batch)


class TestScalarFallback:
    """Operators/units the engine cannot speculate run the scalar path
    verbatim -- ``engine="vectorized"`` is always safe to request."""

    class StickyDisagree(RedundantOperator):
        def multiply(self, a, b):
            from repro.reliable.qualified import QualifiedValue

            return QualifiedValue(a * b, False)

    def test_custom_operator_not_speculative(self):
        assert not can_speculate(self.StickyDisagree())

    def test_fallback_identical_to_scalar(self, conv, batch):
        scalar = ReliableConv2D(
            conv, self.StickyDisagree(), engine="scalar",
            on_persistent_failure="mark",
        ).forward(batch, filters=[0])
        vectorized = ReliableConv2D(
            conv, self.StickyDisagree(), engine="vectorized",
            on_persistent_failure="mark",
        ).forward(batch, filters=[0])
        _assert_bitwise(scalar, vectorized, "fallback")

    def test_fallback_abort_point_identical(self, conv, batch):
        with pytest.raises(PersistentFailureError) as scalar_exc:
            ReliableConv2D(
                conv, self.StickyDisagree(), engine="scalar"
            ).forward(batch)
        with pytest.raises(PersistentFailureError) as vector_exc:
            ReliableConv2D(
                conv, self.StickyDisagree(), engine="vectorized"
            ).forward(batch)
        assert (
            scalar_exc.value.operations_completed
            == vector_exc.value.operations_completed
        )
        assert (
            scalar_exc.value.errors_detected
            == vector_exc.value.errors_detected
        )

    def test_unit_without_array_form_not_speculative(self):
        class OffByOneUnit(PerfectExecutionUnit):
            def add(self, a, b):
                return a + b + 1.0

        assert as_array_unit(OffByOneUnit()) is None
        assert not can_speculate(RedundantOperator(OffByOneUnit()))


class TestEngineRegistry:
    def test_builtin_engines_registered(self):
        assert {"scalar", "vectorized"} <= set(engine_names())

    def test_unknown_engine_rejected(self, conv):
        with pytest.raises(ValueError, match="unknown engine"):
            ReliableConv2D(conv, "dmr", engine="warp-drive")

    def test_api_registry_view(self):
        from repro.api import ENGINES, RegistryError
        from repro.reliable.executor import _scalar_engine

        assert "vectorized" in ENGINES
        assert ENGINES.get("scalar") is _scalar_engine
        with pytest.raises(RegistryError):
            ENGINES.get("warp-drive")


class TestOperatorKindNormalization:
    """The satellite fix: instance and string constructor paths report
    the same canonical registry kind."""

    @pytest.mark.parametrize("operator, kind", [
        (PlainOperator(), "plain"),
        (RedundantOperator(), "dmr"),
        (TMROperator(), "tmr"),
    ])
    def test_instance_reports_registry_kind(self, conv, batch, operator, kind):
        _, report = ReliableConv2D(conv, operator).forward(
            batch, filters=[0]
        )
        assert report.operator_kind == kind

    def test_string_path_unchanged(self, conv, batch):
        _, report = ReliableConv2D(conv, "dmr").forward(batch, filters=[0])
        assert report.operator_kind == "dmr"

    def test_unregistered_subclass_falls_back_to_class_name(self, conv):
        class Bespoke(RedundantOperator):
            pass

        executor = ReliableConv2D(conv, Bespoke())
        assert executor._operator_kind == "Bespoke"

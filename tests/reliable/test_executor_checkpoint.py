"""ReliableConv2D, layer-level redundancy, checkpoint, lockstep."""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults.injector import FaultyExecutionUnit
from repro.faults.models import PermanentFault, TransientFault
from repro.nn import Conv2D
from repro.reliable.checkpoint import CheckpointedSegment, RollbackPolicy
from repro.reliable.errors import (
    LockstepMismatchError,
    PersistentFailureError,
)
from repro.reliable.executor import ReliableConv2D, redundant_layer_forward
from repro.reliable.leaky_bucket import LeakyBucket
from repro.reliable.lockstep import LockstepPair
from repro.reliable.operators import RedundantOperator


@pytest.fixture
def conv(rng):
    return Conv2D(2, 3, 3, stride=1, rng=rng, name="conv")


@pytest.fixture
def batch(rng):
    return rng.standard_normal((1, 2, 6, 6)).astype(np.float32)


class TestReliableConv2D:
    def test_matches_native_forward(self, conv, batch):
        native = conv.forward(batch)
        out, report = ReliableConv2D(conv, "plain").forward(batch)
        np.testing.assert_allclose(out, native, atol=1e-6)
        assert report.errors_detected == 0
        assert report.elapsed_seconds > 0

    def test_partial_filters_mix_native_and_reliable(self, conv, batch):
        native = conv.forward(batch)
        out, report = ReliableConv2D(conv, "dmr").forward(
            batch, filters=[1]
        )
        np.testing.assert_allclose(out, native, atol=1e-6)
        # Only one filter's worth of qualified operations.
        per_filter_outputs = out.shape[2] * out.shape[3]
        ops_per_output = 2 * 2 * 9 + 1  # mul+acc per tap, bias
        assert report.operations == per_filter_outputs * ops_per_output

    def test_recovers_under_transient_faults(self, conv, batch, rng):
        native = conv.forward(batch)
        unit = FaultyExecutionUnit(TransientFault(0.005, rng))
        executor = ReliableConv2D(
            conv, RedundantOperator(unit), bucket_ceiling=10_000
        )
        out, report = executor.forward(batch, filters=[0])
        np.testing.assert_allclose(out, native, atol=1e-5)
        assert report.errors_detected > 0
        assert report.rollbacks == report.errors_detected

    def test_mark_mode_isolates_persistent_failure(self, conv, batch, rng):
        class StickyDisagree(RedundantOperator):
            def multiply(self, a, b):
                from repro.reliable.qualified import QualifiedValue

                return QualifiedValue(a * b, False)

        executor = ReliableConv2D(
            conv, StickyDisagree(), on_persistent_failure="mark"
        )
        out, report = executor.forward(batch, filters=[0])
        assert report.persistent_failures > 0
        assert np.isnan(out[0, 0]).all()     # failed filter marked
        assert not np.isnan(out[0, 1:]).any()  # others intact

    def test_raise_mode_propagates(self, conv, batch):
        class StickyDisagree(RedundantOperator):
            def add(self, a, b):
                from repro.reliable.qualified import QualifiedValue

                return QualifiedValue(a + b, False)

        executor = ReliableConv2D(conv, StickyDisagree())
        with pytest.raises(PersistentFailureError):
            executor.forward(batch)

    def test_invalid_failure_mode(self, conv):
        with pytest.raises(ValueError):
            ReliableConv2D(conv, "dmr", on_persistent_failure="ignore")


class TestLayerLevelRedundancy:
    def test_dmr_deterministic_layer_agrees(self, conv, batch):
        out, report = redundant_layer_forward(conv, batch, copies=2)
        np.testing.assert_array_equal(out, conv.forward(batch))
        assert report.rollbacks == 0

    def test_tmr_masks_minority_wrong_copy(self, batch, rng):
        class FlakyLayer:
            """Wrong result on the second of every three calls."""

            def __init__(self):
                self.calls = 0

            def forward(self, x):
                self.calls += 1
                base = np.ones((1, 4), dtype=np.float32)
                if self.calls % 3 == 2:
                    return base * 99.0
                return base

        out, report = redundant_layer_forward(
            FlakyLayer(), batch, copies=3
        )
        np.testing.assert_array_equal(out, np.ones((1, 4)))

    def test_dmr_rollback_then_abort(self, batch):
        class NeverAgrees:
            def __init__(self):
                self.calls = 0

            def forward(self, x):
                self.calls += 1
                return np.full((1, 2), self.calls, dtype=np.float32)

        with pytest.raises(PersistentFailureError):
            redundant_layer_forward(
                NeverAgrees(), batch, copies=2, max_rollbacks=2
            )

    def test_copies_validation(self, conv, batch):
        with pytest.raises(ValueError):
            redundant_layer_forward(conv, batch, copies=1)

    def test_dmr_identical_nan_outputs_agree(self, batch):
        """A layer that legitimately computes NaN identically in both
        copies must not roll back forever (word comparison, matching
        the operator-level qualifiers)."""

        class NaNLayer:
            def forward(self, x):
                out = np.ones((1, 3), dtype=np.float32)
                out[0, 1] = np.nan
                return out

        out, report = redundant_layer_forward(NaNLayer(), batch, copies=2)
        assert np.isnan(out[0, 1])
        assert report.rollbacks == 0

    def test_dmr_detects_signed_zero_flip(self, batch):
        class SignFlipZero:
            def __init__(self):
                self.calls = 0

            def forward(self, x):
                self.calls += 1
                value = 0.0 if self.calls % 2 == 1 else -0.0
                return np.full((1, 2), value, dtype=np.float32)

        with pytest.raises(PersistentFailureError):
            redundant_layer_forward(
                SignFlipZero(), batch, copies=2, max_rollbacks=1
            )

    def test_tmr_vote_elects_majority_zero_word(self, batch):
        """[+0.0, -0.0, -0.0] must elect -0.0 regardless of whether
        unrelated elements force the per-element vote path (the old
        float ``==`` fast path saw a spurious +0.0 majority)."""
        from repro.reliable.executor import _elementwise_vote

        alone = np.array([[0.0], [-0.0], [-0.0]], dtype=np.float32)
        value_alone, ok_alone = _elementwise_vote(alone)
        # A neighbour with no majority forces the per-element path.
        with_neighbour = np.array(
            [[0.0, 1.0], [-0.0, 2.0], [-0.0, 3.0]], dtype=np.float32
        )
        value_slow, ok_slow = _elementwise_vote(with_neighbour)
        assert ok_alone and not ok_slow
        assert np.signbit(value_alone[0])
        assert np.signbit(value_slow[0])

    def test_tmr_identical_nan_copies_take_fast_path(self, batch):
        """All-copies-identical NaN words hold a word majority: value
        voted through, no rollback (float ``==`` would spin)."""
        from repro.reliable.executor import _elementwise_vote

        stacked = np.full((3, 2, 2), np.nan, dtype=np.float32)
        value, ok = _elementwise_vote(stacked)
        assert ok
        assert np.isnan(value).all()


class TestCheckpointedSegment:
    def test_valid_first_try(self):
        segment = CheckpointedSegment(
            compute=lambda: 42, validate=lambda v: v == 42
        )
        assert segment.run() == 42
        assert segment.rollbacks_performed == 0

    def test_rollback_then_success(self):
        attempts = []

        def compute():
            attempts.append(1)
            return len(attempts)

        segment = CheckpointedSegment(
            compute, validate=lambda v: v >= 2,
            policy=RollbackPolicy(max_rollbacks=3),
        )
        assert segment.run() == 2
        assert segment.rollbacks_performed == 1

    def test_exhausted_rollbacks_abort(self):
        segment = CheckpointedSegment(
            compute=lambda: 0, validate=lambda v: False,
            policy=RollbackPolicy(max_rollbacks=2),
        )
        with pytest.raises(PersistentFailureError):
            segment.run()

    def test_bucket_overflow_aborts_early(self):
        bucket = LeakyBucket(factor=2, ceiling=3)
        segment = CheckpointedSegment(
            compute=lambda: 0, validate=lambda v: False,
            policy=RollbackPolicy(max_rollbacks=100, bucket=bucket),
        )
        with pytest.raises(PersistentFailureError):
            segment.run()
        assert bucket.overflowed

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RollbackPolicy(max_rollbacks=-1)


class TestLockstep:
    def test_agreeing_replicas(self):
        pair = LockstepPair(lambda v: v * 2, lambda v: v * 2)
        assert pair.run([1, 2, 3]) == [2, 4, 6]
        assert pair.steps_completed == 3

    def test_mismatch_raises_with_step(self):
        calls = {"n": 0}

        def flaky(v):
            calls["n"] += 1
            return v if calls["n"] < 3 else v + 1

        pair = LockstepPair(lambda v: v, flaky)
        with pytest.raises(LockstepMismatchError) as exc_info:
            pair.run([0, 0, 0, 0])
        assert exc_info.value.step == 2

    def test_array_comparison(self, rng):
        pair = LockstepPair(
            lambda v: v + 1.0, lambda v: v + 1.0
        )
        out = pair.step(np.zeros(4))
        np.testing.assert_array_equal(out, np.ones(4))

    def test_reset_models_system_reset(self):
        pair = LockstepPair(lambda v: v, lambda v: v)
        pair.run([1, 2])
        pair.reset()
        assert pair.steps_completed == 0
        assert pair.was_reset

"""Algorithm 3: reliable convolution with rollback."""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults.injector import FaultyExecutionUnit
from repro.faults.models import PermanentFault, TransientFault
from repro.reliable.convolution import (
    ConvolutionStats,
    reliable_convolution,
    reliable_dot,
)
from repro.reliable.errors import PersistentFailureError
from repro.reliable.leaky_bucket import LeakyBucket
from repro.reliable.operators import (
    PlainOperator,
    RedundantOperator,
    TMROperator,
)


def expected_dot(x, w, bias=0.0):
    total = 0.0
    for xi, wi in zip(x, w):
        total += float(xi) * float(wi)
    return total + bias


class TestCorrectness:
    @pytest.mark.parametrize("operator", [
        PlainOperator(), RedundantOperator(), TMROperator(),
    ])
    def test_matches_reference_dot(self, rng, operator):
        x = rng.standard_normal(20)
        w = rng.standard_normal(20)
        result = reliable_convolution(x, w, 0.75, operator)
        assert result.ok
        np.testing.assert_allclose(
            result.value, expected_dot(x, w, 0.75), rtol=1e-12
        )

    def test_empty_patch_is_bias(self):
        result = reliable_convolution([], [], 1.25, PlainOperator())
        assert result.value == 1.25

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            reliable_dot([1.0], [1.0, 2.0], PlainOperator(), LeakyBucket())

    def test_stats_count_operations(self, rng):
        x = rng.standard_normal(10)
        w = rng.standard_normal(10)
        stats = ConvolutionStats()
        reliable_convolution(x, w, 0.0, PlainOperator(), stats=stats)
        # 10 multiplies + 10 accumulates + 1 bias add.
        assert stats.operations == 21
        assert stats.errors_detected == 0
        assert stats.rollbacks == 0


class TestRollback:
    def test_transient_faults_recovered_exactly(self, rng):
        x = rng.standard_normal(50)
        w = rng.standard_normal(50)
        golden = expected_dot(x, w, 0.5)
        unit = FaultyExecutionUnit(TransientFault(0.02, rng))
        stats = ConvolutionStats()
        result = reliable_convolution(
            x, w, 0.5, RedundantOperator(unit),
            bucket=LeakyBucket(), stats=stats,
        )
        assert result.ok
        np.testing.assert_allclose(result.value, golden, rtol=1e-9)
        assert stats.rollbacks == stats.errors_detected > 0

    def test_persistent_disagreement_aborts(self):
        class AlwaysDisagree(PlainOperator):
            def multiply(self, a, b):
                from repro.reliable.qualified import QualifiedValue

                return QualifiedValue(a * b, False)

        with pytest.raises(PersistentFailureError) as exc_info:
            reliable_convolution(
                [1.0, 2.0], [3.0, 4.0], 0.0, AlwaysDisagree()
            )
        assert exc_info.value.errors_detected >= 2

    def test_abort_carries_progress_diagnostics(self):
        class FailAfter(PlainOperator):
            def __init__(self, n):
                super().__init__()
                self.n = n

            def multiply(self, a, b):
                from repro.reliable.qualified import QualifiedValue

                self.n -= 1
                return QualifiedValue(a * b, self.n > 0)

            def add(self, a, b):
                from repro.reliable.qualified import QualifiedValue

                return QualifiedValue(a + b, True)

        with pytest.raises(PersistentFailureError) as exc_info:
            reliable_convolution(
                [1.0] * 10, [1.0] * 10, 0.0, FailAfter(5)
            )
        assert exc_info.value.operations_completed > 0

    def test_shared_bucket_accumulates_across_outputs(self, rng):
        """Algorithm 3 keeps the counter as a global across a layer."""
        bucket = LeakyBucket(factor=2, ceiling=50)
        unit = FaultyExecutionUnit(TransientFault(0.05, rng))
        op = RedundantOperator(unit)
        for _ in range(5):
            reliable_convolution(
                rng.standard_normal(20), rng.standard_normal(20),
                0.0, op, bucket=bucket,
            )
        assert bucket.total_successes > 100

    def test_bucket_drains_with_success_stream(self, rng):
        # After a recovered error burst, continued clean operation
        # leaves the bucket empty.
        bucket = LeakyBucket(factor=2, ceiling=100)
        unit = FaultyExecutionUnit(TransientFault(0.3, rng))
        reliable_convolution(
            rng.standard_normal(5), rng.standard_normal(5), 0.0,
            RedundantOperator(unit), bucket=bucket,
        )
        clean = RedundantOperator()
        reliable_convolution(
            rng.standard_normal(60), rng.standard_normal(60), 0.0,
            clean, bucket=bucket,
        )
        assert bucket.level == 0


class TestProtectionLevels:
    def test_plain_operator_never_detects(self, rng):
        unit = FaultyExecutionUnit(TransientFault(0.1, rng))
        stats = ConvolutionStats()
        result = reliable_convolution(
            rng.standard_normal(30), rng.standard_normal(30), 0.0,
            PlainOperator(unit), stats=stats,
        )
        assert result.ok                  # blissfully unaware
        assert stats.errors_detected == 0

    def test_tmr_masks_without_rollback(self, rng):
        unit = FaultyExecutionUnit(TransientFault(0.05, rng))
        stats = ConvolutionStats()
        x = rng.standard_normal(40)
        w = rng.standard_normal(40)
        result = reliable_convolution(
            x, w, 0.0, TMROperator(unit),
            bucket=LeakyBucket(ceiling=1000), stats=stats,
        )
        np.testing.assert_allclose(
            result.value, expected_dot(x, w), rtol=1e-9
        )
        # Voting masks most faults; rollbacks should be rare compared
        # to the DMR case at the same fault rate.
        assert stats.rollbacks <= 3

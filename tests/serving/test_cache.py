"""Response-cache unit semantics: LRU order, single-flight
coalescing, opt-out, error paths, digest distinctness, stats
snapshot immutability.

End-to-end cache behaviour against the real pipeline lives in
``test_fuzz_cache_parity.py`` and ``benchmarks/
test_cache_throughput.py``; these tests pin the mechanism itself,
mostly against stub pipelines whose timing the test controls.
"""

from __future__ import annotations

import dataclasses
import threading
import time

import numpy as np
import pytest

from repro.api import ServingConfig
from repro.core.hybrid import Decision, HybridResult
from repro.core.qualifier import QualifierVerdict
from repro.serving import PipelineServer, ResponseCache, response_digest

# ---------------------------------------------------------------------------
# Stubs
# ---------------------------------------------------------------------------


class StubPipeline:
    """One fabricated result per image; optional gate the test holds
    closed to keep the batcher blocked mid-inference, and optional
    one-shot failure."""

    def __init__(self, decision=Decision.NOT_SAFETY_CRITICAL):
        self.decision = decision
        self.gate: threading.Event | None = None
        self.entered = threading.Event()
        self.fail_next = False
        self.batches: list[int] = []
        self.lock = threading.Lock()

    def infer_batch(self, images, qualifier_views=None):
        with self.lock:
            self.batches.append(len(images))
        self.entered.set()
        if self.gate is not None:
            assert self.gate.wait(timeout=30)
        if self.fail_next:
            self.fail_next = False
            raise RuntimeError("synthetic pipeline failure")
        return [
            HybridResult(
                probabilities=np.array(
                    [float(image.sum()), 1.0], dtype=np.float64
                ),
                predicted_class=0,
                verdict=QualifierVerdict(),
                decision=self.decision,
            )
            for image in images
        ]

    @property
    def inferences(self) -> int:
        with self.lock:
            return sum(self.batches)


def _image(value: float = 1.0, size: int = 4) -> np.ndarray:
    return np.full((3, size, size), value, dtype=np.float32)


def _config(**overrides) -> ServingConfig:
    defaults = dict(
        max_batch=8, max_wait_ms=5.0, cache="lru", cache_max_entries=8
    )
    defaults.update(overrides)
    return ServingConfig(**defaults)


# ---------------------------------------------------------------------------
# ResponseCache mechanism
# ---------------------------------------------------------------------------


def test_lru_eviction_order():
    cache = ResponseCache(max_entries=3)
    keys = [(f"digest{i}", "cfg") for i in range(5)]
    for key in keys[:3]:
        assert cache.lookup_or_join(key, None) == ("lead", None)
        cache.publish(key, f"result-{key[0]}")
    assert cache.keys() == keys[:3]

    # A hit refreshes recency: key 0 moves to MRU...
    outcome, result = cache.lookup_or_join(keys[0], None)
    assert (outcome, result) == ("hit", "result-digest0")
    assert cache.keys() == [keys[1], keys[2], keys[0]]

    # ...so the next two inserts evict keys 1 and 2, never key 0.
    for key in keys[3:]:
        cache.lookup_or_join(key, None)
        _, evicted = cache.publish(key, "x")
        assert evicted == 1
    assert cache.keys() == [keys[0], keys[3], keys[4]]
    assert cache.lookup_or_join(keys[1], None) == ("lead", None)


def test_invalid_capacity_rejected():
    with pytest.raises(ValueError):
        ResponseCache(max_entries=0)


def test_publish_returns_followers_and_abort_clears_flight():
    cache = ResponseCache(max_entries=4)
    key = ("digest", "cfg")
    assert cache.lookup_or_join(key, "leader")[0] == "lead"
    assert cache.lookup_or_join(key, "f1")[0] == "joined"
    assert cache.lookup_or_join(key, "f2")[0] == "joined"
    assert cache.inflight_count() == 1

    followers, evicted = cache.publish(key, "result")
    assert followers == ["f1", "f2"]
    assert evicted == 0
    assert cache.inflight_count() == 0
    assert cache.lookup_or_join(key, None) == ("hit", "result")

    other = ("other", "cfg")
    cache.lookup_or_join(other, "leader")
    cache.lookup_or_join(other, "f3")
    assert cache.abort(other) == ["f3"]
    # The aborted key is absent again: the next submission leads.
    assert cache.lookup_or_join(other, None)[0] == "lead"


# ---------------------------------------------------------------------------
# Digest keying
# ---------------------------------------------------------------------------


def test_digest_distinguishes_storage_bits():
    base = _image(0.5)

    negzero = base.copy()
    negzero[0, 0, 0] = np.float32(-0.0)
    poszero = negzero.copy()
    poszero[0, 0, 0] = np.float32(0.0)
    assert np.array_equal(negzero, poszero)  # equal as values...
    assert response_digest(negzero) != response_digest(poszero)

    nan_a = base.copy()
    nan_a.view(np.uint32)[0, 0, 1] = np.uint32(0x7FC00001)
    nan_b = base.copy()
    nan_b.view(np.uint32)[0, 0, 1] = np.uint32(0x7FC00002)
    assert response_digest(nan_a) != response_digest(base)
    assert response_digest(nan_a) != response_digest(nan_b)

    assert response_digest(base.astype(np.float64)) != (
        response_digest(base)
    )
    assert response_digest(base.reshape(3, -1)) != response_digest(base)


def test_digest_is_layout_invariant_and_view_sensitive():
    base = np.arange(48, dtype=np.float32).reshape(3, 4, 4)
    fortran = np.asfortranarray(base)
    assert not fortran.flags["C_CONTIGUOUS"]
    assert response_digest(fortran) == response_digest(base)

    view = _image(0.25)
    assert response_digest(base, view) != response_digest(base)
    assert response_digest(base, view) != response_digest(base, base)


def test_config_hash_partitions_keys():
    image = _image()
    cache_a = ResponseCache(4, config_hash="aaa")
    cache_b = ResponseCache(4, config_hash="bbb")
    assert cache_a.key_for(image) != cache_b.key_for(image)
    assert cache_a.key_for(image)[0] == cache_b.key_for(image)[0]


# ---------------------------------------------------------------------------
# Server integration: coalescing, opt-out, errors, stats
# ---------------------------------------------------------------------------


def test_coalescing_under_blocked_batcher():
    """Duplicates submitted while the leader is mid-inference attach
    to its flight: one inference total, one shared result object."""
    stub = StubPipeline()
    stub.gate = threading.Event()
    with PipelineServer(stub, _config(max_batch=1)) as server:
        leader = server.submit(_image())
        assert stub.entered.wait(timeout=10)  # batcher is now blocked
        followers = [server.submit(_image()) for _ in range(3)]
        assert not leader.done()
        assert not any(p.done() for p in followers)
        stub.gate.set()
        result = leader.result(timeout=10)
        for pending in followers:
            assert pending.result(timeout=10) is result
        stats = server.stats()
    assert stub.inferences == 1
    assert stats.cache_misses == 1
    assert stats.coalesced_joins == 3
    assert stats.cache_hits == 0
    assert stats.completed == 4


def test_hits_after_flight_completes():
    stub = StubPipeline()
    with PipelineServer(stub, _config()) as server:
        first = server.submit(_image()).result(timeout=10)
        again = server.submit(_image()).result(timeout=10)
        assert again is first
        stats = server.stats()
    assert stub.inferences == 1
    assert stats.cache_hits == 1
    assert stats.cache_misses == 1
    assert stats.cache_entries == 1


def test_per_submit_opt_out():
    """``use_cache=False`` bypasses the cache entirely: not answered
    from it, not joined to a flight, not published into it."""
    stub = StubPipeline()
    with PipelineServer(stub, _config()) as server:
        server.submit(_image(), use_cache=False).result(timeout=10)
        server.submit(_image(), use_cache=False).result(timeout=10)
        assert stub.inferences == 2  # no sharing happened
        stats = server.stats()
        assert stats.cache_hits == 0
        assert stats.cache_misses == 0
        assert stats.cache_entries == 0

        # An opted-out submission also never *seeds* the cache: the
        # first cached submission of the same image is a miss.
        server.submit(_image()).result(timeout=10)
        assert server.stats().cache_misses == 1
    assert stub.inferences == 3


def test_errors_are_never_cached():
    """A failed leader fails its joiners and leaves the key absent:
    the next submission recomputes and can succeed."""
    stub = StubPipeline()
    stub.gate = threading.Event()
    stub.fail_next = True
    with PipelineServer(stub, _config(max_batch=1)) as server:
        leader = server.submit(_image())
        assert stub.entered.wait(timeout=10)
        follower = server.submit(_image())
        stub.gate.set()
        with pytest.raises(RuntimeError, match="synthetic"):
            leader.result(timeout=10)
        with pytest.raises(RuntimeError, match="synthetic"):
            follower.result(timeout=10)

        stub.gate = None
        retry = server.submit(_image())
        assert retry.result(timeout=10) is not None
        stats = server.stats()
    assert stats.cache_misses == 2  # retry led a fresh flight
    assert stats.failed == 2
    assert stats.completed == 1
    assert stats.cache_entries == 1


def test_eviction_counted_in_stats():
    stub = StubPipeline()
    with PipelineServer(stub, _config(cache_max_entries=2)) as server:
        for value in (1.0, 2.0, 3.0):
            server.submit(_image(value)).result(timeout=10)
        stats = server.stats()
    assert stats.cache_evictions == 1
    assert stats.cache_entries == 2


def test_degraded_hook_fires_per_logical_request():
    """Hits and joins route to the degradation hook exactly like
    computed requests: once per logical request."""
    stub = StubPipeline(decision=Decision.REJECTED_BY_QUALIFIER)
    routed = []
    with PipelineServer(
        stub, _config(), on_degraded=routed.append
    ) as server:
        first = server.submit(_image()).result(timeout=10)
        server.submit(_image()).result(timeout=10)  # cache hit
        stats = server.stats()
    assert len(routed) == 2
    assert routed[0] is first and routed[1] is first
    assert stats.degraded == 2


def test_stats_snapshot_is_immutable():
    stub = StubPipeline()
    with PipelineServer(stub, _config()) as server:
        server.submit(_image()).result(timeout=10)
        before = server.stats()
        with pytest.raises(dataclasses.FrozenInstanceError):
            before.cache_hits = 99
        # More traffic must not retroactively change an old snapshot.
        server.submit(_image()).result(timeout=10)
        server.submit(_image(2.0)).result(timeout=10)
        after = server.stats()
    assert before.cache_hits == 0
    assert before.completed == 1
    assert after.cache_hits == 1
    assert after.completed == 3


def test_cached_latencies_split_from_computed():
    stub = StubPipeline()
    stub.gate = threading.Event()

    def release_soon():
        time.sleep(0.05)
        stub.gate.set()

    with PipelineServer(stub, _config(max_batch=1)) as server:
        threading.Thread(target=release_soon).start()
        server.submit(_image()).result(timeout=10)  # computed, >=50ms
        stub.gate = None
        server.submit(_image()).result(timeout=10)  # hit, ~instant
        stats = server.stats()
    assert stats.p50_computed_latency_ms >= 40.0
    assert 0.0 < stats.p50_cached_latency_ms < (
        stats.p50_computed_latency_ms
    )


def test_cache_off_leaves_counters_dark():
    stub = StubPipeline()
    with PipelineServer(stub, _config(cache="off")) as server:
        server.submit(_image()).result(timeout=10)
        server.submit(_image()).result(timeout=10)
        stats = server.stats()
    assert stub.inferences == 2
    assert stats.cache_hits == 0
    assert stats.cache_misses == 0
    assert stats.coalesced_joins == 0
    assert stats.cache_hit_rate == 0.0
    assert stats.cache_entries == 0

"""PipelineServer unit behaviour: lifecycle, batching, backpressure,
degradation routing, stats, failure demux."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.api import ServingConfig
from repro.core.hybrid import Decision, HybridResult
from repro.core.qualifier import QualifierVerdict
from repro.serving import (
    PipelineServer,
    ServerClosed,
    ServerError,
    ServerOverloaded,
)


class StubPipeline:
    """Duck-typed pipeline: one fabricated result per image, with
    controllable latency and failure, and a call log for batching
    assertions."""

    def __init__(self, delay_s: float = 0.0, fail: bool = False,
                 decision: Decision = Decision.NOT_SAFETY_CRITICAL):
        self.delay_s = delay_s
        self.fail = fail
        self.decision = decision
        self.batches: list[int] = []
        self.lock = threading.Lock()

    def infer_batch(self, images, qualifier_views=None):
        with self.lock:
            self.batches.append(len(images))
        if self.delay_s:
            time.sleep(self.delay_s)
        if self.fail:
            raise RuntimeError("synthetic pipeline failure")
        return [
            HybridResult(
                probabilities=np.array(
                    [float(image.sum()), 1.0], dtype=np.float64
                ),
                predicted_class=0,
                verdict=QualifierVerdict(),
                decision=self.decision,
            )
            for image in images
        ]


def _image(value: float = 1.0, size: int = 4) -> np.ndarray:
    return np.full((3, size, size), value, dtype=np.float32)


def test_submit_requires_running_server():
    server = PipelineServer(StubPipeline())
    with pytest.raises(ServerClosed):
        server.submit(_image())


def test_start_twice_raises():
    with PipelineServer(StubPipeline()) as server:
        with pytest.raises(ServerError):
            server.start()


def test_results_demux_to_their_own_requests():
    """Each request's result corresponds to its own image, not its
    batch neighbours' (per-request demux)."""
    with PipelineServer(
        StubPipeline(), ServingConfig(max_batch=8, max_wait_ms=20)
    ) as server:
        values = [float(i) for i in range(16)]
        pendings = [server.submit(_image(v)) for v in values]
        for value, pending in zip(values, pendings):
            result = pending.result(timeout=10)
            assert result.probabilities[0] == value * 3 * 4 * 4


def test_micro_batches_coalesce():
    stub = StubPipeline()
    with PipelineServer(
        stub, ServingConfig(max_batch=4, max_wait_ms=200)
    ) as server:
        pendings = [server.submit(_image(float(i))) for i in range(12)]
        for pending in pendings:
            pending.result(timeout=10)
    assert sum(stub.batches) == 12
    # Coalescing must actually happen: far fewer flushes than
    # requests, and no flush above max_batch.
    assert len(stub.batches) <= 6
    assert max(stub.batches) <= 4
    stats = server.stats()
    assert stats.completed == 12
    assert stats.batches == len(stub.batches)
    assert stats.mean_batch_size == pytest.approx(
        12 / len(stub.batches)
    )


def test_max_wait_flushes_partial_batch():
    stub = StubPipeline()
    with PipelineServer(
        stub, ServingConfig(max_batch=64, max_wait_ms=10)
    ) as server:
        pending = server.submit(_image())
        result = pending.result(timeout=10)
        assert result is not None
    assert stub.batches == [1]


def test_reject_backpressure():
    stub = StubPipeline(delay_s=0.2)
    config = ServingConfig(
        max_batch=2, max_wait_ms=0, queue_capacity=2, overflow="reject"
    )
    with PipelineServer(stub, config) as server:
        accepted = []
        rejected = 0
        for i in range(40):
            try:
                accepted.append(server.submit(_image(float(i))))
            except ServerOverloaded:
                rejected += 1
        assert rejected > 0, "queue of 2 must overflow under 40 bursts"
        for pending in accepted:
            pending.result(timeout=30)
    stats = server.stats()
    assert stats.rejected == rejected
    assert stats.completed == len(accepted)


def test_block_backpressure_times_out():
    stub = StubPipeline(delay_s=0.5)
    config = ServingConfig(
        max_batch=2,
        max_wait_ms=0,
        queue_capacity=2,
        overflow="block",
        submit_timeout_s=0.05,
    )
    with PipelineServer(stub, config) as server:
        with pytest.raises(ServerOverloaded):
            for i in range(40):
                server.submit(_image(float(i)))
        # Drain what was accepted so stop() is quick.
    assert server.stats().rejected == 1


def test_batcher_death_fails_pending_instead_of_hanging():
    """If the serve loop itself dies (not just one flush), queued
    requests must complete with the error -- a client blocked in
    ``result()`` with no timeout must never hang on a dead thread."""

    server = PipelineServer(
        StubPipeline(), ServingConfig(max_batch=4, max_wait_ms=1)
    )
    server.start()
    # Per-flush errors are demuxed (see the test above); kill the
    # serve loop itself instead: calling None raises TypeError
    # outside every per-group guard.
    server._flush = None  # type: ignore[assignment]
    pendings = [server.submit(_image(float(i))) for i in range(6)]
    for pending in pendings:
        with pytest.raises((ServerError, ServerClosed)):
            pending.result(timeout=10)
    server.stop()


def test_pipeline_exception_propagates_to_each_request():
    with PipelineServer(
        StubPipeline(fail=True), ServingConfig(max_batch=4, max_wait_ms=5)
    ) as server:
        pendings = [server.submit(_image()) for _ in range(6)]
        for pending in pendings:
            with pytest.raises(RuntimeError, match="synthetic"):
                pending.result(timeout=10)
    stats = server.stats()
    assert stats.failed == 6
    assert stats.completed == 0


def test_stop_drains_queued_requests():
    stub = StubPipeline(delay_s=0.05)
    server = PipelineServer(
        stub, ServingConfig(max_batch=4, max_wait_ms=0)
    )
    server.start()
    pendings = [server.submit(_image(float(i))) for i in range(12)]
    server.stop(drain=True)
    assert all(p.done() for p in pendings)
    for pending in pendings:
        assert pending.result(timeout=0) is not None
    assert not server.running
    with pytest.raises(ServerClosed):
        server.submit(_image())


def test_stop_without_drain_cancels_queued_requests():
    stub = StubPipeline(delay_s=0.2)
    server = PipelineServer(
        stub, ServingConfig(max_batch=1, max_wait_ms=0)
    )
    server.start()
    pendings = [server.submit(_image(float(i))) for i in range(10)]
    time.sleep(0.05)  # let the batcher pick up the first request
    server.stop(drain=False)
    outcomes = {"served": 0, "cancelled": 0}
    for pending in pendings:
        try:
            pending.result(timeout=1)
            outcomes["served"] += 1
        except ServerClosed:
            outcomes["cancelled"] += 1
    assert outcomes["cancelled"] > 0
    assert server.stats().cancelled == outcomes["cancelled"]


def test_restart_after_stop():
    server = PipelineServer(
        StubPipeline(), ServingConfig(max_batch=2, max_wait_ms=1)
    )
    for _ in range(2):
        server.start()
        assert server.submit(_image()).result(timeout=10) is not None
        server.stop()


def test_degradation_routing():
    routed = []
    with PipelineServer(
        StubPipeline(decision=Decision.REJECTED_BY_QUALIFIER),
        ServingConfig(max_batch=4, max_wait_ms=5),
        on_degraded=routed.append,
    ) as server:
        pendings = [server.submit(_image(float(i))) for i in range(5)]
        results = [p.result(timeout=10) for p in pendings]
    # Routing is in addition to, not instead of, delivery.
    assert len(results) == 5
    assert len(routed) == 5
    assert all(r.flagged for r in routed)
    assert server.stats().degraded == 5


def test_degradation_hook_errors_are_swallowed():
    def bad_hook(result):
        raise ValueError("supervisory layer fell over")

    with PipelineServer(
        StubPipeline(decision=Decision.QUALIFIER_UNAVAILABLE),
        ServingConfig(max_batch=2, max_wait_ms=1),
        on_degraded=bad_hook,
    ) as server:
        assert server.submit(_image()).result(timeout=10) is not None


def test_latency_percentiles_populated():
    with PipelineServer(
        StubPipeline(delay_s=0.01), ServingConfig(max_batch=4, max_wait_ms=1)
    ) as server:
        pendings = [server.submit(_image()) for _ in range(8)]
        for pending in pendings:
            pending.result(timeout=10)
    stats = server.stats()
    assert stats.p50_latency_ms > 0
    assert stats.p99_latency_ms >= stats.p50_latency_ms
    assert stats.throughput_rps > 0
    assert stats.uptime_seconds > 0


def test_mixed_shapes_batch_in_compatible_groups():
    """Heterogeneous resolutions in one flush must all be served (the
    batcher groups compatible requests instead of erroring)."""
    stub = StubPipeline()
    with PipelineServer(
        stub, ServingConfig(max_batch=8, max_wait_ms=50)
    ) as server:
        small = [server.submit(_image(1.0, size=4)) for _ in range(3)]
        large = [server.submit(_image(1.0, size=6)) for _ in range(3)]
        for pending in small:
            assert pending.result(timeout=10).probabilities[0] == 48.0
        for pending in large:
            assert pending.result(timeout=10).probabilities[0] == 108.0


def test_serving_config_validation_and_round_trip():
    config = ServingConfig(
        max_batch=16,
        max_wait_ms=1.5,
        queue_capacity=64,
        overflow="reject",
        submit_timeout_s=2.0,
        latency_window=128,
    )
    assert ServingConfig.from_dict(config.to_dict()) == config
    with pytest.raises(ValueError):
        ServingConfig(max_batch=0)
    with pytest.raises(ValueError):
        ServingConfig(max_wait_ms=-1)
    with pytest.raises(ValueError):
        ServingConfig(max_batch=8, queue_capacity=4)
    with pytest.raises(ValueError):
        ServingConfig(overflow="drop")
    with pytest.raises(ValueError):
        ServingConfig(submit_timeout_s=-0.1)
    with pytest.raises(ValueError):
        ServingConfig(latency_window=0)
    with pytest.raises(ValueError):
        ServingConfig.from_dict({"max_batch": 8, "burst": True})

"""``infer_stream`` on the micro-batcher: parity, ordering, laziness."""

from __future__ import annotations

import itertools

import pytest

from repro.api import ServingConfig
from repro.serving import PipelineServer
from tests.serving.conftest import make_pipeline
from tests.support.fuzz import assert_verdicts_bitwise_equal


def test_stream_matches_serial_infer_bitwise(pipeline, images):
    serial = [pipeline.infer(image) for image in images]
    streamed = list(pipeline.infer_stream(iter(images), batch_size=5))
    assert len(streamed) == len(serial)
    for got, want in zip(streamed, serial):
        assert got.probabilities.tobytes() == want.probabilities.tobytes()
        assert got.decision == want.decision
        assert_verdicts_bitwise_equal(got.verdict, want.verdict)


def test_stream_yields_in_submission_order(pipeline, images):
    """The documented ordering guarantee: results come back in
    submission order even when flush sizes vary (and would vary
    completion order if batches ever finished out of order) -- the
    stream blocks on the oldest pending handle, never on completion
    order."""
    for batch_size, wait in ((1, 0.0), (3, 1.0), (7, 0.0), (64, 2.0)):
        results = list(
            pipeline.infer_stream(
                iter(images), batch_size=batch_size, max_wait_ms=wait
            )
        )
        serial = [pipeline.infer(image) for image in images]
        for i, (got, want) in enumerate(zip(results, serial)):
            assert got.probabilities.tobytes() == (
                want.probabilities.tobytes()
            ), f"batch_size={batch_size} position {i} out of order"


def test_stream_order_independent_of_completion_order():
    """Force completions out of submission order at the demux level:
    a pipeline whose per-flush results are computed fine but whose
    requests arrive split across uneven flushes must still stream
    FIFO.  (With a single batcher the flushes themselves are ordered;
    this pins the demux-side invariant directly by completing later
    handles first.)"""
    from repro.serving.server import PendingResult

    first, second, third = (
        PendingResult(), PendingResult(), PendingResult()
    )
    # Complete in reverse order.
    third._complete("c")
    second._complete("b")
    first._complete("a")
    # FIFO consumption still yields submission order.
    assert [p.result(timeout=1) for p in (first, second, third)] == [
        "a", "b", "c"
    ]


def test_stream_is_lazy(pipeline, images):
    """The stream must not exhaust the iterator ahead of consumption
    beyond its bounded in-flight window (2 * batch_size)."""
    batch_size = 4
    consumed = itertools.count()
    counting = (
        (next(consumed), image)[1] for image in images
    )
    stream = pipeline.infer_stream(counting, batch_size=batch_size)
    next(stream)
    pulled = next(consumed)
    # One yield may pull at most the window plus the one being formed.
    assert pulled <= 2 * batch_size + 2
    stream.close()


def test_stream_generator_close_stops_server(pipeline, images):
    stream = pipeline.infer_stream(iter(images), batch_size=4)
    next(stream)
    stream.close()  # must not hang or leak the batcher thread


def test_stream_validates_batch_size(pipeline, images):
    with pytest.raises(ValueError):
        list(pipeline.infer_stream(iter(images), batch_size=0))


def test_stream_empty_iterable(pipeline):
    assert list(pipeline.infer_stream(iter([]), batch_size=4)) == []


def test_stream_uses_micro_batcher(images):
    """Streaming must actually coalesce: the pipeline sees batches,
    not single images."""

    class Spy:
        def __init__(self, inner):
            self.inner = inner
            self.batch_sizes = []

        def infer_batch(self, images, qualifier_views=None):
            self.batch_sizes.append(len(images))
            return self.inner.infer_batch(images)

    spy = Spy(make_pipeline())
    config = ServingConfig(
        max_batch=8, max_wait_ms=0.0, queue_capacity=16
    )
    pending = []
    with PipelineServer(spy, config) as server:
        for image in images:
            pending.append(server.submit(image))
        results = [p.result(timeout=60) for p in pending]
    assert len(results) == len(images)
    assert max(spy.batch_sizes) > 1, (
        f"no coalescing observed: {spy.batch_sizes}"
    )

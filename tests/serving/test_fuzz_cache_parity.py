"""Cached-vs-uncached differential fuzzing: the response cache must
be *observationally invisible*.

Randomized multi-thread interleavings of duplicate-heavy traffic --
exact copies, one-bit-different, signed-zero, NaN-payload and
dtype-differing near-duplicates (``tests.support.fuzz.
duplicate_heavy_traffic``) -- are driven through a ``cache="lru"``
server and a ``cache="off"`` server, both architectures.  Every
per-request result must be storage-bit identical between the two:
probabilities, verdict bits, decisions, execution reports.  This is
the cache's whole safety argument exercised end to end: bitwise
determinism means a cached response and a recomputed response cannot
be told apart, even for adversarial near-duplicates whose storage
words differ by a single bit.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.api import ServingConfig
from repro.serving.cache import response_digest
from tests.serving.conftest import IMAGE_SIZE, make_pipeline
from tests.support.fuzz import (
    assert_reports_equal,
    assert_verdicts_bitwise_equal,
    case_rng,
    differential_cases,
    duplicate_heavy_traffic,
    near_duplicate_images,
)

N_THREADS = 6


@pytest.fixture(scope="module", params=["parallel", "integrated"])
def arch_pipeline(request):
    return request.param, make_pipeline(architecture=request.param)


def _serve_traffic(pipeline, traffic, seed: int, cache: str) -> list:
    """Submit every traffic item from worker threads in a randomized
    interleaving; returns results indexed like ``traffic``."""
    rng = np.random.default_rng(seed)
    shards = [
        np.arange(len(traffic))[i::N_THREADS] for i in range(N_THREADS)
    ]
    pendings: list = [None] * len(traffic)
    errors: list = []
    config = ServingConfig(
        max_batch=int(rng.integers(2, 9)),
        max_wait_ms=float(rng.choice([0.0, 1.0, 5.0])),
        queue_capacity=len(traffic) + N_THREADS,
        cache=cache,
        cache_max_entries=max(4, int(rng.integers(4, 32))),
    )
    with pipeline.serve(config) as server:
        barrier = threading.Barrier(N_THREADS)

        def client(shard, delays):
            try:
                barrier.wait(timeout=30)
                for index, delay in zip(shard, delays):
                    if delay:
                        threading.Event().wait(delay)
                    pendings[index] = server.submit(traffic[index][1])
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = []
        for shard in shards:
            delays = rng.choice(
                [0.0, 0.0, 0.001, 0.004], size=len(shard)
            )
            thread = threading.Thread(
                target=client, args=(shard, delays)
            )
            thread.start()
            threads.append(thread)
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors
        results = [p.result(timeout=60) for p in pendings]
        stats = server.stats()
    return results, stats


def _assert_result_parity(got, want, context: str) -> None:
    assert got.probabilities.tobytes() == (
        want.probabilities.tobytes()
    ), f"{context}: probabilities diverged between lru and off"
    assert got.predicted_class == want.predicted_class, context
    assert got.decision == want.decision, context
    assert_verdicts_bitwise_equal(got.verdict, want.verdict, context)
    assert (got.reliable_report is None) == (
        want.reliable_report is None
    ), context
    if got.reliable_report is not None:
        assert_reports_equal(
            got.reliable_report, want.reliable_report, context
        )


@pytest.mark.parametrize("rng", differential_cases(6))
def test_cached_matches_uncached_bitwise(arch_pipeline, rng):
    arch, pipeline = arch_pipeline
    traffic = duplicate_heavy_traffic(
        rng, n_requests=40, size=IMAGE_SIZE
    )
    seed = int(rng.integers(2**31))

    uncached, _ = _serve_traffic(pipeline, traffic, seed, cache="off")
    cached, stats = _serve_traffic(pipeline, traffic, seed, cache="lru")

    for i, (got, want) in enumerate(zip(cached, uncached)):
        label = traffic[i][0]
        _assert_result_parity(
            got, want, f"arch={arch} request={i} variant={label}"
        )

    # The traffic is duplicate-heavy by construction, so the cache
    # must actually have been exercised -- a silently disabled cache
    # would pass the parity half vacuously.
    assert stats.cache_hits + stats.coalesced_joins > 0, (
        "duplicate-heavy traffic produced no cache hits or joins"
    )
    assert stats.completed == len(traffic)


def test_near_duplicates_key_distinctly():
    """The digest draws exactly the storage-word distinctions the
    comparators draw: copies share a key; one-bit, signed-zero,
    NaN-payload and dtype variants each key apart (same fuzz
    generator the differential test serves)."""
    for index in range(8):
        variants = dict(near_duplicate_images(case_rng(index)))
        digests = {
            label: response_digest(image)
            for label, image in variants.items()
        }
        assert digests["base"] == digests["dup"], (
            f"case{index}: bitwise-equal copies must share a key"
        )
        distinct = {
            label: digest
            for label, digest in digests.items()
            if label != "dup"
        }
        assert len(set(distinct.values())) == len(distinct), (
            f"case{index}: near-duplicate variants conflated: "
            f"{sorted(distinct)}"
        )
        # The ±0.0 pair differs only in one zero's sign bit -- equal
        # as *values*, distinct as *storage words*.
        negzero = variants["negzero"]
        poszero = variants["poszero"]
        # repro: allow[FLOAT-APPROX] -- value-level equality is the
        # *point* here: the pair must be equal as values yet distinct
        # as storage words, proving the digest keys on bits.
        assert np.array_equal(negzero, poszero), (
            "fuzz generator drifted: ±0.0 variants should be "
            "value-equal"
        )
        assert digests["negzero"] != digests["poszero"]

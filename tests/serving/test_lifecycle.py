"""Stop/start lifecycle regressions.

Two real bugs pinned failing-before/passing-after:

* **Restart accounting** -- ``StatsRecorder.mark_started()`` used to
  reset ``_started_at`` while the counters persisted, so a restarted
  server reported all-time completions divided by only the latest
  run's uptime (inflated ``throughput_rps``) and silently dropped all
  prior running time from ``uptime_seconds``.
* **Non-draining stop over-serves** -- when ``stop(drain=False)``
  landed while the queue was full, ``_close_intake``'s wake-up
  sentinel was refused (``queue.Full``) and the batcher's coalescing
  sweep kept popping and *flushing* requests the stop had promised to
  fail with ``ServerClosed``.
"""

from __future__ import annotations

import queue
import threading
import time

import numpy as np
import pytest

from repro.api import ServingConfig
from repro.core.hybrid import Decision, HybridResult
from repro.core.qualifier import QualifierVerdict
from repro.serving import PipelineServer, ServerClosed
from repro.serving.stats import StatsRecorder


class _EchoPipeline:
    """Minimal duck-typed pipeline: one fabricated result per image."""

    def infer_batch(self, images, qualifier_views=None):
        return [
            HybridResult(
                probabilities=np.array(
                    [float(image.sum()), 1.0], dtype=np.float64
                ),
                predicted_class=0,
                verdict=QualifierVerdict(),
                decision=Decision.NOT_SAFETY_CRITICAL,
            )
            for image in images
        ]


def _image(value: float = 1.0, size: int = 4) -> np.ndarray:
    return np.full((3, size, size), value, dtype=np.float32)


# ---------------------------------------------------------------------------
# Bug 1: restart accounting
# ---------------------------------------------------------------------------


def test_recorder_restart_accumulates_uptime():
    """A stop/start cycle banks the prior run's uptime instead of
    discarding it, so throughput is never inflated by dividing
    all-time completions by only the latest run."""
    recorder = StatsRecorder()
    recorder.mark_started()
    time.sleep(0.05)
    recorder.record_batch(100, [], completed=100)
    recorder.mark_stopped()
    first = recorder.snapshot(0)
    assert first.completed == 100
    assert first.uptime_seconds >= 0.05

    recorder.mark_started()  # restart: counters persist, uptime must too
    second = recorder.snapshot(0)
    assert second.uptime_seconds >= first.uptime_seconds
    # Pre-fix this exploded to completed / (a few microseconds); the
    # fixed rate can only *drop* as uptime keeps accumulating.
    assert second.throughput_rps <= first.throughput_rps * 1.01

    recorder.mark_stopped()
    third = recorder.snapshot(0)
    assert third.uptime_seconds >= second.uptime_seconds


def test_recorder_uptime_frozen_while_stopped():
    recorder = StatsRecorder()
    recorder.mark_started()
    recorder.mark_stopped()
    frozen = recorder.snapshot(0).uptime_seconds
    time.sleep(0.02)
    assert recorder.snapshot(0).uptime_seconds == frozen


def test_server_restart_keeps_cumulative_uptime_and_ledger():
    """Whole-server version: counters and uptime both span restarts,
    and the ledger keeps balancing across the second run."""
    server = PipelineServer(
        _EchoPipeline(), ServingConfig(max_batch=4, max_wait_ms=5)
    )
    server.start()
    pendings = [server.submit(_image(float(i))) for i in range(8)]
    for pending in pendings:
        pending.result(timeout=10)
    time.sleep(0.05)  # measurable first-run uptime
    server.stop(timeout=10)
    first = server.stats()
    assert first.completed == 8

    server.start()
    second = server.stats()
    assert second.completed == 8
    assert second.uptime_seconds >= first.uptime_seconds
    assert second.throughput_rps <= first.throughput_rps * 1.01

    more = [server.submit(_image(float(i))) for i in range(4)]
    for pending in more:
        pending.result(timeout=10)
    server.stop(timeout=10)
    final = server.stats()
    assert final.submitted == 12
    assert final.completed == 12
    assert final.uptime_seconds >= second.uptime_seconds
    assert (
        final.completed + final.failed + final.cancelled
        == final.submitted
    )


# ---------------------------------------------------------------------------
# Bug 2: non-draining stop with a refused sentinel
# ---------------------------------------------------------------------------


class _SweepGateQueue(queue.Queue):
    """Queue whose *first* ``get_nowait`` call parks until released.

    While the server runs, the batcher's coalescing sweep is the only
    ``get_nowait`` caller (the outer loop uses blocking ``get``;
    drain/cancel run only at shutdown), so the park deterministically
    catches the batcher inside its sweep -- exactly where the original
    bug lived -- while the test fills the queue and lands a no-drain
    stop whose sentinel gets refused.
    """

    def __init__(self, maxsize, entered, release):
        super().__init__(maxsize)
        self._entered = entered
        self._release = release
        self._armed = True

    def get_nowait(self):
        if self._armed:
            self._armed = False
            self._entered.set()
            assert self._release.wait(10.0), "test never released the sweep"
        return super().get_nowait()


def test_no_drain_stop_with_full_queue_stops_the_sweep():
    """``stop(drain=False)`` racing a full queue must not keep
    serving: the sentinel is refused, so the sweep itself has to
    notice the closed gates and fail what it pops."""
    entered, release = threading.Event(), threading.Event()
    capacity = 4
    server = PipelineServer(
        _EchoPipeline(),
        ServingConfig(
            max_batch=4, max_wait_ms=50, queue_capacity=capacity
        ),
    )
    # Swap in the gated queue before the batcher exists; same capacity
    # as the config so backpressure still holds.
    server._queue = _SweepGateQueue(capacity, entered, release)
    server.start()
    try:
        first = server.submit(_image(1.0))
        # The batcher has popped `first` and is parked inside its
        # coalescing sweep.
        assert entered.wait(10.0)
        queued = [
            server.submit(_image(float(i))) for i in range(2, 6)
        ]
        assert server._queue.full()  # sentinel will be refused
        stopper = threading.Thread(
            target=server.stop,
            kwargs={"drain": False, "timeout": 10.0},
        )
        stopper.start()
        deadline = time.perf_counter() + 5.0
        while server._accepting and time.perf_counter() < deadline:
            time.sleep(0.001)
        assert not server._accepting  # no-drain stop has landed
        release.set()
        stopper.join(10.0)
        assert not stopper.is_alive()
    finally:
        release.set()
        server.stop(drain=False, timeout=10.0)

    # The request already in the batcher's hands is served...
    assert first.result(timeout=10) is not None
    # ...but everything still queued when the no-drain stop landed
    # fails with ServerClosed instead of being coalesced and flushed.
    for pending in queued:
        with pytest.raises(ServerClosed):
            pending.result(timeout=10)
    stats = server.stats()
    assert stats.submitted == 5
    assert stats.completed == 1
    assert stats.cancelled == 4
    assert stats.failed == 0
    assert (
        stats.completed + stats.failed + stats.cancelled
        == stats.submitted
    )

"""Chaos-grade accounting invariants for the serving lifecycle.

Whatever faults fire -- crashes mid-flush, reject storms, cache-leader
aborts -- the server's ledger must balance (``submitted == completed +
failed + cancelled``, rejects separate) and every ``PendingResult``
must complete: every ``result()`` call here is bounded, so a hang is
a test failure, never a CI deadlock.

Two layers: randomized fault storms through the full
:class:`~repro.chaos.experiment.ChaosExperiment` harness (both
architectures, cache on and off), and targeted stub-pipeline tests
that pin each accounting seam in isolation.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.api import ChaosConfig, ServingConfig
from repro.chaos import ChaosExperiment
from repro.serving import (
    BatcherCrash,
    PipelineServer,
    ServerOverloaded,
)

TIMEOUT_S = 20.0


@pytest.fixture(scope="module")
def parallel_chaos_pipeline():
    from tests.chaos.conftest import make_chaos_pipeline

    return make_chaos_pipeline("parallel")


@pytest.fixture(scope="module")
def integrated_chaos_pipeline():
    from tests.chaos.conftest import make_chaos_pipeline

    return make_chaos_pipeline("integrated")


def _ledger_balances(stats) -> bool:
    return stats.submitted == (
        stats.completed + stats.failed + stats.cancelled
    )


# -- randomized storms through the chaos harness ------------------------

@pytest.mark.parametrize("seed", [0, 1, 2, 3])
@pytest.mark.parametrize("architecture", ["parallel", "integrated"])
@pytest.mark.parametrize("cache", ["off", "lru"])
def test_fault_storm_ledger_balances(request, seed, architecture, cache):
    pipeline = request.getfixturevalue(f"{architecture}_chaos_pipeline")
    experiment = ChaosExperiment(
        chaos=ChaosConfig(
            latency_spikes=1,
            latency_ms=1.0,
            timeouts=1,
            batcher_crashes=1,
            queue_exhaustion_bursts=1,
            corrupt_payloads=2,
        ),
        cache=cache,
        timeout_s=TIMEOUT_S,
    )
    report = experiment.run(pipeline, np.random.default_rng(seed))
    assert report.invariants_hold, report.violations
    stats = report.stats
    assert stats["submitted"] == (
        stats["completed"] + stats["failed"] + stats["cancelled"]
    )
    assert stats["rejected"] == report.plan.expected_rejections


# -- targeted stub-pipeline accounting tests ----------------------------

class _Result:
    """Minimal HybridResult stand-in (no flagging, no verdict)."""

    flagged = False

    def __init__(self, value: float) -> None:
        self.probabilities = np.full(4, value, dtype=np.float32)
        self.predicted_class = 0
        self.decision = "proceed"
        self.verdict = None
        self.reliable_report = None


class _CrashingPipeline:
    """Delivers the first half of a flush, then dies mid-batch --
    the worst case for a size-inferred ledger."""

    def __init__(self, crash_on_call: int = 1) -> None:
        self.calls = 0
        self.crash_on_call = crash_on_call

    def infer(self, image, qualifier_view=None):
        return _Result(float(image.mean()))

    def infer_batch(self, images, qualifier_views=None):
        self.calls += 1
        if self.calls == self.crash_on_call:
            raise BatcherCrash("stub crash mid-flush")
        return [_Result(float(image.mean())) for image in images]


def _image(value: float, size: int = 4) -> np.ndarray:
    return np.full((3, size, size), value, dtype=np.float32)


def test_crash_mid_flush_ledger_balances_and_no_handle_hangs():
    pipeline = _CrashingPipeline(crash_on_call=1)
    server = PipelineServer(
        pipeline,
        ServingConfig(max_batch=4, max_wait_ms=20.0, queue_capacity=16),
    )
    server.start()
    handles = [server.submit(_image(0.1 * i)) for i in range(8)]
    outcomes = {"delivered": 0, "errored": 0}
    for handle in handles:
        try:
            handle.result(timeout=TIMEOUT_S)
            outcomes["delivered"] += 1
        except TimeoutError:
            pytest.fail("PendingResult hung after batcher crash")
        except Exception:
            outcomes["errored"] += 1
    # The crashed flush and everything queued behind it errored; the
    # batcher died, so nothing else can have been delivered.
    assert outcomes["errored"] >= 1
    server.stop(drain=False, timeout=TIMEOUT_S)
    stats = server.stats()
    assert _ledger_balances(stats), stats
    assert stats.submitted == 8
    assert stats.completed == outcomes["delivered"]


def test_crash_after_partial_flush_keeps_delivered_completions():
    """Flush 1 delivers, flush 2 crashes: the completions from the
    healthy flush must survive in the ledger (explicit ``completed``
    in record_batch, not inferred from batch size)."""
    pipeline = _CrashingPipeline(crash_on_call=2)
    server = PipelineServer(
        pipeline,
        ServingConfig(max_batch=2, max_wait_ms=5.0, queue_capacity=16),
    )
    server.start()
    first = [server.submit(_image(0.2 * i)) for i in range(2)]
    for handle in first:
        handle.result(timeout=TIMEOUT_S)  # healthy flush delivered
    second = [server.submit(_image(0.7 + 0.1 * i)) for i in range(2)]
    for handle in second:
        with pytest.raises(Exception):
            handle.result(timeout=TIMEOUT_S)
    server.stop(drain=False, timeout=TIMEOUT_S)
    stats = server.stats()
    assert _ledger_balances(stats), stats
    assert stats.completed == 2
    assert stats.cancelled >= 2


class _SlowPipeline:
    """Holds each flush until released -- lets a test wedge the queue
    full deterministically."""

    def __init__(self) -> None:
        self.release = threading.Event()

    def infer(self, image, qualifier_view=None):
        return _Result(float(image.mean()))

    def infer_batch(self, images, qualifier_views=None):
        assert self.release.wait(TIMEOUT_S), "test never released flush"
        return [_Result(float(image.mean())) for image in images]


def test_reject_storm_counts_every_refusal_separately():
    pipeline = _SlowPipeline()
    server = PipelineServer(
        pipeline,
        ServingConfig(
            max_batch=4,
            max_wait_ms=0.0,
            queue_capacity=4,
            overflow="reject",
        ),
    )
    server.start()
    accepted = [server.submit(_image(0.5))]  # batcher takes this one
    # Wait for the batcher to enter the (held) flush, then fill the
    # queue exactly and storm past it.
    deadline = threading.Event()
    for _ in range(200):
        if server.stats().queue_depth == 0 and server.stats().batches == 0:
            break
        deadline.wait(0.01)
    while True:
        try:
            accepted.append(server.submit(_image(0.5)))
        except ServerOverloaded:
            break
    rejects = 0
    for _ in range(10):
        with pytest.raises(ServerOverloaded):
            server.submit(_image(0.5))
        rejects += 1
    pipeline.release.set()
    for handle in accepted:
        handle.result(timeout=TIMEOUT_S)
    server.stop(drain=True, timeout=TIMEOUT_S)
    stats = server.stats()
    assert _ledger_balances(stats), stats
    assert stats.submitted == len(accepted)
    assert stats.completed == len(accepted)
    # The storm's refusals (plus the one that found the queue full
    # first) are all in ``rejected`` -- never folded into the ledger.
    assert stats.rejected == rejects + 1


class _FailingPipeline:
    """Every flush fails: exercises leader-failure fan-out."""

    def infer(self, image, qualifier_view=None):
        return _Result(float(image.mean()))

    def infer_batch(self, images, qualifier_views=None):
        raise RuntimeError("stub flush failure")


def test_cache_leader_abort_accounts_followers_as_failed():
    pipeline = _FailingPipeline()
    server = PipelineServer(
        pipeline,
        ServingConfig(
            max_batch=8,
            max_wait_ms=50.0,
            queue_capacity=16,
            cache="lru",
        ),
    )
    server.start()
    image = _image(0.25)
    # Same content: one leader, the rest coalesce onto its flight.
    handles = [server.submit(image) for _ in range(4)]
    for handle in handles:
        with pytest.raises(RuntimeError, match="stub flush failure"):
            handle.result(timeout=TIMEOUT_S)
    server.stop(drain=True, timeout=TIMEOUT_S)
    stats = server.stats()
    assert _ledger_balances(stats), stats
    assert stats.submitted == 4
    assert stats.failed == 4
    assert stats.coalesced_joins == 3
    # A failed flight is never cached.
    assert stats.cache_entries == 0


def test_stop_drain_false_never_hangs_a_handle():
    pipeline = _SlowPipeline()
    server = PipelineServer(
        pipeline,
        ServingConfig(max_batch=2, max_wait_ms=0.0, queue_capacity=8),
    )
    server.start()
    handles = [server.submit(_image(0.1 * i)) for i in range(6)]
    stopper = threading.Thread(
        target=server.stop, kwargs={"drain": False, "timeout": TIMEOUT_S}
    )
    stopper.start()
    pipeline.release.set()
    stopper.join(TIMEOUT_S)
    assert not stopper.is_alive()
    for handle in handles:
        try:
            handle.result(timeout=TIMEOUT_S)
        except TimeoutError:
            pytest.fail("PendingResult hung across non-draining stop")
        except Exception:
            pass  # delivered or explicitly failed: both are legal
    stats = server.stats()
    assert _ledger_balances(stats), stats

"""Concurrency determinism: the serving layer's parity contract.

N client threads submit in randomized interleavings; every per-request
result must be **bitwise identical** to a serial ``pipeline.infer()``
call on the same image -- whatever micro-batches the interleaving
produced, under each qualifier engine policy and both architectures.
This is the guarantee the batched engines were built to provide; the
serving layer must surface it unharmed.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.api import ServingConfig
from tests.serving.conftest import make_pipeline
from tests.support.fuzz import (
    assert_reports_equal,
    assert_verdicts_bitwise_equal,
)


def _serve_concurrently(pipeline, images, seed: int, n_threads: int = 6):
    """Submit every image from worker threads in a randomized
    interleaving; returns results indexed like ``images``."""
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(images))
    shards = [order[i::n_threads] for i in range(n_threads)]
    pendings: list = [None] * len(images)
    errors: list = []
    config = ServingConfig(
        max_batch=int(rng.integers(2, 9)),
        max_wait_ms=float(rng.choice([0.0, 1.0, 5.0])),
        queue_capacity=len(images) + n_threads,
    )
    with pipeline.serve(config) as server:
        barrier = threading.Barrier(n_threads)

        def client(shard, delays):
            try:
                barrier.wait(timeout=30)
                for index, delay in zip(shard, delays):
                    if delay:
                        threading.Event().wait(delay)
                    pendings[index] = server.submit(images[index])
            except Exception as error:  # pragma: no cover - surfaced below
                errors.append(error)

        threads = []
        for shard in shards:
            delays = rng.choice(
                [0.0, 0.0, 0.001, 0.004], size=len(shard)
            )
            thread = threading.Thread(target=client, args=(shard, delays))
            thread.start()
            threads.append(thread)
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors
        return [p.result(timeout=60) for p in pendings]


@pytest.mark.parametrize("engine", ["auto", "batched", "scalar"])
def test_concurrent_results_bitwise_equal_serial_infer(images, engine):
    pipeline = make_pipeline(engine=engine)
    serial = [pipeline.infer(image) for image in images]
    for seed in (0, 1):
        served = _serve_concurrently(pipeline, images, seed=seed)
        for i, (got, want) in enumerate(zip(served, serial)):
            context = f"engine={engine} seed={seed} image={i}"
            assert got.probabilities.tobytes() == (
                want.probabilities.tobytes()
            ), context
            assert got.predicted_class == want.predicted_class, context
            assert got.decision == want.decision, context
            assert_verdicts_bitwise_equal(
                got.verdict, want.verdict, context
            )


def test_concurrent_results_bitwise_equal_integrated(images):
    """The integrated hybrid (in-network reliable partition) carries
    the same contract through the server -- including each request's
    per-image ``reliable_report``, which must be the report the same
    image gets from a serial ``infer`` whatever micro-batch the
    interleaving packed it into."""
    pipeline = make_pipeline(architecture="integrated")
    serial = [pipeline.infer(image) for image in images]
    served = _serve_concurrently(pipeline, images, seed=3)
    for i, (got, want) in enumerate(zip(served, serial)):
        assert got.probabilities.tobytes() == (
            want.probabilities.tobytes()
        ), i
        assert got.decision == want.decision, i
        assert_verdicts_bitwise_equal(got.verdict, want.verdict, str(i))
        assert got.reliable_report is not None, i
        assert_reports_equal(
            got.reliable_report, want.reliable_report,
            f"served vs serial reliable_report, image {i}",
        )


def test_qualifier_views_served_bitwise(images):
    """Mixed with-view/without-view traffic demuxes and stays bitwise
    equal to the serial calls (views at a different resolution than
    the classifier input)."""
    from repro.data import render_sign

    pipeline = make_pipeline()
    views = np.stack([
        render_sign(i % 8, size=48, rotation=np.deg2rad(11 * i - 40))
        for i in range(len(images))
    ]).astype(np.float32)
    serial = [
        pipeline.infer(image, qualifier_view=view)
        for image, view in zip(images, views)
    ]
    serial_plain = [pipeline.infer(image) for image in images]
    with pipeline.serve(ServingConfig(max_batch=16, max_wait_ms=20)) as server:
        with_view = [
            server.submit(image, qualifier_view=view)
            for image, view in zip(images, views)
        ]
        without_view = [server.submit(image) for image in images]
        for i, pending in enumerate(with_view):
            got = pending.result(timeout=60)
            assert got.probabilities.tobytes() == (
                serial[i].probabilities.tobytes()
            )
            assert got.decision == serial[i].decision
            assert_verdicts_bitwise_equal(got.verdict, serial[i].verdict)
        for i, pending in enumerate(without_view):
            got = pending.result(timeout=60)
            assert got.decision == serial_plain[i].decision
            assert_verdicts_bitwise_equal(
                got.verdict, serial_plain[i].verdict
            )

"""Serving-test fixtures: small pipelines that build in milliseconds.

Determinism -- not classification quality -- is what these tests
assert, so the models are untrained (weights from a fixed seed); the
pipeline's numbers are deterministic either way.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import (
    PipelineConfig,
    QualifierConfig,
    build_pipeline,
)
from repro.data import render_sign
from repro.models.smallcnn import small_cnn

IMAGE_SIZE = 24
N_IMAGES = 24


@pytest.fixture(scope="session")
def images():
    return np.stack([
        render_sign(
            i % 8, size=IMAGE_SIZE, rotation=np.deg2rad(11 * i - 40)
        )
        for i in range(N_IMAGES)
    ]).astype(np.float32)


def make_pipeline(engine: str = "auto", architecture: str = "parallel"):
    model = small_cnn(n_classes=8, input_size=IMAGE_SIZE)
    return build_pipeline(
        PipelineConfig(
            architecture=architecture,
            qualifier=QualifierConfig(redundant=True, engine=engine),
            pin_sobel=architecture == "integrated",
            name=f"serving-test-{architecture}-{engine}",
        ),
        model,
    )


@pytest.fixture(scope="module")
def pipeline():
    return make_pipeline()

"""ChaosExperiment postconditions under every built-in FaultType.

The acceptance bar for the chaos layer: under each fault type (and a
combined storm), every serving invariant -- full accounting, no hangs,
exact backpressure, degradation routing, bitwise serial parity --
holds, and the run classifies to the expected campaign outcome.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import ChaosConfig
from repro.chaos import ChaosExperiment

TIMEOUT_S = 20.0

CASES = {
    "none": ({}, "clean"),
    "latency_spike": ({"latency_spikes": 2, "latency_ms": 2.0}, "masked"),
    "timeout": ({"timeouts": 2}, "detected_recovered"),
    "batcher_crash": ({"batcher_crashes": 1}, "detected_recovered"),
    "queue_exhaustion": (
        {"queue_exhaustion_bursts": 1},
        "detected_recovered",
    ),
    "payload_corruption": ({"corrupt_payloads": 3}, "masked"),
    "storm": (
        {
            "latency_spikes": 1,
            "latency_ms": 2.0,
            "timeouts": 1,
            "batcher_crashes": 1,
            "queue_exhaustion_bursts": 1,
            "corrupt_payloads": 2,
        },
        "detected_recovered",
    ),
}


def _run(pipeline, fields, seed=7, **experiment_kwargs):
    experiment = ChaosExperiment(
        chaos=ChaosConfig(**fields),
        timeout_s=TIMEOUT_S,
        **experiment_kwargs,
    )
    return experiment.run(pipeline, np.random.default_rng(seed))


@pytest.mark.parametrize("fault", sorted(CASES))
def test_invariants_hold_under_each_fault_type(parallel_pipeline, fault):
    fields, expected_outcome = CASES[fault]
    report = _run(parallel_pipeline, fields)
    assert report.invariants_hold, report.violations
    assert all(report.invariants.values()), report.invariants
    assert report.outcome == expected_outcome
    # The invariant set itself is complete: every postcondition the
    # chaos layer promises is actually checked.
    assert set(report.invariants) == {
        "accounting_balances",
        "ledger_matches_driver",
        "no_hung_pending",
        "delivered_parity",
        "degradation_routing",
        "backpressure_exact",
        "clean_stop",
    }


def test_storm_on_integrated_architecture(integrated_pipeline):
    fields, expected_outcome = CASES["storm"]
    report = _run(integrated_pipeline, fields)
    assert report.invariants_hold, report.violations
    assert report.outcome == expected_outcome


def test_storm_with_lru_cache(parallel_pipeline):
    """Cache hits, in-flight joins and leader aborts under fault fire:
    the ledger must still balance and parity must still hold."""
    fields, _ = CASES["storm"]
    report = _run(parallel_pipeline, fields, cache="lru")
    assert report.invariants_hold, report.violations


def test_crash_recovery_restarts_and_serves(parallel_pipeline):
    report = _run(parallel_pipeline, {"batcher_crashes": 2})
    assert report.invariants_hold, report.violations
    assert report.restarts == 2
    # Post-restart serving actually happened: retried submissions
    # delivered results with verified parity.
    assert report.delivered > 0
    assert report.parity_checked > 0


def test_burst_rejections_are_exact(parallel_pipeline):
    report = _run(
        parallel_pipeline,
        {"queue_exhaustion_bursts": 2, "burst_overflow": 4},
    )
    assert report.invariants_hold, report.violations
    assert report.rejected == 8
    assert report.plan.expected_rejections == 8


def test_timeout_failures_are_explicit_not_silent(parallel_pipeline):
    report = _run(parallel_pipeline, {"timeouts": 2})
    assert report.invariants_hold, report.violations
    # At least the two faulted flush groups failed explicitly.
    assert report.failed >= 2
    assert report.stats["failed"] == report.failed


def test_corrupted_payloads_served_with_serial_parity(parallel_pipeline):
    report = _run(parallel_pipeline, {"corrupt_payloads": 4})
    assert report.invariants_hold, report.violations
    assert report.plan.counts["payload_corruption"] == 4
    # All base traffic delivered; parity verified against infer() on
    # the corrupted payloads themselves.
    assert report.delivered == 12
    assert report.parity_checked == 12


def test_burst_requires_reject_overflow(parallel_pipeline):
    from repro.api import ServingConfig
    from repro.chaos import ChaosError

    experiment = ChaosExperiment(
        chaos=ChaosConfig(queue_exhaustion_bursts=1),
        serving=ServingConfig(max_batch=4, queue_capacity=8),
        timeout_s=TIMEOUT_S,
    )
    with pytest.raises(ChaosError, match="reject"):
        experiment.run(parallel_pipeline, np.random.default_rng(0))


def test_report_round_trips_to_json(parallel_pipeline):
    import json

    fields, _ = CASES["storm"]
    report = _run(parallel_pipeline, fields)
    payload = json.loads(json.dumps(report.to_dict()))
    assert payload["outcome"] == report.outcome
    assert payload["plan"]["counts"] == dict(
        sorted(report.plan.counts.items())
    )
    assert payload["invariants"]["accounting_balances"] is True

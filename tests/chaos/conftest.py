"""Chaos-test fixtures: one tiny pipeline per architecture, built
once per session (experiments need a live server, so speed matters)."""

from __future__ import annotations

import pytest

from repro.api import PipelineConfig, QualifierConfig, build_pipeline
from repro.models.smallcnn import small_cnn

IMAGE_SIZE = 20


def make_chaos_pipeline(architecture: str = "parallel"):
    model = small_cnn(n_classes=8, input_size=IMAGE_SIZE)
    return build_pipeline(
        PipelineConfig(
            architecture=architecture,
            qualifier=QualifierConfig(redundant=True),
            pin_sobel=architecture == "integrated",
            name=f"chaos-test-{architecture}",
        ),
        model,
    )


@pytest.fixture(scope="session")
def parallel_pipeline():
    return make_chaos_pipeline("parallel")


@pytest.fixture(scope="session")
def integrated_pipeline():
    return make_chaos_pipeline("integrated")

"""Chaos-layer determinism: the properties campaigns rely on.

1. The :class:`~repro.chaos.proxy.ChaosPipelineProxy` is transparent:
   with no armed faults, ``infer_batch`` and ``infer`` through the
   proxy are bitwise identical to the bare pipeline (the serving
   parity contract survives wrapping).
2. A ``serving_chaos`` campaign is bitwise reproducible: same spec,
   same fingerprint -- across runs *and* across worker counts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import ChaosConfig
from repro.chaos import ChaosPipelineProxy, ServiceFaultInjector
from repro.chaos.campaign import chaos_campaign_spec, chaos_summary
from repro.campaigns.engine import run_campaign
from repro.data import render_sign

from tests.chaos.conftest import IMAGE_SIZE


def _proxy(pipeline) -> ChaosPipelineProxy:
    injector = ServiceFaultInjector(
        ChaosConfig(), np.random.default_rng(0)
    )
    return ChaosPipelineProxy(pipeline, injector)


def test_proxy_infer_batch_bitwise_equals_bare_pipeline(
    parallel_pipeline,
):
    images = np.stack(
        [
            render_sign(i % 8, size=IMAGE_SIZE, rotation=0.05 * i)
            for i in range(6)
        ]
    ).astype(np.float32)
    proxy = _proxy(parallel_pipeline)
    wrapped = list(proxy.infer_batch(images))
    bare = list(parallel_pipeline.infer_batch(images))
    assert len(wrapped) == len(bare) == 6
    for w, b in zip(wrapped, bare):
        assert (
            np.asarray(w.probabilities).tobytes()
            == np.asarray(b.probabilities).tobytes()
        )
        assert w.predicted_class == b.predicted_class
        assert w.decision == b.decision
        assert w.verdict.matches == b.verdict.matches


def test_proxy_serial_infer_is_never_faulted(parallel_pipeline):
    """The serial oracle path must stay clean even with faults armed:
    arming affects only flushes."""
    from repro.chaos import FaultEvent, FaultType

    proxy = _proxy(parallel_pipeline)
    proxy.injector.arm(FaultEvent(FaultType.TIMEOUT))
    image = render_sign(3, size=IMAGE_SIZE)
    result = proxy.infer(image)  # does not raise
    bare = parallel_pipeline.infer(image)
    assert (
        np.asarray(result.probabilities).tobytes()
        == np.asarray(bare.probabilities).tobytes()
    )
    # The armed event is still pending for the next flush.
    assert proxy.injector.armed_count() == 1


def test_proxy_forwards_config(parallel_pipeline):
    proxy = _proxy(parallel_pipeline)
    assert proxy.config is parallel_pipeline.config


@pytest.fixture(scope="module")
def smoke_spec():
    return chaos_campaign_spec(
        faults=("none", "timeout", "batcher_crash"),
        trials=1,
        seed=13,
        n_requests=6,
        shard_size=2,
    )


def test_campaign_fingerprint_reproducible(smoke_spec):
    a = run_campaign(smoke_spec, workers=1)
    b = run_campaign(smoke_spec, workers=1)
    assert a.fingerprint() == b.fingerprint()
    assert a.deterministic_dict() == b.deterministic_dict()


def test_campaign_fingerprint_worker_count_invariant(smoke_spec):
    serial = run_campaign(smoke_spec, workers=1)
    parallel = run_campaign(smoke_spec, workers=2)
    assert serial.fingerprint() == parallel.fingerprint()
    assert chaos_summary(serial) == chaos_summary(parallel)


def test_campaign_outcomes_per_preset(smoke_spec):
    report = run_campaign(smoke_spec, workers=1)
    # Cells enumerate the grid axis values in the order given.
    by_cell = {cell.index: cell.counts for cell in report.cells.values()}
    presets = ("none", "timeout", "batcher_crash")
    expectations = {
        "none": "clean",
        "timeout": "detected_recovered",
        "batcher_crash": "detected_recovered",
    }
    for index, preset in enumerate(presets):
        counts = by_cell[index]
        assert counts[expectations[preset]] == 1, (preset, counts)
        assert counts["silent_corruption"] == 0
        assert counts["detected_aborted"] == 0

"""ChaosConfig validation and the seeded fault planner.

A chaos plan must be a pure function of (config, rng state): same
seed, same schedule, bit for bit -- that is what makes chaos trials
campaign-grade reproducible.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import ChaosConfig
from repro.chaos import (
    ABSORBABLE_FAULTS,
    ChaosError,
    FaultEvent,
    FaultType,
    ServiceFaultInjector,
)
from repro.serving.server import BatcherCrash


def _storm_config(**overrides) -> ChaosConfig:
    fields = dict(
        latency_spikes=2,
        timeouts=1,
        batcher_crashes=1,
        queue_exhaustion_bursts=1,
        corrupt_payloads=3,
        corrupt_bits=2,
    )
    fields.update(overrides)
    return ChaosConfig(**fields)


class TestChaosConfig:
    def test_defaults_are_quiet(self):
        config = ChaosConfig()
        assert config.total_events == 0
        assert config.server_events == 0
        assert config.disruptive_events == 0

    @pytest.mark.parametrize(
        "field, value",
        [
            ("latency_spikes", -1),
            ("timeouts", -1),
            ("batcher_crashes", -2),
            ("queue_exhaustion_bursts", -1),
            ("corrupt_payloads", -1),
            ("latency_ms", -0.5),
            ("burst_overflow", 0),
            ("corrupt_bits", 0),
            ("stall_timeout_s", 0.0),
        ],
    )
    def test_validation_rejects(self, field, value):
        with pytest.raises(ValueError):
            ChaosConfig(**{field: value})

    def test_event_arithmetic(self):
        config = _storm_config()
        assert config.server_events == 4  # spikes + timeouts + crashes
        assert config.total_events == 8
        # Disruptive excludes the absorbable spike count.
        assert config.disruptive_events == 3

    def test_dict_round_trip(self):
        config = _storm_config(latency_ms=7.5, stall_timeout_s=9.0)
        assert ChaosConfig.from_dict(config.to_dict()) == config

    def test_from_dict_rejects_unknown_keys(self):
        payload = ChaosConfig().to_dict()
        payload["latency_spikez"] = 3
        with pytest.raises(ValueError, match="latency_spikez"):
            ChaosConfig.from_dict(payload)


class TestChaosPlan:
    def test_same_seed_same_plan(self):
        config = _storm_config()
        plans = [
            ServiceFaultInjector(
                config, np.random.default_rng(11)
            ).plan(12, 1200)
            for _ in range(2)
        ]
        assert plans[0] == plans[1]
        assert plans[0].to_dict() == plans[1].to_dict()

    def test_different_seed_different_schedule(self):
        config = _storm_config()
        a = ServiceFaultInjector(
            config, np.random.default_rng(0)
        ).plan(12, 1200)
        b = ServiceFaultInjector(
            config, np.random.default_rng(1)
        ).plan(12, 1200)
        # Counts are config-determined either way...
        assert a.counts == b.counts
        # ...but the drawn schedule (delays, orders, bit positions)
        # comes from the stream.
        assert a != b

    def test_plan_counts_match_config(self):
        config = _storm_config()
        plan = ServiceFaultInjector(
            config, np.random.default_rng(5)
        ).plan(10, 300)
        assert len(plan.server_events) == config.server_events
        assert len(plan.corruptions) == 3
        assert plan.bursts == 1
        assert plan.expected_rejections == config.burst_overflow
        assert plan.total_events == config.total_events
        assert plan.disruptive_events == config.disruptive_events

    def test_corruptions_clamped_and_in_range(self):
        config = ChaosConfig(corrupt_payloads=50, corrupt_bits=4)
        plan = ServiceFaultInjector(
            config, np.random.default_rng(9)
        ).plan(6, 100)
        assert len(plan.corruptions) == 6  # clamped to n_requests
        indices = [e.request_index for e in plan.corruptions]
        assert indices == sorted(set(indices))
        for event in plan.corruptions:
            assert len(event.bits) == 4
            for word, bit in event.bits:
                assert 0 <= word < 100
                assert 0 <= bit < 32

    def test_metrics_are_deterministic_floats(self):
        plan = ServiceFaultInjector(
            _storm_config(), np.random.default_rng(2)
        ).plan(12, 1200)
        metrics = plan.to_metrics()
        assert metrics["n_requests"] == 12.0
        assert metrics["planned_batcher_crash"] == 1.0
        assert metrics["expected_rejections"] == 3.0
        assert all(isinstance(v, float) for v in metrics.values())

    def test_plan_rejects_degenerate_inputs(self):
        injector = ServiceFaultInjector(
            ChaosConfig(), np.random.default_rng(0)
        )
        with pytest.raises(ChaosError):
            injector.plan(0, 10)
        with pytest.raises(ChaosError):
            injector.plan(10, 0)


class TestInjectorFiring:
    def test_arm_rejects_client_side_faults(self):
        injector = ServiceFaultInjector(
            ChaosConfig(), np.random.default_rng(0)
        )
        with pytest.raises(ChaosError):
            injector.arm(FaultEvent(FaultType.PAYLOAD_CORRUPTION))
        with pytest.raises(ChaosError):
            injector.arm(FaultEvent(FaultType.QUEUE_EXHAUSTION))

    def test_events_fire_exactly_once_in_order(self):
        injector = ServiceFaultInjector(
            ChaosConfig(timeouts=1, batcher_crashes=1),
            np.random.default_rng(0),
        )
        injector.arm(FaultEvent(FaultType.TIMEOUT))
        injector.arm(FaultEvent(FaultType.BATCHER_CRASH))
        with pytest.raises(Exception, match="timeout"):
            injector.on_flush()
        with pytest.raises(BatcherCrash):
            injector.on_flush()
        injector.on_flush()  # queue drained: a no-op

    def test_stall_gate_is_bounded(self):
        injector = ServiceFaultInjector(
            ChaosConfig(stall_timeout_s=0.05), np.random.default_rng(0)
        )
        injector.request_stall()
        # Never released: the bounded gate must self-open rather than
        # park the batcher forever.
        injector.on_flush()
        assert injector.wait_stalled(0.0)

    def test_release_all_clears_pending_stall(self):
        injector = ServiceFaultInjector(
            ChaosConfig(), np.random.default_rng(0)
        )
        injector.request_stall()
        injector.release_all()
        injector.on_flush()  # returns immediately: nothing pending

    def test_absorbable_set(self):
        assert FaultType.LATENCY_SPIKE in ABSORBABLE_FAULTS
        assert FaultType.PAYLOAD_CORRUPTION in ABSORBABLE_FAULTS
        assert FaultType.BATCHER_CRASH not in ABSORBABLE_FAULTS

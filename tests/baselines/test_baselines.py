"""Activation-range supervision and output caging baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import ActivationRangeGuard, OutputCage
from repro.faults.injector import flip_weight_bits


class TestRangeGuard:
    @pytest.fixture()
    def guard(self, trained_model):
        guard = ActivationRangeGuard(trained_model.model)
        guard.calibrate(trained_model.train_x[:96])
        return guard

    def test_requires_calibration(self, trained_model):
        guard = ActivationRangeGuard(trained_model.model)
        with pytest.raises(RuntimeError):
            guard.forward(trained_model.test_x[:2])

    def test_clean_inputs_pass_without_violations(self, guard,
                                                  trained_model):
        out, violations = guard.forward(trained_model.train_x[:16])
        native = trained_model.model.forward(trained_model.train_x[:16])
        np.testing.assert_allclose(out, native, rtol=1e-5)
        assert violations == []

    def test_bounds_cover_every_layer(self, guard, trained_model):
        assert set(guard.bounds) == {
            layer.name for layer in trained_model.model
        }

    def test_corrupted_weights_trigger_clipping(self, guard,
                                                trained_model):
        conv1 = trained_model.model.layer("conv1")
        pristine = conv1.weight.value.copy()
        try:
            rng = np.random.default_rng(3)
            flip_weight_bits(
                conv1, 40, rng, bit_range=(24, 31)
            )
            with np.errstate(over="ignore", invalid="ignore"):
                out, violations = guard.forward(
                    trained_model.test_x[:8]
                )
            assert violations, "exponent corruption must violate bounds"
            # Output is clipped into the final layer's bounds.
            lo, hi = guard.bounds[trained_model.model.layers[-1].name]
            assert out.min() >= lo - 1e-5
            assert out.max() <= hi + 1e-5
        finally:
            conv1.weight.value = pristine

    def test_margin_validation(self, trained_model):
        with pytest.raises(ValueError):
            ActivationRangeGuard(trained_model.model, margin=-0.1)

    def test_empty_calibration_rejected(self, trained_model):
        guard = ActivationRangeGuard(trained_model.model)
        with pytest.raises(ValueError):
            guard.calibrate(np.zeros((0, 3, 32, 32), dtype=np.float32))


class TestOutputCage:
    @pytest.fixture()
    def cage(self, trained_model):
        cage = OutputCage(trained_model.model)
        cage.calibrate(trained_model.train_x[:96])
        return cage

    def test_requires_calibration(self, trained_model):
        cage = OutputCage(trained_model.model)
        with pytest.raises(RuntimeError):
            cage.check(np.zeros((1, 8)))

    def test_clean_outputs_mostly_feasible(self, cage, trained_model):
        # Calibrated at the 1% quantile of *training* outputs, so a
        # few held-out samples legitimately fall outside the cage.
        logits = trained_model.model.forward(trained_model.test_x)
        feasible = cage.check(logits)
        assert feasible.mean() > 0.8

    def test_nan_logits_infeasible(self, cage):
        bad = np.full((1, 8), np.nan)
        assert not cage.check(bad)[0]

    def test_flat_logits_infeasible(self, cage):
        # Uniform output: max confidence 1/8, far below calibration.
        assert not cage.check(np.zeros((1, 8)))[0]

    def test_infer_returns_predictions_and_mask(self, cage,
                                                trained_model):
        preds, feasible = cage.infer(trained_model.test_x[:4])
        assert preds.shape == (4,) and feasible.shape == (4,)

    def test_quantile_validation(self, trained_model):
        with pytest.raises(ValueError):
            OutputCage(trained_model.model, min_confidence_quantile=1.0)


class TestBaselineComparisonWorkflow:
    def test_hybrid_never_false_confirms(self, trained_model):
        from repro.workflows import run_baseline_comparison

        result = run_baseline_comparison(
            trained_model, trials=25, seed=1
        )
        by_name = {row.protection: row for row in result.rows}
        hybrid = by_name["hybrid-qualifier"]
        unprotected = by_name["unprotected"]
        assert hybrid.false_confirms == 0
        assert (
            unprotected.false_confirms
            >= by_name["output-cage"].false_confirms
        )
        # Every stop-claim the CNN made is either rejected by the
        # qualifier or was never made dependable.
        assert hybrid.rejected == unprotected.false_confirms

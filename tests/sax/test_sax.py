"""SAX: normalisation, PAA, breakpoints, encoding, distances."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.sax.breakpoints import gaussian_breakpoints, _normal_ppf
from repro.sax.distance import (
    hamming_distance,
    min_rotation_distance,
    mindist,
    symbol_distance_table,
)
from repro.sax.paa import paa, znormalize
from repro.sax.sax import SaxEncoder, sax_word


class TestZNormalize:
    def test_zero_mean_unit_std(self, rng):
        series = rng.standard_normal(200) * 7.0 + 3.0
        out = znormalize(series)
        assert abs(out.mean()) < 1e-9
        assert abs(out.std() - 1.0) < 1e-9

    def test_flat_series_to_zeros(self):
        np.testing.assert_array_equal(
            znormalize(np.full(10, 4.2)), np.zeros(10)
        )

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            znormalize(np.zeros((2, 3)))


class TestPAA:
    def test_even_division_is_block_mean(self):
        series = np.array([1.0, 3.0, 5.0, 7.0])
        np.testing.assert_allclose(paa(series, 2), [2.0, 6.0])

    def test_identity_when_segments_equal_length(self, rng):
        series = rng.standard_normal(16)
        np.testing.assert_allclose(paa(series, 16), series)

    def test_fractional_frames_preserve_mean(self, rng):
        series = rng.standard_normal(10)
        out = paa(series, 3)
        np.testing.assert_allclose(out.mean(), series.mean(), atol=1e-9)

    def test_fractional_weighting_exact(self):
        # 3 points into 2 segments: seg0 = x0 + x1/2, seg1 = x1/2 + x2
        # (each normalised by frame length 1.5).
        series = np.array([3.0, 6.0, 9.0])
        out = paa(series, 2)
        np.testing.assert_allclose(out, [(3 + 3) / 1.5, (3 + 9) / 1.5])

    def test_validation(self):
        with pytest.raises(ValueError):
            paa(np.zeros(4), 0)
        with pytest.raises(ValueError):
            paa(np.zeros(4), 5)


class TestBreakpoints:
    @pytest.mark.parametrize("a", [3, 5, 8, 10])
    def test_table_values_monotonic_symmetric(self, a):
        bp = gaussian_breakpoints(a)
        assert len(bp) == a - 1
        assert (np.diff(bp) > 0).all()
        np.testing.assert_allclose(bp, -bp[::-1], atol=1e-12)

    def test_computed_sizes_match_normal_quantiles(self):
        bp = gaussian_breakpoints(16)
        assert len(bp) == 15
        # Middle breakpoint of an even alphabet is 0.
        np.testing.assert_allclose(bp[7], 0.0, atol=1e-9)

    def test_ppf_accuracy(self):
        # Known quantiles of N(0,1).
        np.testing.assert_allclose(_normal_ppf(0.975), 1.959964, atol=1e-4)
        np.testing.assert_allclose(_normal_ppf(0.5), 0.0, atol=1e-9)
        np.testing.assert_allclose(_normal_ppf(0.0013499), -3.0, atol=1e-3)

    def test_bounds(self):
        with pytest.raises(ValueError):
            gaussian_breakpoints(1)
        with pytest.raises(ValueError):
            gaussian_breakpoints(27)
        with pytest.raises(ValueError):
            _normal_ppf(0.0)


class TestEncoder:
    def test_word_length_and_alphabet(self, rng):
        enc = SaxEncoder(word_length=8, alphabet_size=4)
        word = enc.encode(rng.standard_normal(64))
        assert len(word) == 8
        assert set(word) <= set("abcd")

    def test_monotone_ramp_monotone_word(self):
        enc = SaxEncoder(word_length=8, alphabet_size=8)
        word = enc.encode(np.linspace(0.0, 1.0, 64))
        assert list(word) == sorted(word)
        assert word[0] == "a" and word[-1] == "h"

    def test_flat_series_mid_alphabet(self):
        enc = SaxEncoder(word_length=4, alphabet_size=4)
        # Flat normalises to zeros -> symbol index 2 ('c') for a=4
        # (zero sits at the upper side of the middle breakpoint).
        word = enc.encode(np.full(16, 5.0))
        assert word == "cccc"

    def test_scale_invariance_via_znorm(self, rng):
        enc = SaxEncoder(word_length=8, alphabet_size=6)
        series = rng.standard_normal(64)
        assert enc.encode(series) == enc.encode(series * 100.0 + 5.0)

    def test_decode_levels_roundtrip_region(self):
        enc = SaxEncoder(word_length=4, alphabet_size=8)
        series = np.repeat([-2.0, -0.5, 0.5, 2.0], 8)
        word = enc.encode(series)
        levels = enc.decode_levels(word)
        assert levels[0] < levels[1] < levels[2] < levels[3]

    def test_decode_rejects_foreign_symbols(self):
        enc = SaxEncoder(word_length=2, alphabet_size=3)
        with pytest.raises(ValueError):
            enc.decode_levels("az")

    def test_sax_word_shortcut(self, rng):
        series = rng.standard_normal(32)
        assert sax_word(series, 8, 4) == SaxEncoder(8, 4).encode(series)


class TestDistances:
    def test_symbol_table_adjacent_zero(self):
        table = symbol_distance_table(8)
        assert table[3, 3] == 0.0
        assert table[3, 4] == 0.0
        assert table[3, 5] > 0.0
        np.testing.assert_array_equal(table, table.T)

    def test_mindist_identical_words_zero(self):
        assert mindist("abcd", "abcd", 4, 32) == 0.0

    def test_mindist_scales_with_series_length(self):
        d1 = mindist("aa", "cc", 4, 16)
        d2 = mindist("aa", "cc", 4, 64)
        np.testing.assert_allclose(d2, 2.0 * d1)

    def test_mindist_known_value(self):
        # a=4: breakpoints [-0.67, 0, 0.67]; dist(a,c) = 0 - (-0.67).
        expected = math.sqrt(16 / 2) * math.sqrt(2 * 0.67**2)
        np.testing.assert_allclose(
            mindist("aa", "cc", 4, 16), expected, rtol=1e-12
        )

    def test_mindist_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            mindist("ab", "abc", 4, 16)

    def test_hamming(self):
        assert hamming_distance("abcd", "abcd") == 0
        assert hamming_distance("abcd", "abca") == 1
        with pytest.raises(ValueError):
            hamming_distance("ab", "abc")

    def test_rotation_distance_finds_alignment(self):
        word = "aaaahhhh"
        rotated = "hhaaaahh"
        d, rot = min_rotation_distance(word, rotated, 8, 64)
        assert d == 0.0
        assert rotated[rot:] + rotated[:rot] == word

    def test_rotation_distance_lower_bound_property(self):
        d_rot, _ = min_rotation_distance("abab", "baba", 4, 32)
        assert d_rot <= mindist("abab", "baba", 4, 32)

"""SAX: normalisation, PAA, breakpoints, encoding, distances."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.sax.breakpoints import gaussian_breakpoints, _normal_ppf
from repro.sax.distance import (
    hamming_distance,
    min_rotation_distance,
    mindist,
    symbol_distance_table,
)
from repro.sax.paa import paa, znormalize
from repro.sax.sax import SaxEncoder, sax_word


class TestZNormalize:
    def test_zero_mean_unit_std(self, rng):
        series = rng.standard_normal(200) * 7.0 + 3.0
        out = znormalize(series)
        assert abs(out.mean()) < 1e-9
        assert abs(out.std() - 1.0) < 1e-9

    def test_flat_series_to_zeros(self):
        np.testing.assert_array_equal(
            znormalize(np.full(10, 4.2)), np.zeros(10)
        )

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            znormalize(np.zeros((2, 3)))


class TestPAA:
    def test_even_division_is_block_mean(self):
        series = np.array([1.0, 3.0, 5.0, 7.0])
        np.testing.assert_allclose(paa(series, 2), [2.0, 6.0])

    def test_identity_when_segments_equal_length(self, rng):
        series = rng.standard_normal(16)
        np.testing.assert_allclose(paa(series, 16), series)

    def test_fractional_frames_preserve_mean(self, rng):
        series = rng.standard_normal(10)
        out = paa(series, 3)
        np.testing.assert_allclose(out.mean(), series.mean(), atol=1e-9)

    def test_fractional_weighting_exact(self):
        # 3 points into 2 segments: seg0 = x0 + x1/2, seg1 = x1/2 + x2
        # (each normalised by frame length 1.5).
        series = np.array([3.0, 6.0, 9.0])
        out = paa(series, 2)
        np.testing.assert_allclose(out, [(3 + 3) / 1.5, (3 + 9) / 1.5])

    def test_validation(self):
        with pytest.raises(ValueError):
            paa(np.zeros(4), 0)
        with pytest.raises(ValueError):
            paa(np.zeros(4), 5)


class TestBreakpoints:
    @pytest.mark.parametrize("a", [3, 5, 8, 10])
    def test_table_values_monotonic_symmetric(self, a):
        bp = gaussian_breakpoints(a)
        assert len(bp) == a - 1
        assert (np.diff(bp) > 0).all()
        np.testing.assert_allclose(bp, -bp[::-1], atol=1e-12)

    def test_computed_sizes_match_normal_quantiles(self):
        bp = gaussian_breakpoints(16)
        assert len(bp) == 15
        # Middle breakpoint of an even alphabet is 0.
        np.testing.assert_allclose(bp[7], 0.0, atol=1e-9)

    def test_ppf_accuracy(self):
        # Known quantiles of N(0,1).
        np.testing.assert_allclose(_normal_ppf(0.975), 1.959964, atol=1e-4)
        np.testing.assert_allclose(_normal_ppf(0.5), 0.0, atol=1e-9)
        np.testing.assert_allclose(_normal_ppf(0.0013499), -3.0, atol=1e-3)

    def test_bounds(self):
        with pytest.raises(ValueError):
            gaussian_breakpoints(1)
        with pytest.raises(ValueError):
            gaussian_breakpoints(27)
        with pytest.raises(ValueError):
            _normal_ppf(0.0)


class TestEncoder:
    def test_word_length_and_alphabet(self, rng):
        enc = SaxEncoder(word_length=8, alphabet_size=4)
        word = enc.encode(rng.standard_normal(64))
        assert len(word) == 8
        assert set(word) <= set("abcd")

    def test_monotone_ramp_monotone_word(self):
        enc = SaxEncoder(word_length=8, alphabet_size=8)
        word = enc.encode(np.linspace(0.0, 1.0, 64))
        assert list(word) == sorted(word)
        assert word[0] == "a" and word[-1] == "h"

    def test_flat_series_mid_alphabet(self):
        enc = SaxEncoder(word_length=4, alphabet_size=4)
        # Flat normalises to zeros -> symbol index 2 ('c') for a=4
        # (zero sits at the upper side of the middle breakpoint).
        word = enc.encode(np.full(16, 5.0))
        assert word == "cccc"

    def test_scale_invariance_via_znorm(self, rng):
        enc = SaxEncoder(word_length=8, alphabet_size=6)
        series = rng.standard_normal(64)
        assert enc.encode(series) == enc.encode(series * 100.0 + 5.0)

    def test_decode_levels_roundtrip_region(self):
        enc = SaxEncoder(word_length=4, alphabet_size=8)
        series = np.repeat([-2.0, -0.5, 0.5, 2.0], 8)
        word = enc.encode(series)
        levels = enc.decode_levels(word)
        assert levels[0] < levels[1] < levels[2] < levels[3]

    def test_decode_rejects_foreign_symbols(self):
        enc = SaxEncoder(word_length=2, alphabet_size=3)
        with pytest.raises(ValueError):
            enc.decode_levels("az")

    def test_sax_word_shortcut(self, rng):
        series = rng.standard_normal(32)
        assert sax_word(series, 8, 4) == SaxEncoder(8, 4).encode(series)


class TestDistances:
    def test_symbol_table_adjacent_zero(self):
        table = symbol_distance_table(8)
        assert table[3, 3] == 0.0
        assert table[3, 4] == 0.0
        assert table[3, 5] > 0.0
        np.testing.assert_array_equal(table, table.T)

    def test_mindist_identical_words_zero(self):
        assert mindist("abcd", "abcd", 4, 32) == 0.0

    def test_mindist_scales_with_series_length(self):
        d1 = mindist("aa", "cc", 4, 16)
        d2 = mindist("aa", "cc", 4, 64)
        np.testing.assert_allclose(d2, 2.0 * d1)

    def test_mindist_known_value(self):
        # a=4: breakpoints [-0.67, 0, 0.67]; dist(a,c) = 0 - (-0.67).
        expected = math.sqrt(16 / 2) * math.sqrt(2 * 0.67**2)
        np.testing.assert_allclose(
            mindist("aa", "cc", 4, 16), expected, rtol=1e-12
        )

    def test_mindist_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            mindist("ab", "abc", 4, 16)

    def test_hamming(self):
        assert hamming_distance("abcd", "abcd") == 0
        assert hamming_distance("abcd", "abca") == 1
        with pytest.raises(ValueError):
            hamming_distance("ab", "abc")

    def test_rotation_distance_finds_alignment(self):
        word = "aaaahhhh"
        rotated = "hhaaaahh"
        d, rot = min_rotation_distance(word, rotated, 8, 64)
        assert d == 0.0
        assert rotated[rot:] + rotated[:rot] == word

    def test_rotation_distance_lower_bound_property(self):
        d_rot, _ = min_rotation_distance("abab", "baba", 4, 32)
        assert d_rot <= mindist("abab", "baba", 4, 32)


class TestBatchedEncoding:
    """symbols_batch/encode_batch must equal per-row scalar encoding
    bitwise -- the SAX half of the batched qualifier contract."""

    @pytest.mark.parametrize("n_samples,word_length", [
        (128, 32),   # evenly dividing: reshape-and-mean PAA
        (100, 24),   # fractional frames: weighted-overlap PAA
        (64, 64),    # one sample per segment
    ])
    def test_symbols_batch_matches_scalar(self, n_samples, word_length):
        rng = np.random.default_rng(word_length)
        encoder = SaxEncoder(word_length, 8)
        series = rng.standard_normal((20, n_samples))
        series[3] = 2.5  # flat row exercises the zero-variance rule
        batch = encoder.symbols_batch(series)
        for i in range(len(series)):
            np.testing.assert_array_equal(
                batch[i], encoder.symbols(series[i])
            )

    def test_encode_batch_matches_scalar(self):
        rng = np.random.default_rng(9)
        encoder = SaxEncoder(16, 6)
        series = rng.standard_normal((10, 80))
        assert encoder.encode_batch(series) == [
            encoder.encode(row) for row in series
        ]

    def test_paa_batch_matches_scalar_bitwise(self):
        from repro.sax.paa import paa, paa_batch

        rng = np.random.default_rng(2)
        for n, segments in ((128, 32), (100, 24), (50, 7)):
            series = rng.standard_normal((15, n))
            batch = paa_batch(series, segments)
            for i in range(len(series)):
                np.testing.assert_array_equal(
                    batch[i], paa(series[i], segments)
                )

    def test_znormalize_batch_matches_scalar_bitwise(self):
        from repro.sax.paa import znormalize, znormalize_batch

        rng = np.random.default_rng(8)
        series = rng.standard_normal((12, 77))
        series[5] = -1.25  # flat row
        batch = znormalize_batch(series)
        for i in range(len(series)):
            np.testing.assert_array_equal(batch[i], znormalize(series[i]))

    def test_symbols_to_words(self):
        from repro.sax.sax import symbols_to_words

        assert symbols_to_words(np.array([[0, 1, 2], [7, 7, 0]])) == [
            "abc", "hha"
        ]


class TestDistanceKernels:
    def test_symbol_table_cached_but_private(self):
        table_a = symbol_distance_table(8)
        table_b = symbol_distance_table(8)
        table_a[0, 0] = 99.0  # mutating a copy must not poison the cache
        assert table_b[0, 0] == 0.0
        assert symbol_distance_table(8)[0, 0] == 0.0

    def test_rotation_index_tensor_rows_are_rotations(self):
        from repro.sax.distance import rotation_index_tensor, word_indices

        word = "abcah"
        tensor = rotation_index_tensor(word, 8)
        assert tensor.shape == (5, 5)
        for rot in range(5):
            rotated = word[rot:] + word[:rot]
            np.testing.assert_array_equal(
                tensor[rot], word_indices(rotated, 8)
            )

    def test_mindist_profile_matches_mindist_bitwise(self):
        from repro.sax.distance import (
            mindist_profile,
            rotation_index_tensor,
            word_indices,
        )

        rng = np.random.default_rng(3)
        alphabet = 8
        for _ in range(10):
            word_a = "".join(
                "abcdefgh"[i] for i in rng.integers(0, alphabet, 12)
            )
            word_b = "".join(
                "abcdefgh"[i] for i in rng.integers(0, alphabet, 12)
            )
            profile = mindist_profile(
                word_indices(word_a, alphabet),
                rotation_index_tensor(word_b, alphabet),
                alphabet, 96,
            )
            for rot in range(12):
                rotated = word_b[rot:] + word_b[:rot]
                expected = mindist(word_a, rotated, alphabet, 96)
                assert profile[rot] == expected

    def test_min_rotation_distance_first_min_tie_break(self):
        # "abab" vs itself: rotations 0 and 2 both give distance 0;
        # the historical loop kept the earliest.
        d, rot = min_rotation_distance("abab", "abab", 4, 32)
        assert d == 0.0 and rot == 0

    def test_empty_word_keeps_legacy_contract(self):
        import math

        d, rot = min_rotation_distance("ab", "", 4, 16)
        assert d == math.inf and rot == 0

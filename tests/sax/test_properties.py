"""Hypothesis properties of the SAX pipeline."""

from __future__ import annotations

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.sax.distance import hamming_distance, mindist
from repro.sax.paa import paa, znormalize
from repro.sax.sax import SaxEncoder

series_strategy = npst.arrays(
    dtype=np.float64,
    shape=st.integers(16, 200),
    elements=st.floats(-1e6, 1e6),
)

words = st.integers(2, 16)
alphabets = st.integers(2, 10)


@given(series_strategy)
@settings(max_examples=50, deadline=None)
def test_znormalize_idempotent_up_to_tolerance(series):
    once = znormalize(series)
    twice = znormalize(once)
    np.testing.assert_allclose(twice, once, atol=1e-9)


@given(series_strategy, st.integers(1, 16))
@settings(max_examples=50, deadline=None)
def test_paa_output_within_input_range(series, segments):
    assume(segments <= len(series))
    out = paa(series, segments)
    assert out.min() >= series.min() - 1e-9
    assert out.max() <= series.max() + 1e-9


@st.composite
def divisible_series(draw):
    """A (series, segments) pair with ``len(series) % segments == 0``.

    Constructed, not filtered: an ``assume`` on divisibility discards
    ~15/16 of generated inputs and trips the FilterTooMuch health
    check on unlucky seeds.
    """
    segments = draw(st.integers(1, 16))
    blocks = draw(st.integers(1, 12))
    series = draw(npst.arrays(
        dtype=np.float64,
        shape=st.just(segments * blocks),
        elements=st.floats(-1e6, 1e6),
    ))
    return series, segments


@given(divisible_series())
@settings(max_examples=50, deadline=None)
def test_paa_preserves_global_mean(case):
    series, segments = case
    out = paa(series, segments)
    np.testing.assert_allclose(out.mean(), series.mean(), atol=1e-6)


@given(series_strategy, words, alphabets)
@settings(max_examples=50, deadline=None)
def test_encode_deterministic_and_valid(series, w, a):
    assume(w <= len(series))
    enc = SaxEncoder(w, a)
    word = enc.encode(series)
    assert word == enc.encode(series)
    assert len(word) == w
    assert all("a" <= ch < chr(ord("a") + a) for ch in word)


@given(series_strategy, words, alphabets, st.floats(0.1, 10.0),
       st.floats(-100.0, 100.0))
@settings(max_examples=50, deadline=None)
def test_encode_invariant_to_affine_scaling(series, w, a, scale, shift):
    """Z-normalisation makes SAX affine-invariant up to one symbol of
    boundary rounding: scaling perturbs the normalised values in the
    last ulp, which can push a PAA mean sitting exactly on a
    breakpoint into the adjacent region (never further)."""
    assume(w <= len(series))
    assume(series.std() > 1e-6)
    assume((series * scale + shift).std() > 1e-6)
    enc = SaxEncoder(w, a)
    original = enc.symbols(series)
    scaled = enc.symbols(series * scale + shift)
    assert (np.abs(original - scaled) <= 1).all()


@st.composite
def word_pairs(draw, alphabet="abcdef", max_size=12):
    length = draw(st.integers(1, max_size))
    one = st.text(alphabet=alphabet, min_size=length, max_size=length)
    return draw(one), draw(one)


@given(word_pairs(), st.integers(6, 10))
@settings(max_examples=80, deadline=None)
def test_mindist_symmetric_nonnegative(pair, a):
    word_a, word_b = pair
    d_ab = mindist(word_a, word_b, a, 4 * len(word_a))
    d_ba = mindist(word_b, word_a, a, 4 * len(word_a))
    assert d_ab >= 0.0
    np.testing.assert_allclose(d_ab, d_ba)
    if word_a == word_b:
        assert d_ab == 0.0


@given(word_pairs(alphabet="abcd", max_size=10))
@settings(max_examples=80, deadline=None)
def test_hamming_bounds(pair):
    word_a, word_b = pair
    d = hamming_distance(word_a, word_b)
    assert 0 <= d <= len(word_a)
    assert hamming_distance(word_a, word_a) == 0

"""Randomized differential parity for the batched SAX primitives.

The shape-signature qualifier runs its SAX stage through the batched
forms, so each must be bitwise identical to n scalar calls:

* :func:`znormalize_batch` vs row-wise :func:`znormalize` (including
  the flat-series zeroing rule);
* :func:`paa_batch` vs row-wise :func:`paa`, on both the contiguous
  reshape path (segments | length) and the fractional-frame path;
* :meth:`SaxEncoder.symbols_batch` / :meth:`SaxEncoder.encode_batch`
  vs the scalar encoder.

Fuzzed batches mix smooth signals, noise, constant rows and
near-flat rows at randomized lengths and alphabet sizes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.sax.paa import paa, paa_batch, znormalize, znormalize_batch
from repro.sax.sax import SaxEncoder
from tests.support.fuzz import assert_arrays_bitwise_equal, differential_cases


def _random_series_batch(rng: np.random.Generator) -> np.ndarray:
    """``(n, m)`` series mixing smooth, noisy and degenerate rows."""
    n = int(rng.integers(1, 9))
    m = int(rng.choice([48, 64, 100, 128, 200]))
    t = np.linspace(0.0, 2.0 * np.pi, m)
    rows = []
    for _ in range(n):
        kind = int(rng.integers(5))
        if kind <= 1:  # smooth periodic signal (the realistic path)
            rows.append(
                np.sin(t * float(rng.integers(1, 5)))
                + 0.1 * rng.normal(size=m)
            )
        elif kind == 2:  # pure noise
            rows.append(rng.normal(size=m))
        elif kind == 3:  # constant: the flat-series rule must trigger
            rows.append(np.full(m, float(rng.uniform(-2.0, 2.0))))
        else:  # near-flat: tiny sub-threshold wiggle
            rows.append(
                float(rng.uniform(-1.0, 1.0)) + 1e-10 * rng.normal(size=m)
            )
    return np.stack(rows)


@pytest.mark.parametrize("rng", differential_cases(8, root_seed=271828))
def test_znormalize_batch_matches_scalar(rng):
    series = _random_series_batch(rng)
    got = znormalize_batch(series)
    for i, row in enumerate(series):
        assert_arrays_bitwise_equal(
            got[i], znormalize(row), f"row {i} of {series.shape}"
        )


@pytest.mark.parametrize("rng", differential_cases(8, root_seed=161803))
def test_paa_batch_matches_scalar(rng):
    series = _random_series_batch(rng)
    m = series.shape[1]
    divisors = [s for s in (4, 8, 16, 25) if m % s == 0]
    fractional = [s for s in (7, 13, 24) if m % s != 0]
    for segments in divisors + fractional:
        got = paa_batch(series, segments)
        for i, row in enumerate(series):
            assert_arrays_bitwise_equal(
                got[i],
                paa(row, segments),
                f"row {i}, segments={segments}, length={m}",
            )


@pytest.mark.parametrize("rng", differential_cases(8, root_seed=141421))
def test_sax_encoder_batch_matches_scalar(rng):
    series = _random_series_batch(rng)
    encoder = SaxEncoder(
        word_length=int(rng.choice([8, 12, 16])),
        alphabet_size=int(rng.choice([4, 6, 8, 16])),
        normalize=bool(rng.random() < 0.9),
    )
    got_symbols = encoder.symbols_batch(series)
    for i, row in enumerate(series):
        assert_arrays_bitwise_equal(
            got_symbols[i],
            encoder.symbols(row),
            f"row {i} of {series.shape}",
        )
    assert encoder.encode_batch(series) == [
        encoder.encode(row) for row in series
    ]

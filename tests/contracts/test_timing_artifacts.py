"""Benchmark-artifact contract: one schema, enforced everywhere.

CI uploads every ``benchmarks/test_*`` timing JSON; perf tooling
parses them without knowing which bench wrote what.  This tier-1 test
pins the contract from three sides: the shared schema itself
(:mod:`benchmarks.timing_schema`), the benches' source (every bench
that emits a timing artifact must route it through the validating
writer -- no bespoke ``json.dumps`` side channels), and any artifacts
already on disk.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from benchmarks.timing_schema import (
    validate_timing_payload,
    write_timing_artifact,
)

REPO = Path(__file__).resolve().parents[2]
BENCH_DIR = REPO / "benchmarks"

VALID_PAYLOAD = {
    "bench": "example",
    "batch": 64,
    "serial_seconds": 0.5,
    "served_seconds": 0.1,
    "speedup_vs_serial": 5.0,
    "min_speedup_vs_serial_asserted": 3.0,
    "free_form_extra": {"nested": [1, 2, 3]},
}


def test_valid_payload_passes():
    assert validate_timing_payload(VALID_PAYLOAD) == []


@pytest.mark.parametrize("mutation, fragment", [
    ({"bench": ""}, "bench"),
    ({"bench": None}, "bench"),
    ({"batch": 0}, "batch"),
    ({"batch": True}, "batch"),
    ({"batch": None}, "batch"),
    ({"serial_seconds": -1.0}, "serial_seconds"),
    ({"serial_seconds": float("nan")}, "serial_seconds"),
    ({"speedup_vs_serial": 0.0}, "speedup_vs_serial"),
    ({"min_speedup_vs_serial_asserted": "3"}, "min_speedup"),
])
def test_violations_are_reported(mutation, fragment):
    payload = {**VALID_PAYLOAD, **mutation}
    errors = validate_timing_payload(payload)
    assert errors, f"mutation {mutation} must be rejected"
    assert any(fragment in error for error in errors), errors


def test_missing_walltime_and_speedup_keys_rejected():
    errors = validate_timing_payload({"bench": "x", "batch": 1})
    assert any("_seconds" in e for e in errors)
    assert any("speedup" in e for e in errors)


def test_non_serializable_payload_rejected():
    payload = {
        **VALID_PAYLOAD,
        "raw": object(),
    }
    assert any(
        "JSON" in error for error in validate_timing_payload(payload)
    )


def test_writer_refuses_invalid_payload(tmp_path, monkeypatch):
    monkeypatch.setenv("BENCH_ARTIFACT_DIR", str(tmp_path))
    with pytest.raises(ValueError, match="shared schema"):
        write_timing_artifact("broken.json", {"bench": "x"})
    assert list(tmp_path.iterdir()) == []


def test_writer_round_trips_valid_payload(tmp_path, monkeypatch):
    monkeypatch.setenv("BENCH_ARTIFACT_DIR", str(tmp_path))
    path = write_timing_artifact("ok_timing.json", VALID_PAYLOAD)
    assert path.parent == tmp_path
    assert json.loads(path.read_text()) == VALID_PAYLOAD


def test_every_bench_emitting_timing_json_uses_shared_writer():
    """Source-level contract: a bench that mentions a timing artifact
    must import the validating writer and must not hand-roll its own
    JSON dump (the historical side channel this PR removed)."""
    offenders = []
    for bench in sorted(BENCH_DIR.glob("test_*.py")):
        source = bench.read_text()
        emits_timing = "_timing.json" in source
        if not emits_timing:
            continue
        if "write_timing_artifact" not in source:
            offenders.append(f"{bench.name}: bypasses timing_schema")
        if "json.dumps" in source:
            offenders.append(f"{bench.name}: hand-rolled json.dumps")
    assert not offenders, offenders


def test_benches_cover_the_uploaded_artifacts():
    """Every CI-uploaded artifact has a producing bench that routes
    through the shared writer (the serving bench emits one per
    architecture now that the ``parallel`` pin is gone, plus the
    integrated ``infer_batch`` bar)."""
    expected = {
        "reliable_vectorized_timing.json":
            "test_reliable_vectorized.py",
        "qualifier_throughput_timing.json":
            "test_qualifier_throughput.py",
        "serving_throughput_timing.json":
            "test_serving_throughput.py",
        "integrated_serving_throughput_timing.json":
            "test_serving_throughput.py",
        "integrated_infer_batch_timing.json":
            "test_serving_throughput.py",
        "cache_throughput_timing.json":
            "test_cache_throughput.py",
        "integrated_cache_throughput_timing.json":
            "test_cache_throughput.py",
    }
    for artifact, bench in expected.items():
        source = (BENCH_DIR / bench).read_text()
        assert artifact in source, (bench, artifact)
        assert "write_timing_artifact" in source, bench


def test_existing_artifacts_on_disk_conform():
    """Any artifact a current bench run left behind must parse and
    validate -- catching schema drift the moment it lands.

    Artifacts written before the shared schema existed lack the
    ``"batch"`` key (nothing emitted one); those are *stale*, not
    drifted -- the validating writer cannot produce them anymore -- so
    they are reported via skip rather than failing a clean checkout
    that merely carries old local bench output.
    """
    artifact_dir = BENCH_DIR / "artifacts"
    if not artifact_dir.is_dir():
        pytest.skip("no local artifacts directory")
    stale = []
    for path in sorted(artifact_dir.glob("*.json")):
        payload = json.loads(path.read_text())
        errors = validate_timing_payload(payload)
        if errors and "batch" not in payload:
            stale.append(path.name)
            continue
        assert errors == [], (path.name, errors)
    if stale:
        pytest.skip(
            "pre-schema artifacts present (re-run benchmarks to "
            f"refresh): {stale}"
        )

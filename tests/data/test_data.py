"""Shapes, sign rendering, datasets, augmentation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    SIGN_CLASSES,
    STOP_CLASS_INDEX,
    add_noise,
    adjust_brightness,
    class_names,
    disk_mask,
    make_dataset,
    polygon_mask,
    regular_polygon,
    render_sign,
    ring_mask,
    rotate_image,
    train_test_split,
)


class TestShapes2D:
    def test_regular_polygon_vertex_count_and_radius(self):
        verts = regular_polygon((10.0, 10.0), 5.0, 8)
        assert verts.shape == (8, 2)
        radii = np.hypot(verts[:, 0] - 10.0, verts[:, 1] - 10.0)
        np.testing.assert_allclose(radii, 5.0, rtol=1e-9)

    def test_polygon_validation(self):
        with pytest.raises(ValueError):
            regular_polygon((0, 0), 1.0, 2)
        with pytest.raises(ValueError):
            regular_polygon((0, 0), -1.0, 4)

    def test_polygon_mask_square(self):
        verts = np.array([[2.0, 2.0], [2.0, 7.0], [7.0, 7.0], [7.0, 2.0]])
        mask = polygon_mask((10, 10), verts)
        assert mask[4, 4]
        assert not mask[0, 0]
        assert not mask[9, 9]

    def test_polygon_area_close_to_analytic(self):
        verts = regular_polygon((32.0, 32.0), 20.0, 8, np.pi / 8)
        mask = polygon_mask((64, 64), verts)
        analytic = 2.0 * np.sqrt(2.0) * 20.0**2  # octagon area
        assert abs(mask.sum() - analytic) / analytic < 0.05

    def test_disk_mask_area(self):
        mask = disk_mask((50, 50), (25.0, 25.0), 10.0)
        assert abs(mask.sum() - np.pi * 100.0) / (np.pi * 100.0) < 0.05

    def test_disk_validation(self):
        with pytest.raises(ValueError):
            disk_mask((10, 10), (5, 5), 0.0)

    def test_ring_mask(self):
        ring = ring_mask((40, 40), (20.0, 20.0), 15.0, 10.0)
        assert not ring[20, 20]
        assert ring[20, 20 + 12]
        with pytest.raises(ValueError):
            ring_mask((40, 40), (20, 20), 5.0, 10.0)


class TestSigns:
    def test_catalogue(self):
        assert len(SIGN_CLASSES) == 8
        assert SIGN_CLASSES[STOP_CLASS_INDEX].name == "stop"
        assert SIGN_CLASSES[STOP_CLASS_INDEX].board == "octagon"
        assert class_names()[0] == "stop"

    def test_render_shape_and_range(self):
        image = render_sign(0, size=48)
        assert image.shape == (3, 48, 48)
        assert image.dtype == np.float32
        assert 0.0 <= image.min() and image.max() <= 1.0

    def test_stop_sign_is_red_in_centre(self):
        image = render_sign(0, size=64)
        r, g, b = image[:, 32, 32]
        assert r > 0.5 and g < 0.3 and b < 0.3

    def test_background_outside_sign(self):
        image = render_sign(0, size=64, scale=0.5)
        # Corner pixel is background grey.
        np.testing.assert_allclose(image[:, 1, 1], 0.55, atol=0.01)

    def test_index_and_spec_agree(self):
        by_index = render_sign(3, size=32)
        by_spec = render_sign(SIGN_CLASSES[3], size=32)
        np.testing.assert_array_equal(by_index, by_spec)

    def test_all_classes_render_distinct(self):
        images = [render_sign(i, size=32) for i in range(len(SIGN_CLASSES))]
        for i in range(len(images)):
            for j in range(i + 1, len(images)):
                assert not np.array_equal(images[i], images[j])

    def test_rotation_changes_octagon(self):
        a = render_sign(0, size=64)
        b = render_sign(0, size=64, rotation=0.3)
        assert not np.array_equal(a, b)

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            render_sign(0, size=32, scale=0.05)


class TestDataset:
    def test_balanced_and_shuffled(self):
        ds = make_dataset(5, size=24, seed=3)
        assert len(ds) == 5 * len(SIGN_CLASSES)
        counts = np.bincount(ds.labels)
        assert (counts == 5).all()
        # Shuffled: the first 8 labels should not be 8 distinct
        # classes in order.
        assert not (ds.labels[:8] == np.arange(8)).all()

    def test_reproducible_from_seed(self):
        a = make_dataset(3, size=16, seed=11)
        b = make_dataset(3, size=16, seed=11)
        np.testing.assert_array_equal(a.images, b.images)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_different_seeds_differ(self):
        a = make_dataset(3, size=16, seed=1)
        b = make_dataset(3, size=16, seed=2)
        assert not np.array_equal(a.images, b.images)

    def test_class_subset(self):
        ds = make_dataset(4, size=16, seed=0)
        subset = ds.class_subset(STOP_CLASS_INDEX)
        assert len(subset) == 4

    def test_split_partitions(self):
        ds = make_dataset(8, size=16, seed=0)
        (tr_x, tr_y), (te_x, te_y) = train_test_split(ds, 0.25, seed=0)
        assert len(tr_x) + len(te_x) == len(ds)
        assert len(te_x) == round(0.25 * len(ds))
        assert len(tr_x) == len(tr_y) and len(te_x) == len(te_y)

    def test_split_validation(self):
        ds = make_dataset(2, size=16, seed=0)
        with pytest.raises(ValueError):
            train_test_split(ds, 1.5)

    def test_n_per_class_validation(self):
        with pytest.raises(ValueError):
            make_dataset(0)


class TestAugment:
    def test_noise_bounded_and_seeded(self, rng):
        image = np.full((3, 8, 8), 0.5, dtype=np.float32)
        noisy = add_noise(image, 0.1, np.random.default_rng(5))
        again = add_noise(image, 0.1, np.random.default_rng(5))
        np.testing.assert_array_equal(noisy, again)
        assert 0.0 <= noisy.min() and noisy.max() <= 1.0
        assert not np.array_equal(noisy, image)

    def test_zero_noise_copy(self, rng):
        image = np.full((3, 4, 4), 0.5, dtype=np.float32)
        out = add_noise(image, 0.0, rng)
        np.testing.assert_array_equal(out, image)
        assert out is not image

    def test_noise_validation(self, rng):
        with pytest.raises(ValueError):
            add_noise(np.zeros((3, 2, 2)), -0.1, rng)

    def test_brightness(self):
        image = np.full((3, 4, 4), 0.5, dtype=np.float32)
        np.testing.assert_allclose(
            adjust_brightness(image, 1.5), 0.75, rtol=1e-6
        )
        np.testing.assert_allclose(
            adjust_brightness(image, 3.0), 1.0
        )
        with pytest.raises(ValueError):
            adjust_brightness(image, 0.0)

    def test_rotate_identity(self):
        image = render_sign(0, size=32)
        out = rotate_image(image, 0.0)
        np.testing.assert_array_equal(out, image)

    def test_rotate_quarter_turn_moves_content(self):
        image = np.zeros((1, 9, 9), dtype=np.float32)
        image[0, 1, 4] = 1.0  # north of centre
        out = rotate_image(image, np.pi / 2)
        assert out[0, 1, 4] == 0.0
        assert out.sum() > 0.0

    def test_rotate_validation(self):
        with pytest.raises(ValueError):
            rotate_image(np.zeros((4, 4)), 0.5)

"""Confusion matrices, metrics, reliability statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    ConfusionMatrix,
    accuracy,
    class_confidences,
    confusion_matrix,
    empirical_coverage_interval,
    failure_rate_estimate,
    mean_class_confidence,
    top_k_accuracy,
)
from repro.analysis.metrics import predictions


class TestConfusionMatrix:
    def test_build_and_accuracy(self):
        cm = confusion_matrix(
            np.array([0, 0, 1, 1]), np.array([0, 1, 1, 1]), 2
        )
        np.testing.assert_array_equal(cm.matrix, [[1, 1], [0, 2]])
        assert cm.accuracy() == 0.75

    def test_per_class_metrics(self):
        cm = confusion_matrix(
            np.array([0, 0, 1, 1]), np.array([0, 1, 1, 1]), 2
        )
        np.testing.assert_allclose(cm.per_class_recall(), [0.5, 1.0])
        np.testing.assert_allclose(cm.per_class_precision(), [1.0, 2 / 3])

    def test_unseen_class_nan(self):
        cm = confusion_matrix(np.array([0]), np.array([0]), 3)
        recall = cm.per_class_recall()
        assert np.isnan(recall[1]) and np.isnan(recall[2])

    def test_max_abs_difference(self):
        a = confusion_matrix(np.array([0, 1]), np.array([0, 1]), 2)
        b = confusion_matrix(np.array([0, 1]), np.array([1, 1]), 2)
        assert a.max_abs_difference(b) == 1
        assert a.max_abs_difference(a) == 0

    def test_difference_shape_mismatch(self):
        a = confusion_matrix(np.array([0]), np.array([0]), 2)
        b = confusion_matrix(np.array([0]), np.array([0]), 3)
        with pytest.raises(ValueError):
            a.max_abs_difference(b)

    def test_to_text_with_names(self):
        cm = confusion_matrix(
            np.array([0, 1]), np.array([0, 1]), 2, ["stop", "yield"]
        )
        text = cm.to_text()
        assert "stop" in text and "yield" in text

    def test_label_validation(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([0, 5]), np.array([0, 1]), 2)
        with pytest.raises(ValueError):
            confusion_matrix(np.array([0]), np.array([0, 1]), 2)

    def test_empty_matrix_accuracy_zero(self):
        cm = ConfusionMatrix(matrix=np.zeros((2, 2), dtype=np.int64))
        assert cm.accuracy() == 0.0


class TestModelMetrics:
    def test_accuracy_on_trained_model(self, trained_model):
        value = accuracy(
            trained_model.model, trained_model.test_x,
            trained_model.test_y,
        )
        assert value == trained_model.test_accuracy

    def test_top_k_monotone(self, trained_model):
        top1 = top_k_accuracy(
            trained_model.model, trained_model.test_x,
            trained_model.test_y, k=1,
        )
        top3 = top_k_accuracy(
            trained_model.model, trained_model.test_x,
            trained_model.test_y, k=3,
        )
        assert top3 >= top1

    def test_confidences_are_probabilities(self, trained_model):
        conf = class_confidences(
            trained_model.model, trained_model.test_x[:8], 0
        )
        assert conf.shape == (8,)
        assert (conf >= 0).all() and (conf <= 1).all()

    def test_mean_class_confidence_high_for_trained(self, trained_model):
        value = mean_class_confidence(
            trained_model.model, trained_model.test_x,
            trained_model.test_y, 0,
        )
        assert value > 0.5

    def test_mean_confidence_needs_samples(self, trained_model):
        with pytest.raises(ValueError):
            mean_class_confidence(
                trained_model.model, trained_model.test_x,
                np.full_like(trained_model.test_y, 3), 5,
            )

    def test_predictions_match_argmax(self, trained_model):
        preds = predictions(trained_model.model, trained_model.test_x[:4])
        logits = trained_model.model.forward(trained_model.test_x[:4])
        np.testing.assert_array_equal(preds, logits.argmax(axis=1))

    def test_empty_set_rejected(self, trained_model):
        with pytest.raises(ValueError):
            accuracy(
                trained_model.model,
                np.zeros((0, 3, 32, 32), dtype=np.float32),
                np.zeros(0, dtype=np.int64),
            )


class TestReliabilityStats:
    def test_rate_estimate(self):
        assert failure_rate_estimate(5, 100) == 0.05
        with pytest.raises(ValueError):
            failure_rate_estimate(5, 0)
        with pytest.raises(ValueError):
            failure_rate_estimate(11, 10)

    def test_wilson_interval_contains_point(self):
        low, high = empirical_coverage_interval(10, 100)
        assert low < 0.10 < high

    def test_zero_failures_informative_upper(self):
        low, high = empirical_coverage_interval(0, 100)
        assert low == 0.0
        assert 0.0 < high < 0.08  # ~3.7% for n=100 at 95%

    def test_interval_narrows_with_trials(self):
        _, high_small = empirical_coverage_interval(0, 50)
        _, high_large = empirical_coverage_interval(0, 5000)
        assert high_large < high_small

    def test_confidence_validation(self):
        with pytest.raises(ValueError):
            empirical_coverage_interval(1, 10, confidence=1.5)

#!/usr/bin/env python
"""Fault-injection campaign: what does the reliability guarantee buy?

Sweeps per-operation fault probability across protection levels and
prints coverage / silent-data-corruption tables, then shows the
analytic guarantee model's predictions for the same configurations so
measurement and model can be compared side by side.

Run:  python examples/fault_campaign.py
"""

from __future__ import annotations

import numpy as np

from repro.core.guarantee import (
    bucket_overflow_probability,
    dmr_residual_risk,
    plain_sdc_probability,
)
from repro.faults.campaign import run_operator_campaign
from repro.faults.models import PermanentFault, TransientFault
from repro.workflows import run_bucket_dynamics, run_coverage_study


def main() -> None:
    print("=== measured: operator-level campaigns ===")
    study = run_coverage_study(
        fault_kinds=("transient", "intermittent", "permanent"),
        probabilities=(1e-3, 1e-2),
        runs=200,
        seed=0,
    )
    print(study.to_text())

    print("\n=== the common-mode lesson ===")
    permanent_dmr = run_operator_campaign(
        lambda rng: PermanentFault(bit=28, rng=rng),
        operator_kind="dmr", runs=50, seed=1,
    )
    print("permanent fault under DMR:", permanent_dmr.summary())
    print("-> temporal redundancy agrees with its own stuck-at fault;")
    print("   only spatial/diverse redundancy can uncover it "
          "(paper Section II.B).")

    print("\n=== analytic model for the same regime ===")
    n_ops = 2_000
    for p in (1e-3, 1e-2):
        plain = plain_sdc_probability(p, n_ops)
        dmr = dmr_residual_risk(p, n_ops)
        print(f"p={p:.0e}, n={n_ops}: "
              f"plain SDC={plain:.3e}  DMR residual={dmr:.3e}  "
              f"improvement={plain / max(dmr, 1e-300):.1e}x")

    print("\n=== availability: when does the bucket abort? ===")
    for p_detect in (1e-3, 1e-2, 5e-2):
        prob = bucket_overflow_probability(p_detect, n_ops)
        print(f"detected-error rate {p_detect:.0e} over {n_ops} ops "
              f"-> abort probability {prob:.3e}")

    print("\n=== leaky-bucket dynamics (Algorithm 3 semantics) ===")
    print(run_bucket_dynamics().to_text())


if __name__ == "__main__":
    main()

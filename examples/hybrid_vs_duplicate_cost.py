#!/usr/bin/env python
"""Cost & guarantee study: hybrid partition vs whole-network DMR.

Quantifies the paper's Section V claim ("we conserve both footprint
and computational power") on the scaled and the paper-faithful
AlexNet, and prints the analytic reliability guarantee for each
configuration.

Run:  python examples/hybrid_vs_duplicate_cost.py
"""

from __future__ import annotations

from repro.core import HybridPartition, ReliabilityGuarantee
from repro.models import alexnet_full, alexnet_scaled
from repro.workflows import run_cost_comparison


def main() -> None:
    print("=== scaled AlexNet (64x64, 16 conv1 filters) ===")
    scaled = alexnet_scaled(n_classes=8, input_size=64)
    print(run_cost_comparison(scaled, (3, 64, 64)).to_text())

    print("\n=== paper-faithful AlexNet (227x227, 96 conv1 filters) ===")
    full = alexnet_full()
    partition = HybridPartition(reliable_filters={"conv1": (0, 1)})
    print(
        run_cost_comparison(
            full, (3, 227, 227), partition=partition, sweep_filters=False
        ).to_text()
    )

    print("\n=== reliability guarantee (full AlexNet, p=1e-7/op) ===")
    guarantee = ReliabilityGuarantee(
        full, (3, 227, 227), partition, fault_probability=1e-7
    )
    print(guarantee.summary())

    print("\n=== TMR variant of the same partition ===")
    tmr_partition = HybridPartition(
        reliable_filters={"conv1": (0, 1)}, redundancy="tmr"
    )
    tmr = ReliabilityGuarantee(
        full, (3, 227, 227), tmr_partition, fault_probability=1e-7
    )
    print(tmr.summary())


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Platform-agnostic hybrid-CNN description (paper future work).

Exports a configured hybrid CNN -- topology + reliability annotation
+ qualifier spec -- to the JSON interchange format, validates it,
saves graph + weights, reloads it into a running hybrid and shows the
rebuilt system makes the same dependable decision.

Run:  python examples/export_hybrid_ir.py
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

import numpy as np

from repro.core import HybridPartition, ShapeQualifier
from repro.data import render_sign
from repro.hybridir import (
    export_hybrid,
    load_hybrid,
    save_hybrid,
    validate_graph,
)
from repro.models import alexnet_scaled
from repro.vision.filters import sobel_axis_stack


def main() -> None:
    model = alexnet_scaled(n_classes=8, input_size=128)
    conv1 = model.layer("conv1")
    conv1.set_filter(0, sobel_axis_stack("x", conv1.kernel_size, 3))
    conv1.set_filter(1, sobel_axis_stack("y", conv1.kernel_size, 3))

    graph = export_hybrid(
        model,
        HybridPartition(),
        ShapeQualifier(),
        safety_class=0,
        input_shape=(3, 128, 128),
        name="stopnet-hybrid",
    )
    validate_graph(graph)
    print("validated hybrid graph "
          f"({len(graph.layers)} nodes, schema v{graph.schema_version})")
    print("\nreliability annotation (the ONNX-extension payload):")
    print(json.dumps(graph.reliability.to_dict(), indent=2))

    with tempfile.TemporaryDirectory() as tmp:
        base = Path(tmp) / "stopnet"
        save_hybrid(graph, model, base)
        json_size = (base.with_suffix(".json")).stat().st_size
        npz_size = (base.with_suffix(".npz")).stat().st_size
        print(f"\nsaved: stopnet.json ({json_size} B) + "
              f"stopnet.npz ({npz_size // 1024} KiB weights)")

        hybrid = load_hybrid(base)
        print("reloaded into a running IntegratedHybridCNN")
        image = render_sign(0, size=128, rotation=np.deg2rad(5))
        result = hybrid.infer(image)
        print(f"rebuilt hybrid on a stop sign: "
              f"decision={result.decision.value}, "
              f"qualifier distance={result.verdict.distance:.2f}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""The paper's Section III.B data-set-integration experiments.

Reproduces, on the synthetic sign dataset:

* Figure 4 -- replace each first-layer filter with the Sobel stack,
  one at a time, and plot the stop-class confidence;
* the confusion-matrix comparison for a single replaced filter;
* the Sobel pre-initialisation experiment with per-batch re-setting
  (and the drift measured when the re-set is omitted).

Run:  python examples/filter_replacement_study.py
"""

from __future__ import annotations

from repro.workflows import (
    run_confusion_comparison,
    run_figure4,
    run_sobel_pretrain,
)
from repro.workflows.training import train_sign_model


def main() -> None:
    print("training the classifier once for the replacement sweeps ...")
    trained = train_sign_model(
        arch="small", image_size=32, n_per_class=40, epochs=8, seed=0
    )
    print(f"  test accuracy: {trained.test_accuracy:.3f}\n")

    print("=== Figure 4: per-filter Sobel replacement ===")
    figure4 = run_figure4(trained=trained)
    print(figure4.to_text())
    print(f"most sensitive filter: #{figure4.most_sensitive_filter()}")
    print()

    print("=== confusion matrices: one filter replaced ===")
    comparison = run_confusion_comparison(trained=trained)
    print(comparison.to_text())
    print()

    print("=== Sobel pre-initialisation + freeze (three arms) ===")
    pretrain = run_sobel_pretrain(seed=0)
    print(pretrain.to_text())


if __name__ == "__main__":
    main()

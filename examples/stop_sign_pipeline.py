#!/usr/bin/env python
"""The full Figure 2 pipeline: integrated hybrid CNN, step by step.

Walks one stop-sign image through every stage of the integrated
architecture, printing intermediate artefacts:

  image -> reliable DMR execution of the pinned Sobel filters
        -> bifurcation: edge feature map -> contour -> distance
           series -> SAX word -> octagon verdict
        -> non-reliable CNN continues to class confidences
        -> reliable-result combination

Run:  python examples/stop_sign_pipeline.py
"""

from __future__ import annotations

import numpy as np

from repro.api import PipelineConfig, build_pipeline
from repro.data import STOP_CLASS_INDEX, class_names, render_sign
from repro.models import alexnet_scaled
from repro.workflows.shape_series import ascii_plot


def main() -> None:
    rng = np.random.default_rng(0)
    model = alexnet_scaled(n_classes=8, input_size=128, rng=rng)
    print(model.summary((3, 128, 128)))

    # pin_sobel installs the Sobel-x/-y stacks into the partition's
    # dependable filters -- the paper's Section III.B determination.
    pipeline = build_pipeline(
        PipelineConfig(
            architecture="integrated",
            safety_class=STOP_CLASS_INDEX,
            pin_sobel=True,
            name="stop-sign-pipeline",
        ),
        model,
    )
    qualifier = pipeline.qualifier

    for class_index, label in [(0, "stop"), (1, "speed_limit_50")]:
        print(f"\n=== {label} ===")
        image = render_sign(
            class_index, size=128, rotation=np.deg2rad(6)
        )
        result = pipeline.infer(image)
        report = result.reliable_report
        print(f"reliable DMR ops executed: {report.operations:,} "
              f"(errors detected: {report.errors_detected})")
        print(f"qualifier word:     {result.verdict.word}")
        print(f"octagon templates:  {qualifier.templates[0]} (+"
              f"{len(qualifier.templates) - 1} phase variants)")
        print(f"SAX distance:       {result.verdict.distance:.2f} "
              f"(threshold {qualifier.threshold})")
        print(f"CNN top class:      "
              f"{class_names()[result.predicted_class]} "
              f"(p={result.probabilities.max():.2f}, untrained weights)")
        print(f"decision:           {result.decision.value}")

    # Show the dependable intermediate: the centroid-distance series.
    print("\ncentroid-distance series of the stop sign "
          "(8 corners visible):")
    signature = qualifier.signature(
        render_sign(0, size=128, rotation=np.deg2rad(6))
    )
    print(ascii_plot(signature, height=10, width=64))


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Graceful degradation: spatial redundancy and ECC storage.

Demonstrates the two protection mechanisms that complete the paper's
Section II design space beyond temporal redundancy:

1. a permanent stuck-at fault in one processing element of a 4-PE
   array -- temporal DMR is silently wrong, spatial DMR detects the
   fault, retires the PE and finishes the convolution correctly in
   degraded mode;
2. SEC-DED-protected weight storage under accumulating memory upsets
   -- raw storage collapses the classifier, ECC storage corrects and
   scrubs.

Run:  python examples/graceful_degradation.py
"""

from __future__ import annotations

import numpy as np

from repro.reliable.ecc import ECCProtectedTensor
from repro.workflows import run_ecc_study, run_spatial_vs_temporal
from repro.workflows.training import train_sign_model


def main() -> None:
    print("=== spatial vs temporal redundancy, permanent PE fault ===")
    result = run_spatial_vs_temporal()
    print(result.to_text())

    print("\n=== SEC-DED weight storage under memory upsets ===")
    print("training a classifier whose conv1 weights we will upset ...")
    trained = train_sign_model(
        arch="small", image_size=32, n_per_class=40, epochs=8, seed=0
    )
    print(f"  clean accuracy: {trained.test_accuracy:.3f}")
    study = run_ecc_study(
        trained, flip_counts=(1, 8, 32, 128), seed=0
    )
    print(study.to_text())
    print("(raw storage takes upsets straight into the weights; the "
          "ECC arm\n stores codewords, corrects singles and flags "
          "doubles on read)")

    print("\n=== the code itself, on one word ===")
    word = np.array([3.14159], dtype=np.float32)
    storage = ECCProtectedTensor(word)
    storage.flip_stored_bit(0, 17)
    recovered, report = storage.read()
    print(f"stored 3.14159, flipped stored bit 17, "
          f"read back {recovered[0]:.5f} "
          f"(corrected={report.corrected})")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Quickstart: the hybrid CNN in ~60 lines.

Builds the paper's architecture end to end:

1. render a synthetic stop sign (stand-in for GTSRB),
2. train a small CNN on the synthetic sign dataset,
3. describe the hybrid in a :class:`repro.api.PipelineConfig` and
   build it with :func:`repro.api.build_pipeline`,
4. run the parallel hybrid (Figure 1): CNN classification qualified
   by the reliably-executed octagon detector -- one image at a time,
   then as one vectorised batch.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.api import PipelineConfig, build_pipeline
from repro.data import STOP_CLASS_INDEX, class_names, render_sign
from repro.workflows.training import train_sign_model


def main() -> None:
    print("training a sign classifier on synthetic data ...")
    trained = train_sign_model(
        arch="small", image_size=32, n_per_class=30, epochs=6, seed=0
    )
    print(f"  test accuracy: {trained.test_accuracy:.3f}")

    config = PipelineConfig(
        architecture="parallel",
        safety_class=STOP_CLASS_INDEX,
        name="quickstart",
    )
    pipeline = build_pipeline(config, trained.model)
    # The qualifier is deterministic and reliably executed: its
    # octagon template comes from geometry, not training data.
    print(f"  octagon template word: {pipeline.qualifier.templates[0]}")

    names = class_names()
    scenes = [(0, 5.0), (0, -10.0), (1, 0.0), (4, 0.0)]
    # The CNN sees its training resolution; the qualifier sees a
    # shape-recognition-friendly resolution of the same scene.
    cnn_views = np.stack([
        render_sign(c, size=32, rotation=np.deg2rad(r)) for c, r in scenes
    ])
    qualifier_views = np.stack([
        render_sign(c, size=128, rotation=np.deg2rad(r)) for c, r in scenes
    ])

    print("\nhybrid inference (CNN at 32px + qualifier at 128px):")
    for (class_index, _), cnn_view, qualifier_view in zip(
        scenes, cnn_views, qualifier_views
    ):
        result = pipeline.infer(cnn_view, qualifier_view=qualifier_view)
        verdict = result.verdict
        print(
            f"  true={names[class_index]:<16} "
            f"predicted={names[result.predicted_class]:<16} "
            f"qualifier={'octagon' if verdict.matches else 'no-octagon':<10} "
            f"decision={result.decision.value}"
        )

    batch = pipeline.infer_batch(cnn_views, qualifier_views=qualifier_views)
    print("\nthe same scenes as one vectorised batch:")
    print(batch.summary())


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Quickstart: the hybrid CNN in ~60 lines.

Builds the paper's architecture end to end:

1. render a synthetic stop sign (stand-in for GTSRB),
2. train a small CNN on the synthetic sign dataset,
3. pin two first-layer filters to Sobel stacks (the dependable
   partition),
4. run the parallel hybrid (Figure 1): CNN classification qualified
   by the reliably-executed octagon detector.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import ParallelHybridCNN, ShapeQualifier
from repro.data import STOP_CLASS_INDEX, class_names, render_sign
from repro.workflows.training import train_sign_model


def main() -> None:
    print("training a sign classifier on synthetic data ...")
    trained = train_sign_model(
        arch="small", image_size=32, n_per_class=30, epochs=6, seed=0
    )
    print(f"  test accuracy: {trained.test_accuracy:.3f}")

    # The qualifier is deterministic and reliably executed: its
    # octagon template comes from geometry, not training data.
    qualifier = ShapeQualifier()
    print(f"  octagon template word: {qualifier.templates[0]}")

    hybrid = ParallelHybridCNN(
        trained.model, qualifier, safety_class=STOP_CLASS_INDEX
    )

    names = class_names()
    print("\nhybrid inference (CNN at 32px + qualifier at 128px):")
    for class_index, rotation in [(0, 5.0), (0, -10.0), (1, 0.0), (4, 0.0)]:
        # The CNN sees its training resolution; the qualifier sees a
        # shape-recognition-friendly resolution of the same scene.
        cnn_view = render_sign(
            class_index, size=32, rotation=np.deg2rad(rotation)
        )
        qualifier_view = render_sign(
            class_index, size=128, rotation=np.deg2rad(rotation)
        )
        logits = trained.model.forward(cnn_view[None])
        verdict = qualifier.check(qualifier_view)
        predicted, decision = hybrid.result_block.combine(
            _softmax(logits[0]), verdict
        )
        print(
            f"  true={names[class_index]:<16} "
            f"predicted={names[predicted]:<16} "
            f"qualifier={'octagon' if verdict.matches else 'no-octagon':<10} "
            f"decision={decision.value}"
        )


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max()
    exp = np.exp(shifted)
    return exp / exp.sum()


if __name__ == "__main__":
    main()

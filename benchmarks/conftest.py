"""Benchmark fixtures.

Benches run the scaled geometry by default so the whole suite
completes in minutes.  Set ``REPRO_FULL=1`` to run the paper's exact
AlexNet-conv1 geometry in the Table 1 bench (expect several minutes,
matching the paper's 301.91 s / 648.87 s desktop measurements).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.workflows.training import train_sign_model


def full_scale() -> bool:
    return os.environ.get("REPRO_FULL", "0") == "1"


def pytest_collection_modifyitems(config, items):
    """Everything under benchmarks/ is ``slow``.

    The default run (``testpaths = tests`` in pytest.ini) skips this
    directory entirely; the marker additionally lets a combined run
    (``pytest tests benchmarks``) deselect benches with
    ``-m "not slow"``.
    """
    del config
    for item in items:
        item.add_marker(pytest.mark.slow)


@pytest.fixture(scope="session")
def trained_model():
    """One trained sign classifier shared by all benches."""
    return train_sign_model(
        arch="small", image_size=32, n_per_class=30, epochs=6, seed=7
    )


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(0)

"""E2 -- Figure 3: the stop-sign centroid-distance series + SAX word.

Also regenerates the Section IV remark that the naive SAX shape
determination completes in ~seconds (paper: 1.942 s on an i9-9900;
ours is vectorised NumPy, so expect milliseconds -- the claim that
survives is qualifier-cost << reliable-convolution-cost).
"""

from __future__ import annotations

import numpy as np

from repro.core import ShapeQualifier
from repro.data import render_sign
from repro.vision.series import shape_signature
from repro.workflows import run_figure3, time_sax_qualifier
from repro.workflows.shape_series import qualifier_verdicts_by_class


def test_figure3_report():
    result = run_figure3(rotation_deg=7.0)
    print()
    print(result.to_text())
    assert result.corner_count == 8

    verdicts = qualifier_verdicts_by_class()
    print("qualifier verdict per class:", verdicts)
    assert verdicts["stop"] and sum(verdicts.values()) == 1

    sax_seconds = time_sax_qualifier(227, repeats=3)
    print(f"SAX qualifier @227px: {sax_seconds * 1e3:.1f} ms "
          "(paper naive: 1942 ms)")


def test_benchmark_shape_signature(benchmark):
    image = render_sign(0, size=128, rotation=np.deg2rad(7))
    series = benchmark(shape_signature, image)
    assert series.shape == (128,)


def test_benchmark_full_qualifier_check(benchmark):
    qualifier = ShapeQualifier(redundant=False)
    image = render_sign(0, size=227, rotation=np.deg2rad(5))
    verdict = benchmark(qualifier.check, image)
    assert verdict.matches


def test_benchmark_redundant_qualifier_check(benchmark):
    """The dependable variant: pipeline executed twice + compare."""
    qualifier = ShapeQualifier(redundant=True)
    image = render_sign(0, size=227, rotation=np.deg2rad(5))
    verdict = benchmark(qualifier.check, image)
    assert verdict.matches

"""Campaign-engine scaling: wall-clock speedup and bitwise invariance.

The acceptance shape for the parallel engine on a 500-trial
reliable-conv campaign:

* aggregate reports are **bitwise identical** (same fingerprint, same
  sorted JSONL trial records) whatever the worker count -- asserted
  unconditionally, because determinism must hold even on one core;
* at 4 workers the campaign completes at least 2x faster than the
  serial run -- asserted whenever the machine actually has >= 4
  usable cores (a process pool cannot beat serial execution on a
  single-core container, so there the timing half is skipped, not
  faked).
"""

from __future__ import annotations

import time

import pytest

from repro.campaigns import (
    CampaignSpec,
    FaultSpec,
    default_workers,
    run_campaign,
)


def scaling_spec() -> CampaignSpec:
    # vector_length 128 makes each trial a few milliseconds of real
    # kernel work, so pool/IPC overhead stays a small fraction and
    # the measured ratio reflects genuine parallel speedup.
    return CampaignSpec(
        name="scaling-500",
        target="reliable_conv",
        fault=FaultSpec(kind="transient", params={"probability": 0.01}),
        trials=500,
        seed=0,
        shard_size=25,
        target_params={"vector_length": 128, "operator_kind": "dmr"},
    )


def timed(workers: int | None) -> tuple[float, str]:
    spec = scaling_spec()
    start = time.perf_counter()
    report = run_campaign(spec, workers=workers)
    elapsed = time.perf_counter() - start
    assert report.complete and report.trials == 500
    return elapsed, report.fingerprint()


def test_aggregates_worker_count_invariant():
    _, serial = timed(None)
    _, two = timed(2)
    _, four = timed(4)
    assert serial == two == four


@pytest.mark.skipif(
    default_workers() < 4,
    reason=(
        "scaling demo needs >= 4 usable cores, found "
        f"{default_workers()}: a 4-worker pool cannot physically run "
        "2x faster than serial on this machine (determinism is still "
        "asserted above)"
    ),
)
def test_four_workers_at_least_twice_as_fast():
    # Serial measured twice, best-of taken, to be fair to the serial
    # side on noisy CI machines.
    serial = min(timed(None)[0], timed(None)[0])
    parallel = min(timed(4)[0], timed(4)[0])
    speedup = serial / parallel
    print(f"\nserial {serial:.2f}s  4-workers {parallel:.2f}s  "
          f"speedup {speedup:.2f}x")
    assert speedup >= 2.0

"""The one schema every benchmark timing artifact obeys.

CI uploads each bench's timing JSON as a build artifact; downstream
tooling (perf-trajectory plots, regression bots) parses them blind.
One shared contract keeps that machine-readable as benches multiply:

* ``"bench"``      -- non-empty string naming the benchmark;
* ``"batch"``      -- positive int, the per-flush/batch work size the
  wall-times describe (1 for single-invocation benches);
* wall-times       -- at least one ``*_seconds`` key; every
  ``*_seconds`` value is a positive finite number;
* speedups         -- at least one ``"speedup"`` / ``"speedup_vs_*"``
  key; every such value is a positive finite number;
* asserted floors  -- every ``"min_*_asserted"`` value is a positive
  finite number (optional keys, but typed when present);
* the whole payload round-trips through JSON.

Benches call :func:`write_timing_artifact`, which validates before
writing -- a bench that would emit a malformed artifact fails its own
run rather than polluting CI.  ``tests/contracts`` holds the tier-1
contract tests (schema behaviour, and that every bench file routes
its artifact through this module).
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path

#: Default artifact directory, overridable via BENCH_ARTIFACT_DIR
#: (the knob CI uses to collect artifacts from one place).
ARTIFACT_DIR_ENV = "BENCH_ARTIFACT_DIR"
DEFAULT_ARTIFACT_DIR = "benchmarks/artifacts"


def artifact_dir() -> Path:
    directory = Path(
        os.environ.get(ARTIFACT_DIR_ENV, DEFAULT_ARTIFACT_DIR)
    )
    directory.mkdir(parents=True, exist_ok=True)
    return directory


def _is_positive_finite(value) -> bool:
    return (
        isinstance(value, (int, float))
        and not isinstance(value, bool)
        and math.isfinite(value)
        and value > 0
    )


def validate_timing_payload(payload) -> list[str]:
    """All schema violations in ``payload`` (empty list: valid)."""
    errors: list[str] = []
    if not isinstance(payload, dict):
        return [f"payload must be a dict, got {type(payload).__name__}"]
    bench = payload.get("bench")
    if not isinstance(bench, str) or not bench:
        errors.append("'bench' must be a non-empty string")
    batch = payload.get("batch")
    if not isinstance(batch, int) or isinstance(batch, bool) or batch < 1:
        errors.append("'batch' must be a positive int")
    seconds_keys = [k for k in payload if k.endswith("_seconds")]
    if not seconds_keys:
        errors.append("at least one '*_seconds' wall-time key required")
    for key in seconds_keys:
        if not _is_positive_finite(payload[key]):
            errors.append(
                f"{key!r} must be a positive finite number, "
                f"got {payload[key]!r}"
            )
    speedup_keys = [
        k for k in payload
        if k == "speedup" or k.startswith("speedup_vs_")
    ]
    if not speedup_keys:
        errors.append(
            "at least one 'speedup' / 'speedup_vs_*' key required"
        )
    for key in speedup_keys:
        if not _is_positive_finite(payload[key]):
            errors.append(
                f"{key!r} must be a positive finite number, "
                f"got {payload[key]!r}"
            )
    for key in payload:
        if key.startswith("min_") and key.endswith("_asserted"):
            if not _is_positive_finite(payload[key]):
                errors.append(
                    f"{key!r} must be a positive finite number, "
                    f"got {payload[key]!r}"
                )
    try:
        json.dumps(payload)
    except (TypeError, ValueError) as error:
        errors.append(f"payload is not JSON-serializable: {error}")
    return errors


def write_timing_artifact(filename: str, payload: dict) -> Path:
    """Validate ``payload`` against the shared schema and write it.

    Returns the written path; raises ``ValueError`` listing every
    violation when the payload does not conform.
    """
    errors = validate_timing_payload(payload)
    if errors:
        raise ValueError(
            "timing artifact violates the shared schema "
            f"({filename}):\n- " + "\n- ".join(errors)
        )
    path = artifact_dir() / filename
    path.write_text(json.dumps(payload, indent=2))
    return path

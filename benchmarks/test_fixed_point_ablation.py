"""E12 -- ablation: FPGA-style fixed-point vs float arithmetic.

The paper defers the FPGA arithmetic-implementation choice ("an
exhaustive evaluation of these possibilities is out of scope").  This
ablation measures two of those degrees of freedom on the reliable
convolution: numeric error of Q7.8 / Q15.16 saturating datapaths vs
float64, and their timing next to the float32 unit.  Bit-exact
reproducibility (DMR comparability) is covered by tests.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import render_sign
from repro.nn import Conv2D
from repro.reliable.execution_unit import Float32ExecutionUnit
from repro.reliable.executor import ReliableConv2D
from repro.reliable.fixed_point import (
    Q7_8,
    Q15_16,
    FixedPointExecutionUnit,
)
from repro.reliable.operators import PlainOperator


@pytest.fixture(scope="module")
def layer_and_image(rng):
    layer = Conv2D(3, 4, 5, stride=2, rng=rng, name="conv1")
    image = render_sign(0, size=32)[None]
    return layer, image


def test_fixed_point_accuracy_report(layer_and_image):
    layer, image = layer_and_image
    native = layer.forward(image)
    print()
    rows = []
    for name, fmt in (("Q7.8", Q7_8), ("Q15.16", Q15_16)):
        unit = FixedPointExecutionUnit(fmt)
        out, _ = ReliableConv2D(layer, PlainOperator(unit)).forward(image)
        err = float(np.abs(out - native).max())
        rows.append((name, err, unit.saturations))
        print(f"{name:<8} max |error| vs float: {err:.6f}  "
              f"saturations: {unit.saturations}")
    # Finer format -> smaller error; neither saturates on sign data.
    assert rows[1][1] <= rows[0][1]
    assert rows[0][1] < 0.2
    assert rows[1][2] == 0


def test_benchmark_fixed_point_q7_8(benchmark, layer_and_image):
    layer, image = layer_and_image
    executor = ReliableConv2D(
        layer, PlainOperator(FixedPointExecutionUnit(Q7_8))
    )
    benchmark.pedantic(
        lambda: executor.forward(image), rounds=1, iterations=1
    )


def test_benchmark_float32_reference(benchmark, layer_and_image):
    layer, image = layer_and_image
    executor = ReliableConv2D(
        layer, PlainOperator(Float32ExecutionUnit())
    )
    benchmark.pedantic(
        lambda: executor.forward(image), rounds=1, iterations=1
    )

"""E5 -- Sobel pre-initialisation with freezing (paper Section III.B).

Shape to verify: pinning one conv1 filter to the Sobel stack and
re-setting it after every batch costs ~nothing in accuracy ("clearly
exhibits no negative effects"), while the same filter trained without
re-setting drifts away from the Sobel values ("the (learnt) filter
undergoes subtle changes").
"""

from __future__ import annotations

from repro.workflows import run_sobel_pretrain


def test_sobel_pretrain_report():
    result = run_sobel_pretrain(seed=2)
    print()
    print(result.to_text())
    # Pinning costs little accuracy.
    assert abs(result.accuracy_cost_of_pinning) < 0.12
    # Without re-setting, the filter drifts measurably.
    assert result.drift_l2 > 1e-3
    # The pin absorbed nonzero drift at each re-set (TensorFlow's
    # "minimally changed after every batch" observation).
    assert any(d > 0 for d in result.pin_drift_history)


def test_benchmark_sobel_pretrain(benchmark):
    result = benchmark.pedantic(
        run_sobel_pretrain,
        kwargs={"epochs": 2, "n_per_class": 12, "seed": 3},
        rounds=1, iterations=1,
    )
    assert result.baseline_accuracy > 0.3

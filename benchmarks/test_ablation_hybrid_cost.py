"""E8 -- ablation: hybrid compute cost vs whole-network duplication.

Shape to verify (paper Section V): the hybrid needs only the
partition's share of redundant execution plus the qualifier, saving
close to half of the duplicated cost when the partition is small; the
saving decays as the reliable partition grows (the sweep).
"""

from __future__ import annotations

from repro.core import HybridPartition
from repro.models import alexnet_full, alexnet_scaled, small_cnn
from repro.workflows import run_cost_comparison


def test_cost_report_scaled():
    model = alexnet_scaled(n_classes=8, input_size=64)
    result = run_cost_comparison(model, (3, 64, 64))
    print()
    print("== scaled AlexNet ==")
    print(result.to_text())
    assert result.hybrid_savings_vs_dmr > 0.30


def test_cost_report_full_alexnet():
    """Paper geometry: one-filter partition on 96-filter conv1."""
    model = alexnet_full()
    partition = HybridPartition(
        reliable_filters={"conv1": (0, 1)}, bifurcation_layer="conv1"
    )
    result = run_cost_comparison(
        model, (3, 227, 227), partition=partition, sweep_filters=False
    )
    print()
    print("== full AlexNet ==")
    print(result.to_text())
    # With 2 of 96 conv1 filters reliable, the hybrid is within a few
    # percent of native cost -- the "conserve computational power"
    # claim at the paper's scale.
    assert result.hybrid_ops < 1.05 * result.native_ops
    assert result.hybrid_savings_vs_dmr > 0.45


def test_benchmark_cost_model(benchmark):
    model = small_cnn(32, 8)
    result = benchmark(run_cost_comparison, model, (3, 32, 32))
    assert result.native_ops > 0

"""E13 -- ECC weight storage and spatial-vs-temporal redundancy.

Shape to verify: SEC-DED storage holds model accuracy while upsets
remain single-per-word and degrades past that (the code's design
point); on a permanent PE fault, temporal DMR is silently wrong while
spatial DMR detects, retires the PE and completes correctly in
degraded mode -- the paper's Section II.B graceful-degradation
argument made executable.
"""

from __future__ import annotations

import numpy as np

from repro.reliable.ecc import ECCProtectedTensor
from repro.workflows import run_ecc_study, run_spatial_vs_temporal


def test_spatial_vs_temporal_report():
    result = run_spatial_vs_temporal()
    print()
    print(result.to_text())
    assert result.spatial_correct and result.spatial_detected
    assert not result.temporal_detected


def test_ecc_study_report(trained_model):
    result = run_ecc_study(trained_model, flip_counts=(1, 8, 32, 128))
    print()
    print(result.to_text())
    moderate = [row for row in result.rows if row.n_flips <= 32]
    assert any(
        row.ecc_accuracy > row.raw_accuracy + 0.2 for row in moderate
    ) or all(
        row.raw_accuracy >= result.clean_accuracy - 0.05
        for row in moderate
    )


def test_benchmark_ecc_encode(benchmark, rng):
    weights = rng.standard_normal((16, 3, 5, 5)).astype(np.float32)
    benchmark(ECCProtectedTensor, weights)


def test_benchmark_ecc_read_with_correction(benchmark, rng):
    weights = rng.standard_normal((16, 3, 5, 5)).astype(np.float32)

    def corrupted_read():
        storage = ECCProtectedTensor(weights)
        storage.inject_random_flips(4, rng)
        return storage.read()

    _, report = benchmark.pedantic(
        corrupted_read, rounds=3, iterations=1
    )
    assert report is not None


def test_benchmark_spatial_redundant_conv(benchmark, rng):
    from repro.reliable.convolution import reliable_convolution
    from repro.reliable.leaky_bucket import LeakyBucket
    from repro.reliable.spatial import PEArray, SpatialRedundantOperator

    x = rng.standard_normal(256)
    w = rng.standard_normal(256)

    def run():
        operator = SpatialRedundantOperator(PEArray(n_elements=4))
        return reliable_convolution(
            x, w, 0.0, operator, bucket=LeakyBucket(ceiling=1000)
        )

    result = benchmark(run)
    assert result.ok

"""Serving-layer throughput: micro-batching vs the serial infer loop,
for **both** paper architectures.

The deployment claim of the serving layer, asserted end to end: with
64 concurrent in-flight single-image requests, the micro-batching
server must deliver a multiple of the throughput of serving the same
images through a serial per-request ``pipeline.infer()`` loop -- and
every served result must be **bitwise identical** to that serial
call's.  The speedup is pure batching (one batcher thread does all
inference; no thread-level parallelism is assumed), so it reflects
what the batched engines -- batch-invariant CNN forward, doubled-lane
batched qualifier, single-pass speculate-then-verify kernels -- buy
under request-per-image traffic.

Historically this bench pinned ``architecture="parallel"`` because the
integrated (Figure-2) hybrid's ``infer_batch`` lost to its own
per-image loop.  That regression is fixed (deterministic units run one
speculative pass instead of ``executions_per_op`` identical ones, and
the pass accumulates in tap-major scratch buffers), so the pin is
gone: both architectures are asserted, the parallel hybrid at >= 3x
and the integrated hybrid at >= 2x -- plus a direct >= 2x bar on
integrated ``infer_batch`` against its serial loop at batch 64.

Writes one standard timing JSON per architecture, plus the integrated
batch artifact (shared schema: ``benchmarks/timing_schema.py``) for
CI upload next to the reliable-conv and qualifier artifacts.
"""

from __future__ import annotations

import math
import threading
import time

import numpy as np
import pytest

from benchmarks.timing_schema import write_timing_artifact
from repro.api import (
    PipelineConfig,
    QualifierConfig,
    ServingConfig,
    build_pipeline,
)
from repro.data import render_sign
from repro.models.smallcnn import small_cnn
from tests.support.fuzz import (
    assert_reports_equal,
    assert_verdicts_bitwise_equal,
)

CONCURRENCY = 64
CLIENT_THREADS = 8
TOTAL_REQUESTS = 256  # sustained load: 4 full windows of 64
ROUNDS = 3
IMAGE_SIZE = 32
BATCH = 64

#: Per-architecture serving floors.  The parallel hybrid qualifies the
#: input image (cheap CNN, one qualifier pass); the integrated hybrid
#: additionally runs its dependable partition per request, which
#: amortises less, hence the lower -- but now comfortably held -- bar.
MIN_SPEEDUP = {"parallel": 3.0, "integrated": 2.0}

#: Direct floor on integrated ``infer_batch`` vs its per-image loop.
MIN_BATCH_SPEEDUP = 2.0

#: One timing artifact per architecture (literal names: the contracts
#: suite greps bench sources for every CI-uploaded artifact).
ARTIFACTS = {
    "parallel": "serving_throughput_timing.json",
    "integrated": "integrated_serving_throughput_timing.json",
}


def build_serving_pipeline(architecture: str):
    model = small_cnn(n_classes=8, input_size=IMAGE_SIZE)
    return build_pipeline(
        PipelineConfig(
            architecture=architecture,
            qualifier=QualifierConfig(redundant=True),
            pin_sobel=architecture == "integrated",
            name=f"serving-bench-{architecture}",
        ),
        model,
    )


@pytest.fixture(scope="module", params=["parallel", "integrated"])
def arch(request):
    return request.param


@pytest.fixture(scope="module")
def pipeline(arch):
    return build_serving_pipeline(arch)


@pytest.fixture(scope="module")
def images():
    return np.stack([
        render_sign(
            i % 8, size=IMAGE_SIZE, rotation=np.deg2rad(3 * i - 60)
        )
        for i in range(CONCURRENCY)
    ]).astype(np.float32)


def _serve_round(server, images) -> tuple[list, float]:
    """One sustained-load round: TOTAL_REQUESTS requests from
    CLIENT_THREADS client threads, each thread keeping its share of
    the 64-request window in flight (submit; once the window is full,
    wait for its oldest completion before submitting the next) --
    steady-state request-per-image traffic, wall-clocked from the
    start signal to the last completion."""
    per_thread_window = CONCURRENCY // CLIENT_THREADS
    results: list = [None] * TOTAL_REQUESTS
    barrier = threading.Barrier(CLIENT_THREADS + 1)

    def client(thread_index: int) -> None:
        barrier.wait(timeout=30)
        window: list[tuple[int, object]] = []
        for index in range(
            thread_index, TOTAL_REQUESTS, CLIENT_THREADS
        ):
            if len(window) == per_thread_window:
                oldest, pending = window.pop(0)
                results[oldest] = pending.result(timeout=120)
            window.append(
                (index, server.submit(images[index % len(images)]))
            )
        for index, pending in window:
            results[index] = pending.result(timeout=120)

    threads = [
        threading.Thread(target=client, args=(i,))
        for i in range(CLIENT_THREADS)
    ]
    for thread in threads:
        thread.start()
    barrier.wait(timeout=30)
    start = time.perf_counter()
    for thread in threads:
        thread.join(timeout=120)
    elapsed = time.perf_counter() - start
    assert all(r is not None for r in results)
    return results, elapsed


def _assert_request_parity(got, want, context: str) -> None:
    assert got.probabilities.tobytes() == (
        want.probabilities.tobytes()
    ), f"{context}: probabilities diverged from serial infer()"
    assert got.predicted_class == want.predicted_class, context
    assert got.decision == want.decision, context
    assert_verdicts_bitwise_equal(got.verdict, want.verdict, context)
    assert (got.reliable_report is None) == (
        want.reliable_report is None
    ), context
    if got.reliable_report is not None:
        assert_reports_equal(
            got.reliable_report, want.reliable_report, context
        )


def test_serving_throughput_and_parity(arch, pipeline, images):
    # The honest baseline: the same pipeline serving the same images
    # one request at a time, exactly as a non-batching front-end would.
    serial = [pipeline.infer(image) for image in images]
    serial_seconds = math.inf
    for _ in range(ROUNDS):
        start = time.perf_counter()
        for index in range(TOTAL_REQUESTS):
            pipeline.infer(images[index % len(images)])
        serial_seconds = min(
            serial_seconds, time.perf_counter() - start
        )

    config = ServingConfig(
        max_batch=CONCURRENCY,
        max_wait_ms=10.0,
        queue_capacity=2 * CONCURRENCY,
    )
    served_seconds = math.inf
    with pipeline.serve(config) as server:
        _serve_round(server, images)  # warm-up: caches, allocators
        for _ in range(ROUNDS):
            results, elapsed = _serve_round(server, images)
            served_seconds = min(served_seconds, elapsed)
        stats = server.stats()

    # Parity first: the speedup claim is only meaningful if every
    # concurrent result is the serial result, bit for bit -- per-image
    # execution reports included.
    for i, got in enumerate(results):
        _assert_request_parity(
            got, serial[i % len(images)], f"{arch} request {i}"
        )

    serial_rps = TOTAL_REQUESTS / serial_seconds
    served_rps = TOTAL_REQUESTS / served_seconds
    speedup = served_rps / serial_rps
    min_speedup = MIN_SPEEDUP[arch]
    print(
        f"\n[{arch}] {TOTAL_REQUESTS} requests, {CONCURRENCY} in-flight "
        f"@ {IMAGE_SIZE}px: serial {serial_seconds * 1e3:.0f}ms "
        f"({serial_rps:.0f} rps), served {served_seconds * 1e3:.0f}ms "
        f"({served_rps:.0f} rps), {speedup:.2f}x, mean batch "
        f"{stats.mean_batch_size:.1f}, p50 {stats.p50_latency_ms:.1f}ms "
        f"p99 {stats.p99_latency_ms:.1f}ms"
    )
    assert stats.mean_batch_size > CONCURRENCY / 4, (
        "micro-batching barely coalesced "
        f"(mean batch {stats.mean_batch_size:.1f}); the speedup would "
        "not be attributable to batching"
    )
    assert speedup >= min_speedup, (
        f"{arch} serving only {speedup:.2f}x over the serial infer "
        f"loop ({served_seconds:.3f}s vs {serial_seconds:.3f}s)"
    )

    write_timing_artifact(ARTIFACTS[arch], {
        "bench": (
            "serving_throughput" if arch == "parallel"
            else "integrated_serving_throughput"
        ),
        "architecture": arch,
        "batch": CONCURRENCY,
        "image_size": IMAGE_SIZE,
        "client_threads": CLIENT_THREADS,
        "total_requests": TOTAL_REQUESTS,
        "serial_seconds": serial_seconds,
        "served_seconds": served_seconds,
        "serial_rps": serial_rps,
        "served_rps": served_rps,
        "speedup_vs_serial": speedup,
        "mean_batch_size": stats.mean_batch_size,
        "p50_latency_ms": stats.p50_latency_ms,
        "p99_latency_ms": stats.p99_latency_ms,
        "min_speedup_vs_serial_asserted": min_speedup,
    })


def test_integrated_infer_batch_beats_serial_loop():
    """The tentpole bar, measured directly: integrated ``infer_batch``
    at batch 64 (32px) is >= 2x its own per-image ``infer`` loop,
    bitwise identical result for result."""
    pipeline = build_serving_pipeline("integrated")
    batch_images = np.stack([
        render_sign(
            i % 8, size=IMAGE_SIZE, rotation=np.deg2rad(5 * i - 45)
        )
        for i in range(BATCH)
    ]).astype(np.float32)

    # Warm-up both paths: imports, caches, allocators.
    pipeline.infer_batch(batch_images[:4])
    pipeline.infer(batch_images[0])

    serial_seconds = math.inf
    batch_seconds = math.inf
    for _ in range(ROUNDS):
        start = time.perf_counter()
        singles = [pipeline.infer(image) for image in batch_images]
        serial_seconds = min(
            serial_seconds, time.perf_counter() - start
        )
        start = time.perf_counter()
        batch = pipeline.infer_batch(batch_images)
        batch_seconds = min(batch_seconds, time.perf_counter() - start)

    for i, (got, want) in enumerate(zip(batch, singles)):
        _assert_request_parity(got, want, f"batch image {i}")

    speedup = serial_seconds / batch_seconds
    print(
        f"\n[integrated] infer_batch({BATCH}) @ {IMAGE_SIZE}px: "
        f"serial loop {serial_seconds * 1e3:.0f}ms, batch "
        f"{batch_seconds * 1e3:.0f}ms, {speedup:.2f}x"
    )
    assert speedup >= MIN_BATCH_SPEEDUP, (
        f"integrated infer_batch only {speedup:.2f}x its per-image "
        f"loop ({batch_seconds:.3f}s vs {serial_seconds:.3f}s)"
    )

    write_timing_artifact("integrated_infer_batch_timing.json", {
        "bench": "integrated_infer_batch",
        "architecture": "integrated",
        "batch": BATCH,
        "image_size": IMAGE_SIZE,
        "serial_seconds": serial_seconds,
        "batch_seconds": batch_seconds,
        "speedup_vs_serial": speedup,
        "min_speedup_vs_serial_asserted": MIN_BATCH_SPEEDUP,
    })


def test_backpressure_under_sustained_overload(pipeline, images):
    """Overload sanity (both architectures): a reject-policy server
    under 4x queue-capacity burst traffic stays live, serves what it
    accepted, and accounts for every rejection."""
    config = ServingConfig(
        max_batch=16,
        max_wait_ms=0.5,
        queue_capacity=16,
        overflow="reject",
    )
    accepted = []
    rejected = 0
    with pipeline.serve(config) as server:
        for _ in range(4):
            for image in images:
                try:
                    accepted.append(server.submit(image))
                except Exception:
                    rejected += 1
        results = [p.result(timeout=120) for p in accepted]
        stats = server.stats()
    assert len(results) == len(accepted)
    assert stats.completed == len(accepted)
    assert stats.rejected == rejected
    assert stats.completed + stats.rejected == 4 * len(images)

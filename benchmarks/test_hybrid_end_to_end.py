"""End-to-end hybrid inference benchmarks (Figures 1 and 2 paths).

Measures the full dependable pipeline: reliable DMR execution of the
partition, bifurcation into the qualifier, and the reliable-result
combination -- the complete architecture the paper proposes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    Decision,
    IntegratedHybridCNN,
    ParallelHybridCNN,
    ShapeQualifier,
)
from repro.data import STOP_CLASS_INDEX, render_sign
from repro.models import alexnet_scaled
from repro.vision.filters import sobel_axis_stack


@pytest.fixture(scope="module")
def hybrid_model():
    model = alexnet_scaled(n_classes=8, input_size=128)
    conv1 = model.layer("conv1")
    conv1.set_filter(0, sobel_axis_stack("x", 7, 3))
    conv1.set_filter(1, sobel_axis_stack("y", 7, 3))
    return model


@pytest.fixture(scope="module")
def stop128():
    return render_sign(0, size=128, rotation=np.deg2rad(5))


def test_hybrid_decisions_report(hybrid_model, stop128):
    hybrid = IntegratedHybridCNN(
        hybrid_model, ShapeQualifier(), STOP_CLASS_INDEX
    )
    result = hybrid.infer(stop128)
    print()
    print(f"stop sign   -> qualifier={result.verdict.matches} "
          f"distance={result.verdict.distance:.2f} "
          f"decision={result.decision.value}")
    print(f"reliable ops={result.reliable_report.operations:,} "
          f"errors={result.reliable_report.errors_detected}")
    assert result.verdict.matches

    circle = hybrid.infer(render_sign(1, size=128))
    print(f"circle sign -> qualifier={circle.verdict.matches} "
          f"distance={circle.verdict.distance:.2f} "
          f"decision={circle.decision.value}")
    assert circle.decision is not Decision.CONFIRMED


def test_benchmark_parallel_hybrid(benchmark, hybrid_model, stop128):
    hybrid = ParallelHybridCNN(
        hybrid_model, ShapeQualifier(), STOP_CLASS_INDEX
    )
    result = benchmark(hybrid.infer, stop128)
    assert result.verdict.matches


def test_benchmark_integrated_hybrid(benchmark, hybrid_model, stop128):
    hybrid = IntegratedHybridCNN(
        hybrid_model, ShapeQualifier(), STOP_CLASS_INDEX
    )
    result = benchmark.pedantic(
        hybrid.infer, args=(stop128,), rounds=1, iterations=1
    )
    assert result.verdict.matches


def test_benchmark_native_inference_reference(benchmark, hybrid_model,
                                              stop128):
    """Reference row: the unprotected CNN alone."""
    benchmark(hybrid_model.forward, stop128[None])

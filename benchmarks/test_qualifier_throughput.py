"""Batched qualifier engine vs the scalar per-image loop.

Acceptance bars for the batched engine at batch 64:

* **>= 5x** over the qualifier as this PR found it -- the per-image
  loop whose MINDIST rebuilt the ``a x a`` symbol table inside a
  Python rotation loop (the cost profile the issue motivated against;
  reconstructed here as :class:`SeedDistanceQualifier`, conservatively,
  on top of today's faster frontend).  Measured speedups are typically
  >= 10x.
* **>= 1.5x** over the *shipped* scalar loop, i.e. after this PR's
  satellite work (cached distance tables, tensorized rotation scan)
  already accelerated every per-image ``check``.  The shipped scalar
  loop shares the batched engine's Moore trace and edge arithmetic,
  so its gap is structurally bounded (Amdahl) -- the conservative bar
  keeps slow CI machines green while the JSON artifact records the
  real ratio (typically >= 2x).

Every run also asserts the batched verdicts are bitwise identical to
the shipped scalar loop's (the parity contract of
``repro.core.qualifier_batch``) and writes a timing JSON artifact (CI
uploads it per commit, next to the reliable-conv timing) to
``benchmarks/artifacts/qualifier_throughput_timing.json``,
overridable via the ``BENCH_ARTIFACT_DIR`` environment variable.
"""

from __future__ import annotations

import math
import struct
import time

import numpy as np
import pytest

from benchmarks.timing_schema import write_timing_artifact
from repro.core.qualifier import ShapeQualifier
from repro.data import render_sign
from repro.sax.breakpoints import gaussian_breakpoints
from repro.sax.sax import ALPHABET

BATCH = 64
MIN_SPEEDUP_VS_SEED = 5.0
MIN_SPEEDUP_VS_SCALAR = 1.5


class SeedDistanceQualifier(ShapeQualifier):
    """The qualifier with the seed repository's MINDIST arithmetic.

    Reconstructs the pre-PR distance stage exactly: the symbol table
    rebuilt on *every* ``mindist`` call, word -> index conversion
    inside the rotation loop, one Python iteration per rotation per
    template.  Everything else (frontend, labelling, trace, SAX) is
    today's code, which is *faster* than the seed's -- so timing this
    class under-estimates the true seed cost and the asserted speedup
    is conservative.
    """

    @staticmethod
    def _seed_symbol_distance_table(alphabet_size: int) -> np.ndarray:
        bp = gaussian_breakpoints(alphabet_size)
        table = np.zeros((alphabet_size, alphabet_size), dtype=np.float64)
        for r in range(alphabet_size):
            for c in range(alphabet_size):
                if abs(r - c) > 1:
                    hi, lo = max(r, c), min(r, c)
                    table[r, c] = bp[hi - 1] - bp[lo]
        return table

    def _seed_mindist(self, word_a: str, word_b: str) -> float:
        table = self._seed_symbol_distance_table(
            self.encoder.alphabet_size
        )
        ia = np.array([ALPHABET.index(ch) for ch in word_a])
        ib = np.array([ALPHABET.index(ch) for ch in word_b])
        gaps = table[ia, ib]
        w = len(word_a)
        return math.sqrt(self.n_samples / w) * math.sqrt(
            float((gaps**2).sum())
        )

    def _distance(self, word: str) -> float:
        best = math.inf
        for template in self.templates:
            for rot in range(len(template)):
                rotated = template[rot:] + template[:rot]
                d = self._seed_mindist(word, rotated)
                if d < best:
                    best = d
        return best


@pytest.fixture(scope="module")
def images():
    return np.stack([
        render_sign(i % 8, size=96, rotation=np.deg2rad(4 * i - 30))
        for i in range(BATCH)
    ]).astype(np.float32)


def _timed(fn, repeats: int = 3):
    """Best-of-``repeats`` wall time: one scheduler preemption inside
    a single ~100 ms window must not flip a CI-gating ratio."""
    best = math.inf
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def test_batched_qualifier_speedup_and_parity(images):
    batched = ShapeQualifier(engine="batched")
    scalar = ShapeQualifier(engine="scalar")
    seed = SeedDistanceQualifier(engine="scalar")

    # Warm all paths (template caches, allocators) outside timing.
    batched.check_batch(images[:4])
    scalar.check(images[0])
    seed.check(images[0])

    batch_verdicts, batched_seconds = _timed(
        lambda: batched.check_batch(images)
    )
    scalar_verdicts, scalar_seconds = _timed(
        lambda: [scalar.check(image) for image in images]
    )
    _, seed_seconds = _timed(
        lambda: [seed.check(image) for image in images]
    )

    # Bitwise parity against the shipped scalar loop: flags, distance
    # storage bits, words, reliability.
    for got, want in zip(batch_verdicts, scalar_verdicts):
        assert got.matches == want.matches
        assert struct.pack("<d", got.distance) == struct.pack(
            "<d", want.distance
        )
        assert got.word == want.word
        assert got.reliable == want.reliable

    speedup_vs_scalar = scalar_seconds / batched_seconds
    speedup_vs_seed = seed_seconds / batched_seconds
    print(
        f"\nbatch {BATCH} @ 96px: batched {batched_seconds*1e3:.0f}ms, "
        f"scalar loop {scalar_seconds*1e3:.0f}ms "
        f"({speedup_vs_scalar:.1f}x), seed-MINDIST loop "
        f"{seed_seconds*1e3:.0f}ms ({speedup_vs_seed:.1f}x)"
    )
    assert speedup_vs_seed >= MIN_SPEEDUP_VS_SEED, (
        f"batched engine only {speedup_vs_seed:.1f}x over the seed "
        f"qualifier loop ({seed_seconds:.3f}s vs {batched_seconds:.3f}s)"
    )
    assert speedup_vs_scalar >= MIN_SPEEDUP_VS_SCALAR, (
        f"batched engine only {speedup_vs_scalar:.1f}x over the shipped "
        f"scalar loop ({scalar_seconds:.3f}s vs {batched_seconds:.3f}s)"
    )

    write_timing_artifact("qualifier_throughput_timing.json", {
        "bench": "qualifier_throughput",
        "batch": BATCH,
        "image_size": 96,
        "redundant": True,
        "batched_seconds": batched_seconds,
        "scalar_seconds": scalar_seconds,
        "seed_seconds": seed_seconds,
        "speedup_vs_scalar": speedup_vs_scalar,
        "speedup_vs_seed": speedup_vs_seed,
        "min_speedup_vs_scalar_asserted": MIN_SPEEDUP_VS_SCALAR,
        "min_speedup_vs_seed_asserted": MIN_SPEEDUP_VS_SEED,
    })


def test_seed_reference_still_agrees_on_matches(images):
    """The seed-MINDIST reference must reach the same accept/reject
    decisions (its floats differ at ULP level from the tensorized
    scan only through the frontend change, far inside the calibration
    margin) -- guarding the reference against drifting into a straw
    man."""
    seed = SeedDistanceQualifier(redundant=False)
    current = ShapeQualifier(redundant=False)
    for image in images[:16]:
        assert seed.check(image).matches == current.check(image).matches

"""E9 -- fault-injection coverage of the protection levels.

Shape to verify: plain operators have zero coverage (every fired
fault is silent corruption), DMR detects-and-recovers transients with
full coverage, TMR masks them, and permanent stuck-at faults defeat
*all* temporal redundancy (the common-mode blind spot that motivates
the paper's interest in spatial/diverse redundancy).
"""

from __future__ import annotations

import numpy as np

from repro.faults.campaign import run_operator_campaign
from repro.faults.models import TransientFault
from repro.workflows import run_bucket_dynamics, run_coverage_study


def test_coverage_report():
    result = run_coverage_study(runs=150, seed=0)
    print()
    print(result.to_text())
    rows = {(r.fault_kind, r.operator_kind): r for r in result.rows}
    assert rows[("transient", "plain")].coverage == 0.0
    assert rows[("transient", "dmr")].coverage == 1.0
    assert rows[("permanent", "dmr")].sdc_rate == 1.0


def test_bucket_dynamics_report():
    """E7 -- the leaky-bucket survive/abort boundary."""
    result = run_bucket_dynamics()
    print()
    print(result.to_text())
    factor2 = {
        pattern: overflowed
        for factor, _, pattern, overflowed in result.rows
        if factor == 2
    }
    assert factor2["ssssssEssssss"] is False
    assert factor2["ssssssEEssssss"] is True


def test_benchmark_dmr_campaign(benchmark):
    result = benchmark.pedantic(
        run_operator_campaign,
        kwargs={
            "fault_factory": lambda rng: TransientFault(0.01, rng),
            "operator_kind": "dmr",
            "runs": 100,
            "seed": 1,
        },
        rounds=1, iterations=1,
    )
    assert result.detection_coverage == 1.0


def test_benchmark_tmr_campaign(benchmark):
    result = benchmark.pedantic(
        run_operator_campaign,
        kwargs={
            "fault_factory": lambda rng: TransientFault(0.01, rng),
            "operator_kind": "tmr",
            "runs": 100,
            "seed": 1,
        },
        rounds=1, iterations=1,
    )
    assert result.silent_corruption_rate == 0.0

"""E11 -- ablation: rollback distance vs fault rate.

Shape to verify (paper Section II.E): the optimal checkpoint
granularity falls as the fault rate rises; with free comparisons the
paper's one-operation rollback distance is always optimal, and with a
realistic comparison overhead the crossover appears in the sweep.
"""

from __future__ import annotations

from repro.workflows import (
    optimal_segment_size,
    run_rollback_distance,
)


def test_rollback_distance_report():
    result = run_rollback_distance(trials=40, seed=0)
    print()
    print(result.to_text())
    # Optimal segment size is non-increasing in the fault rate.
    probs = sorted(result.optima)
    optima = [result.optima[p] for p in probs]
    assert all(a >= b for a, b in zip(optima, optima[1:]))
    # The paper's regime: comparisons free in hardware -> s = 1.
    assert optimal_segment_size(0.01, 0.0) == 1


def test_benchmark_rollback_sweep(benchmark):
    result = benchmark.pedantic(
        run_rollback_distance,
        kwargs={"simulate": False},
        rounds=1, iterations=1,
    )
    assert result.analytic

"""E3/E4 -- Figure 4 and the confusion-matrix comparison.

Shape to verify (paper Section III.B): replacing one filter leaves
accuracy essentially unchanged; sweeping the replacement across all
first-layer filters makes the stop-class confidence "vary
substantially depending on which filter has been replaced".
"""

from __future__ import annotations

import numpy as np

from repro.workflows import run_confusion_comparison, run_figure4


def test_figure4_report(trained_model):
    result = run_figure4(trained=trained_model)
    print()
    print(result.to_text())
    print("per-filter accuracies:",
          np.array2string(result.accuracies, precision=3))
    assert result.confidence_spread > 0.02
    assert len(result.confidences) == result.n_filters


def test_confusion_comparison_report(trained_model):
    comparison = run_confusion_comparison(trained=trained_model)
    print()
    print(comparison.to_text())
    # "No substantial difference in classification accuracy."
    assert abs(comparison.accuracy_drop) < 0.15


def test_benchmark_figure4_sweep(benchmark, trained_model):
    result = benchmark.pedantic(
        run_figure4, kwargs={"trained": trained_model},
        rounds=1, iterations=1,
    )
    assert result.n_filters == 8

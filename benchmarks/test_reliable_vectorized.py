"""Speculate-then-verify engine vs scalar Algorithm 3.

The acceptance bar for the vectorized engine: >= 20x faster than the
scalar per-operation path on the benchmark layer (the scaled Table 1
geometry; ``REPRO_FULL=1`` for the paper's exact layer), with
bitwise-identical outputs and reports.  Observed speedups are
typically in the hundreds -- 20x leaves ample headroom for slow CI
machines.

Each run writes a timing JSON artifact (CI uploads it per commit,
seeding the ``BENCH_*`` perf trajectory) to
``benchmarks/artifacts/reliable_vectorized_timing.json``, overridable
via the ``BENCH_ARTIFACT_DIR`` environment variable.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks.conftest import full_scale
from benchmarks.timing_schema import write_timing_artifact
from repro.data import render_sign
from repro.faults.injector import FaultyExecutionUnit
from repro.faults.models import TransientFault
from repro.nn import Conv2D
from repro.reliable.executor import ReliableConv2D
from repro.reliable.operators import RedundantOperator

MIN_SPEEDUP = 20.0


@pytest.fixture(scope="module")
def bench_layer():
    rng = np.random.default_rng(0)
    if full_scale():
        layer = Conv2D(3, 96, 11, stride=4, rng=rng, name="conv1")
        image = render_sign(0, size=227)[None]
        description = "96 filters 11x11x3, 227x227 input (paper scale)"
    else:
        layer = Conv2D(3, 8, 5, stride=2, rng=rng, name="conv1")
        image = render_sign(0, size=32)[None]
        description = "8 filters 5x5x3, 32x32 input (scaled)"
    return layer, image, description


def _timed_forward(executor, image):
    start = time.perf_counter()
    out, report = executor.forward(image)
    return out, report, time.perf_counter() - start


def test_vectorized_dmr_speedup_and_bitwise_parity(bench_layer):
    layer, image, description = bench_layer
    scalar = ReliableConv2D(layer, "dmr", engine="scalar")
    vectorized = ReliableConv2D(layer, "dmr", engine="vectorized")

    # Warm both paths (patch extraction, allocator) outside timing.
    vectorized.forward(image)
    out_s, rep_s, scalar_seconds = _timed_forward(scalar, image)
    out_v, rep_v, vectorized_seconds = _timed_forward(vectorized, image)

    assert out_s.tobytes() == out_v.tobytes()
    assert (rep_s.operations, rep_s.errors_detected, rep_s.rollbacks,
            rep_s.persistent_failures, rep_s.operator_kind) == (
            rep_v.operations, rep_v.errors_detected, rep_v.rollbacks,
            rep_v.persistent_failures, rep_v.operator_kind)

    speedup = scalar_seconds / vectorized_seconds
    print(
        f"\n{description}: scalar {scalar_seconds:.3f}s, "
        f"vectorized {vectorized_seconds*1e3:.2f}ms, {speedup:.0f}x"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"vectorized DMR only {speedup:.1f}x over scalar "
        f"({scalar_seconds:.3f}s vs {vectorized_seconds:.4f}s)"
    )

    write_timing_artifact("reliable_vectorized_timing.json", {
        "bench": "reliable_vectorized",
        "batch": 1,
        "layer": description,
        "full_scale": full_scale(),
        "operator": "dmr",
        "scalar_seconds": scalar_seconds,
        "vectorized_seconds": vectorized_seconds,
        "speedup": speedup,
        "operations": rep_s.operations,
        "min_speedup_asserted": MIN_SPEEDUP,
    })


def test_vectorized_injection_overhead_stays_bounded(bench_layer):
    """Array-level transient injection (speculation + scalar repair of
    disagreeing elements) must stay far below the scalar faulty path
    -- the property that lets campaigns afford bigger fault cells."""
    layer, image, _ = bench_layer

    def faulty_executor(engine, seed):
        return ReliableConv2D(
            layer,
            RedundantOperator(FaultyExecutionUnit(
                TransientFault(1e-4, np.random.default_rng(seed))
            )),
            bucket_ceiling=100_000,
            engine=engine,
        )

    _, rep_scalar, scalar_seconds = _timed_forward(
        faulty_executor("scalar", 1), image
    )
    _, rep_vector, vectorized_seconds = _timed_forward(
        faulty_executor("vectorized", 1), image
    )
    # Both sampled the same fault process and both detected activity.
    assert rep_vector.errors_detected > 0
    assert rep_scalar.errors_detected > 0
    assert vectorized_seconds < scalar_seconds / 5

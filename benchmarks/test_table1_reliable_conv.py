"""E1 -- Table 1: reliable convolution, plain vs redundant operators.

Regenerates the paper's Table 1 rows on this machine and prints them
alongside the paper's values.  Shape to verify: native << plain <
redundant, with the redundant overhead bounded by ~2x (exactly 2x in
unit executions).
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import full_scale
from repro.data import render_sign
from repro.nn import Conv2D
from repro.reliable.execution_unit import Float32ExecutionUnit
from repro.reliable.executor import ReliableConv2D
from repro.reliable.operators import (
    PlainOperator,
    RedundantOperator,
    TMROperator,
)
from repro.workflows import run_table1


@pytest.fixture(scope="module")
def table1_inputs(rng):
    if full_scale():
        layer = Conv2D(3, 96, 11, stride=4, rng=rng, name="conv1")
        image = render_sign(0, size=227)[None]
    else:
        layer = Conv2D(3, 8, 5, stride=2, rng=rng, name="conv1")
        image = render_sign(0, size=32)[None]
    return layer, image


def test_table1_report():
    """Print the full Table 1 reproduction (captured by pytest -s)."""
    result = run_table1(full=full_scale())
    print()
    print(result.to_text())
    assert result.native_seconds < result.plain_seconds
    assert result.plain_seconds < result.redundant_seconds


def bench_native(benchmark, table1_inputs):
    layer, image = table1_inputs
    benchmark(layer.forward, image)


def bench_algorithm1_plain(benchmark, table1_inputs):
    # engine="scalar" throughout: Table 1 measures the per-operation
    # Algorithm 3 loop; the vectorized engine has its own bench in
    # test_reliable_vectorized.py.
    layer, image = table1_inputs
    executor = ReliableConv2D(
        layer, PlainOperator(Float32ExecutionUnit()), engine="scalar"
    )
    benchmark.pedantic(
        lambda: executor.forward(image), rounds=1, iterations=1
    )


def bench_algorithm2_redundant(benchmark, table1_inputs):
    layer, image = table1_inputs
    executor = ReliableConv2D(
        layer, RedundantOperator(Float32ExecutionUnit()), engine="scalar"
    )
    benchmark.pedantic(
        lambda: executor.forward(image), rounds=1, iterations=1
    )


def bench_tmr_extension(benchmark, table1_inputs):
    """Extension row: TMR costs ~3x plain in unit executions."""
    layer, image = table1_inputs
    executor = ReliableConv2D(
        layer, TMROperator(Float32ExecutionUnit()), engine="scalar"
    )
    benchmark.pedantic(
        lambda: executor.forward(image), rounds=1, iterations=1
    )


# pytest-benchmark discovers test_* functions; map bench names.
test_benchmark_native = bench_native
test_benchmark_algorithm1_plain = bench_algorithm1_plain
test_benchmark_algorithm2_redundant = bench_algorithm2_redundant
test_benchmark_tmr_extension = bench_tmr_extension

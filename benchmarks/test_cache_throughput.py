"""Response-cache throughput under skewed traffic, both architectures.

The deployment claim of the content-addressed cache
(``repro.serving.cache``), asserted end to end: under Zipfian traffic
(s = 1.1 -- the canonical web-workload skew) over a 256-image corpus,
a ``cache="lru"`` server must deliver **>= 3x** the throughput of the
identical ``cache="off"`` server at the same 64-request in-flight
window, while every delivered result stays **bitwise identical** to a
serial ``pipeline.infer()`` call -- the determinism guarantee is
precisely what makes serving a cached result indistinguishable from
recomputing it.  Skewed traffic should cost O(unique images), not
O(requests).

Honest methodology:

* every measured round gets a **fresh server and a cold cache**, so
  the speedup reflects one pass of the traffic (each distinct image
  computed once, every repeat a hit/join) -- no warm-cache carryover
  inflating later rounds;
* the cache-off baseline runs the *same* windowed drive, so the only
  variable is the cache;
* a uniform-traffic guard drives each corpus image exactly once
  (zero achievable hits) through both configurations and asserts the
  cache path costs < 5% extra -- the digest/lookup overhead a
  cache-miss-only workload pays.

Writes one shared-schema timing artifact per architecture
(``benchmarks/timing_schema.py``) and ingests both into the durable
catalog (``repro.catalog``) in-test, asserting the catalog's
``trend`` query reproduces the measured speedup -- the bench and the
catalog cross-check each other.
"""

from __future__ import annotations

import math
import threading
import time

import numpy as np
import pytest

from benchmarks.timing_schema import artifact_dir, write_timing_artifact
from repro.api import (
    PipelineConfig,
    QualifierConfig,
    ServingConfig,
    build_pipeline,
)
from repro.catalog import CatalogStore
from repro.data import render_sign
from repro.models.smallcnn import small_cnn
from tests.support.fuzz import (
    assert_reports_equal,
    assert_verdicts_bitwise_equal,
)

CONCURRENCY = 64
CLIENT_THREADS = 8
CORPUS = 256
TOTAL_REQUESTS = 1536
ZIPF_S = 1.1
SEED = 20260808
ROUNDS = 3
UNIFORM_ROUNDS = 5
IMAGE_SIZE = 32

MIN_SPEEDUP = 3.0
MAX_UNIFORM_OVERHEAD = 1.05

#: One timing artifact per architecture (literal names: the contracts
#: suite greps bench sources for every CI-uploaded artifact).
ARTIFACTS = {
    "parallel": "cache_throughput_timing.json",
    "integrated": "integrated_cache_throughput_timing.json",
}

#: The catalog DB the bench ingests its artifacts into, proving the
#: write -> ingest -> trend loop in the same run that measured them.
CATALOG_DB = "catalog.sqlite"


def build_cache_pipeline(architecture: str):
    model = small_cnn(n_classes=8, input_size=IMAGE_SIZE)
    return build_pipeline(
        PipelineConfig(
            architecture=architecture,
            qualifier=QualifierConfig(redundant=True),
            pin_sobel=architecture == "integrated",
            name=f"cache-bench-{architecture}",
        ),
        model,
    )


def serving_config(cache: str) -> ServingConfig:
    return ServingConfig(
        max_batch=CONCURRENCY,
        # Short flush timer, same for both configurations: under the
        # cache, leaders *trickle* between instantly-completed hits,
        # and a long timer would bill the cache for batcher idle time
        # rather than inference saved.
        max_wait_ms=2.0,
        queue_capacity=2 * CONCURRENCY,
        cache=cache,
        cache_max_entries=2 * CORPUS,  # never evicts during a round
    )


def zipf_schedule() -> np.ndarray:
    """The fixed request schedule: TOTAL_REQUESTS corpus indices drawn
    Zipf(s=1.1) over ranks 1..CORPUS, seeded -- every run, every
    configuration, both architectures replay identical traffic."""
    rng = np.random.default_rng(SEED)
    ranks = np.arange(1, CORPUS + 1, dtype=np.float64)
    weights = ranks ** -ZIPF_S
    return rng.choice(
        CORPUS, size=TOTAL_REQUESTS, p=weights / weights.sum()
    )


def uniform_schedule() -> np.ndarray:
    """Each corpus image exactly once, in a fixed shuffled order --
    the zero-reuse workload for the overhead guard."""
    rng = np.random.default_rng(SEED + 1)
    return rng.permutation(CORPUS)


@pytest.fixture(scope="module", params=["parallel", "integrated"])
def arch(request):
    return request.param


@pytest.fixture(scope="module")
def pipeline(arch):
    return build_cache_pipeline(arch)


@pytest.fixture(scope="module")
def corpus():
    images = np.stack([
        render_sign(
            i % 8, size=IMAGE_SIZE, rotation=np.deg2rad(1.3 * i - 55)
        )
        for i in range(CORPUS)
    ]).astype(np.float32)
    # Watermark one pixel per image with its index: some renderings
    # collide bitwise (rotation symmetry), and the content-addressed
    # cache would -- correctly -- conflate them, breaking the bench's
    # distinct-image accounting.  The stamp makes content-distinct
    # mean index-distinct.
    images[:, 0, 0, 0] = np.arange(CORPUS, dtype=np.float32) / CORPUS
    return images


def _drive(server, corpus, schedule) -> tuple[list, float]:
    """One windowed round of ``schedule`` traffic: CLIENT_THREADS
    client threads, each keeping its share of the CONCURRENCY-request
    window in flight, wall-clocked from the start barrier to the last
    completion."""
    per_thread_window = CONCURRENCY // CLIENT_THREADS
    total = len(schedule)
    results: list = [None] * total
    barrier = threading.Barrier(CLIENT_THREADS + 1)

    def client(thread_index: int) -> None:
        barrier.wait(timeout=30)
        window: list[tuple[int, object]] = []
        for index in range(thread_index, total, CLIENT_THREADS):
            if len(window) == per_thread_window:
                oldest, pending = window.pop(0)
                results[oldest] = pending.result(timeout=120)
            window.append(
                (index, server.submit(corpus[schedule[index]]))
            )
        for index, pending in window:
            results[index] = pending.result(timeout=120)

    threads = [
        threading.Thread(target=client, args=(i,))
        for i in range(CLIENT_THREADS)
    ]
    for thread in threads:
        thread.start()
    barrier.wait(timeout=30)
    start = time.perf_counter()
    for thread in threads:
        thread.join(timeout=120)
    elapsed = time.perf_counter() - start
    assert all(r is not None for r in results)
    return results, elapsed


def _measure(pipeline, corpus, schedule, cache: str):
    """Min-of-ROUNDS wall time for one configuration.  Each round is
    a fresh server (cold cache), after one unmeasured warm-up round."""
    best = math.inf
    results = None
    stats = None
    for round_index in range(ROUNDS + 1):
        with pipeline.serve(serving_config(cache)) as server:
            round_results, elapsed = _drive(server, corpus, schedule)
            round_stats = server.stats()
        if round_index == 0:
            continue  # warm-up: imports, caches, allocators
        if elapsed < best:
            best = elapsed
        results, stats = round_results, round_stats
    return results, best, stats


def _assert_request_parity(got, want, context: str) -> None:
    assert got.probabilities.tobytes() == (
        want.probabilities.tobytes()
    ), f"{context}: probabilities diverged from serial infer()"
    assert got.predicted_class == want.predicted_class, context
    assert got.decision == want.decision, context
    assert_verdicts_bitwise_equal(got.verdict, want.verdict, context)
    assert (got.reliable_report is None) == (
        want.reliable_report is None
    ), context
    if got.reliable_report is not None:
        assert_reports_equal(
            got.reliable_report, want.reliable_report, context
        )


def test_zipf_cache_throughput_and_parity(arch, pipeline, corpus):
    schedule = zipf_schedule()
    distinct = len(set(schedule.tolist()))

    results_off, off_seconds, _ = _measure(
        pipeline, corpus, schedule, cache="off"
    )
    results_lru, lru_seconds, stats = _measure(
        pipeline, corpus, schedule, cache="lru"
    )

    # Parity first: cached delivery must be indistinguishable -- bit
    # for bit, execution reports included -- from a serial infer() of
    # the same image.  One serial reference per *distinct* image.
    serial = {
        index: pipeline.infer(corpus[index])
        for index in sorted(set(schedule.tolist()))
    }
    for i, got in enumerate(results_lru):
        _assert_request_parity(
            got, serial[int(schedule[i])], f"{arch} lru request {i}"
        )
    for i, got in enumerate(results_off):
        _assert_request_parity(
            got, serial[int(schedule[i])], f"{arch} off request {i}"
        )

    # The cache did what the Zipf math says it must: every distinct
    # image computed exactly once (cold cache, no eviction), every
    # repeat answered as a hit or an in-flight join.
    assert stats.cache_misses == distinct, (
        f"expected {distinct} misses (one per distinct image), got "
        f"{stats.cache_misses}"
    )
    assert (
        stats.cache_hits + stats.coalesced_joins
        == TOTAL_REQUESTS - distinct
    )
    assert stats.cache_evictions == 0
    assert stats.completed == TOTAL_REQUESTS

    speedup = off_seconds / lru_seconds
    hit_rate = stats.cache_hit_rate
    print(
        f"\n[{arch}] zipf(s={ZIPF_S}) {TOTAL_REQUESTS} requests over "
        f"{distinct}/{CORPUS} distinct @ {IMAGE_SIZE}px: off "
        f"{off_seconds * 1e3:.0f}ms, lru {lru_seconds * 1e3:.0f}ms, "
        f"{speedup:.2f}x, hit-rate {hit_rate:.2f} "
        f"({stats.cache_hits} hits + {stats.coalesced_joins} joins), "
        f"cached p50 {stats.p50_cached_latency_ms:.2f}ms vs computed "
        f"p50 {stats.p50_computed_latency_ms:.1f}ms"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"{arch} cache only {speedup:.2f}x over cache-off "
        f"({lru_seconds:.3f}s vs {off_seconds:.3f}s) at hit-rate "
        f"{hit_rate:.2f}"
    )

    path = write_timing_artifact(ARTIFACTS[arch], {
        "bench": (
            "cache_throughput" if arch == "parallel"
            else "integrated_cache_throughput"
        ),
        "architecture": arch,
        "batch": CONCURRENCY,
        "image_size": IMAGE_SIZE,
        "client_threads": CLIENT_THREADS,
        "corpus_images": CORPUS,
        "total_requests": TOTAL_REQUESTS,
        "distinct_images": distinct,
        "zipf_s": ZIPF_S,
        "cache_off_seconds": off_seconds,
        "cache_lru_seconds": lru_seconds,
        "speedup_vs_cache_off": speedup,
        "cache_hit_rate": hit_rate,
        "cache_hits": stats.cache_hits,
        "coalesced_joins": stats.coalesced_joins,
        "p50_cached_latency_ms": stats.p50_cached_latency_ms,
        "p50_computed_latency_ms": stats.p50_computed_latency_ms,
        "min_speedup_vs_cache_off_asserted": MIN_SPEEDUP,
    })

    # Close the loop through the durable catalog: ingest the artifact
    # just written and assert the trend query hands back the measured
    # speedup -- the machine-queryable record matches the bench.
    with CatalogStore(artifact_dir() / CATALOG_DB) as store:
        artifact_id, _ = store.ingest_file(path)
        record = store.get(artifact_id)
        trend = {
            (name, key): value
            for name, _bench, _batch, key, value in store.trend()
        }
    assert record.bench == (
        "cache_throughput" if arch == "parallel"
        else "integrated_cache_throughput"
    )
    assert trend[(record.name, "speedup_vs_cache_off")] == pytest.approx(
        speedup
    )


def test_uniform_traffic_overhead_guard(arch, pipeline, corpus):
    """Zero-reuse traffic (every corpus image exactly once) must cost
    < 5% extra with the cache on: the price of a miss is one sha256
    over the image bytes plus one locked dict probe."""
    schedule = uniform_schedule()

    # Paired rounds: a 5% relative guard on sub-second wall times
    # cannot survive scheduling jitter unless each round times the
    # two configurations back-to-back and the guard takes the *best*
    # per-round ratio -- intrinsic overhead (digest + lookup on every
    # miss) is present in every round, so the minimum bounds it,
    # while jitter only ever inflates a ratio.
    off_seconds = lru_seconds = math.inf
    overhead = math.inf
    results_off = results_lru = stats = None
    for round_index in range(UNIFORM_ROUNDS + 1):
        with pipeline.serve(serving_config("off")) as server:
            round_off, elapsed_off = _drive(server, corpus, schedule)
        with pipeline.serve(serving_config("lru")) as server:
            round_lru, elapsed_lru = _drive(server, corpus, schedule)
            round_stats = server.stats()
        if round_index == 0:
            continue  # warm-up: imports, caches, allocators
        off_seconds = min(off_seconds, elapsed_off)
        lru_seconds = min(lru_seconds, elapsed_lru)
        overhead = min(overhead, elapsed_lru / elapsed_off)
        results_off, results_lru = round_off, round_lru
        stats = round_stats

    assert stats.cache_hits == 0
    assert stats.cache_misses == CORPUS
    for got, want in zip(results_lru, results_off):
        assert got.probabilities.tobytes() == want.probabilities.tobytes()
        assert got.decision == want.decision

    print(
        f"\n[{arch}] uniform {CORPUS} requests: off "
        f"{off_seconds * 1e3:.0f}ms, lru {lru_seconds * 1e3:.0f}ms, "
        f"best paired ratio {overhead:.3f}x"
    )
    assert overhead <= MAX_UNIFORM_OVERHEAD, (
        f"{arch} cache-on uniform traffic {overhead:.3f}x the "
        f"cache-off path (guard {MAX_UNIFORM_OVERHEAD}x): digest or "
        "lookup overhead has crept into the miss path"
    )

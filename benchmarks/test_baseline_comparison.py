"""E10 -- baseline comparison and the hybrid under injected faults.

Shape to verify:

* under weight corruption, the unprotected CNN produces false
  "dependable stop" confirms; activation-range supervision reduces
  but does not eliminate them; output caging and the hybrid's input
  qualifier eliminate them -- and the qualifier does so without any
  calibration data (its template is geometric);
* under processing-element transients, the hybrid's dependable path
  detects and rolls back every error, and an aborted dependable path
  never silently confirms.
"""

from __future__ import annotations

from repro.workflows import (
    run_baseline_comparison,
    run_hybrid_under_faults,
)


def test_baseline_comparison_report(trained_model):
    result = run_baseline_comparison(trained_model, trials=60, seed=0)
    print()
    print(result.to_text())
    by_name = {row.protection: row for row in result.rows}
    assert by_name["hybrid-qualifier"].false_confirms == 0
    assert (
        by_name["unprotected"].false_confirms
        >= by_name["range-guard"].false_confirms
        >= 0
    )


def test_hybrid_under_faults_report():
    result = run_hybrid_under_faults(
        probabilities=(0.0, 1e-5, 1e-4), input_size=96, seed=0
    )
    print()
    print(result.to_text())
    assert result.never_silently_confirmed_under_abort()
    faulty = result.rows[-1]
    assert faulty.errors_detected > 0
    assert faulty.rollbacks == faulty.errors_detected


def test_benchmark_baseline_campaign(benchmark, trained_model):
    result = benchmark.pedantic(
        run_baseline_comparison,
        kwargs={"trained_model": trained_model, "trials": 20, "seed": 2},
        rounds=1, iterations=1,
    )
    assert result.rows

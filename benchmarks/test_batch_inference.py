"""Batched hybrid inference: exactness and throughput.

The acceptance contract of the ``repro.api`` batching hot path:

* ``infer_batch`` over >= 32 images produces **bitwise identical**
  probabilities and decisions to per-image ``infer`` calls;
* the batched path is measurably faster than the per-image loop (the
  CNN half collapses into one vectorised
  :meth:`~repro.nn.network.Sequential.forward`; the per-shape
  qualifier remains per-image in both paths).

Parity must hold bitwise -- not approximately -- because a safety
argument certified on single-image inference only carries over to the
batched server if the numbers are the same numbers.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.api import PipelineConfig, QualifierConfig, build_pipeline
from repro.data import render_sign
from repro.models import alexnet_scaled

N_IMAGES = 64
TRIALS = 5


@pytest.fixture(scope="module")
def pipeline():
    model = alexnet_scaled(n_classes=8, input_size=64)
    # Non-redundant qualifier: halves the per-image work that is
    # identical in both paths, so the timing comparison focuses on
    # what batching actually changes.  Parity is unaffected.
    return build_pipeline(
        PipelineConfig(
            architecture="parallel",
            qualifier=QualifierConfig(redundant=False),
            name="batch-bench",
        ),
        model,
    )


@pytest.fixture(scope="module")
def images():
    return np.stack([
        render_sign(i % 8, size=64, rotation=np.deg2rad(2 * i))
        for i in range(N_IMAGES)
    ])


def test_batch_matches_singles_bitwise(pipeline, images):
    assert len(images) >= 32
    batch = pipeline.infer_batch(images)
    singles = [pipeline.infer(image) for image in images]
    for got, want in zip(batch, singles):
        np.testing.assert_array_equal(got.probabilities, want.probabilities)
        assert got.predicted_class == want.predicted_class
        assert got.decision == want.decision
        assert got.verdict == want.verdict
    assert sum(batch.decision_counts.values()) == N_IMAGES


def test_batch_faster_than_per_image_loop(pipeline, images):
    pipeline.infer_batch(images)  # warm-up (allocators, caches)
    batch_times = []
    loop_times = []
    for _ in range(TRIALS):
        start = time.perf_counter()
        pipeline.infer_batch(images)
        batch_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        for image in images:
            pipeline.infer(image)
        loop_times.append(time.perf_counter() - start)
    best_batch = min(batch_times)
    best_loop = min(loop_times)
    print()
    print(f"{N_IMAGES} images, best of {TRIALS}: "
          f"batch={best_batch:.3f}s ({N_IMAGES / best_batch:.1f} img/s)  "
          f"loop={best_loop:.3f}s ({N_IMAGES / best_loop:.1f} img/s)  "
          f"speedup={best_loop / best_batch:.2f}x")
    assert best_batch < best_loop, (
        f"batched inference ({best_batch:.3f}s) must beat the "
        f"per-image loop ({best_loop:.3f}s)"
    )


def test_stream_throughput_matches_batch(pipeline, images):
    """infer_stream is chunked infer_batch: same results, same order."""
    batch = pipeline.infer_batch(images)
    streamed = list(pipeline.infer_stream(iter(images), batch_size=16))
    assert len(streamed) == len(batch)
    for got, want in zip(streamed, batch):
        np.testing.assert_array_equal(got.probabilities, want.probabilities)
        assert got.decision == want.decision

#!/usr/bin/env python
"""Queryable catalog of timing and campaign artifacts.

Thin launcher for :mod:`repro.catalog.cli` (also reachable as
``python -m repro.catalog``).  Examples:

    # File every shipped timing artifact (idempotent):
    scripts/catalog.py ingest benchmarks/artifacts

    # What's catalogued?
    scripts/catalog.py list

    # The speedup trajectory across all catalogued benches:
    scripts/catalog.py trend --metric speedup

    # Everything about one artifact:
    scripts/catalog.py show serving_throughput_timing --json

See docs/catalog.md.
"""

from __future__ import annotations

import sys
from pathlib import Path

# Allow running straight from a checkout: scripts/catalog.py.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.catalog.cli import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""Run seeded serving-chaos campaigns from the command line.

Drives the ``serving_chaos`` campaign target (:mod:`repro.chaos`)
through the standard engine, so runs are seeded, sharded, resumable
and bitwise worker-count invariant.  Exits non-zero if any trial's
serving invariants failed (``silent_corruption``) or aborted
(``detected_aborted``).  Examples:

    # The full preset sweep, two trials each, serially:
    scripts/chaos.py run

    # One fault type, stored as resumable artifacts + catalog summary:
    scripts/chaos.py run --fault batcher_crash --trials 5 \\
        --artifacts artifacts/chaos --summary-json chaos_summary.json

    # Parallel workers (identical fingerprint, by construction):
    scripts/chaos.py run --workers 4 --json

See docs/chaos.md.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# Allow running straight from a checkout: scripts/chaos.py.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.campaigns.engine import run_campaign  # noqa: E402
from repro.chaos.campaign import (  # noqa: E402
    PRESETS,
    chaos_campaign_spec,
    chaos_summary,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="chaos",
        description="Seeded service-level chaos campaigns",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    run = sub.add_parser(
        "run", help="run a serving_chaos campaign and check invariants"
    )
    run.add_argument(
        "--fault",
        default="all",
        choices=("all", *sorted(PRESETS)),
        help="fault preset to sweep ('all' grids every preset)",
    )
    run.add_argument(
        "--trials", type=int, default=2, help="trials per grid cell"
    )
    run.add_argument("--seed", type=int, default=0, help="root seed")
    run.add_argument(
        "--requests", type=int, default=10,
        help="base requests per experiment",
    )
    run.add_argument(
        "--workers", type=int, default=None,
        help="parallel worker processes (default: serial)",
    )
    run.add_argument(
        "--architecture", default="parallel",
        choices=("parallel", "integrated"),
    )
    run.add_argument(
        "--cache", default="off", choices=("off", "lru"),
        help="response-cache mode the experiments serve under",
    )
    run.add_argument(
        "--artifacts", default=None, metavar="DIR",
        help="CampaignStore directory (spec/shards/report; resumable)",
    )
    run.add_argument(
        "--summary-json", default=None, metavar="PATH",
        help="write the catalog-ingestable chaos summary here",
    )
    run.add_argument(
        "--json", action="store_true",
        help="print the summary as JSON instead of a table",
    )
    return parser


def _run(args: argparse.Namespace) -> int:
    faults = (
        tuple(sorted(PRESETS)) if args.fault == "all" else (args.fault,)
    )
    spec = chaos_campaign_spec(
        faults=faults,
        trials=args.trials,
        seed=args.seed,
        n_requests=args.requests,
        architecture=args.architecture,
        cache=args.cache,
    )
    report = run_campaign(
        spec,
        workers=args.workers,
        artifacts_dir=args.artifacts,
        overwrite=False,
    )
    summary = chaos_summary(report)
    if args.summary_json:
        path = Path(args.summary_json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(summary, indent=2, sort_keys=True))
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(f"chaos campaign : {summary['chaos_campaign']}")
        print(f"spec hash      : {summary['spec_hash'][:16]}...")
        print(f"fingerprint    : {summary['fingerprint'][:16]}...")
        print(
            f"trials         : {summary['trials']} "
            f"({summary['invariants_held_trials']} held invariants)"
        )
        for label, count in summary["outcomes"].items():
            print(f"  {label:<20s} {count}")
    bad = summary["trials"] - summary["invariants_held_trials"]
    if bad:
        print(
            f"FAIL: {bad} trial(s) violated serving invariants",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    return _run(args)


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""Run the determinism & dependability linter from a checkout.

Thin wrapper over ``python -m repro.lint`` that works without
PYTHONPATH plumbing::

    scripts/lint.py                 # lint configured roots
    scripts/lint.py --changed       # only git-modified files
    scripts/lint.py --list-rules
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.lint.cli import main  # noqa: E402

if __name__ == "__main__":
    # Default --root to the checkout; flags the caller passes later
    # win under argparse's last-one-wins rule.
    sys.exit(main(["--root", str(REPO_ROOT)] + sys.argv[1:]))

#!/usr/bin/env python
"""Run, resume and inspect fault-injection campaigns from the shell.

Usage:

    # Write a starter spec for a target, edit it, then run it:
    scripts/campaign.py template reliable_conv > spec.json
    scripts/campaign.py run spec.json --workers 4 --artifacts out/

    # Interrupt freely; the same command resumes from completed
    # shards (bitwise identical to an uninterrupted run):
    scripts/campaign.py run spec.json --workers 4 --artifacts out/

    # Inspect a finished (or partial) artifact directory:
    scripts/campaign.py show out/

See docs/campaigns.md for the spec schema and guarantees.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# Allow running straight from a checkout: scripts/campaign.py.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api.registry import CAMPAIGN_TARGETS  # noqa: E402
from repro.campaigns import (  # noqa: E402
    CampaignSpec,
    CampaignStore,
    default_workers,
    run_campaign,
)

_TEMPLATES = {
    "reliable_conv": {
        "name": "coverage-sweep",
        "target": "reliable_conv",
        "fault": {"kind": "transient", "params": {"probability": 1e-3}},
        "trials": 500,
        "seed": 0,
        "grid": {
            "operator_kind": ["plain", "dmr", "tmr"],
            "fault.probability": [1e-3, 1e-2],
        },
        # engine: "auto" keeps the scalar per-op fault stream;
        # "vectorized" opts into speculate-then-verify execution
        # with array-level injection (docs/campaigns.md).
        "target_params": {"vector_length": 32, "engine": "auto"},
        "shard_size": 50,
    },
    "baseline": {
        "name": "unprotected-floor",
        "target": "baseline",
        "fault": {"kind": "transient", "params": {"probability": 1e-2}},
        "trials": 1000,
        "seed": 0,
        "target_params": {"vector_length": 32},
        "shard_size": 100,
    },
    "pipeline": {
        "name": "hybrid-under-faults",
        "target": "pipeline",
        "fault": {"kind": "transient", "params": {"probability": 0.0}},
        "trials": 5,
        "seed": 0,
        "grid": {"fault.probability": [0.0, 1e-5, 1e-4]},
        "target_params": {"input_size": 96, "bucket_ceiling": 1000},
        "shard_size": 1,
    },
    "checkpoint_segment": {
        "name": "rollback-distance",
        "target": "checkpoint_segment",
        "fault": {"kind": "transient", "params": {"probability": 1e-2}},
        "trials": 200,
        "seed": 0,
        "grid": {"segment_size": [1, 4, 16, 64]},
        "target_params": {"compare_cost": 8.0},
        "shard_size": 50,
    },
}


def _cmd_run(args: argparse.Namespace) -> int:
    spec = CampaignSpec.from_dict(json.loads(Path(args.spec).read_text()))

    def progress(shard, done, total):
        print(
            f"\rshard {shard.index} done ({done}/{total})",
            end="", file=sys.stderr, flush=True,
        )

    report = run_campaign(
        spec,
        workers=args.workers,
        artifacts_dir=args.artifacts,
        overwrite=args.overwrite,
        shard_limit=args.shard_limit,
        on_shard=progress,
    )
    print(file=sys.stderr)
    print(report.to_text())
    if not report.complete:
        print(
            f"partial: {report.trials}/{report.total_trials_expected} "
            "trials on disk; re-run to continue",
            file=sys.stderr,
        )
        return 2
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    directory = Path(args.artifacts)
    manifest = json.loads((directory / "spec.json").read_text())
    spec = CampaignSpec.from_dict(manifest["spec"])
    store = CampaignStore(directory, spec)
    if (directory / "report.json").exists():
        print(store.load_report().to_text())
        return 0
    # Partial campaign: rebuild what the shards on disk give us.
    report = run_campaign(
        spec, artifacts_dir=directory, shard_limit=0
    )
    print(report.to_text())
    return 0 if report.complete else 2


def _cmd_template(args: argparse.Namespace) -> int:
    print(json.dumps(_TEMPLATES[args.target], indent=2))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="campaign.py",
        description="Parallel fault-injection campaign runner.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run or resume a campaign spec")
    run_p.add_argument("spec", help="path to a CampaignSpec JSON file")
    run_p.add_argument(
        "--workers", type=int, default=default_workers(),
        help="worker processes (default: usable cores; 1 = serial)",
    )
    run_p.add_argument(
        "--artifacts", default=None,
        help="artifact directory for JSONL shards + resume",
    )
    run_p.add_argument(
        "--overwrite", action="store_true",
        help="discard artifacts from a different spec",
    )
    run_p.add_argument(
        "--shard-limit", type=int, default=None,
        help="run at most N new shards this invocation",
    )
    run_p.set_defaults(func=_cmd_run)

    show_p = sub.add_parser(
        "show", help="print the report of an artifact directory"
    )
    show_p.add_argument("artifacts")
    show_p.set_defaults(func=_cmd_show)

    template_p = sub.add_parser(
        "template", help="print a starter spec for a target"
    )
    template_p.add_argument(
        "target", choices=sorted(_TEMPLATES),
        help=f"registered targets: {CAMPAIGN_TARGETS.names() or 'see docs'}",
    )
    template_p.set_defaults(func=_cmd_template)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())

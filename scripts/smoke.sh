#!/usr/bin/env bash
# Smoke check: tier-1 tests plus the quickstart example, each under a
# timeout.  Intended as the minimal pre-merge gate:
#
#   scripts/smoke.sh            # ~2-3 minutes
#   SMOKE_TEST_TIMEOUT=1200 scripts/smoke.sh
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

TEST_TIMEOUT="${SMOKE_TEST_TIMEOUT:-600}"
EXAMPLE_TIMEOUT="${SMOKE_EXAMPLE_TIMEOUT:-300}"
LINT_TIMEOUT="${SMOKE_LINT_TIMEOUT:-120}"

echo "== determinism lint, project pass (timeout ${LINT_TIMEOUT}s) =="
timeout "${LINT_TIMEOUT}" python -m repro.lint --project src tests benchmarks

echo "== tier-1 tests (timeout ${TEST_TIMEOUT}s) =="
timeout "${TEST_TIMEOUT}" python -m pytest -x -q -m "not slow"

echo "== examples/quickstart.py (timeout ${EXAMPLE_TIMEOUT}s) =="
timeout "${EXAMPLE_TIMEOUT}" python examples/quickstart.py

echo "== serving chaos scenario (seeded, invariants gate) =="
CHAOS_TIMEOUT="${SMOKE_CHAOS_TIMEOUT:-120}"
timeout "${CHAOS_TIMEOUT}" python scripts/chaos.py run \
    --fault storm --trials 1 --requests 8 --seed 0

echo "== catalog ingest + trend round-trip =="
# The durable catalog must file every shipped timing artifact and
# reproduce the speedup trajectory from SQLite (idempotent: a stale
# smoke DB from a previous run is removed first).
SMOKE_CATALOG_DB="$(mktemp -d)/catalog.sqlite"
python scripts/catalog.py --db "${SMOKE_CATALOG_DB}" \
    ingest benchmarks/artifacts
python scripts/catalog.py --db "${SMOKE_CATALOG_DB}" trend
rm -rf "$(dirname "${SMOKE_CATALOG_DB}")"

echo "smoke: OK"

#!/usr/bin/env python
"""Drive the micro-batching serving layer with synthetic traffic.

Spins up a :class:`repro.serving.PipelineServer` around a hybrid
pipeline, fires request-per-image traffic at it from concurrent client
threads, and prints the server's own metrics (throughput, latency
percentiles, realized batch size, backpressure counters) -- plus an
optional apples-to-apples serial ``infer()`` comparison.

Examples:

    # 512 requests from 16 clients, default batching knobs:
    scripts/serve.py

    # Bursty overload against a small reject-policy queue:
    scripts/serve.py --requests 1000 --clients 32 \\
        --queue-capacity 32 --overflow reject

    # Skewed traffic against the response cache (hit-rate reported):
    scripts/serve.py --cache lru --zipf 1.1 --requests 2000

    # Compare against the serial per-request loop and emit JSON:
    scripts/serve.py --compare-serial --json

See docs/serving.md for the knobs and the parity guarantee.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from pathlib import Path

# Allow running straight from a checkout: scripts/serve.py.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from repro.api import (  # noqa: E402
    PipelineConfig,
    QualifierConfig,
    ServingConfig,
    build_pipeline,
)
from repro.data import render_sign  # noqa: E402
from repro.models.smallcnn import small_cnn  # noqa: E402
from repro.serving import ServerOverloaded  # noqa: E402


def build_args() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="synthetic-traffic demo of the serving layer"
    )
    parser.add_argument("--requests", type=int, default=512,
                        help="total requests to fire (default 512)")
    parser.add_argument("--clients", type=int, default=16,
                        help="concurrent client threads (default 16)")
    parser.add_argument("--image-size", type=int, default=32)
    parser.add_argument("--architecture", default="parallel",
                        choices=["parallel", "integrated"])
    parser.add_argument("--engine", default="auto",
                        choices=["auto", "batched", "scalar"],
                        help="qualifier engine policy (default auto)")
    parser.add_argument("--max-batch", type=int, default=32)
    parser.add_argument("--max-wait-ms", type=float, default=2.0)
    parser.add_argument("--queue-capacity", type=int, default=256)
    parser.add_argument("--overflow", default="block",
                        choices=["block", "reject"])
    parser.add_argument("--cache", default="off",
                        choices=["off", "lru"],
                        help="content-addressed response cache "
                             "(default off)")
    parser.add_argument("--cache-max-entries", type=int, default=1024,
                        help="LRU capacity under --cache lru")
    parser.add_argument("--zipf", type=float, default=None,
                        metavar="S",
                        help="draw each request's image Zipf(S) over "
                             "the corpus (skewed traffic; default: "
                             "round-robin)")
    parser.add_argument("--jitter-ms", type=float, default=0.2,
                        help="mean per-client inter-request delay")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--compare-serial", action="store_true",
                        help="also time a serial infer() loop and "
                             "report the speedup")
    parser.add_argument("--json", action="store_true",
                        help="emit a machine-readable summary")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_args().parse_args(argv)
    rng = np.random.default_rng(args.seed)

    model = small_cnn(n_classes=8, input_size=args.image_size)
    pipeline = build_pipeline(
        PipelineConfig(
            architecture=args.architecture,
            qualifier=QualifierConfig(redundant=True, engine=args.engine),
            pin_sobel=args.architecture == "integrated",
            name="serve-demo",
        ),
        model,
    )
    images = np.stack([
        render_sign(
            int(rng.integers(8)),
            size=args.image_size,
            rotation=float(rng.uniform(-np.pi, np.pi)),
        )
        for _ in range(min(args.requests, 256))
    ]).astype(np.float32)

    config = ServingConfig(
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        queue_capacity=max(args.queue_capacity, args.max_batch),
        overflow=args.overflow,
        cache=args.cache,
        cache_max_entries=args.cache_max_entries,
    )
    if args.zipf is not None:
        ranks = np.arange(1, len(images) + 1, dtype=np.float64)
        weights = ranks ** -args.zipf
        zipf_p = weights / weights.sum()
    flagged = []
    counters = {"served": 0, "rejected": 0}
    lock = threading.Lock()

    def client(client_index: int) -> None:
        client_rng = np.random.default_rng((args.seed, client_index))
        shard = range(client_index, args.requests, args.clients)
        for i in shard:
            if args.jitter_ms:
                time.sleep(
                    client_rng.exponential(args.jitter_ms / 1e3)
                )
            if args.zipf is not None:
                image = images[client_rng.choice(len(images), p=zipf_p)]
            else:
                image = images[i % len(images)]
            try:
                pending = server.submit(image)
                pending.result(timeout=120)
                with lock:
                    counters["served"] += 1
            except ServerOverloaded:
                with lock:
                    counters["rejected"] += 1

    start = time.perf_counter()
    with pipeline.serve(config, on_degraded=flagged.append) as server:
        threads = [
            threading.Thread(target=client, args=(i,))
            for i in range(args.clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = server.stats()
    wall = time.perf_counter() - start

    summary = {
        "requests": args.requests,
        "clients": args.clients,
        "wall_seconds": wall,
        "client_served": counters["served"],
        "client_rejected": counters["rejected"],
        "degraded_routed": len(flagged),
        # Server-side accounting, surfaced top-level so downstream
        # tooling need not dig through "stats": backpressure rejects,
        # qualifier-flagged results, and abandoned requests.
        "rejected": stats.rejected,
        "degraded": stats.degraded,
        "cancelled": stats.cancelled,
        "cache": args.cache,
        "cache_hit_rate": stats.cache_hit_rate,
        "stats": stats.to_dict(),
    }

    if args.compare_serial:
        sample = images[: min(len(images), 128)]
        serial_start = time.perf_counter()
        for image in sample:
            pipeline.infer(image)
        serial_seconds = time.perf_counter() - serial_start
        serial_rps = len(sample) / serial_seconds
        summary["serial_rps"] = serial_rps
        summary["speedup_vs_serial"] = (
            stats.throughput_rps / serial_rps if serial_rps else 0.0
        )

    if args.json:
        print(json.dumps(summary, indent=2))
        return 0

    print(f"requests          {args.requests} from {args.clients} clients")
    print(f"wall time         {wall:.2f} s")
    print(f"throughput        {stats.throughput_rps:.0f} req/s")
    print(f"latency           p50 {stats.p50_latency_ms:.1f} ms   "
          f"p99 {stats.p99_latency_ms:.1f} ms")
    print(f"micro-batches     {stats.batches} "
          f"(mean size {stats.mean_batch_size:.1f}, max {config.max_batch})")
    print(f"completed/failed  {stats.completed}/{stats.failed}")
    print(f"rejected          {stats.rejected} "
          f"(policy {config.overflow!r}, queue {config.queue_capacity})")
    print(f"cancelled         {stats.cancelled}")
    print(f"degraded          {stats.degraded} qualifier-flagged "
          f"({len(flagged)} routed to the hook)")
    if args.cache != "off":
        print(f"cache             {stats.cache_hits} hits + "
              f"{stats.coalesced_joins} joins / {stats.cache_misses} "
              f"misses (hit-rate {stats.cache_hit_rate:.2f}, "
              f"{stats.cache_entries} entries, "
              f"{stats.cache_evictions} evictions)")
    if "speedup_vs_serial" in summary:
        print(f"serial baseline   {summary['serial_rps']:.0f} req/s "
              f"-> {summary['speedup_vs_serial']:.2f}x with batching")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python3
"""Assert the project pass stays cheap enough for pre-commit use.

Runs ``python -m repro.lint --project`` twice -- once to populate the
summary cache, once cache-warm -- and fails if the warm run exceeds
the wall-clock budget (default 10 s, ``--budget`` to override).  The
analyzer is only useful while developers can afford to run it on every
commit; this is the regression test for that property.

Stdlib-only, like the linter itself: CI runs it with no installs.

Usage::

    PYTHONPATH=src python scripts/lint_budget.py [--budget 10.0]
"""

from __future__ import annotations

import argparse
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def run_project_pass() -> tuple[float, int]:
    """One ``--project`` run; (wall seconds, exit code)."""
    start = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "repro.lint", "--project"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    elapsed = time.perf_counter() - start
    if proc.returncode not in (0, 1):
        sys.stderr.write(proc.stdout + proc.stderr)
        raise SystemExit(
            f"lint --project failed with exit {proc.returncode}"
        )
    return elapsed, proc.returncode


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--budget",
        type=float,
        default=10.0,
        help="cache-warm wall-clock budget in seconds (default: 10)",
    )
    args = parser.parse_args(argv)

    cold, _ = run_project_pass()
    warm, _ = run_project_pass()
    print(
        f"lint --project: cold {cold:.2f}s, cache-warm {warm:.2f}s "
        f"(budget {args.budget:.1f}s)"
    )
    if warm > args.budget:
        print(
            f"BUDGET EXCEEDED: cache-warm project pass took {warm:.2f}s "
            f"> {args.budget:.1f}s; the analyzer must stay cheap enough "
            f"to run on every commit",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

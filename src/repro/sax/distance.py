"""Distances between SAX words.

The MINDIST lower bound and its rotation-invariant form are the inner
loop of the shape qualifier, so this module is built around two cached
artefacts:

* :func:`symbol_distance_table` is memoised per alphabet size (the
  ``a x a`` breakpoint-gap table used to be rebuilt on every call --
  once per rotation inside the qualifier);
* :func:`rotation_index_tensor` precomputes every cyclic rotation of a
  template word as an ``(rotations, w)`` integer matrix, so the
  rotation scan is one fancy-indexing pass instead of a Python loop
  over string slices.

Both the scalar and the batched qualifier paths share these kernels;
the batched forms reduce over the contiguous trailing axis, which
keeps their floats bitwise identical to the historical per-rotation
loop (same pairwise summation, same IEEE sqrt/multiply chain).
"""

from __future__ import annotations

import math
from functools import lru_cache

import numpy as np

from repro.sax.breakpoints import gaussian_breakpoints
from repro.sax.sax import ALPHABET


@lru_cache(maxsize=None)
def _cached_symbol_table(alphabet_size: int) -> np.ndarray:
    """Shared read-only ``dist()`` table for one alphabet size."""
    bp = gaussian_breakpoints(alphabet_size)
    table = np.zeros((alphabet_size, alphabet_size), dtype=np.float64)
    for r in range(alphabet_size):
        for c in range(alphabet_size):
            if abs(r - c) > 1:
                hi, lo = max(r, c), min(r, c)
                table[r, c] = bp[hi - 1] - bp[lo]
    table.setflags(write=False)
    return table


def symbol_distance_table(alphabet_size: int) -> np.ndarray:
    """The SAX ``dist()`` lookup table.

    ``table[r, c] = 0`` when ``|r - c| <= 1`` (adjacent regions are
    indistinguishable under the lower bound), otherwise the gap between
    the regions' nearest breakpoints.  Computed once per alphabet size
    and cached; the returned array is a private mutable copy.
    """
    return _cached_symbol_table(alphabet_size).copy()


def _indices(word: str, alphabet_size: int) -> np.ndarray:
    idx = np.array([ALPHABET.index(ch) for ch in word])
    if (idx >= alphabet_size).any():
        raise ValueError(
            f"word {word!r} uses symbols beyond alphabet size "
            f"{alphabet_size}"
        )
    return idx


def word_indices(word: str, alphabet_size: int) -> np.ndarray:
    """Integer symbol indices of a SAX word (validated against ``a``)."""
    return _indices(word, alphabet_size)


def mindist(
    word_a: str,
    word_b: str,
    alphabet_size: int,
    series_length: int,
) -> float:
    """MINDIST lower bound between the series behind two SAX words.

    ``sqrt(n / w) * sqrt(sum dist(a_i, b_i)^2)`` from the SAX paper,
    where ``n`` is the original series length and ``w`` the word
    length.
    """
    if len(word_a) != len(word_b):
        raise ValueError("words must have equal length")
    table = _cached_symbol_table(alphabet_size)
    ia = _indices(word_a, alphabet_size)
    ib = _indices(word_b, alphabet_size)
    gaps = table[ia, ib]
    w = len(word_a)
    return math.sqrt(series_length / w) * math.sqrt(float((gaps**2).sum()))


def hamming_distance(word_a: str, word_b: str) -> int:
    """Number of differing positions between two equal-length words."""
    if len(word_a) != len(word_b):
        raise ValueError("words must have equal length")
    return sum(1 for a, b in zip(word_a, word_b) if a != b)


def rotation_index_tensor(word: str, alphabet_size: int) -> np.ndarray:
    """All cyclic rotations of ``word`` as an ``(w, w)`` index matrix.

    Row ``r`` holds the symbol indices of ``word[r:] + word[:r]`` --
    the operand :func:`min_rotation_distance` compares against, one
    row per candidate rotation.
    """
    idx = _indices(word, alphabet_size)
    w = len(idx)
    if w == 0:
        return np.zeros((0, 0), dtype=idx.dtype)
    # Row r = indices rolled left by r: gather with a (w, w) offset grid.
    offsets = (np.arange(w)[:, None] + np.arange(w)[None, :]) % w
    return idx[offsets]


def mindist_profile(
    symbols: np.ndarray,
    rotations: np.ndarray,
    alphabet_size: int,
    series_length: int,
) -> np.ndarray:
    """MINDIST of one observed word against stacked candidate words.

    ``symbols`` is the observed word's ``(w,)`` index vector;
    ``rotations`` an ``(..., w)`` stack of candidate index vectors
    (typically a :func:`rotation_index_tensor`, or several of them
    stacked along a leading template axis).  Returns the ``(...)``
    distances, each bitwise equal to the corresponding scalar
    :func:`mindist` call: the squared-gap sum reduces the same
    contiguous ``w`` elements and the scale/sqrt chain is the same
    IEEE sequence.
    """
    table = _cached_symbol_table(alphabet_size)
    w = symbols.shape[-1]
    if rotations.shape[-1] != w:
        raise ValueError("words must have equal length")
    gaps = table[symbols, rotations]
    sums = (gaps**2).sum(axis=-1)
    return math.sqrt(series_length / w) * np.sqrt(sums)


def min_rotation_distance(
    word_a: str,
    word_b: str,
    alphabet_size: int,
    series_length: int,
) -> tuple[float, int]:
    """MINDIST minimised over all cyclic rotations of ``word_b``.

    Centroid-distance signatures are only defined up to the starting
    angle of the boundary walk, so shape comparison must be rotation
    invariant.  Returns ``(distance, best_rotation)`` with the
    earliest rotation winning ties, exactly as the historical
    rotation-by-rotation loop did (``argmin`` returns the first
    minimum).
    """
    if len(word_b) == 0:
        # No rotations to scan (the historical loop body never ran).
        return math.inf, 0
    if len(word_a) != len(word_b):
        raise ValueError("words must have equal length")
    ia = _indices(word_a, alphabet_size)
    rotations = rotation_index_tensor(word_b, alphabet_size)
    distances = mindist_profile(
        ia, rotations, alphabet_size, series_length
    )
    best_rot = int(distances.argmin())
    return float(distances[best_rot]), best_rot

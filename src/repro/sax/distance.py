"""Distances between SAX words."""

from __future__ import annotations

import math

import numpy as np

from repro.sax.breakpoints import gaussian_breakpoints
from repro.sax.sax import ALPHABET


def symbol_distance_table(alphabet_size: int) -> np.ndarray:
    """The SAX ``dist()`` lookup table.

    ``table[r, c] = 0`` when ``|r - c| <= 1`` (adjacent regions are
    indistinguishable under the lower bound), otherwise the gap between
    the regions' nearest breakpoints.
    """
    bp = gaussian_breakpoints(alphabet_size)
    table = np.zeros((alphabet_size, alphabet_size), dtype=np.float64)
    for r in range(alphabet_size):
        for c in range(alphabet_size):
            if abs(r - c) > 1:
                hi, lo = max(r, c), min(r, c)
                table[r, c] = bp[hi - 1] - bp[lo]
    return table


def _indices(word: str, alphabet_size: int) -> np.ndarray:
    idx = np.array([ALPHABET.index(ch) for ch in word])
    if (idx >= alphabet_size).any():
        raise ValueError(
            f"word {word!r} uses symbols beyond alphabet size "
            f"{alphabet_size}"
        )
    return idx


def mindist(
    word_a: str,
    word_b: str,
    alphabet_size: int,
    series_length: int,
) -> float:
    """MINDIST lower bound between the series behind two SAX words.

    ``sqrt(n / w) * sqrt(sum dist(a_i, b_i)^2)`` from the SAX paper,
    where ``n`` is the original series length and ``w`` the word
    length.
    """
    if len(word_a) != len(word_b):
        raise ValueError("words must have equal length")
    table = symbol_distance_table(alphabet_size)
    ia = _indices(word_a, alphabet_size)
    ib = _indices(word_b, alphabet_size)
    gaps = table[ia, ib]
    w = len(word_a)
    return math.sqrt(series_length / w) * math.sqrt(float((gaps**2).sum()))


def hamming_distance(word_a: str, word_b: str) -> int:
    """Number of differing positions between two equal-length words."""
    if len(word_a) != len(word_b):
        raise ValueError("words must have equal length")
    return sum(1 for a, b in zip(word_a, word_b) if a != b)


def min_rotation_distance(
    word_a: str,
    word_b: str,
    alphabet_size: int,
    series_length: int,
) -> tuple[float, int]:
    """MINDIST minimised over all cyclic rotations of ``word_b``.

    Centroid-distance signatures are only defined up to the starting
    angle of the boundary walk, so shape comparison must be rotation
    invariant.  Returns ``(distance, best_rotation)``.
    """
    best = math.inf
    best_rot = 0
    for rot in range(len(word_b)):
        rotated = word_b[rot:] + word_b[:rot]
        d = mindist(word_a, rotated, alphabet_size, series_length)
        if d < best:
            best = d
            best_rot = rot
    return best, best_rot

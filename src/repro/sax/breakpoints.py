"""Gaussian equiprobable breakpoints for SAX discretisation."""

from __future__ import annotations

import math

import numpy as np

# Breakpoints beta_1..beta_{a-1} dividing N(0, 1) into a equiprobable
# regions, tabulated for the alphabet sizes in the original SAX paper.
_TABLE: dict[int, list[float]] = {
    2: [0.0],
    3: [-0.43, 0.43],
    4: [-0.67, 0.0, 0.67],
    5: [-0.84, -0.25, 0.25, 0.84],
    6: [-0.97, -0.43, 0.0, 0.43, 0.97],
    7: [-1.07, -0.57, -0.18, 0.18, 0.57, 1.07],
    8: [-1.15, -0.67, -0.32, 0.0, 0.32, 0.67, 1.15],
    9: [-1.22, -0.76, -0.43, -0.14, 0.14, 0.43, 0.76, 1.22],
    10: [-1.28, -0.84, -0.52, -0.25, 0.0, 0.25, 0.52, 0.84, 1.28],
}

MAX_ALPHABET = 26  # words use lowercase letters


def _normal_ppf(p: float) -> float:
    """Inverse standard-normal CDF (Acklam's rational approximation).

    Implemented locally so :mod:`repro.sax` has no SciPy dependency;
    accuracy (~1e-9 relative) far exceeds what SAX discretisation
    needs.
    """
    if not 0.0 < p < 1.0:
        raise ValueError("p must be in (0, 1)")
    # Coefficients for the central and tail regions.
    a = [-3.969683028665376e01, 2.209460984245205e02,
         -2.759285104469687e02, 1.383577518672690e02,
         -3.066479806614716e01, 2.506628277459239e00]
    b = [-5.447609879822406e01, 1.615858368580409e02,
         -1.556989798598866e02, 6.680131188771972e01,
         -1.328068155288572e01]
    c = [-7.784894002430293e-03, -3.223964580411365e-01,
         -2.400758277161838e00, -2.549732539343734e00,
         4.374664141464968e00, 2.938163982698783e00]
    d = [7.784695709041462e-03, 3.224671290700398e-01,
         2.445134137142996e00, 3.754408661907416e00]
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q
                + c[5]) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q
                           + 1.0)
    if p > 1.0 - p_low:
        q = math.sqrt(-2.0 * math.log(1.0 - p))
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q
                 + c[5]) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q
                            + 1.0)
    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r
            + a[5]) * q / (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r
                            + b[4]) * r + 1.0)


def gaussian_breakpoints(alphabet_size: int) -> np.ndarray:
    """Breakpoints splitting N(0,1) into ``alphabet_size`` regions.

    Returns an array of length ``alphabet_size - 1``.  Sizes present
    in the original SAX paper's table use the published (rounded)
    values; larger sizes are computed from the inverse normal CDF.
    """
    if not 2 <= alphabet_size <= MAX_ALPHABET:
        raise ValueError(
            f"alphabet_size must be in [2, {MAX_ALPHABET}], "
            f"got {alphabet_size}"
        )
    if alphabet_size in _TABLE:
        return np.array(_TABLE[alphabet_size], dtype=np.float64)
    probs = np.arange(1, alphabet_size) / alphabet_size
    return np.array([_normal_ppf(float(p)) for p in probs])

"""Z-normalisation and Piecewise Aggregate Approximation."""

from __future__ import annotations

import numpy as np

# Series with standard deviation below this are treated as constant and
# normalised to all-zeros (the SAX authors' recommendation); prevents
# noise amplification on flat signals such as a perfect circle's
# centroid-distance series.
FLAT_STD_THRESHOLD = 1e-8


def znormalize(series: np.ndarray) -> np.ndarray:
    """Zero-mean, unit-variance normalisation of a 1-D series."""
    series = np.asarray(series, dtype=np.float64)
    if series.ndim != 1:
        raise ValueError("znormalize expects a 1-D series")
    std = series.std()
    if std < FLAT_STD_THRESHOLD:
        return np.zeros_like(series)
    return (series - series.mean()) / std


def znormalize_batch(series: np.ndarray) -> np.ndarray:
    """Row-wise :func:`znormalize` of an ``(n, m)`` matrix.

    Bitwise identical to n scalar calls: NumPy reduces the contiguous
    last axis with the same pairwise summation whether the array is
    1-D or a row of a 2-D matrix, and the flat-series rule applies per
    row.
    """
    series = np.asarray(series, dtype=np.float64)
    if series.ndim != 2:
        raise ValueError("znormalize_batch expects an (n, m) matrix")
    std = series.std(axis=-1)
    mean = series.mean(axis=-1)
    flat = std < FLAT_STD_THRESHOLD
    safe_std = np.where(flat, 1.0, std)
    out = (series - mean[:, None]) / safe_std[:, None]
    out[flat] = 0.0
    return out


def paa(series: np.ndarray, segments: int) -> np.ndarray:
    """Piecewise Aggregate Approximation to ``segments`` values.

    Each output value is the mean of one (possibly fractional) frame
    of the input.  Handles lengths that do not divide evenly by
    weighting boundary samples, matching the definition in the SAX
    paper rather than simple reshape-and-mean.
    """
    series = np.asarray(series, dtype=np.float64)
    if series.ndim != 1:
        raise ValueError("paa expects a 1-D series")
    n = len(series)
    if segments <= 0:
        raise ValueError("segments must be positive")
    if segments > n:
        raise ValueError(f"cannot PAA {n} points into {segments} segments")
    if n % segments == 0:
        return series.reshape(segments, n // segments).mean(axis=1)
    # Fractional frames: distribute each sample's mass over the
    # segments it overlaps.
    out = np.zeros(segments, dtype=np.float64)
    frame = n / segments
    for seg in range(segments):
        start = seg * frame
        end = (seg + 1) * frame
        first = int(np.floor(start))
        last = int(np.ceil(end))
        total = 0.0
        weight = 0.0
        for i in range(first, min(last, n)):
            overlap = min(end, i + 1) - max(start, i)
            if overlap > 0:
                total += series[i] * overlap
                weight += overlap
        # Normalise by the accumulated weight (not the nominal frame
        # length): the two differ by float rounding, and dividing by
        # the nominal length can push a segment mean outside the input
        # range.  Each mean is a convex combination of input samples,
        # so clipping into the observed range removes only rounding.
        out[seg] = total / weight
    return np.clip(out, series.min(), series.max())


def paa_batch(series: np.ndarray, segments: int) -> np.ndarray:
    """Row-wise :func:`paa` of an ``(n, m)`` matrix.

    Bitwise identical to n scalar calls.  The evenly-dividing case is
    the same contiguous reshape-and-mean per row; the fractional-frame
    case keeps the scalar accumulation order (sample-sequential per
    segment) and merely broadcasts each step across the batch axis, so
    every row's float chain is exactly the scalar chain.
    """
    series = np.asarray(series, dtype=np.float64)
    if series.ndim != 2:
        raise ValueError("paa_batch expects an (n, m) matrix")
    n_rows, n = series.shape
    if segments <= 0:
        raise ValueError("segments must be positive")
    if segments > n:
        raise ValueError(f"cannot PAA {n} points into {segments} segments")
    if n % segments == 0:
        return series.reshape(n_rows, segments, n // segments).mean(axis=2)
    out = np.zeros((n_rows, segments), dtype=np.float64)
    frame = n / segments
    for seg in range(segments):
        start = seg * frame
        end = (seg + 1) * frame
        first = int(np.floor(start))
        last = int(np.ceil(end))
        total = np.zeros(n_rows, dtype=np.float64)
        weight = 0.0
        for i in range(first, min(last, n)):
            overlap = min(end, i + 1) - max(start, i)
            if overlap > 0:
                total += series[:, i] * overlap
                weight += overlap
        out[:, seg] = total / weight
    return np.clip(
        out,
        series.min(axis=1, keepdims=True),
        series.max(axis=1, keepdims=True),
    )

"""Symbolic Aggregate approXimation (Lin, Keogh, Lonardi & Chiu, 2003).

SAX reduces a numeric time-series to a short string ("SAX word") that
can be cheaply compared to other strings -- exactly how the paper's
qualifier matches a centroid-distance series against the octagon
template (Figure 3, "the SAX word is visible above the time-series
plot").

Pipeline: z-normalise -> Piecewise Aggregate Approximation (PAA) ->
discretise against Gaussian equiprobable breakpoints -> a word over an
alphabet of configurable size.  :func:`mindist` gives the classic
lower-bounding distance between two words.
"""

from repro.sax.paa import paa, znormalize
from repro.sax.breakpoints import gaussian_breakpoints
from repro.sax.sax import SaxEncoder, sax_word
from repro.sax.distance import (
    hamming_distance,
    mindist,
    min_rotation_distance,
    symbol_distance_table,
)

__all__ = [
    "znormalize",
    "paa",
    "gaussian_breakpoints",
    "SaxEncoder",
    "sax_word",
    "mindist",
    "hamming_distance",
    "min_rotation_distance",
    "symbol_distance_table",
]

"""Symbolic Aggregate approXimation (Lin, Keogh, Lonardi & Chiu, 2003).

SAX reduces a numeric time-series to a short string ("SAX word") that
can be cheaply compared to other strings -- exactly how the paper's
qualifier matches a centroid-distance series against the octagon
template (Figure 3, "the SAX word is visible above the time-series
plot").

Pipeline: z-normalise -> Piecewise Aggregate Approximation (PAA) ->
discretise against Gaussian equiprobable breakpoints -> a word over an
alphabet of configurable size.  :func:`mindist` gives the classic
lower-bounding distance between two words.
"""

from repro.sax.paa import paa, paa_batch, znormalize, znormalize_batch
from repro.sax.breakpoints import gaussian_breakpoints
from repro.sax.sax import SaxEncoder, sax_word, symbols_to_words
from repro.sax.distance import (
    hamming_distance,
    mindist,
    mindist_profile,
    min_rotation_distance,
    rotation_index_tensor,
    symbol_distance_table,
    word_indices,
)

__all__ = [
    "znormalize",
    "znormalize_batch",
    "paa",
    "paa_batch",
    "gaussian_breakpoints",
    "SaxEncoder",
    "sax_word",
    "symbols_to_words",
    "mindist",
    "mindist_profile",
    "hamming_distance",
    "min_rotation_distance",
    "rotation_index_tensor",
    "symbol_distance_table",
    "word_indices",
]

"""SAX encoding: series -> word."""

from __future__ import annotations

import string

import numpy as np

from repro.sax.breakpoints import gaussian_breakpoints
from repro.sax.paa import paa, paa_batch, znormalize, znormalize_batch

ALPHABET = string.ascii_lowercase


class SaxEncoder:
    """Symbolic Aggregate approXimation encoder.

    Parameters
    ----------
    word_length:
        Number of PAA segments (= characters in the word), ``w``.
    alphabet_size:
        Number of symbols, ``a``; symbols are lowercase letters
        starting at ``'a'`` for the lowest region.
    normalize:
        Whether to z-normalise before PAA (the standard definition).
        The qualifier keeps it on so shape signatures are invariant to
        sign size in the image.
    """

    def __init__(
        self,
        word_length: int = 16,
        alphabet_size: int = 8,
        normalize: bool = True,
    ) -> None:
        if word_length <= 0:
            raise ValueError("word_length must be positive")
        self.word_length = word_length
        self.alphabet_size = alphabet_size
        self.normalize = normalize
        self.breakpoints = gaussian_breakpoints(alphabet_size)

    def symbols(self, series: np.ndarray) -> np.ndarray:
        """Integer symbol indices (0 = lowest region) for ``series``."""
        series = np.asarray(series, dtype=np.float64)
        if self.normalize:
            series = znormalize(series)
        reduced = paa(series, self.word_length)
        # side="right": a value equal to a breakpoint belongs to the
        # upper region (beta_i <= value < beta_{i+1} maps to symbol i).
        return np.searchsorted(self.breakpoints, reduced, side="right")

    def encode(self, series: np.ndarray) -> str:
        """SAX word for ``series``."""
        return "".join(ALPHABET[s] for s in self.symbols(series))

    def symbols_batch(self, series: np.ndarray) -> np.ndarray:
        """Row-wise :meth:`symbols` of an ``(n, samples)`` matrix.

        Returns ``(n, word_length)`` integer symbol indices, bitwise
        identical to n scalar calls: normalisation and PAA reduce each
        contiguous row exactly as the 1-D forms do (see
        :func:`~repro.sax.paa.znormalize_batch`), and discretisation
        is an exact integer ``searchsorted``.
        """
        series = np.asarray(series, dtype=np.float64)
        if series.ndim != 2:
            raise ValueError("symbols_batch expects an (n, samples) matrix")
        if self.normalize:
            series = znormalize_batch(series)
        reduced = paa_batch(series, self.word_length)
        return np.searchsorted(self.breakpoints, reduced, side="right")

    def encode_batch(self, series: np.ndarray) -> list[str]:
        """SAX words for the rows of an ``(n, samples)`` matrix."""
        return symbols_to_words(self.symbols_batch(series))

    def decode_levels(self, word: str) -> np.ndarray:
        """Region-centre values for a word (coarse reconstruction).

        Each symbol maps to the midpoint of its breakpoint interval
        (edge regions use the adjacent breakpoint offset by the mean
        interval width).  Useful for plotting words over series, as in
        the paper's Figure 3.
        """
        idx = np.array([ALPHABET.index(ch) for ch in word])
        if (idx >= self.alphabet_size).any():
            raise ValueError(
                f"word {word!r} uses symbols outside alphabet of size "
                f"{self.alphabet_size}"
            )
        bp = self.breakpoints
        width = float(np.diff(bp).mean()) if len(bp) > 1 else 1.0
        lows = np.concatenate([[bp[0] - width], bp])
        highs = np.concatenate([bp, [bp[-1] + width]])
        return (lows[idx] + highs[idx]) / 2.0


def symbols_to_words(symbols: np.ndarray) -> list[str]:
    """Render ``(n, w)`` integer symbol indices as SAX word strings."""
    symbols = np.asarray(symbols)
    if symbols.ndim != 2:
        raise ValueError("symbols_to_words expects an (n, w) matrix")
    return ["".join(ALPHABET[s] for s in row) for row in symbols]


def sax_word(
    series: np.ndarray, word_length: int = 16, alphabet_size: int = 8
) -> str:
    """One-shot SAX encoding with default normalisation."""
    return SaxEncoder(word_length, alphabet_size).encode(series)

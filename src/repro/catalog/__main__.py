"""``python -m repro.catalog`` -- alias for ``scripts/catalog.py``."""

from repro.catalog.cli import main

if __name__ == "__main__":
    raise SystemExit(main())

"""``repro.catalog`` -- queryable catalog of perf/campaign artifacts.

Benchmarks emit schema-validated timing JSONs and fault campaigns
emit report JSONs; this package ingests both into one
content-addressed SQLite file so performance trajectories are
machine-queryable across PRs.  See ``docs/catalog.md`` and
``scripts/catalog.py`` (the CLI: ``ingest`` / ``list`` / ``show`` /
``trend``).

>>> from repro.catalog import CatalogStore
>>> with CatalogStore("benchmarks/artifacts/catalog.sqlite") as store:
...     store.ingest_file("benchmarks/artifacts/serving_timing.json")
...     store.trend(metric="speedup")
"""

from repro.catalog.store import (
    ArtifactRecord,
    CatalogError,
    CatalogStore,
    classify_payload,
    content_hash_of,
)

__all__ = [
    "ArtifactRecord",
    "CatalogError",
    "CatalogStore",
    "classify_payload",
    "content_hash_of",
]

"""``scripts/catalog.py`` / ``python -m repro.catalog`` -- the
catalog's command-line face.

Four subcommands over one SQLite file (default
``benchmarks/artifacts/catalog.sqlite``, override with ``--db``):

* ``ingest PATH...`` -- file timing artifacts, campaign reports
  and chaos summaries
  (JSON files, or directories scanned for ``*.json``); idempotent.
* ``list [--kind timing|campaign|chaos]`` -- one line per artifact.
* ``show REF`` -- full payload + exploded metrics for one artifact
  (by id, name, or content-hash prefix).
* ``trend [--metric speedup] [--bench NAME]`` -- a metric family's
  trajectory across every catalogued artifact.

Every subcommand prints human-readable text by default and strict
JSON under ``--json`` (the form the smoke script and tests consume).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.catalog.store import CatalogError, CatalogStore

DEFAULT_DB = "benchmarks/artifacts/catalog.sqlite"


def _iter_json_files(paths: list[str]) -> list[Path]:
    """Expand arguments into JSON files: files pass through,
    directories contribute their ``*.json`` children (sorted, one
    level -- artifact directories are flat)."""
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.glob("*.json")))
        else:
            files.append(path)
    return files


def _cmd_ingest(store: CatalogStore, opts) -> dict:
    ingested, unchanged, failed = [], [], []
    for path in _iter_json_files(opts.paths):
        try:
            artifact_id, created = store.ingest_file(path)
        except CatalogError as error:
            if opts.strict:
                raise
            failed.append({"path": str(path), "error": str(error)})
            continue
        entry = {"path": str(path), "id": artifact_id}
        (ingested if created else unchanged).append(entry)
    return {
        "db": store.path,
        "ingested": ingested,
        "unchanged": unchanged,
        "failed": failed,
        "artifacts_total": len(store),
    }


def _render_ingest(summary: dict) -> str:
    lines = [
        f"catalog {summary['db']}: "
        f"{len(summary['ingested'])} new, "
        f"{len(summary['unchanged'])} unchanged, "
        f"{len(summary['failed'])} failed "
        f"({summary['artifacts_total']} total)"
    ]
    for entry in summary["ingested"]:
        lines.append(f"  + [{entry['id']}] {entry['path']}")
    for entry in summary["unchanged"]:
        lines.append(f"  = [{entry['id']}] {entry['path']}")
    for entry in summary["failed"]:
        lines.append(f"  ! {entry['path']}: {entry['error']}")
    return "\n".join(lines)


def _cmd_list(store: CatalogStore, opts) -> dict:
    records = store.artifacts(kind=opts.kind)
    return {
        "db": store.path,
        "artifacts": [
            {
                "id": record.id,
                "kind": record.kind,
                "name": record.name,
                "bench": record.bench,
                "batch": record.batch,
                "content_hash": record.content_hash[:12],
            }
            for record in records
        ],
    }


def _render_list(summary: dict) -> str:
    rows = summary["artifacts"]
    if not rows:
        return f"catalog {summary['db']}: empty"
    lines = [f"catalog {summary['db']}: {len(rows)} artifact(s)"]
    for row in rows:
        batch = "-" if row["batch"] is None else row["batch"]
        lines.append(
            f"  [{row['id']:>3}] {row['kind']:<8} {row['name']:<42} "
            f"bench={row['bench']} batch={batch} "
            f"hash={row['content_hash']}"
        )
    return "\n".join(lines)


def _cmd_show(store: CatalogStore, opts) -> dict:
    record = store.get(opts.ref)
    return {
        "id": record.id,
        "kind": record.kind,
        "name": record.name,
        "bench": record.bench,
        "batch": record.batch,
        "content_hash": record.content_hash,
        "source": record.source,
        "metrics": store.metrics_for(record.id),
        "payload": record.payload,
    }


def _render_show(summary: dict) -> str:
    lines = [
        f"[{summary['id']}] {summary['kind']} {summary['name']}",
        f"  bench:  {summary['bench']}  batch: {summary['batch']}",
        f"  hash:   {summary['content_hash']}",
        f"  source: {summary['source'] or '(none)'}",
        "  metrics:",
    ]
    for key, value in summary["metrics"].items():
        lines.append(f"    {key:<32} {value:.6g}")
    lines.append("  payload:")
    payload = json.dumps(summary["payload"], indent=2, sort_keys=True)
    lines.extend("    " + line for line in payload.splitlines())
    return "\n".join(lines)


def _cmd_trend(store: CatalogStore, opts) -> dict:
    rows = store.trend(metric=opts.metric, bench=opts.bench)
    return {
        "db": store.path,
        "metric": opts.metric,
        "rows": [
            {
                "name": name,
                "bench": bench,
                "batch": batch,
                "key": key,
                "value": value,
            }
            for name, bench, batch, key, value in rows
        ],
    }


def _render_trend(summary: dict) -> str:
    rows = summary["rows"]
    if not rows:
        return f"no '{summary['metric']}' metrics catalogued"
    lines = [f"{summary['metric']} trajectory ({len(rows)} rows)"]
    for row in rows:
        batch = "-" if row["batch"] is None else row["batch"]
        lines.append(
            f"  {row['name']:<42} batch={batch!s:<5} "
            f"{row['key']:<28} {row['value']:8.3f}"
        )
    return "\n".join(lines)


_COMMANDS = {
    "ingest": (_cmd_ingest, _render_ingest),
    "list": (_cmd_list, _render_list),
    "show": (_cmd_show, _render_show),
    "trend": (_cmd_trend, _render_trend),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="catalog",
        description="Queryable catalog of timing, campaign and chaos artifacts",
    )
    parser.add_argument(
        "--db",
        default=DEFAULT_DB,
        help=f"catalog SQLite file (default: {DEFAULT_DB})",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable JSON instead of text",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    ingest = sub.add_parser(
        "ingest", help="file timing/campaign/chaos JSONs (idempotent)"
    )
    ingest.add_argument(
        "paths", nargs="+",
        help="JSON files or directories holding them",
    )
    ingest.add_argument(
        "--strict",
        action="store_true",
        help="fail the run on the first invalid artifact",
    )

    list_cmd = sub.add_parser("list", help="one line per artifact")
    list_cmd.add_argument(
        "--kind", choices=("timing", "campaign", "chaos"), default=None
    )

    show = sub.add_parser("show", help="full record for one artifact")
    show.add_argument(
        "ref", help="artifact id, name, or content-hash prefix"
    )

    trend = sub.add_parser(
        "trend", help="a metric family across all artifacts"
    )
    trend.add_argument(
        "--metric",
        default="speedup",
        help="metric key or family prefix (default: speedup, which "
        "also matches speedup_vs_*)",
    )
    trend.add_argument(
        "--bench", default=None, help="restrict to one bench name"
    )

    return parser


def main(argv: list[str] | None = None) -> int:
    opts = build_parser().parse_args(argv)
    command, render = _COMMANDS[opts.command]
    try:
        with CatalogStore(opts.db) as store:
            summary = command(store, opts)
    except (CatalogError, KeyError) as error:
        message = (
            str(error.args[0])
            if isinstance(error, KeyError) and error.args
            else str(error)
        )
        print(f"error: {message}", file=sys.stderr)
        return 1
    if opts.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(render(summary))
    if opts.command == "ingest" and summary["failed"]:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""SQLite-backed catalog of performance and campaign artifacts.

The repo's benches write schema-validated timing JSONs
(``benchmarks/timing_schema.py``) and the fault-injection engine
writes campaign reports (``repro.campaigns.artifacts.CampaignStore``);
the chaos layer writes campaign summaries of serving-invariant runs
(``repro.chaos.campaign.chaos_summary``).  All are flat files that CI
uploads and humans eyeball; none is *queryable* -- "how did the
serving speedup move over the last five PRs?" means opening five JSON
files by hand.  :class:`CatalogStore`
closes that gap: it ingests every artifact kind into one SQLite file
with their numeric metrics exploded into an indexed table, so perf
trajectories become one SQL (or ``scripts/catalog.py trend``) query.

Design rules
------------

* **Content-addressed and idempotent.**  Every artifact is keyed by
  the sha256 of its canonical JSON (``sort_keys``, compact
  separators) -- the same content-hash idiom as
  :meth:`repro.campaigns.spec.CampaignSpec.content_hash`.  Ingesting
  the same payload twice is a no-op, so re-running a bench or a CI
  job never duplicates rows, and two catalogs fed the same artifacts
  hold identical content.
* **Deterministic.**  The store records nothing ambient -- no
  timestamps, no hostnames, no RNG.  Catalog content is a pure
  function of the ingested payloads, which is what lets tests assert
  against it bit-for-bit.
* **Validating consumer.**  Timing payloads are re-validated against
  the shared schema *at ingest* (mirroring the producer-side
  ``validate_timing_payload`` contract: ``bench``, ``batch``, at
  least one ``*_seconds`` and one ``speedup*`` key, all positive
  finite).  A malformed file is rejected with the violation list
  rather than silently catalogued -- the catalog trusts its own gate,
  not the producer's.

Only the standard library is used (``sqlite3``, ``json``,
``hashlib``).
"""

from __future__ import annotations

import hashlib
import json
import math
import sqlite3
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "ArtifactRecord",
    "CatalogError",
    "CatalogStore",
    "classify_payload",
    "content_hash_of",
]

#: Bumped on any change to the table layout; ingest refuses a DB
#: written by a different layout rather than corrupting it.
SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS artifacts (
    id           INTEGER PRIMARY KEY,
    kind         TEXT NOT NULL,
    name         TEXT NOT NULL,
    bench        TEXT,
    batch        INTEGER,
    content_hash TEXT NOT NULL UNIQUE,
    source       TEXT NOT NULL,
    payload      TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS metrics (
    artifact_id INTEGER NOT NULL
        REFERENCES artifacts(id) ON DELETE CASCADE,
    key         TEXT NOT NULL,
    value       REAL NOT NULL,
    PRIMARY KEY (artifact_id, key)
);
CREATE INDEX IF NOT EXISTS metrics_by_key ON metrics(key);
"""


class CatalogError(ValueError):
    """Malformed artifact, unknown kind, or incompatible catalog DB."""


@dataclass(frozen=True)
class ArtifactRecord:
    """One catalogued artifact (payload parsed back from JSON)."""

    id: int
    kind: str
    name: str
    bench: str | None
    batch: int | None
    content_hash: str
    source: str
    payload: dict


def content_hash_of(payload: dict) -> str:
    """sha256 of the canonical JSON rendering of ``payload`` -- the
    campaign-spec content-hash idiom, applied to artifacts."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def _is_positive_finite(value) -> bool:
    return (
        isinstance(value, (int, float))
        and not isinstance(value, bool)
        and math.isfinite(value)
        and value > 0
    )


def _validate_timing(payload: dict) -> list[str]:
    """Consumer-side mirror of the shared timing-artifact schema.

    Kept independent of ``benchmarks/timing_schema.py`` on purpose:
    the catalog is importable without the benchmarks tree, and a
    consumer that re-checks the contract catches a producer whose
    validation drifted.  ``tests/catalog`` pins the two against each
    other.
    """
    errors: list[str] = []
    bench = payload.get("bench")
    if not isinstance(bench, str) or not bench:
        errors.append("'bench' must be a non-empty string")
    batch = payload.get("batch")
    if not isinstance(batch, int) or isinstance(batch, bool) or batch < 1:
        errors.append("'batch' must be a positive int")
    seconds_keys = [k for k in payload if k.endswith("_seconds")]
    if not seconds_keys:
        errors.append("at least one '*_seconds' wall-time key required")
    speedup_keys = [
        k for k in payload
        if k == "speedup" or k.startswith("speedup_vs_")
    ]
    if not speedup_keys:
        errors.append(
            "at least one 'speedup' / 'speedup_vs_*' key required"
        )
    for key in seconds_keys + speedup_keys:
        if not _is_positive_finite(payload[key]):
            errors.append(
                f"{key!r} must be a positive finite number, "
                f"got {payload[key]!r}"
            )
    for key in payload:
        if key.startswith("min_") and key.endswith("_asserted"):
            if not _is_positive_finite(payload[key]):
                errors.append(
                    f"{key!r} must be a positive finite number, "
                    f"got {payload[key]!r}"
                )
    return errors


def _validate_campaign(payload: dict) -> list[str]:
    """Structural checks for a ``CampaignReport.to_dict`` payload."""
    errors: list[str] = []
    for key in ("spec_name", "spec_hash", "target"):
        if not isinstance(payload.get(key), str) or not payload.get(key):
            errors.append(f"{key!r} must be a non-empty string")
    expected = payload.get("total_trials_expected")
    if not isinstance(expected, int) or isinstance(expected, bool):
        errors.append("'total_trials_expected' must be an int")
    if not isinstance(payload.get("cells"), list):
        errors.append("'cells' must be a list of cell reports")
    return errors


def _validate_chaos(payload: dict) -> list[str]:
    """Structural checks for a ``chaos_summary`` payload."""
    errors: list[str] = []
    for key in ("chaos_campaign", "target", "spec_hash", "fingerprint"):
        if not isinstance(payload.get(key), str) or not payload.get(key):
            errors.append(f"{key!r} must be a non-empty string")
    for key in ("trials", "invariants_held_trials"):
        value = payload.get(key)
        if (
            not isinstance(value, int)
            or isinstance(value, bool)
            or value < 0
        ):
            errors.append(f"{key!r} must be a non-negative int")
    outcomes = payload.get("outcomes")
    if not isinstance(outcomes, dict):
        errors.append("'outcomes' must be a dict of outcome counts")
    else:
        for label, count in outcomes.items():
            if (
                not isinstance(count, int)
                or isinstance(count, bool)
                or count < 0
            ):
                errors.append(
                    f"outcome {label!r} must be a non-negative int, "
                    f"got {count!r}"
                )
    return errors


def classify_payload(payload: dict) -> str:
    """``"timing"``, ``"campaign"`` or ``"chaos"``, by structural
    sniffing.

    A timing artifact has a ``bench`` name and wall-time keys; a
    campaign report has a ``spec_hash`` and per-cell results; a chaos
    summary has a ``chaos_campaign`` name and an ``outcomes`` table
    (checked first -- it also carries a ``spec_hash``).  A payload
    that is none of these raises :class:`CatalogError` (the catalog
    never files something it cannot validate).
    """
    if "chaos_campaign" in payload and "outcomes" in payload:
        return "chaos"
    if "bench" in payload and any(
        key.endswith("_seconds") for key in payload
    ):
        return "timing"
    if "spec_hash" in payload and "cells" in payload:
        return "campaign"
    raise CatalogError(
        "payload is neither a timing artifact (bench + *_seconds), a "
        "campaign report (spec_hash + cells), nor a chaos summary "
        "(chaos_campaign + outcomes)"
    )


def _numeric_metrics(payload: dict) -> dict[str, float]:
    """Every top-level numeric field, exploded for the metrics table."""
    metrics: dict[str, float] = {}
    for key, value in payload.items():
        if (
            isinstance(value, (int, float))
            and not isinstance(value, bool)
            and math.isfinite(float(value))
        ):
            metrics[key] = float(value)
    return metrics


def _campaign_metrics(payload: dict) -> dict[str, float]:
    metrics = _numeric_metrics(payload)
    cells = payload.get("cells", [])
    trials = sum(
        cell.get("trials", 0)
        for cell in cells
        if isinstance(cell, dict)
    )
    metrics["trials"] = float(trials)
    metrics["cells"] = float(len(cells))
    return metrics


def _chaos_metrics(payload: dict) -> dict[str, float]:
    """Top-level numerics plus the outcome table exploded as
    ``outcome_<label>`` -- so silent-corruption counts are one
    ``scripts/catalog.py trend`` query away."""
    metrics = _numeric_metrics(payload)
    for label, count in payload.get("outcomes", {}).items():
        metrics[f"outcome_{label}"] = float(count)
    return metrics


class CatalogStore:
    """The durable artifact catalog (one SQLite file).

    Open with a filesystem path (created on first use) or
    ``":memory:"`` for tests.  Use as a context manager, or call
    :meth:`close` explicitly.
    """

    def __init__(self, path: str | Path = ":memory:") -> None:
        self.path = str(path)
        if self.path != ":memory:":
            Path(self.path).parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(self.path)
        self._conn.executescript(_SCHEMA)
        self._check_schema_version()

    def _check_schema_version(self) -> None:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'"
        ).fetchone()
        if row is None:
            with self._conn:
                self._conn.execute(
                    "INSERT INTO meta (key, value) VALUES (?, ?)",
                    ("schema_version", str(SCHEMA_VERSION)),
                )
        elif row[0] != str(SCHEMA_VERSION):
            raise CatalogError(
                f"catalog {self.path} has schema version {row[0]}, "
                f"this build expects {SCHEMA_VERSION}"
            )

    # -- lifecycle --------------------------------------------------------
    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> CatalogStore:
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- ingest -----------------------------------------------------------
    def ingest(
        self, payload: dict, name: str, source: str = ""
    ) -> tuple[int, bool]:
        """File one artifact payload under ``name``.

        The kind is sniffed (:func:`classify_payload`), the payload
        validated for that kind, and the row keyed by content hash.
        Returns ``(artifact_id, created)`` -- ``created`` is False
        when an identical payload was already catalogued (idempotent
        re-ingest; the existing row wins, including its name).
        """
        kind = classify_payload(payload)
        validators = {
            "timing": _validate_timing,
            "campaign": _validate_campaign,
            "chaos": _validate_chaos,
        }
        errors = validators[kind](payload)
        if errors:
            raise CatalogError(
                f"invalid {kind} artifact {name!r}:\n- "
                + "\n- ".join(errors)
            )
        digest = content_hash_of(payload)
        existing = self._conn.execute(
            "SELECT id FROM artifacts WHERE content_hash = ?", (digest,)
        ).fetchone()
        if existing is not None:
            return existing[0], False
        if kind == "timing":
            bench = payload["bench"]
            batch = payload["batch"]
            metrics = _numeric_metrics(payload)
        elif kind == "chaos":
            bench = payload["chaos_campaign"]
            batch = None
            metrics = _chaos_metrics(payload)
        else:
            bench = payload["spec_name"]
            batch = None
            metrics = _campaign_metrics(payload)
        with self._conn:
            cursor = self._conn.execute(
                "INSERT INTO artifacts "
                "(kind, name, bench, batch, content_hash, source, payload)"
                " VALUES (?, ?, ?, ?, ?, ?, ?)",
                (
                    kind,
                    name,
                    bench,
                    batch,
                    digest,
                    source,
                    json.dumps(
                        payload, sort_keys=True, separators=(",", ":")
                    ),
                ),
            )
            artifact_id = cursor.lastrowid
            self._conn.executemany(
                "INSERT INTO metrics (artifact_id, key, value) "
                "VALUES (?, ?, ?)",
                [
                    (artifact_id, key, value)
                    for key, value in sorted(metrics.items())
                ],
            )
        return artifact_id, True

    def ingest_file(self, path: str | Path) -> tuple[int, bool]:
        """Ingest one JSON file; the stem becomes the artifact name
        and the path its source."""
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError) as error:
            raise CatalogError(f"cannot read {path}: {error}") from error
        if not isinstance(payload, dict):
            raise CatalogError(f"{path}: top-level JSON must be an object")
        return self.ingest(payload, name=path.stem, source=str(path))

    # -- queries ----------------------------------------------------------
    def _record(self, row) -> ArtifactRecord:
        return ArtifactRecord(
            id=row[0],
            kind=row[1],
            name=row[2],
            bench=row[3],
            batch=row[4],
            content_hash=row[5],
            source=row[6],
            payload=json.loads(row[7]),
        )

    _SELECT = (
        "SELECT id, kind, name, bench, batch, content_hash, source, "
        "payload FROM artifacts"
    )

    def artifacts(self, kind: str | None = None) -> list[ArtifactRecord]:
        """All artifacts (optionally one kind), in ingest order."""
        if kind is None:
            rows = self._conn.execute(
                f"{self._SELECT} ORDER BY id"
            ).fetchall()
        else:
            rows = self._conn.execute(
                f"{self._SELECT} WHERE kind = ? ORDER BY id", (kind,)
            ).fetchall()
        return [self._record(row) for row in rows]

    def get(self, ref: str | int) -> ArtifactRecord:
        """One artifact by id, name, or content-hash prefix.

        A name shared by several artifacts resolves to the most
        recently ingested one (names are labels; hashes are
        identities).
        """
        if isinstance(ref, int) or (
            isinstance(ref, str) and ref.isdigit()
        ):
            row = self._conn.execute(
                f"{self._SELECT} WHERE id = ?", (int(ref),)
            ).fetchone()
        else:
            row = self._conn.execute(
                f"{self._SELECT} WHERE name = ? ORDER BY id DESC "
                "LIMIT 1",
                (ref,),
            ).fetchone()
            if row is None and len(ref) >= 8:
                row = self._conn.execute(
                    f"{self._SELECT} WHERE content_hash LIKE ? "
                    "ORDER BY id DESC LIMIT 1",
                    (ref + "%",),
                ).fetchone()
        if row is None:
            raise KeyError(f"no catalogued artifact matches {ref!r}")
        return self._record(row)

    def metrics_for(self, artifact_id: int) -> dict[str, float]:
        rows = self._conn.execute(
            "SELECT key, value FROM metrics WHERE artifact_id = ? "
            "ORDER BY key",
            (artifact_id,),
        ).fetchall()
        return dict(rows)

    def trend(
        self, metric: str = "speedup", bench: str | None = None
    ) -> list[tuple]:
        """Metric trajectory rows: ``(name, bench, batch, key, value)``.

        ``metric`` matches exactly *or* as a family prefix --
        ``"speedup"`` (the default) returns both ``speedup`` and every
        ``speedup_vs_*`` column, which is how ``scripts/catalog.py
        trend`` reproduces each shipped timing artifact's speedup
        columns from the DB.
        """
        query = (
            "SELECT a.name, a.bench, a.batch, m.key, m.value "
            "FROM metrics m JOIN artifacts a ON a.id = m.artifact_id "
            "WHERE (m.key = ? OR m.key LIKE ?)"
        )
        params: list = [metric, metric + "_vs_%"]
        if bench is not None:
            query += " AND a.bench = ?"
            params.append(bench)
        query += " ORDER BY a.id, m.key"
        return self._conn.execute(query, params).fetchall()

    def __len__(self) -> int:
        row = self._conn.execute(
            "SELECT COUNT(*) FROM artifacts"
        ).fetchone()
        return int(row[0])

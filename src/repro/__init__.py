"""Reproduction of *Hybrid Convolutional Neural Networks with
Reliability Guarantee* (Doran & Veljanovska, DSN 2024).

Subpackages
-----------
``repro.api``
    The unified pipeline layer and canonical entry point:
    config-driven construction (``PipelineConfig`` ->
    ``build_pipeline``), string-keyed registries for architectures,
    qualifiers, operators and baselines, and the batch-first
    ``HybridPipeline`` facade (``infer`` / ``infer_batch`` /
    ``infer_stream``).  See ``docs/api-reference.md``.
``repro.serving``
    Concurrent micro-batching inference serving: ``PipelineServer``
    coalesces single-image requests onto ``infer_batch`` with
    backpressure, degradation routing and bitwise serial-``infer``
    parity.  See ``docs/serving.md``.
``repro.core``
    The paper's contribution: the hybrid CNN (reliable + non-reliable
    execution paths), the SAX shape qualifier and the reliable-result
    combination, plus the reliability-guarantee model.
``repro.reliable``
    Qualified arithmetic (Algorithms 1 and 2), the leaky-bucket error
    counter, the reliable convolution kernel (Algorithm 3),
    checkpoint/rollback machinery, TMR voting and a lockstep model.
``repro.faults``
    Software fault injection: IEEE-754 bit flips, transient /
    intermittent / permanent fault models, seeded campaigns.
``repro.nn``
    From-scratch NumPy CNN framework (layers, losses, optimisers,
    trainer with filter pinning, serialisation).
``repro.models``
    AlexNet (paper-faithful and scaled) and a small CNN baseline.
``repro.vision``
    Sobel and friends, edge maps, contour tracing, centroid-distance
    time-series.
``repro.sax``
    Symbolic Aggregate approXimation: z-normalisation, PAA,
    breakpoints, words, MINDIST.
``repro.data``
    Synthetic traffic-sign dataset standing in for GTSRB.
``repro.analysis``
    Confusion matrices, metrics, reliability and guarantee math.
``repro.workflows``
    One module per paper experiment (Table 1, Figures 3 and 4, the
    Sobel pre-initialisation study and the extension experiments).
"""

__version__ = "1.0.0"

"""Fault models: when faults fire and how they corrupt a value.

Terminology follows the dependability literature the paper cites:

* **transient** -- each operation is independently hit with some
  probability; a re-execution is overwhelmingly likely to succeed,
  which is why rollback works ("the assumption being that such an
  error ... will not be present once the system has re-booted");
* **intermittent** -- errors arrive in bursts (e.g. marginal timing
  under temperature); modelled as a two-state Gilbert process;
* **permanent** -- once manifest, every affected operation is
  corrupted the same way (stuck-at behaviour).  Re-execution on the
  same unit cannot help; the paper notes the platform "becomes
  unusable" under temporal redundancy.
"""

from __future__ import annotations

import numpy as np

from repro.faults.bitflip import flip_bit32_array, random_bitflip


class FaultModel:
    """Decides whether an operation is corrupted and how.

    Subclasses implement :meth:`fires` (does this execution get hit?)
    and :meth:`corrupt` (what does the hit do to the result?).

    ``deterministic`` declares that :meth:`apply` (and
    :meth:`apply_array`) is a pure function of the value -- every
    execution of the same operation is corrupted identically, as a
    stuck-at fault is.  The vectorized engine uses it to decide when
    speculation under this fault is still bit-exact against the
    scalar path (a deterministic fault corrupts every redundant pass
    the same way, so comparisons behave identically in both engines).

    Pass an explicit ``rng`` for reproducibility.  When omitted, each
    model gets a *freshly entropy-seeded* generator: a shared default
    stream (the old ``default_rng(0)``) silently made two
    default-constructed models replay identical fault sequences,
    which corrupts any statistic built from more than one model.
    Campaign code never relies on the default -- the engine derives a
    per-trial generator from the spec seed
    (:mod:`repro.campaigns.seeding`) and
    :meth:`repro.campaigns.FaultSpec.build` rejects ``rng=None``.
    """

    #: Whether corruption is a pure function of the value (stuck-at
    #: behaviour); stochastic models leave this False.
    deterministic: bool = False

    def __init__(self, rng: np.random.Generator | None = None) -> None:
        # repro: allow[RNG-SEED] -- deliberate fresh entropy: the PR 2
        # fix replacing the shared default_rng(0) that bit-correlated
        # "independent" fault streams.  Campaign paths always pass an
        # explicit SeedSequence-spawned generator; this default only
        # covers ad-hoc interactive use.
        self.rng = rng if rng is not None else np.random.default_rng()
        self.activations = 0

    def fires(self) -> bool:
        raise NotImplementedError

    def corrupt(self, value: float) -> float:
        raise NotImplementedError

    def apply(self, value: float) -> float:
        """Corrupt ``value`` if the model fires, else pass it through."""
        if self.fires():
            self.activations += 1
            return self.corrupt(value)
        return value

    def apply_array(self, values: np.ndarray) -> np.ndarray:
        """Array form of :meth:`apply` for the vectorized engine's
        speculative passes.

        The base implementation walks the array in C order calling
        :meth:`apply` per element -- correct for any model (it
        preserves sequential state such as a Gilbert burst), but with
        scalar cost.  Models whose draws are independent per operation
        override this with genuinely vectorised sampling; those
        overrides consume the random stream in a different order than
        per-op scalar calls would, which is fine because array
        injection is a distinct (equally valid) sampling of the same
        fault process, never a replay of a scalar run.
        """
        values = np.asarray(values, dtype=np.float64)
        flat = values.reshape(-1)
        out = np.array(
            [self.apply(float(v)) for v in flat], dtype=np.float64
        )
        return out.reshape(values.shape)


class TransientFault(FaultModel):
    """Independent per-operation SEU with probability ``probability``.

    Corruption is a uniformly-random single bit flip, optionally
    restricted to a bit range (see
    :func:`repro.faults.bitflip.random_bitflip`).
    """

    def __init__(
        self,
        probability: float,
        rng: np.random.Generator | None = None,
        bit_range: tuple[int, int] | None = None,
    ) -> None:
        super().__init__(rng)
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        self.probability = probability
        self.bit_range = bit_range

    def fires(self) -> bool:
        return bool(self.rng.random() < self.probability)

    def corrupt(self, value: float) -> float:
        return random_bitflip(
            value, self.rng, width=32, bit_range=self.bit_range
        )

    def apply_array(self, values: np.ndarray) -> np.ndarray:
        """One independent fire draw per element, one bit draw per
        fired element -- the vectorised sampling of the same SEU
        process (see the base-class note on stream order)."""
        values = np.asarray(values, dtype=np.float64)
        fired = self.rng.random(values.shape) < self.probability
        n_fired = int(fired.sum())
        if n_fired == 0:
            return values
        self.activations += n_fired
        low, high = (
            self.bit_range if self.bit_range is not None else (0, 32)
        )
        bits = self.rng.integers(low, high, size=n_fired)
        out = values.copy()
        out[fired] = flip_bit32_array(values[fired], bits)
        return out


class IntermittentFault(FaultModel):
    """Bursty faults: a two-state Gilbert model.

    In the *good* state operations are clean; each operation may move
    to the *bad* state with probability ``burst_start``.  In the bad
    state every operation is corrupted and the state exits with
    probability ``burst_end``.
    """

    def __init__(
        self,
        burst_start: float,
        burst_end: float,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(rng)
        for name, p in (("burst_start", burst_start),
                        ("burst_end", burst_end)):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        self.burst_start = burst_start
        self.burst_end = burst_end
        self.in_burst = False

    def fires(self) -> bool:
        if self.in_burst:
            if self.rng.random() < self.burst_end:
                self.in_burst = False
                return False
            return True
        if self.rng.random() < self.burst_start:
            self.in_burst = True
            return True
        return False

    def corrupt(self, value: float) -> float:
        return random_bitflip(value, self.rng, width=32)


class PermanentFault(FaultModel):
    """Stuck-at fault: always fires, deterministic corruption.

    ``bit`` selects which result bit is stuck; the flip is the same on
    every execution, so redundant re-execution on the same unit agrees
    with itself -- the common-mode blind spot of temporal redundancy
    that only *spatial* (diverse) redundancy can uncover.
    """

    deterministic = True

    def __init__(
        self, bit: int = 30, rng: np.random.Generator | None = None
    ) -> None:
        super().__init__(rng)
        if not 0 <= bit < 32:
            raise ValueError("bit must be in [0, 32)")
        self.bit = bit

    def fires(self) -> bool:
        return True

    def corrupt(self, value: float) -> float:
        from repro.faults.bitflip import flip_bit32

        return flip_bit32(value, self.bit)

    def apply_array(self, values: np.ndarray) -> np.ndarray:
        """Stuck-at on every element: the same bit flips everywhere,
        exactly as per-op scalar application would corrupt it."""
        values = np.asarray(values, dtype=np.float64)
        self.activations += values.size
        return flip_bit32_array(values, self.bit)

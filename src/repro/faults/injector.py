"""Fault injection points: execution units and tensors.

Faults enter at two places, mirroring the paper's threat model
("single event upsets acting on the processing element or data
corruption of the weights and input data"):

* :class:`FaultyExecutionUnit` corrupts *arithmetic results* -- the
  processing-element upset.  Redundant operators calling the unit
  twice see independent draws for transient models, which is what
  makes comparison-based detection work.
* :func:`corrupt_tensor` / :func:`flip_weight_bits` corrupt *stored
  data* -- weights or activations -- before execution.
"""

from __future__ import annotations

import numpy as np

from repro.faults.bitflip import flip_bit32
from repro.faults.models import FaultModel
from repro.reliable.execution_unit import (
    ArrayExecutionUnit,
    ExecutionUnit,
    PerfectExecutionUnit,
    as_array_unit,
)


class FaultyExecutionUnit(ExecutionUnit):
    """An execution unit whose results pass through a fault model.

    Parameters
    ----------
    fault:
        The fault model applied to every result.
    base:
        The underlying (correct) unit; defaults to perfect arithmetic.
    targets:
        Which operations are exposed: ``"both"`` (default),
        ``"multiply"`` or ``"add"``.
    """

    def __init__(
        self,
        fault: FaultModel,
        base: ExecutionUnit | None = None,
        targets: str = "both",
    ) -> None:
        if targets not in ("both", "multiply", "add"):
            raise ValueError("targets must be 'both', 'multiply' or 'add'")
        self.fault = fault
        self.base = base or PerfectExecutionUnit()
        self.targets = targets

    def multiply(self, a: float, b: float) -> float:
        result = self.base.multiply(a, b)
        if self.targets in ("both", "multiply"):
            result = self.fault.apply(result)
        return result

    def add(self, a: float, b: float) -> float:
        result = self.base.add(a, b)
        if self.targets in ("both", "add"):
            result = self.fault.apply(result)
        return result

    def as_array_unit(self) -> "ArrayFaultyExecutionUnit | None":
        """Array counterpart for the vectorized engine's speculative
        passes (the :func:`repro.reliable.execution_unit.as_array_unit`
        hook): same base arithmetic vectorised, with the fault model
        applied to whole result arrays via
        :meth:`~repro.faults.models.FaultModel.apply_array`.  None when
        the base unit itself has no bit-exact array form.
        """
        base = as_array_unit(self.base)
        if base is None:
            return None
        return ArrayFaultyExecutionUnit(self.fault, base, self.targets)


class ArrayFaultyExecutionUnit(ArrayExecutionUnit):
    """Array execution unit whose results pass through a fault model.

    The vectorized engine's injection point: each speculative pass
    computes a tap's products/accumulations as one array op, then the
    fault corrupts the result array element-by-element -- the same
    exposure surface as :class:`FaultyExecutionUnit` gives scalar
    execution, with independent draws per pass so comparison-based
    detection keeps working.  ``deterministic`` holds only when both
    the base arithmetic and the fault are (a stuck-at fault corrupts
    every pass identically, so speculation stays bit-exact against
    the scalar path).
    """

    def __init__(
        self,
        fault: FaultModel,
        base: ArrayExecutionUnit,
        targets: str = "both",
    ) -> None:
        if targets not in ("both", "multiply", "add"):
            raise ValueError("targets must be 'both', 'multiply' or 'add'")
        self.fault = fault
        self.base = base
        self.targets = targets

    @property
    def deterministic(self) -> bool:  # type: ignore[override]
        return self.base.deterministic and self.fault.deterministic

    def multiply(
        self, a: np.ndarray, b: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        result = self.base.multiply(a, b, out=out)
        if self.targets in ("both", "multiply"):
            result = self.fault.apply_array(result)
        return result

    def add(
        self, a: np.ndarray, b: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        result = self.base.add(a, b, out=out)
        if self.targets in ("both", "add"):
            result = self.fault.apply_array(result)
        return result


def corrupt_tensor(
    tensor: np.ndarray,
    n_flips: int,
    rng: np.random.Generator,
    bit_range: tuple[int, int] | None = None,
) -> tuple[np.ndarray, list[tuple[tuple[int, ...], int]]]:
    """Flip ``n_flips`` random bits in random elements of a tensor.

    Returns ``(corrupted_copy, flips)`` where each flip is
    ``(element_index, bit)``.  The input tensor is not modified.
    """
    if n_flips < 0:
        raise ValueError("n_flips must be >= 0")
    corrupted = np.array(tensor, dtype=np.float32, copy=True)
    flat = corrupted.reshape(-1)
    flips: list[tuple[tuple[int, ...], int]] = []
    low, high = bit_range if bit_range is not None else (0, 32)
    for _ in range(n_flips):
        pos = int(rng.integers(0, flat.size))
        bit = int(rng.integers(low, high))
        flat[pos] = flip_bit32(float(flat[pos]), bit)
        flips.append(
            (np.unravel_index(pos, corrupted.shape), bit)
        )
    return corrupted, flips


def flip_weight_bits(
    layer,
    n_flips: int,
    rng: np.random.Generator,
    bit_range: tuple[int, int] | None = None,
) -> list[tuple[tuple[int, ...], int]]:
    """Corrupt a layer's weight tensor in place; returns the flip list.

    Use with try/finally or a saved copy when the corruption must be
    undone -- campaigns in :mod:`repro.faults.campaign` handle that
    bookkeeping.
    """
    corrupted, flips = corrupt_tensor(
        layer.weight.value, n_flips, rng, bit_range=bit_range
    )
    layer.weight.value = corrupted
    return flips

"""Software fault injection.

The paper's failure hypothesis is radiation-induced single event
upsets (SEUs) hitting processing elements or corrupting weights/input
data (Section II, ref [31]).  No radiation source ships with this
repository, so faults are injected in software -- the standard
practice of tools like PyTorchFI, re-implemented here for our NumPy
stack:

* :mod:`repro.faults.bitflip` -- IEEE-754 bit manipulation;
* :mod:`repro.faults.models` -- transient, intermittent, permanent
  (stuck-at) fault models with seeded randomness;
* :mod:`repro.faults.injector` -- a faulty
  :class:`~repro.reliable.execution_unit.ExecutionUnit` that corrupts
  arithmetic results, plus tensor corruption helpers for weights and
  activations;
* :mod:`repro.faults.campaign` -- seeded injection campaigns with
  outcome classification (masked / detected-recovered / detected-
  aborted / silent data corruption).
"""

from repro.faults.bitflip import flip_bit32, flip_bit64, random_bitflip
from repro.faults.models import (
    FaultModel,
    IntermittentFault,
    PermanentFault,
    TransientFault,
)
from repro.faults.injector import (
    FaultyExecutionUnit,
    corrupt_tensor,
    flip_weight_bits,
)
from repro.faults.campaign import (
    CampaignResult,
    Outcome,
    classify_outcome,
    run_operator_campaign,
)

__all__ = [
    "flip_bit32",
    "flip_bit64",
    "random_bitflip",
    "FaultModel",
    "TransientFault",
    "IntermittentFault",
    "PermanentFault",
    "FaultyExecutionUnit",
    "corrupt_tensor",
    "flip_weight_bits",
    "Outcome",
    "classify_outcome",
    "CampaignResult",
    "run_operator_campaign",
]

"""Fault-injection campaigns with outcome classification.

A campaign repeatedly executes a protected kernel under a fault model
and classifies every run:

* ``MASKED`` -- faults fired but the output still equals the golden
  (fault-free) result without any detection (e.g. TMR voting, or the
  flip hit a bit that did not change the value);
* ``DETECTED_RECOVERED`` -- qualifiers caught errors and rollback
  produced the golden result;
* ``DETECTED_ABORTED`` -- the leaky bucket overflowed and the kernel
  reported a persistent failure (explicit, safe outcome);
* ``SILENT_CORRUPTION`` -- the output differs from golden with no
  detection: the outcome reliability engineering exists to prevent;
* ``CLEAN`` -- no fault fired at all.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Outcome(enum.Enum):
    CLEAN = "clean"
    MASKED = "masked"
    DETECTED_RECOVERED = "detected_recovered"
    DETECTED_ABORTED = "detected_aborted"
    SILENT_CORRUPTION = "silent_corruption"


def classify_outcome(
    golden: float,
    value: float | None,
    fault_fired: bool,
    errors_detected: int,
    aborted: bool,
    atol: float = 0.0,
) -> Outcome:
    """Map one run's observables to an :class:`Outcome`.

    ``value`` is None when the run aborted.  ``atol`` allows tolerance
    for accumulations whose re-execution order may legitimately differ
    (0.0 for our deterministic kernels).
    """
    if aborted:
        return Outcome.DETECTED_ABORTED
    if value is None:
        raise ValueError("non-aborted run must provide a value")
    correct = abs(value - golden) <= atol
    if not fault_fired:
        return Outcome.CLEAN
    if correct and errors_detected == 0:
        return Outcome.MASKED
    if correct:
        return Outcome.DETECTED_RECOVERED
    if errors_detected > 0:
        # Detected something yet still emitted a wrong value: counts
        # as silent corruption because the wrong value escaped.
        return Outcome.SILENT_CORRUPTION
    return Outcome.SILENT_CORRUPTION


@dataclass
class CampaignResult:
    """Aggregated campaign statistics."""

    runs: int = 0
    counts: dict[Outcome, int] = field(
        default_factory=lambda: {outcome: 0 for outcome in Outcome}
    )
    errors_detected: int = 0
    rollbacks: int = 0
    faults_fired: int = 0

    def record(self, outcome: Outcome) -> None:
        self.runs += 1
        self.counts[outcome] += 1

    @property
    def silent_corruption_rate(self) -> float:
        """SDC runs per run with at least one fired fault."""
        faulted = self.runs - self.counts[Outcome.CLEAN]
        if faulted == 0:
            return 0.0
        return self.counts[Outcome.SILENT_CORRUPTION] / faulted

    @property
    def detection_coverage(self) -> float:
        """Fraction of faulted runs ending in a safe state.

        Safe states: masked, detected-recovered, detected-aborted.
        """
        faulted = self.runs - self.counts[Outcome.CLEAN]
        if faulted == 0:
            return 1.0
        safe = (
            self.counts[Outcome.MASKED]
            + self.counts[Outcome.DETECTED_RECOVERED]
            + self.counts[Outcome.DETECTED_ABORTED]
        )
        return safe / faulted

    def summary(self) -> str:
        parts = [f"runs={self.runs}"]
        parts.extend(
            f"{outcome.value}={self.counts[outcome]}" for outcome in Outcome
        )
        parts.append(f"coverage={self.detection_coverage:.3f}")
        parts.append(f"sdc_rate={self.silent_corruption_rate:.3f}")
        return " ".join(parts)


def run_operator_campaign(
    fault_factory,
    operator_kind: str = "dmr",
    runs: int = 200,
    vector_length: int = 32,
    bucket_factor: int = 2,
    bucket_ceiling: int | None = None,
    seed: int = 0,
) -> CampaignResult:
    """Campaign over single reliable-convolution outputs.

    A thin legacy surface over the campaign engine
    (:func:`repro.campaigns.run_campaign` with the
    ``"reliable_conv"`` target): each run becomes one engine trial on
    its own :class:`~numpy.random.SeedSequence`-spawned stream.
    Because ``fault_factory`` is an arbitrary callable it cannot cross
    a process boundary, so this surface always executes serially --
    build a :class:`~repro.campaigns.CampaignSpec` with a
    :class:`~repro.campaigns.FaultSpec` to run the same campaign
    sharded across workers.

    Parameters
    ----------
    fault_factory:
        Callable ``(rng) -> FaultModel`` building a fresh fault model
        per run (fresh state matters for permanent/intermittent
        models).
    operator_kind:
        ``"plain"``, ``"dmr"`` or ``"tmr"`` -- the protection level
        under test.
    runs:
        Number of injected executions.
    vector_length:
        Receptive-field size of the synthetic convolution.

    Returns
    -------
    CampaignResult
    """
    from repro.campaigns import CampaignSpec, run_campaign

    spec = CampaignSpec(
        name=f"operator-{operator_kind}",
        target="reliable_conv",
        trials=runs,
        seed=seed,
        target_params={
            "vector_length": vector_length,
            "operator_kind": operator_kind,
            "bucket_factor": bucket_factor,
            "bucket_ceiling": bucket_ceiling,
        },
    )
    # repro: allow[TAINT-FLOW] -- run_campaign's clock reads feed the
    # report's wall-clock metadata only, never a verdict; campaign
    # verdict invariance across workers/timing is pinned by
    # tests/campaigns/test_determinism.py.
    report = run_campaign(spec, fault_factory=fault_factory)
    return report.to_campaign_result()

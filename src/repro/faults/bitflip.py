"""IEEE-754 bit-flip primitives.

A single event upset flips one storage or logic bit; on data it maps
directly to XOR-ing one bit of the binary representation.
"""

from __future__ import annotations

import numpy as np


def flip_bit32(value: float, bit: int) -> float:
    """Flip bit ``bit`` (0 = LSB of mantissa, 31 = sign) of a float32."""
    if not 0 <= bit < 32:
        raise ValueError("bit must be in [0, 32)")
    as_int = np.float32(value).view(np.uint32)
    flipped = as_int ^ np.uint32(1 << bit)
    return float(flipped.view(np.float32))


def flip_bit64(value: float, bit: int) -> float:
    """Flip bit ``bit`` (0 = LSB, 63 = sign) of a float64."""
    if not 0 <= bit < 64:
        raise ValueError("bit must be in [0, 64)")
    as_int = np.float64(value).view(np.uint64)
    flipped = as_int ^ np.uint64(1 << bit)
    return float(flipped.view(np.float64))


def random_bitflip(
    value: float,
    rng: np.random.Generator,
    width: int = 32,
    bit_range: tuple[int, int] | None = None,
) -> float:
    """Flip one uniformly-chosen bit of ``value``.

    Parameters
    ----------
    width:
        32 or 64 (storage width being modelled).
    bit_range:
        Optional ``(low, high)`` half-open interval to restrict which
        bits can flip -- e.g. ``(23, 31)`` targets float32 exponent
        bits, the flips most likely to produce large, detectable
        deviations; ``(0, 23)`` targets the mantissa.
    """
    if width not in (32, 64):
        raise ValueError("width must be 32 or 64")
    low, high = bit_range if bit_range is not None else (0, width)
    if not 0 <= low < high <= width:
        raise ValueError(f"invalid bit_range {bit_range!r} for width {width}")
    bit = int(rng.integers(low, high))
    if width == 32:
        return flip_bit32(value, bit)
    return flip_bit64(value, bit)

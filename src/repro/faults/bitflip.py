"""IEEE-754 bit-flip primitives.

A single event upset flips one storage or logic bit; on data it maps
directly to XOR-ing one bit of the binary representation.
"""

from __future__ import annotations

import numpy as np


_F64_EXP_MASK = np.uint64(0x7FF) << np.uint64(52)
_F64_MANT_MASK = (np.uint64(1) << np.uint64(52)) - np.uint64(1)


def _word32(value: float) -> np.uint32:
    """The float32 storage word behind a Python float.

    An IEEE convert instruction *quiets* signalling NaNs (forces
    mantissa bit 22), so ``np.float32(value)`` silently rewrites any
    sNaN word and a flip/flip round trip through Python floats would
    not restore the original storage word.  NaNs are therefore
    decoded with pure bit moves, inverting :func:`_value32`'s
    encoding; everything else takes the ordinary conversion.
    """
    as64 = np.float64(value).view(np.uint64)
    if (as64 & _F64_EXP_MASK) == _F64_EXP_MASK and as64 & _F64_MANT_MASK:
        sign = np.uint32(as64 >> np.uint64(63)) << np.uint32(31)
        payload = np.uint32(
            (as64 >> np.uint64(29)) & np.uint64(0x7FFFFF)
        )
        if payload == 0:
            # A float64 NaN payload living entirely below bit 29 has
            # no float32 counterpart; canonical quiet NaN.
            payload = np.uint32(0x400000)
        return sign | np.uint32(0x7F800000) | payload
    return np.float32(value).view(np.uint32)


def _value32(word: np.uint32) -> float:
    """The Python float carrying a float32 storage word bit-exactly.

    NaN words embed their 23-bit payload at the top of the float64
    mantissa (exactly where the hardware widening conversion puts it)
    without executing a conversion, so signalling NaNs keep their
    quiet bit cleared and :func:`_word32` can recover the word.
    """
    word = np.uint32(word)
    if (word & np.uint32(0x7F800000)) == np.uint32(0x7F800000) and (
        word & np.uint32(0x7FFFFF)
    ):
        as64 = (
            (np.uint64(word >> np.uint32(31)) << np.uint64(63))
            | _F64_EXP_MASK
            | (np.uint64(word & np.uint32(0x7FFFFF)) << np.uint64(29))
        )
        return float(as64.view(np.float64))
    return float(word.view(np.float32))


def flip_bit32(value: float, bit: int) -> float:
    """Flip bit ``bit`` (0 = LSB of mantissa, 31 = sign) of a float32.

    An involution on the storage word: flipping the same bit twice
    restores ``float32(value)`` exactly, *including* flips whose
    intermediate word is a signalling NaN (see :func:`_word32`).
    """
    if not 0 <= bit < 32:
        raise ValueError("bit must be in [0, 32)")
    flipped = _word32(value) ^ np.uint32(1 << bit)
    return _value32(flipped)


def word32_array(values: np.ndarray) -> np.ndarray:
    """Vectorised :func:`_word32`: float32 storage words (uint32) of a
    float64 array, branch-for-branch identical to the scalar decode
    (including the NaN-payload recovery and the canonical-quiet-NaN
    fallback for payloads below bit 29)."""
    values = np.ascontiguousarray(values, dtype=np.float64)
    as64 = values.view(np.uint64)
    is_nan = ((as64 & _F64_EXP_MASK) == _F64_EXP_MASK) & (
        (as64 & _F64_MANT_MASK) != 0
    )
    with np.errstate(over="ignore", invalid="ignore"):
        normal = values.astype(np.float32).view(np.uint32)
    sign = (as64 >> np.uint64(63)).astype(np.uint32) << np.uint32(31)
    payload = ((as64 >> np.uint64(29)) & np.uint64(0x7FFFFF)).astype(
        np.uint32
    )
    payload = np.where(payload == 0, np.uint32(0x400000), payload)
    return np.where(is_nan, sign | np.uint32(0x7F800000) | payload, normal)


def value32_array(words: np.ndarray) -> np.ndarray:
    """Vectorised :func:`_value32`: float64 carriers of float32 storage
    words, bit-exact (NaN payloads embedded without a conversion, so
    signalling NaNs keep their quiet bit cleared)."""
    words = np.asarray(words, dtype=np.uint32)
    is_nan = ((words & np.uint32(0x7F800000)) == np.uint32(0x7F800000)) & (
        (words & np.uint32(0x7FFFFF)) != 0
    )
    # The widening conversion signals "invalid" on sNaN words; those
    # lanes are discarded below in favour of the bit-moved embedding.
    with np.errstate(invalid="ignore"):
        normal = words.view(np.float32).astype(np.float64)
    as64 = (
        ((words >> np.uint32(31)).astype(np.uint64) << np.uint64(63))
        | _F64_EXP_MASK
        | ((words & np.uint32(0x7FFFFF)).astype(np.uint64) << np.uint64(29))
    )
    return np.where(is_nan, as64.view(np.float64), normal)


def flip_bit32_array(
    values: np.ndarray, bits: int | np.ndarray
) -> np.ndarray:
    """Vectorised :func:`flip_bit32`.

    ``bits`` is a single bit position applied everywhere or an array
    broadcastable against ``values`` (one position per element, as the
    array fault models draw them).  Elementwise identical to the
    scalar flip, including the signalling-NaN involution guarantee.
    """
    bits = np.asarray(bits)
    if bits.size and (bits.min() < 0 or bits.max() >= 32):
        raise ValueError("bit must be in [0, 32)")
    masks = np.left_shift(np.uint32(1), bits.astype(np.uint32))
    return value32_array(word32_array(values) ^ masks)


def flip_bit64(value: float, bit: int) -> float:
    """Flip bit ``bit`` (0 = LSB, 63 = sign) of a float64."""
    if not 0 <= bit < 64:
        raise ValueError("bit must be in [0, 64)")
    as_int = np.float64(value).view(np.uint64)
    flipped = as_int ^ np.uint64(1 << bit)
    return float(flipped.view(np.float64))


def random_bitflip(
    value: float,
    rng: np.random.Generator,
    width: int = 32,
    bit_range: tuple[int, int] | None = None,
) -> float:
    """Flip one uniformly-chosen bit of ``value``.

    Parameters
    ----------
    width:
        32 or 64 (storage width being modelled).
    bit_range:
        Optional ``(low, high)`` half-open interval to restrict which
        bits can flip -- e.g. ``(23, 31)`` targets float32 exponent
        bits, the flips most likely to produce large, detectable
        deviations; ``(0, 23)`` targets the mantissa.
    """
    if width not in (32, 64):
        raise ValueError("width must be 32 or 64")
    low, high = bit_range if bit_range is not None else (0, width)
    if not 0 <= low < high <= width:
        raise ValueError(f"invalid bit_range {bit_range!r} for width {width}")
    bit = int(rng.integers(low, high))
    if width == 32:
        return flip_bit32(value, bit)
    return flip_bit64(value, bit)

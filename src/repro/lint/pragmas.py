"""``# repro: allow[...]`` suppression pragmas.

Two forms, both requiring explicit rule ids (there is deliberately no
blanket ``allow[*]`` -- a waiver names the invariant it waives):

* line pragma -- suppresses the named rules on the line it shares
  with code, or, when the comment stands alone, on the next line that
  holds code (so long statements and decorated defs can carry a
  pragma without column-overflow fights)::

      agreed = np.array_equal(w0, w1)  # repro: allow[FLOAT-APPROX] -- int64 words

      # repro: allow[REDUCE-ORDER] -- native path; parity asserted in tests
      native = patches @ wmat.T

* file pragma -- ``# repro: allow-file[RULE-ID]`` anywhere in the
  file suppresses the rule for the whole file.

Justifications after ``--`` are convention, not syntax: the linter
ignores them, reviewers do not.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

PRAGMA_RE = re.compile(
    r"#\s*repro:\s*(?P<kind>allow-file|allow)\s*"
    r"\[\s*(?P<ids>[A-Za-z0-9_\-]+(?:\s*,\s*[A-Za-z0-9_\-]+)*)\s*\]"
)

#: Repo-relative ``.py`` paths inside a pragma justification -- the
#: convention for citing the pinning/parity test that audits a waiver.
CITATION_RE = re.compile(
    r"(?:tests|src|benchmarks)/[A-Za-z0-9_\-./]*\.py"
)


def _split_ids(raw: str) -> set[str]:
    return {part.strip() for part in raw.split(",") if part.strip()}


@dataclass
class Suppressions:
    """Parsed pragma state for one file."""

    file_rules: set[str] = field(default_factory=set)
    line_rules: dict[int, set[str]] = field(default_factory=dict)

    @classmethod
    def scan(cls, source: str) -> "Suppressions":
        supp = cls()
        lines = source.splitlines()
        try:
            tokens = list(
                tokenize.generate_tokens(io.StringIO(source).readline)
            )
        except (tokenize.TokenError, IndentationError, SyntaxError):
            return supp
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = PRAGMA_RE.search(tok.string)
            if match is None:
                continue
            ids = _split_ids(match.group("ids"))
            if match.group("kind") == "allow-file":
                supp.file_rules |= ids
                continue
            lineno = tok.start[0]
            prefix = lines[lineno - 1][: tok.start[1]] if lineno <= len(lines) else ""
            if prefix.strip():
                # Trailing comment: applies to its own (code) line.
                supp.line_rules.setdefault(lineno, set()).update(ids)
            else:
                # Standalone comment: applies to the next line holding
                # code (skipping blanks and further comments).
                target = lineno + 1
                while target <= len(lines):
                    stripped = lines[target - 1].strip()
                    if stripped and not stripped.startswith("#"):
                        break
                    target += 1
                supp.line_rules.setdefault(target, set()).update(ids)
        return supp

    def allows(self, rule_id: str, lineno: int) -> bool:
        if rule_id in self.file_rules:
            return True
        return rule_id in self.line_rules.get(lineno, ())


def pragma_citations(source: str) -> list[dict]:
    """Every pragma in ``source`` with the test paths its
    justification cites.

    Justifications routinely wrap across a comment *block*::

        # repro: allow[REDUCE-ORDER] -- audited; parity is pinned
        # by tests/api/test_batch_parity.py.
        native = patches @ wmat.T

    so for a standalone pragma the citation scan extends over the
    contiguous pure-comment lines that follow it; a trailing pragma
    (sharing its line with code) is scanned alone.  Returns
    ``[{"line", "rules", "cited"}, ...]`` suitable for the project
    summary cache.
    """
    lines = source.splitlines()
    out: list[dict] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return out
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = PRAGMA_RE.search(tok.string)
        if match is None:
            continue
        lineno = tok.start[0]
        prefix = lines[lineno - 1][: tok.start[1]] if lineno <= len(lines) else ""
        block = [tok.string]
        if not prefix.strip():
            cursor = lineno + 1
            while cursor <= len(lines):
                stripped = lines[cursor - 1].strip()
                if not stripped.startswith("#"):
                    break
                block.append(stripped)
                cursor += 1
        cited = sorted(
            {
                path
                for text in block
                for path in CITATION_RE.findall(text)
            }
        )
        out.append(
            {
                "line": lineno,
                "rules": sorted(_split_ids(match.group("ids"))),
                "cited": cited,
            }
        )
    return out

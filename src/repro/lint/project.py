"""Whole-program project model: per-file summaries + content-hash cache.

The per-file rules see one :class:`~repro.lint.context.FileContext` at
a time, which is exactly why a nondeterminism source in an unscoped
helper *called from* a parity path escapes them.  The project pass
closes that hole: every lintable file is distilled into a small,
JSON-serializable **summary** -- its defs, the calls each def makes,
the ambient/RNG sources it contains, its lock acquisitions, class
contracts (``_guarded_by`` / ``_requires_lock``), registry
registrations, pragma citations and referenced names -- and the
summaries feed the call graph (:mod:`repro.lint.callgraph`) and the
inter-procedural rules (:mod:`repro.lint.rules.interproc`).

Summaries are cached on disk keyed by the sha1 of the file's content
(``.lint-cache/project.json`` by default, configurable via
``project_cache`` in ``lint.toml``), so a cache-warm project pass only
hashes files and re-summarizes the ones that actually changed -- fast
enough for pre-commit use (CI asserts the budget).
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath

from repro.lint.context import build_import_map
from repro.lint.pragmas import Suppressions, pragma_citations
from repro.lint.rules.ambient import CLOCK_CALLS, ENV_CALLS
from repro.lint.rules.randomness import NUMPY_LEGACY, STDLIB_RANDOM

#: Bump on any summary shape change: stale cache entries are rebuilt.
SUMMARY_VERSION = 1

#: Pseudo-function holding module-level statements.  It participates in
#: the call graph (registrations happen there) but is never a taint
#: anchor: module-level code runs at import, not on a verdict path.
MODULE_BODY = "<module>"


def module_name_for(rel_path: str) -> str:
    """Dotted module name for a repo-relative path.  ``src/`` is the
    import root (the repo runs with ``PYTHONPATH=src``); everything
    else (``tests/``, ``benchmarks/``) is importable from the repo
    root as-is."""
    parts = list(PurePosixPath(rel_path).with_suffix("").parts)
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _dotted(node: ast.AST, imports: dict[str, str]) -> str | None:
    """Resolve a Name/Attribute chain through the import map (the
    :meth:`FileContext.qualname` logic, freed from the context)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(imports.get(node.id, node.id))
    return ".".join(reversed(parts))


def _literal_strs(node: ast.AST) -> list[str] | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return [node.value]
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        out = []
        for element in node.elts:
            if not (
                isinstance(element, ast.Constant)
                and isinstance(element.value, str)
            ):
                return None
            out.append(element.value)
        return out
    return None


def _str_keyed_dict(node: ast.AST) -> dict[str, list[str]] | None:
    """``{"a": ("x", "y"), ...}`` literals -> plain dict; None when the
    literal is not entirely static."""
    if not isinstance(node, ast.Dict):
        return None
    out: dict[str, list[str]] = {}
    for key, value in zip(node.keys, node.values):
        if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
            continue
        values = _literal_strs(value)
        if values is None:
            continue
        out[key.value] = values
    return out


def _class_body_dict(class_node: ast.ClassDef, name: str) -> dict | None:
    """A ``name = {...}`` assignment in the class body, parsed as a
    static str->strs dict."""
    for stmt in class_node.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if any(isinstance(t, ast.Name) and t.id == name for t in targets):
            return _str_keyed_dict(value)
    return None


def _is_registry_base(dotted: str | None) -> str | None:
    """Registries are module-level ALL-CAPS names by repo convention
    (``ARCHITECTURES``, ``CAMPAIGN_TARGETS``...).  Returns the registry
    id (the last path component) or None."""
    if not dotted:
        return None
    last = dotted.rpartition(".")[2]
    if last.isupper() and len(last) >= 2:
        return last
    return None


class _FunctionWalker(ast.NodeVisitor):
    """Collects one def's calls, taint sources and lock events while
    tracking the lexical ``with self.<lock>`` stack.  Nested defs are
    attributed to the enclosing def, with an empty held-lock stack
    (the closure runs later, when the lock may not be held) -- the
    same semantics as the lexical LOCK-GUARD rule."""

    def __init__(
        self,
        imports: dict[str, str],
        self_name: str | None,
        initial_held: list[str],
        module: str,
    ) -> None:
        self.imports = imports
        self.self_name = self_name
        self.module = module
        self.held: list[str] = list(initial_held)
        self.depth = 0
        self.calls: list[dict] = []
        self.sources: list[dict] = []
        self.acquisitions: list[dict] = []
        self.registrations: list[dict] = []

    # -- helpers ---------------------------------------------------------
    def _self_attr(self, node: ast.AST) -> str | None:
        if (
            self.self_name is not None
            and isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == self.self_name
        ):
            return node.attr
        return None

    def _lock_id(self, node: ast.AST) -> str | None:
        """Identity of a ``with`` context expression that looks like a
        lock acquisition: ``self.<attr>`` (class-relative, qualified
        later by the graph) or a module-level dotted name."""
        attr = self._self_attr(node)
        if attr is not None:
            return f"self.{attr}"
        if isinstance(node, ast.Name):
            resolved = self.imports.get(node.id)
            if resolved is not None:
                return resolved
            return f"{self.module}.{node.id}"
        return None

    def _record_source(self, rule: str, what: str, node: ast.AST) -> None:
        self.sources.append(
            {"rule": rule, "what": what, "line": node.lineno}
        )

    # -- lock tracking ---------------------------------------------------
    def visit_With(self, node: ast.With) -> None:
        acquired: list[str] = []
        if not self.depth:
            for item in node.items:
                lock = self._lock_id(item.context_expr)
                if lock is not None:
                    self.acquisitions.append(
                        {
                            "lock": lock,
                            "held": list(self.held),
                            "line": item.context_expr.lineno,
                        }
                    )
                    acquired.append(lock)
        self.held.extend(acquired)
        self.generic_visit(node)
        for _ in acquired:
            self.held.pop()

    def _enter_nested(self, node: ast.AST) -> None:
        self.depth += 1
        held, self.held = self.held, []
        self.generic_visit(node)
        self.held = held
        self.depth -= 1

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_nested(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_nested(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._enter_nested(node)

    # -- set iteration (taint source) ------------------------------------
    def _is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            return _dotted(node.func, self.imports) in {"set", "frozenset"}
        return False

    def _check_set_iteration(self, node: ast.AST, iter_expr: ast.AST) -> None:
        if self._is_set_expr(iter_expr):
            self._record_source("SET-ITER", "set iteration", node)

    def visit_For(self, node: ast.For) -> None:
        self._check_set_iteration(node, node.iter)
        self.generic_visit(node)

    def _visit_comp(self, node) -> None:
        self._check_set_iteration(node, node.generators[0].iter)
        self.generic_visit(node)

    visit_ListComp = visit_GeneratorExp = visit_DictComp = _visit_comp
    visit_SetComp = _visit_comp

    # -- calls -----------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        entry = {"line": node.lineno, "held": list(self.held)}
        func = node.func
        handled = False

        # sum(<set>) is a set-order accumulation.
        if (
            isinstance(func, ast.Name)
            and func.id == "sum"
            and node.args
            and self._is_set_expr(node.args[0])
        ):
            self._record_source("SET-ITER", "sum over a set", node)

        attr = self._self_attr(func)
        if attr is not None:
            entry.update(kind="self", method=attr)
            handled = True
        elif isinstance(func, ast.Attribute):
            inner = self._self_attr(func.value)
            if inner is not None:
                # self.<attr>.<method>() -- resolved via the class's
                # inferred attribute types.
                entry.update(kind="selfattr", attr=inner, method=func.attr)
                handled = True
            elif func.attr in ("register", "get"):
                registry = _is_registry_base(
                    _dotted(func.value, self.imports)
                )
                if registry is not None:
                    if func.attr == "get":
                        entry.update(kind="registry", registry=registry)
                        handled = True
                    else:
                        self._record_registration(node, registry)
        if not handled:
            dotted = _dotted(func, self.imports)
            if dotted is not None:
                entry.update(kind="dotted", target=dotted)
                self._check_source_call(dotted, node)
                handled = True
        if handled:
            self.calls.append(entry)
        self.generic_visit(node)

    def _record_registration(self, node: ast.Call, registry: str) -> None:
        """``REG.register("key", target)`` -- the call form.  The
        decorator form is handled by the module walker."""
        key = None
        if node.args and isinstance(node.args[0], ast.Constant):
            key = node.args[0].value
        target = None
        if len(node.args) > 1:
            target = _dotted(node.args[1], self.imports)
        if target is not None:
            self.registrations.append(
                {
                    "registry": registry,
                    "key": key if isinstance(key, str) else None,
                    "target": target,
                    "line": node.lineno,
                }
            )

    # -- ambient / RNG sources -------------------------------------------
    def _check_source_call(self, dotted: str, node: ast.Call) -> None:
        if dotted in CLOCK_CALLS:
            self._record_source("AMBIENT-TIME", dotted, node)
        elif dotted in ENV_CALLS:
            self._record_source("AMBIENT-ENV", dotted, node)
        elif dotted == "id" and "id" not in self.imports:
            self._record_source("AMBIENT-ID", "id()", node)
        elif (
            dotted.startswith("numpy.random.")
            and dotted.rpartition(".")[2] in NUMPY_LEGACY
        ):
            self._record_source("RNG-LEGACY", dotted, node)
        elif (
            dotted.startswith("random.")
            and dotted.rpartition(".")[2] in STDLIB_RANDOM
            and self.imports.get("random") == "random"
        ):
            self._record_source("RNG-STDLIB", dotted, node)
        elif (
            dotted == "numpy.random.default_rng"
            and not node.args
            and not node.keywords
        ):
            # Unseeded = fresh OS entropy; a *literal* seed is
            # deterministic and not a taint source (stream-correlation
            # policy stays with the lexical RNG-SEED rule).
            self._record_source("RNG-SEED", "default_rng()", node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if _dotted(node, self.imports) == "os.environ":
            self._record_source("AMBIENT-ENV", "os.environ", node)
        self.generic_visit(node)


def _walk_def(
    method: ast.FunctionDef | ast.AsyncFunctionDef,
    qualname: str,
    cls: str | None,
    imports: dict[str, str],
    initial_held: list[str],
    module: str,
) -> dict:
    args = method.args.posonlyargs + method.args.args
    self_name = args[0].arg if (cls is not None and args) else None
    walker = _FunctionWalker(imports, self_name, initial_held, module)
    for stmt in method.body:
        walker.visit(stmt)
    return {
        "qualname": qualname,
        "name": method.name,
        "cls": cls,
        "line": method.lineno,
        "public": not method.name.startswith("_"),
        "calls": walker.calls,
        "sources": walker.sources,
        "acquisitions": walker.acquisitions,
    }, walker.registrations


def _decorator_registrations(
    node: ast.FunctionDef | ast.AsyncFunctionDef | ast.ClassDef,
    qualname: str,
    imports: dict[str, str],
) -> list[dict]:
    """``@REG.register("key")`` decorators on a def or class."""
    out = []
    for decorator in node.decorator_list:
        if not (
            isinstance(decorator, ast.Call)
            and isinstance(decorator.func, ast.Attribute)
            and decorator.func.attr == "register"
        ):
            continue
        registry = _is_registry_base(
            _dotted(decorator.func.value, imports)
        )
        if registry is None:
            continue
        key = None
        if decorator.args and isinstance(decorator.args[0], ast.Constant):
            value = decorator.args[0].value
            key = value if isinstance(value, str) else None
        out.append(
            {
                "registry": registry,
                "key": key,
                "target": qualname,
                "line": decorator.lineno,
            }
        )
    return out


def _attr_types(
    class_node: ast.ClassDef, imports: dict[str, str]
) -> dict[str, str]:
    """Best-effort instance attribute types: ``self.x = Cls(...)``
    assignments anywhere in the class's methods (first wins)."""
    types: dict[str, str] = {}
    for method in class_node.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        args = method.args.posonlyargs + method.args.args
        if not args:
            continue
        self_name = args[0].arg
        for node in ast.walk(method):
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                continue
            target = node.targets[0]
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == self_name
            ):
                continue
            if not isinstance(node.value, ast.Call):
                continue
            dotted = _dotted(node.value.func, imports)
            if dotted is not None and target.attr not in types:
                types[target.attr] = dotted
    return types


def summarize_source(rel_path: str, source: str) -> dict:
    """One file's project summary (raises ``SyntaxError`` on files the
    parser rejects; the per-file pass already reports those)."""
    tree = ast.parse(source)
    imports = build_import_map(tree)
    module = module_name_for(rel_path)
    functions: list[dict] = []
    classes: list[dict] = []
    registrations: list[dict] = []

    def add_def(node, qualname, cls, initial_held):
        summary, regs = _walk_def(
            node, qualname, cls, imports, initial_held, module
        )
        functions.append(summary)
        registrations.extend(regs)
        registrations.extend(
            _decorator_registrations(node, qualname, imports)
        )

    module_body: list[ast.stmt] = []
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            add_def(stmt, f"{module}.{stmt.name}", None, [])
        elif isinstance(stmt, ast.ClassDef):
            guarded = _class_body_dict(stmt, "_guarded_by") or {}
            requires = _class_body_dict(stmt, "_requires_lock") or {}
            classes.append(
                {
                    "name": stmt.name,
                    "line": stmt.lineno,
                    "bases": sorted(
                        filter(None, (_dotted(b, imports) for b in stmt.bases))
                    ),
                    "guarded_by": {
                        attr: lock
                        for lock, attrs in guarded.items()
                        for attr in attrs
                    },
                    "requires_lock": requires,
                    "attr_types": _attr_types(stmt, imports),
                }
            )
            registrations.extend(
                _decorator_registrations(
                    stmt, f"{module}.{stmt.name}", imports
                )
            )
            for member in stmt.body:
                if isinstance(
                    member, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    held = [
                        f"self.{lock}"
                        for lock in requires.get(member.name, [])
                    ]
                    add_def(
                        member,
                        f"{module}.{stmt.name}.{member.name}",
                        stmt.name,
                        held,
                    )
        else:
            module_body.append(stmt)

    if module_body:
        pseudo = ast.FunctionDef(
            name=MODULE_BODY,
            args=ast.arguments(
                posonlyargs=[], args=[], kwonlyargs=[],
                kw_defaults=[], defaults=[],
            ),
            body=module_body,
            decorator_list=[],
            lineno=1,
            col_offset=0,
        )
        summary, regs = _walk_def(
            pseudo, f"{module}.{MODULE_BODY}", None, imports, [], module
        )
        functions.append(summary)
        registrations.extend(regs)

    referenced: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            referenced.add(node.id)
        elif isinstance(node, ast.Attribute):
            referenced.add(node.attr)

    suppressions = Suppressions.scan(source)
    return {
        "module": module,
        "imports": imports,
        "functions": functions,
        "classes": classes,
        "registrations": registrations,
        "referenced_names": sorted(referenced),
        "pragmas": pragma_citations(source),
        "suppressions": {
            "file_rules": sorted(suppressions.file_rules),
            "line_rules": {
                str(line): sorted(rules)
                for line, rules in suppressions.line_rules.items()
            },
        },
    }


@dataclass
class ProjectModel:
    """All summaries for one lint run, plus lazy access to sources for
    snippets and pragma checks on the (rare) finding paths."""

    root: Path
    summaries: dict[str, dict] = field(default_factory=dict)  #: rel -> summary
    cache_hits: int = 0
    cache_misses: int = 0
    _suppressions: dict[str, Suppressions] = field(default_factory=dict)
    _lines: dict[str, list[str]] = field(default_factory=dict)

    def suppressions_for(self, rel_path: str) -> Suppressions:
        if rel_path not in self._suppressions:
            summary = self.summaries.get(rel_path)
            supp = Suppressions()
            if summary is not None:
                data = summary["suppressions"]
                supp.file_rules = set(data["file_rules"])
                supp.line_rules = {
                    int(line): set(rules)
                    for line, rules in data["line_rules"].items()
                }
            self._suppressions[rel_path] = supp
        return self._suppressions[rel_path]

    def line(self, rel_path: str, lineno: int) -> str:
        if rel_path not in self._lines:
            try:
                text = (self.root / rel_path).read_text(encoding="utf-8")
            except OSError:
                text = ""
            self._lines[rel_path] = text.splitlines()
        lines = self._lines[rel_path]
        if 1 <= lineno <= len(lines):
            return lines[lineno - 1].strip()
        return ""

    def iter_functions(self):
        """(rel_path, summary, function) triples in deterministic
        (path, definition) order."""
        for rel_path in sorted(self.summaries):
            summary = self.summaries[rel_path]
            for function in summary["functions"]:
                yield rel_path, summary, function

    @property
    def function_count(self) -> int:
        return sum(
            len(s["functions"]) for s in self.summaries.values()
        )


def _load_cache(path: Path) -> dict:
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return {}
    if data.get("version") != SUMMARY_VERSION:
        return {}
    entries = data.get("entries")
    return entries if isinstance(entries, dict) else {}


def _save_cache(path: Path, entries: dict) -> None:
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(
                {"version": SUMMARY_VERSION, "entries": entries},
                sort_keys=True,
            ),
            encoding="utf-8",
        )
    except OSError:
        # The cache is an accelerator, never a correctness input.
        pass


def build_project(files: list[Path], config) -> ProjectModel:
    """Summarize ``files`` into a :class:`ProjectModel`, reusing the
    on-disk cache for files whose content hash is unchanged.  Files
    that fail to parse are skipped here -- the per-file pass reports
    them as PARSE-ERROR."""
    from repro.lint.engine import _rel_path  # shared path normalizer

    model = ProjectModel(root=config.root)
    cache_path = config.root / config.project_cache
    cached = _load_cache(cache_path)
    fresh: dict[str, dict] = {}
    dirty = False
    for path in files:
        rel = _rel_path(Path(path), config.root)
        try:
            source = Path(path).read_text(encoding="utf-8")
        except OSError:
            continue
        digest = hashlib.sha1(source.encode("utf-8")).hexdigest()
        entry = cached.get(rel)
        if entry is not None and entry.get("hash") == digest:
            model.summaries[rel] = entry["summary"]
            fresh[rel] = entry
            model.cache_hits += 1
            continue
        try:
            summary = summarize_source(rel, source)
        except SyntaxError:
            dirty = True
            continue
        model.summaries[rel] = summary
        fresh[rel] = {"hash": digest, "summary": summary}
        model.cache_misses += 1
        dirty = True
    if dirty or set(fresh) != set(cached):
        _save_cache(cache_path, fresh)
    return model

"""Human-readable and JSON renderings of a lint run.

The JSON schema is a published contract (CI uploads it as an
artifact; tests pin it): bump :data:`REPORT_VERSION` on any
shape change and keep old keys stable otherwise.
"""

from __future__ import annotations

import json

from repro.lint.engine import LintResult
from repro.lint.registry import RULES

REPORT_SCHEMA = "repro-lint-report"
#: v2 added the "project" section (call-graph stats from --project;
#: null on per-file-only runs).
REPORT_VERSION = 2


def render_human(result: LintResult, verbose: bool = False) -> str:
    """``path:line:col: RULE severity: message`` lines plus a summary
    tail -- terse on success, complete on failure."""
    out: list[str] = []
    for finding in result.findings:
        out.append(
            f"{finding.path}:{finding.line}:{finding.col + 1}: "
            f"{finding.rule} {finding.severity}: {finding.message}"
        )
        if finding.snippet:
            out.append(f"    {finding.snippet}")
    if result.stale_baseline:
        out.append("")
        out.append(
            "stale baseline entries (fixed or drifted; run "
            "--update-baseline to prune):"
        )
        for entry in result.stale_baseline:
            note = f"  # {entry.note}" if entry.note else ""
            out.append(f"  {entry.path}: {entry.rule}{note}")
    out.append("")
    counts = result.counts_by_rule()
    if counts:
        per_rule = ", ".join(f"{rule}={n}" for rule, n in counts.items())
        out.append(
            f"{len(result.findings)} finding(s) in "
            f"{result.files_scanned} file(s) [{per_rule}]"
        )
    else:
        out.append(
            f"0 findings in {result.files_scanned} file(s)"
            + (
                f" ({len(result.baselined)} baselined)"
                if result.baselined
                else ""
            )
        )
    if result.project is not None:
        stats = result.project
        out.append(
            f"project pass: {stats['functions']} function(s) in "
            f"{stats['modules']} module(s), {stats['call_edges']} call "
            f"edge(s) [{stats['cache_hits']} cached, "
            f"{stats['cache_misses']} summarized]"
        )
    if verbose and result.baselined:
        out.append("baselined findings:")
        for finding in result.baselined:
            out.append(
                f"  {finding.path}:{finding.line}: {finding.rule}"
            )
    return "\n".join(out)


def render_json(result: LintResult) -> str:
    """Stable machine-readable report (sorted keys, versioned)."""
    payload = {
        "schema": REPORT_SCHEMA,
        "version": REPORT_VERSION,
        "ok": result.ok,
        "files_scanned": result.files_scanned,
        "project": result.project,
        "findings": [f.to_dict() for f in result.findings],
        "baselined": [f.to_dict() for f in result.baselined],
        "stale_baseline": [e.to_dict() for e in result.stale_baseline],
        "summary": {
            "new": len(result.findings),
            "baselined": len(result.baselined),
            "stale": len(result.stale_baseline),
            "by_rule": result.counts_by_rule(),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_rule_list() -> str:
    """``--list-rules`` output: id, severity, scope, title, rationale."""
    out: list[str] = []
    for rule in sorted(RULES.values(), key=lambda r: r.id):
        out.append(
            f"{rule.id}  [{rule.severity}, scope={rule.scope}]  {rule.title}"
        )
        if rule.rationale:
            for line in rule.rationale.strip().splitlines():
                out.append(f"    {line.strip()}")
    return "\n".join(out)

"""Committed baseline of grandfathered findings.

The gate is *zero new findings*: anything not in the baseline (and not
pragma-suppressed) fails the run.  Baselines exist so the linter can
land with teeth even if a finding class cannot be fixed in the same
PR; the intended trajectory is monotone shrinkage -- entries are
removed when fixed (``--update-baseline`` prunes them automatically)
and a **stale** entry (one that no longer matches any finding) also
fails the run, so the file cannot quietly rot into a pile of dead
waivers.

Matching is by fingerprint -- ``sha1(rule | path | normalized source
line)`` -- so pure line-number drift does not invalidate entries, while
any edit to the offending line does (and forces a re-audit, which is
the point).  ``count`` covers several identical lines in one file.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.findings import Finding

BASELINE_VERSION = 1


@dataclass
class BaselineEntry:
    rule: str
    path: str
    fingerprint: str
    count: int = 1
    note: str = ""

    def to_dict(self) -> dict:
        data = {
            "rule": self.rule,
            "path": self.path,
            "fingerprint": self.fingerprint,
            "count": self.count,
        }
        if self.note:
            data["note"] = self.note
        return data


@dataclass
class Baseline:
    entries: list[BaselineEntry] = field(default_factory=list)

    @classmethod
    def load(cls, path: Path | str) -> "Baseline":
        """Load a baseline file; a missing file is an empty baseline
        (the shipped tree's steady state)."""
        path = Path(path)
        if not path.exists():
            return cls()
        data = json.loads(path.read_text(encoding="utf-8"))
        if data.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"unsupported baseline version {data.get('version')!r} "
                f"in {path} (expected {BASELINE_VERSION})"
            )
        entries = [
            BaselineEntry(
                rule=item["rule"],
                path=item["path"],
                fingerprint=item["fingerprint"],
                count=int(item.get("count", 1)),
                note=item.get("note", ""),
            )
            for item in data.get("entries", [])
        ]
        return cls(entries)

    def save(self, path: Path | str) -> None:
        path = Path(path)
        payload = {
            "version": BASELINE_VERSION,
            "entries": [
                entry.to_dict()
                for entry in sorted(
                    self.entries, key=lambda e: (e.path, e.rule, e.fingerprint)
                )
            ],
        }
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    def partition(
        self, findings: list[Finding]
    ) -> tuple[list[Finding], list[Finding], list[BaselineEntry]]:
        """Split findings into (new, baselined) and return the stale
        entries whose budget went unused."""
        budget: Counter[str] = Counter()
        for entry in self.entries:
            budget[entry.fingerprint] += entry.count
        new: list[Finding] = []
        baselined: list[Finding] = []
        for finding in findings:
            if budget[finding.fingerprint] > 0:
                budget[finding.fingerprint] -= 1
                baselined.append(finding)
            else:
                new.append(finding)
        stale = [e for e in self.entries if budget[e.fingerprint] >= e.count]
        # Partially consumed entries (count 3, two matches) are stale
        # too in spirit, but keeping them non-fatal would hide nothing:
        # --update-baseline rewrites exact counts either way.  Strict
        # staleness = no match at all.
        return new, baselined, stale

    @classmethod
    def from_findings(
        cls, findings: list[Finding], notes: dict[str, str] | None = None
    ) -> "Baseline":
        """Baseline covering exactly the given findings; ``notes`` maps
        fingerprints to justifications carried over from a previous
        baseline (manual notes survive ``--update-baseline``)."""
        notes = notes or {}
        grouped: dict[str, BaselineEntry] = {}
        for finding in findings:
            key = finding.fingerprint
            if key in grouped:
                grouped[key].count += 1
            else:
                grouped[key] = BaselineEntry(
                    rule=finding.rule,
                    path=finding.path,
                    fingerprint=key,
                    note=notes.get(key, ""),
                )
        return cls(list(grouped.values()))

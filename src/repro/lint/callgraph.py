"""Best-effort intra-repo call graph over project summaries.

Resolution covers the call shapes this repo actually uses:

* plain and dotted names through each file's import map, including one
  level of package re-export (``from repro.api import build_pipeline``
  resolves into ``repro.api.pipeline``);
* ``self.method()`` within a class, walking project-resolvable bases;
* ``self.<attr>.method()`` through inferred instance attribute types
  (``self._recorder = StatsRecorder(...)`` in ``__init__``);
* ``Cls(...)`` instantiation (an edge to ``Cls.__init__``);
* ``repro.api`` registry indirection: ``REGISTRY.get(...)`` call sites
  gain an edge to *every* builder registered into that registry
  (decorator or call form), because any of them may run there.

Anything else (duck-typed parameters, closures passed around) stays
unresolved -- the analysis is deliberately a sound-ish approximation
biased toward the repo's idioms, not a type checker.  Unresolved calls
simply contribute no edges, which for the taint/lock rules means "no
finding" rather than a false positive.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lint.project import MODULE_BODY, ProjectModel

_MAX_REEXPORT_DEPTH = 8


@dataclass(frozen=True)
class Edge:
    """One resolved call: ``caller`` invokes ``callee`` at
    ``path:line`` while lexically holding ``held`` locks (normalized,
    class-qualified ids)."""

    caller: str
    callee: str
    path: str
    line: int
    held: tuple[str, ...] = ()


@dataclass
class CallGraph:
    model: ProjectModel
    #: caller qualname -> outgoing edges, deterministic order
    edges: dict[str, list[Edge]] = field(default_factory=dict)
    #: callee qualname -> caller qualnames
    reverse: dict[str, set[str]] = field(default_factory=dict)

    # symbol tables -------------------------------------------------------
    _module_paths: dict[str, str] = field(default_factory=dict)
    _functions: dict[str, dict] = field(default_factory=dict)
    _function_paths: dict[str, str] = field(default_factory=dict)
    _classes: dict[str, dict] = field(default_factory=dict)
    _registrations: dict[str, list[str]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._index()
        self._resolve_registrations()
        self._build_edges()

    # -- indexing --------------------------------------------------------
    def _index(self) -> None:
        for rel_path in sorted(self.model.summaries):
            summary = self.model.summaries[rel_path]
            self._module_paths[summary["module"]] = rel_path
            for function in summary["functions"]:
                self._functions[function["qualname"]] = function
                self._function_paths[function["qualname"]] = rel_path
            for cls in summary["classes"]:
                qualname = f"{summary['module']}.{cls['name']}"
                self._classes[qualname] = cls

    def function(self, qualname: str) -> dict | None:
        return self._functions.get(qualname)

    def path_of(self, qualname: str) -> str | None:
        return self._function_paths.get(qualname)

    def class_info(self, qualname: str) -> dict | None:
        return self._classes.get(qualname)

    def registered_builders(self, registry: str) -> list[str]:
        return self._registrations.get(registry, [])

    # -- dotted-name resolution ------------------------------------------
    def resolve(self, dotted: str, _depth: int = 0) -> str | None:
        """Resolve a dotted reference to a project function qualname
        (classes resolve to their ``__init__`` when defined).  None
        when the name leaves the repo or cannot be pinned down."""
        if _depth > _MAX_REEXPORT_DEPTH:
            return None
        if dotted in self._functions:
            return dotted
        if dotted in self._classes:
            init = f"{dotted}.__init__"
            return init if init in self._functions else None
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:cut])
            rel_path = self._module_paths.get(module)
            if rel_path is None:
                continue
            remainder = parts[cut:]
            candidate = f"{module}.{'.'.join(remainder)}"
            if candidate in self._functions:
                return candidate
            head_cls = f"{module}.{remainder[0]}"
            if head_cls in self._classes:
                if len(remainder) == 1:
                    init = f"{head_cls}.__init__"
                    return init if init in self._functions else None
                return self._method_on(head_cls, remainder[1])
            # Package re-export: follow the module's own import of the
            # head symbol (repro.api.__init__ re-exports the world).
            imports = self.model.summaries[rel_path]["imports"]
            if remainder[0] in imports:
                target = ".".join(
                    [imports[remainder[0]], *remainder[1:]]
                )
                return self.resolve(target, _depth + 1)
            return None
        return None

    def _method_on(self, cls_qualname: str, method: str, _depth: int = 0) -> str | None:
        """Method lookup walking project-resolvable bases."""
        if _depth > 4:
            return None
        candidate = f"{cls_qualname}.{method}"
        if candidate in self._functions:
            return candidate
        cls = self._classes.get(cls_qualname)
        if cls is None:
            return None
        for base in cls["bases"]:
            base_cls = self._resolve_class(base)
            if base_cls is None and "." not in base:
                # Bare base defined in the class's own module.
                base_cls = self._resolve_class(
                    f"{cls_qualname.rpartition('.')[0]}.{base}"
                )
            if base_cls is not None:
                found = self._method_on(base_cls, method, _depth + 1)
                if found is not None:
                    return found
        return None

    def _resolve_class(self, dotted: str, _depth: int = 0) -> str | None:
        if _depth > _MAX_REEXPORT_DEPTH:
            return None
        if dotted in self._classes:
            return dotted
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:cut])
            rel_path = self._module_paths.get(module)
            if rel_path is None:
                continue
            remainder = parts[cut:]
            candidate = f"{module}.{'.'.join(remainder)}"
            if candidate in self._classes:
                return candidate
            imports = self.model.summaries[rel_path]["imports"]
            if remainder[0] in imports:
                target = ".".join([imports[remainder[0]], *remainder[1:]])
                return self._resolve_class(target, _depth + 1)
            return None
        return None

    # -- registrations ----------------------------------------------------
    def _resolve_registrations(self) -> None:
        grouped: dict[str, set[str]] = {}
        for rel_path in sorted(self.model.summaries):
            summary = self.model.summaries[rel_path]
            for reg in summary["registrations"]:
                target = reg["target"]
                resolved = (
                    target
                    if target in self._functions
                    else self.resolve(target)
                )
                if resolved is None and "." not in target:
                    resolved = self.resolve(
                        f"{summary['module']}.{target}"
                    )
                if resolved is not None:
                    grouped.setdefault(reg["registry"], set()).add(resolved)
        self._registrations = {
            registry: sorted(targets)
            for registry, targets in grouped.items()
        }

    # -- edges -----------------------------------------------------------
    def _qualify_held(
        self, held: list[str], module: str, cls: str | None
    ) -> tuple[str, ...]:
        """Normalize lexical lock ids: ``self.X`` becomes
        ``module.Class.X`` so the same lock matches across methods and
        call sites; module-level ids pass through."""
        out = []
        for lock in held:
            if lock.startswith("self."):
                if cls is None:
                    continue
                out.append(f"{module}.{cls}.{lock[len('self.'):]}")
            else:
                out.append(lock)
        return tuple(out)

    def _build_edges(self) -> None:
        for rel_path, summary, function in self.model.iter_functions():
            module = summary["module"]
            cls = function["cls"]
            caller = function["qualname"]
            out: list[Edge] = []
            for call in function["calls"]:
                held = self._qualify_held(call["held"], module, cls)
                callees: list[str] = []
                kind = call["kind"]
                if kind == "dotted":
                    resolved = self.resolve(call["target"])
                    if resolved is None and "." not in call["target"]:
                        # Bare name, same module: ``stamp()`` inside
                        # util/helpers.py means util.helpers.stamp.
                        resolved = self.resolve(
                            f"{module}.{call['target']}"
                        )
                    if resolved is not None:
                        callees.append(resolved)
                elif kind == "self" and cls is not None:
                    resolved = self._method_on(
                        f"{module}.{cls}", call["method"]
                    )
                    if resolved is not None:
                        callees.append(resolved)
                elif kind == "selfattr" and cls is not None:
                    cls_info = self._classes.get(f"{module}.{cls}")
                    if cls_info is not None:
                        attr_type = cls_info["attr_types"].get(call["attr"])
                        if attr_type is not None:
                            attr_cls = self._resolve_class(attr_type)
                            if attr_cls is None and "." not in attr_type:
                                attr_cls = self._resolve_class(
                                    f"{module}.{attr_type}"
                                )
                            if attr_cls is not None:
                                resolved = self._method_on(
                                    attr_cls, call["method"]
                                )
                                if resolved is not None:
                                    callees.append(resolved)
                elif kind == "registry":
                    callees.extend(
                        self.registered_builders(call["registry"])
                    )
                for callee in callees:
                    edge = Edge(
                        caller=caller,
                        callee=callee,
                        path=rel_path,
                        line=call["line"],
                        held=held,
                    )
                    out.append(edge)
                    self.reverse.setdefault(callee, set()).add(caller)
            if out:
                self.edges[caller] = out

    @property
    def edge_count(self) -> int:
        return sum(len(edges) for edges in self.edges.values())

    # -- file-level impact analysis --------------------------------------
    def caller_files(self, rel_paths: set[str]) -> set[str]:
        """Transitive reverse-dependency closure at file granularity:
        every file containing a function that (directly or through
        other files) calls into a function defined in ``rel_paths``.
        Module-body pseudo-functions count -- an import-time call is
        still a dependency."""
        file_callers: dict[str, set[str]] = {}
        for edges in self.edges.values():
            for edge in edges:
                callee_path = self._function_paths.get(edge.callee)
                if callee_path is not None and callee_path != edge.path:
                    file_callers.setdefault(callee_path, set()).add(edge.path)
        impacted: set[str] = set()
        frontier = set(rel_paths)
        while frontier:
            current = frontier.pop()
            for caller in file_callers.get(current, ()):
                if caller not in impacted and caller not in rel_paths:
                    impacted.add(caller)
                    frontier.add(caller)
        return impacted

    # -- taint propagation (used by TAINT-FLOW) ---------------------------
    def propagate_taint(self) -> dict[str, dict]:
        """Fixpoint of "calls something that reads ambient state".

        Returns ``qualname -> witness`` where a witness is either the
        function's own first source (``{"source": {...}}``) or the
        first tainted callee it reaches (``{"via": Edge}``), forming a
        chain down to a concrete source.  Module bodies are excluded
        as seeds (import-time code is not a verdict path) but do relay
        taint."""
        tainted: dict[str, dict] = {}
        worklist: list[str] = []
        for _, _, function in self.model.iter_functions():
            if function["sources"] and not function["name"] == MODULE_BODY:
                tainted[function["qualname"]] = {
                    "source": function["sources"][0]
                }
                worklist.append(function["qualname"])
        while worklist:
            current = worklist.pop()
            for caller in sorted(self.reverse.get(current, ())):
                if caller in tainted:
                    continue
                via = next(
                    edge
                    for edge in self.edges[caller]
                    if edge.callee == current
                )
                tainted[caller] = {"via": via}
                worklist.append(caller)
        return tainted

    def taint_chain(self, qualname: str, tainted: dict[str, dict]) -> tuple[list[str], dict | None]:
        """The witness chain from ``qualname`` down to its source:
        (function qualnames, source dict)."""
        chain = [qualname]
        seen = {qualname}
        witness = tainted.get(qualname)
        while witness is not None and "via" in witness:
            nxt = witness["via"].callee
            if nxt in seen:
                return chain, None
            chain.append(nxt)
            seen.add(nxt)
            witness = tainted.get(nxt)
        return chain, (witness or {}).get("source")

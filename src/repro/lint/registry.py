"""Rule base class and the global rule registry."""

from __future__ import annotations

from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.lint.findings import Finding, Severity

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.context import FileContext

#: All registered rules, id -> instance.  Populated by importing
#: :mod:`repro.lint.rules`.
RULES: dict[str, "Rule"] = {}


class Rule:
    """One invariant checker.

    Subclasses set the class attributes and implement :meth:`check`,
    yielding findings for one parsed file.  ``scope`` names a path
    class from :class:`~repro.lint.config.LintConfig.scopes` --
    ``"all"`` applies everywhere the walker reaches; anything else
    restricts the rule to the configured globs (e.g. ``"parity"`` for
    the modules that promise bitwise results).
    """

    id: str = ""
    title: str = ""
    severity: Severity = Severity.ERROR
    scope: str = "all"
    #: one-paragraph invariant statement, surfaced by ``--list-rules``
    #: and docs; cite the incident that motivated the rule.
    rationale: str = ""

    def check(self, ctx: "FileContext") -> Iterator[Finding]:
        raise NotImplementedError

    # -- helpers for subclasses ------------------------------------------
    def finding(self, ctx: "FileContext", node, message: str) -> Finding:
        """Build a finding anchored at an AST node."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=self.id,
            severity=self.severity,
            path=ctx.rel_path,
            line=line,
            col=col,
            message=message,
            snippet=ctx.line(line),
        )


class ProjectRule(Rule):
    """A whole-program invariant checker.

    Project rules live in the same registry (so ``--list-rules``,
    pragmas, baselines and docs treat them uniformly) but run only
    during the ``--project`` pass: :meth:`check` yields nothing, and
    :meth:`check_project` sees the full
    :class:`~repro.lint.project.ProjectModel` plus the resolved
    :class:`~repro.lint.callgraph.CallGraph`.
    """

    def check(self, ctx: "FileContext") -> Iterator[Finding]:
        return iter(())

    def check_project(self, model, graph, config) -> Iterator[Finding]:
        raise NotImplementedError

    # -- helpers for subclasses ------------------------------------------
    def project_finding(
        self, model, rel_path: str, line: int, message: str
    ) -> Finding:
        """Build a finding anchored at ``rel_path:line``, pulling the
        snippet lazily from the project model."""
        return Finding(
            rule=self.id,
            severity=self.severity,
            path=rel_path,
            line=line,
            col=0,
            message=message,
            snippet=model.line(rel_path, line),
        )


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding one instance of the rule to
    :data:`RULES`; re-registration of an id is a programming error."""
    rule = rule_cls()
    if not rule.id:
        raise ValueError(f"{rule_cls.__name__} has no rule id")
    if rule.id in RULES:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    RULES[rule.id] = rule
    return rule_cls

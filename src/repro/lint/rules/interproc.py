"""Whole-program rules: taint flow, lock discipline, parity coverage.

These run only under ``--project`` (see
:class:`~repro.lint.registry.ProjectRule`): each gets the full
:class:`~repro.lint.project.ProjectModel` and the resolved
:class:`~repro.lint.callgraph.CallGraph`, so a hazard can be traced
through call chains the per-file rules cannot see.
"""

from __future__ import annotations

from collections.abc import Iterator
from fnmatch import fnmatch
from typing import TYPE_CHECKING

from repro.lint.findings import Finding, Severity
from repro.lint.registry import ProjectRule, register

if TYPE_CHECKING:  # pragma: no cover - typing only
    # Imported lazily at runtime: this module is loaded while
    # repro.lint.project is itself mid-import (it pulls in the rules
    # package for the shared source tables).
    from repro.lint.callgraph import CallGraph
    from repro.lint.project import ProjectModel

#: Mirrors :data:`repro.lint.project.MODULE_BODY` (import-cycle-free).
MODULE_BODY = "<module>"

#: Where parity obligations may be discharged (overridable via the
#: PARITY-ORPHAN ``test_globs`` option).
DEFAULT_TEST_GLOBS = [
    "tests/*parity*",
    "tests/*golden*",
    "tests/*fuzz*",
    "tests/*determinism*",
    "tests/support/fuzz.py",
]


def _normalize_lock(lock: str, module: str, cls: str | None) -> str | None:
    """Class-qualify ``self.<attr>`` lock ids the same way the call
    graph does for held stacks, so acquisition sites and call sites
    name the same lock the same way."""
    if lock.startswith("self."):
        if cls is None:
            return None
        return f"{module}.{cls}.{lock[len('self.'):]}"
    return lock


@register
class TaintFlowRule(ProjectRule):
    id = "TAINT-FLOW"
    title = "compute path reaches a nondeterminism source through calls"
    severity = Severity.ERROR
    scope = "compute"
    rationale = (
        "The per-file ambient/RNG rules stop at function boundaries, so "
        "a clock read or unseeded RNG in an unscoped helper silently "
        "leaks into every verdict path that calls it.  This rule "
        "propagates the same source set along the call graph and flags "
        "the call site where compute-scoped code first depends on it, "
        "with the full witness chain down to the concrete source."
    )

    def check_project(
        self, model: ProjectModel, graph: CallGraph, config
    ) -> Iterator[Finding]:
        tainted = graph.propagate_taint()
        for caller in sorted(graph.edges):
            function = graph.function(caller)
            if function is None or function["name"] == MODULE_BODY:
                continue  # import-time code is not a verdict path
            caller_path = graph.path_of(caller)
            if caller_path is None or not config.in_scope(
                "compute", caller_path
            ):
                continue
            for edge in graph.edges[caller]:
                if edge.callee not in tainted:
                    continue
                callee_path = graph.path_of(edge.callee)
                if callee_path is None or config.in_scope(
                    "compute", callee_path
                ):
                    # In-scope callees are the lexical rules' problem;
                    # only the escape across the scope boundary is new
                    # information.
                    continue
                chain, source = graph.taint_chain(edge.callee, tainted)
                witness = " -> ".join([caller, *chain])
                if source is not None:
                    origin = (
                        f"{source['what']} "
                        f"[{source['rule']} at {callee_path.rsplit('/', 1)[-1]}"
                        f" via {chain[-1]}:{source['line']}]"
                    )
                else:
                    origin = "a nondeterministic source"
                yield self.project_finding(
                    model,
                    edge.path,
                    edge.line,
                    f"compute-scoped code reaches {origin} through "
                    f"{witness}; hoist the ambient read out of the "
                    f"verdict path or inject it as a parameter",
                )


@register
class LockCallRule(ProjectRule):
    id = "LOCK-CALL"
    title = "_requires_lock helper called without the declared lock held"
    severity = Severity.ERROR
    scope = "all"
    rationale = (
        "Extracting a locked region into a helper used to blind "
        "LOCK-GUARD: the helper touches guarded attributes with no "
        "lexical `with` in sight.  _requires_lock declares the "
        "contract on the helper; this rule closes the loop by checking "
        "every resolved call site actually holds the declared lock."
    )

    def check_project(
        self, model: ProjectModel, graph: CallGraph, config
    ) -> Iterator[Finding]:
        for rel_path in sorted(model.summaries):
            summary = model.summaries[rel_path]
            for cls in summary["classes"]:
                for method, locks in sorted(cls["requires_lock"].items()):
                    qualname = (
                        f"{summary['module']}.{cls['name']}.{method}"
                    )
                    for caller in sorted(graph.reverse.get(qualname, ())):
                        for edge in graph.edges[caller]:
                            if edge.callee != qualname:
                                continue
                            # Cross-class call sites compare by bare
                            # attribute name: the held stack is
                            # qualified to the *caller's* class.
                            held_attrs = {
                                h.rpartition(".")[2] for h in edge.held
                            }
                            missing = [
                                lock
                                for lock in locks
                                if lock not in held_attrs
                            ]
                            if missing:
                                needed = ", ".join(
                                    f"self.{lock}" for lock in missing
                                )
                                yield self.project_finding(
                                    model,
                                    edge.path,
                                    edge.line,
                                    f"{qualname} declares _requires_lock "
                                    f"({needed}) but this call site does "
                                    f"not hold it",
                                )


@register
class LockOrderRule(ProjectRule):
    id = "LOCK-ORDER"
    title = "two locks acquired in inconsistent order across the graph"
    severity = Severity.ERROR
    scope = "all"
    rationale = (
        "A->B in one thread and B->A in another is a deadlock waiting "
        "for load.  Each function's lock acquisitions (direct, and "
        "transitive through calls made while holding a lock) yield "
        "ordered pairs; any pair present in both directions anywhere "
        "in the program is flagged at both sites."
    )

    def check_project(
        self, model: ProjectModel, graph: CallGraph, config
    ) -> Iterator[Finding]:
        direct: dict[str, set[str]] = {}
        pairs: dict[tuple[str, str], tuple[str, int]] = {}
        for rel_path, summary, function in model.iter_functions():
            module, cls = summary["module"], function["cls"]
            acquired: set[str] = set()
            for acq in function["acquisitions"]:
                lock = _normalize_lock(acq["lock"], module, cls)
                if lock is None:
                    continue
                acquired.add(lock)
                for held in acq["held"]:
                    outer = _normalize_lock(held, module, cls)
                    if outer is not None and outer != lock:
                        pairs.setdefault(
                            (outer, lock), (rel_path, acq["line"])
                        )
            direct[function["qualname"]] = acquired

        # Transitive acquisition sets: fixpoint, cycle-safe because the
        # union only grows.
        effective = {qn: set(locks) for qn, locks in direct.items()}
        changed = True
        while changed:
            changed = False
            for caller, edges in graph.edges.items():
                eff = effective.setdefault(caller, set())
                for edge in edges:
                    callee_eff = effective.get(edge.callee)
                    if callee_eff and not callee_eff <= eff:
                        eff |= callee_eff
                        changed = True

        for caller in sorted(graph.edges):
            for edge in graph.edges[caller]:
                for lock in sorted(effective.get(edge.callee, ())):
                    for outer in edge.held:
                        if outer != lock:
                            pairs.setdefault(
                                (outer, lock), (edge.path, edge.line)
                            )

        for first, second in sorted(pairs):
            if first < second and (second, first) in pairs:
                here = pairs[(first, second)]
                there = pairs[(second, first)]
                for (a, b), site, other in (
                    ((first, second), here, there),
                    ((second, first), there, here),
                ):
                    yield self.project_finding(
                        model,
                        site[0],
                        site[1],
                        f"lock order inversion: {a} is held while "
                        f"acquiring {b} here, but {other[0]}:{other[1]} "
                        f"acquires them in the opposite order",
                    )


@register
class ParityOrphanRule(ProjectRule):
    id = "PARITY-ORPHAN"
    title = "public batch API not exercised by any parity/fuzz test"
    severity = Severity.ERROR
    scope = "src"
    rationale = (
        "The repo's contract is that every vectorized path is bitwise-"
        "equal to its scalar reference, and the only durable evidence "
        "is a parity or fuzz test that names it.  A public *_batch "
        "callable no parity test references is an unproven claim; this "
        "rule makes the obligation structural."
    )

    def check_project(
        self, model: ProjectModel, graph: CallGraph, config
    ) -> Iterator[Finding]:
        globs = config.options_for(self.id).get(
            "test_globs", DEFAULT_TEST_GLOBS
        )
        referenced: set[str] = set()
        for rel_path in sorted(model.summaries):
            if any(fnmatch(rel_path, pattern) for pattern in globs):
                referenced.update(
                    model.summaries[rel_path]["referenced_names"]
                )
        for rel_path, summary, function in model.iter_functions():
            if not rel_path.startswith("src/"):
                continue
            name = function["name"]
            if not (function["public"] and name.endswith("_batch")):
                continue
            if name in referenced:
                continue
            yield self.project_finding(
                model,
                rel_path,
                function["line"],
                f"public batch API {function['qualname']} is not "
                f"referenced by any parity/fuzz test (searched "
                f"{', '.join(globs)}); add coverage or a pragma citing "
                f"the pinning test",
            )


@register
class PragmaStaleRule(ProjectRule):
    id = "PRAGMA-STALE"
    title = "pragma justification cites a file that does not exist"
    severity = Severity.ERROR
    scope = "all"
    rationale = (
        "A waiver is only as good as the pinning test it cites.  When "
        "that test is renamed or deleted, the pragma keeps suppressing "
        "with a dangling citation -- the suppression outlives its "
        "evidence.  Stale citations fail the gate instead."
    )

    def check_project(
        self, model: ProjectModel, graph: CallGraph, config
    ) -> Iterator[Finding]:
        for rel_path in sorted(model.summaries):
            for pragma in model.summaries[rel_path]["pragmas"]:
                for cited in pragma["cited"]:
                    if (config.root / cited).is_file():
                        continue
                    rules = ", ".join(pragma["rules"])
                    yield self.project_finding(
                        model,
                        rel_path,
                        pragma["line"],
                        f"allow[{rules}] pragma cites {cited}, which "
                        f"does not exist; update the citation or drop "
                        f"the waiver",
                    )

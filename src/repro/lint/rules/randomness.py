"""RNG discipline: RNG-LEGACY / RNG-STDLIB / RNG-SEED.

The PR 2 incident: ``FaultModel`` instances defaulted to
``default_rng(0)``, so two nominally independent fault streams were
bit-identical and campaign results depended on evaluation order.  The
fix -- and the repo-wide convention these rules enforce -- is that
every stochastic component takes an explicit ``numpy.random.Generator``
spawned from a campaign-controlled :class:`~numpy.random.SeedSequence`
(see :mod:`repro.campaigns.seeding`).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from fnmatch import fnmatch

from repro.lint.context import FileContext
from repro.lint.findings import Finding, Severity
from repro.lint.registry import Rule, register

#: numpy legacy global-state API (shared mutable stream, silently
#: order-dependent).  ``default_rng``/``Generator``/``SeedSequence``
#: are the sanctioned modern API and are not in this set.
NUMPY_LEGACY = {
    "seed", "get_state", "set_state", "rand", "randn", "randint",
    "random", "random_sample", "ranf", "sample", "random_integers",
    "choice", "bytes", "shuffle", "permutation", "beta", "binomial",
    "chisquare", "dirichlet", "exponential", "f", "gamma", "geometric",
    "gumbel", "hypergeometric", "laplace", "logistic", "lognormal",
    "logseries", "multinomial", "multivariate_normal",
    "negative_binomial", "noncentral_chisquare", "noncentral_f",
    "normal", "pareto", "poisson", "power", "rayleigh",
    "standard_cauchy", "standard_exponential", "standard_gamma",
    "standard_normal", "standard_t", "triangular", "uniform",
    "vonmises", "wald", "weibull", "zipf", "RandomState",
}

#: stdlib ``random`` module-level functions (one hidden global
#: ``Random()`` instance shared by the whole process).
STDLIB_RANDOM = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "seed",
    "getrandbits", "betavariate", "expovariate", "triangular",
    "lognormvariate", "vonmisesvariate", "paretovariate",
    "weibullvariate", "binomialvariate",
}


@register
class NumpyLegacyRule(Rule):
    id = "RNG-LEGACY"
    title = "numpy legacy global-state random API"
    severity = Severity.ERROR
    scope = "all"
    rationale = (
        "np.random.seed()/rand()/... share one hidden global stream: any "
        "two call sites are coupled and results depend on call order and "
        "worker scheduling -- the exact failure class behind the PR 2 "
        "campaign order-dependence.  Take an explicit Generator spawned "
        "from a SeedSequence."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qualname = ctx.call_qualname(node) or ""
            if (
                qualname.startswith("numpy.random.")
                and qualname.rpartition(".")[2] in NUMPY_LEGACY
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"{qualname} uses numpy's hidden global stream; pass an "
                    "explicit spawned Generator",
                )


@register
class StdlibRandomRule(Rule):
    id = "RNG-STDLIB"
    title = "stdlib random module-level function"
    severity = Severity.ERROR
    scope = "all"
    rationale = (
        "random.random()/choice()/... draw from one process-global "
        "Random() whose state any import can perturb; reproducibility "
        "claims cannot survive it.  Use numpy Generators (or an explicit "
        "random.Random(seed) instance for non-numeric needs)."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qualname = ctx.call_qualname(node) or ""
            # ``random.Random(seed)`` instances are sanctioned; only
            # the module-level functions share the hidden global.
            # Require a real ``import random`` so a local variable
            # named ``random`` cannot trip the rule.
            if (
                qualname.startswith("random.")
                and qualname.rpartition(".")[2] in STDLIB_RANDOM
                and ctx.imports.get("random") == "random"
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"{qualname} draws from the process-global stdlib "
                    "stream; use an explicit seeded generator",
                )


@register
class UnseededDefaultRngRule(Rule):
    id = "RNG-SEED"
    title = "default_rng() without a campaign-derived seed"
    severity = Severity.ERROR
    scope = "src"
    rationale = (
        "In stochastic subsystems (faults/, campaigns/, serving/) "
        "default_rng() is nondeterministic and default_rng(<literal>) "
        "recreates the PR 2 bug: every caller gets the *same* stream, so "
        "nominally independent components are bit-correlated.  Streams "
        "there must derive from an explicit spawned SeedSequence.  "
        "Module-level generators are flagged everywhere in src: import "
        "order becomes part of the experiment."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        options = ctx.options_for(self.id)
        strict = any(
            fnmatch(ctx.rel_path, pat)
            for pat in options.get("strict_paths", [])
        )
        module_level_calls = self._module_level_calls(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qualname = ctx.call_qualname(node) or ""
            if qualname != "numpy.random.default_rng":
                continue
            at_module_level = id(node) in module_level_calls
            if not strict and not at_module_level:
                continue
            if not node.args and not node.keywords:
                yield self.finding(
                    ctx,
                    node,
                    "default_rng() with no seed is fresh entropy: results "
                    "are unreproducible; derive the stream from a spawned "
                    "SeedSequence",
                )
            elif node.args and isinstance(node.args[0], ast.Constant):
                yield self.finding(
                    ctx,
                    node,
                    "default_rng(<literal>) hands every caller the same "
                    "stream (the PR 2 FaultModel bug); derive per-component "
                    "streams from a spawned SeedSequence",
                )
            elif at_module_level:
                yield self.finding(
                    ctx,
                    node,
                    "module-level generator: shared mutable stream whose "
                    "draws depend on import/evaluation order",
                )

    @staticmethod
    def _module_level_calls(tree: ast.AST) -> set[int]:
        """ids of Call nodes executed at import time: reachable
        without crossing a function boundary.  Class bodies count --
        a class-attribute generator is shared by every instance,
        which is exactly the hazard."""
        found: set[int] = set()
        stack = list(getattr(tree, "body", []))
        while stack:
            node = stack.pop()
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            if isinstance(node, ast.Call):
                found.add(id(node))
            stack.extend(ast.iter_child_nodes(node))
        return found

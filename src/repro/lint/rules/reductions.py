"""REDUCE-ORDER / REDUCE-AXES: reduction-order hazards in parity code.

The PR 4 incident: ``correlate2d`` via ``einsum`` let BLAS/kernel
selection pick a different summation order for batched vs per-image
shapes, silently breaking bitwise batch-vs-scalar parity for the
grayscale stage.  The fix was tap-sequential ufunc accumulation --
an explicit, shape-independent summation tree.  In modules that
promise bitwise parity, every BLAS-shaped contraction is therefore
either rewritten that way or individually audited (allow pragma
naming the parity test that covers it).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.context import FileContext
from repro.lint.findings import Finding, Severity
from repro.lint.registry import Rule, register

CONTRACTION_CALLS = {
    "numpy.einsum",
    "numpy.tensordot",
    "numpy.dot",
    "numpy.vdot",
    "numpy.inner",
    "numpy.matmul",
    "numpy.linalg.multi_dot",
}

#: method names that dispatch to the same BLAS machinery
CONTRACTION_METHODS = {"dot", "matmul"}

REDUCTION_CALLS = {"numpy.sum", "numpy.nansum", "numpy.prod", "numpy.nanprod"}
REDUCTION_METHODS = {"sum", "prod"}


@register
class ContractionOrderRule(Rule):
    id = "REDUCE-ORDER"
    title = "BLAS-shaped contraction in bitwise-parity code"
    severity = Severity.ERROR
    scope = "parity"
    rationale = (
        "einsum/tensordot/@/dot let the backend choose the summation "
        "order per shape, so batched and scalar runs of the same math can "
        "differ in the last ulp -- the PR 4 batch-parity break.  Parity "
        "modules accumulate tap-sequentially, or carry an audited allow "
        "pragma naming the parity test that pins the call site."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.MatMult):
                yield self.finding(
                    ctx,
                    node,
                    "@ (matmul) delegates summation order to the backend; "
                    "shape-dependent kernels break batch-vs-scalar bitwise "
                    "parity",
                )
            elif isinstance(node, ast.Call):
                qualname = ctx.call_qualname(node) or ""
                if qualname in CONTRACTION_CALLS:
                    yield self.finding(
                        ctx,
                        node,
                        f"{qualname} picks a shape-dependent reduction "
                        "order; use tap-sequential accumulation in parity "
                        "code",
                    )
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in CONTRACTION_METHODS
                ):
                    # ``x.dot(y)``: same BLAS dispatch, method form.
                    yield self.finding(
                        ctx,
                        node,
                        f".{node.func.attr}() dispatches to BLAS with a "
                        "shape-dependent reduction order",
                    )


@register
class MultiAxisReductionRule(Rule):
    id = "REDUCE-AXES"
    title = "multi-axis sum/prod in bitwise-parity code"
    severity = Severity.ERROR
    scope = "parity"
    rationale = (
        "sum(axis=(i, j)) collapses several axes in one pairwise tree "
        "whose shape numpy may re-block per input size; parity code "
        "reduces one axis at a time in a fixed order so the summation "
        "tree is part of the contract."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qualname = ctx.call_qualname(node) or ""
            is_reduction = qualname in REDUCTION_CALLS or (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in REDUCTION_METHODS
            )
            if not is_reduction:
                continue
            for keyword in node.keywords:
                if keyword.arg == "axis" and isinstance(
                    keyword.value, ast.Tuple
                ):
                    yield self.finding(
                        ctx,
                        node,
                        "multi-axis reduction: numpy may re-block the "
                        "summation tree per input shape; reduce one axis "
                        "at a time",
                    )

"""Hygiene rules: MUT-DEFAULT / LRU-METHOD.

Not determinism hazards per se, but the two Python footguns that most
often *become* shared-state bugs in a long-lived serving process: a
mutable default argument is one hidden module-level object shared by
every call, and ``lru_cache`` on an instance method keeps every
instance (and its numpy state) alive in a process-global cache.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.context import FileContext
from repro.lint.findings import Finding, Severity
from repro.lint.registry import Rule, register

MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "defaultdict", "Counter",
                 "collections.defaultdict", "collections.Counter",
                 "collections.deque", "deque"}

CACHE_DECORATORS = {"functools.lru_cache", "functools.cache"}


def _is_mutable_literal(node: ast.AST, ctx: FileContext) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, ast.Call):
        return (ctx.call_qualname(node) or "") in MUTABLE_CALLS
    return False


@register
class MutableDefaultRule(Rule):
    id = "MUT-DEFAULT"
    title = "mutable default argument"
    severity = Severity.WARNING
    scope = "all"
    rationale = (
        "A mutable default is a single module-level object shared by "
        "every call -- cross-request state leakage the moment the "
        "function runs inside the server.  Default to None and "
        "materialise inside the body."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _is_mutable_literal(default, ctx):
                    yield self.finding(
                        ctx,
                        default,
                        "mutable default argument is shared across every "
                        "call; default to None and build inside the body",
                    )


@register
class LruCacheMethodRule(Rule):
    id = "LRU-METHOD"
    title = "lru_cache on an instance method"
    severity = Severity.WARNING
    scope = "all"
    rationale = (
        "functools.lru_cache on a method keys on self: every instance "
        "is retained by a process-global cache (leak) and cache hits "
        "alias state across logically independent pipelines.  Cache "
        "module-level pure functions, or use a per-instance dict."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for class_node in ast.walk(ctx.tree):
            if not isinstance(class_node, ast.ClassDef):
                continue
            for method in class_node.body:
                if not isinstance(
                    method, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                names = {
                    ctx.qualname(
                        d.func if isinstance(d, ast.Call) else d
                    )
                    for d in method.decorator_list
                }
                if names & {"staticmethod", "classmethod"}:
                    continue
                cached = names & CACHE_DECORATORS
                if cached:
                    yield self.finding(
                        ctx,
                        method,
                        f"{sorted(cached)[0]} on an instance method retains "
                        "every instance in a global cache; cache a "
                        "module-level function instead",
                    )

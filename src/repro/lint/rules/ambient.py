"""Ambient nondeterminism in compute paths: AMBIENT-TIME / AMBIENT-ENV
/ AMBIENT-ID / SET-ITER.

Compute modules produce verdicts that must replay bitwise (campaign
resume, request-log replay, differential fuzzing).  Anything that
reads ambient process state -- the clock, the environment, CPython
object addresses, hash-seeded set order -- makes a replay diverge in
ways no seed controls.  Orchestration layers (serving, campaigns,
workflows, benchmarks) legitimately read clocks and are outside this
scope; the few compute call sites that only *report* elapsed time
carry allow pragmas saying so.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.context import FileContext
from repro.lint.findings import Finding, Severity
from repro.lint.registry import Rule, register

CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.date.today",
}

ENV_CALLS = {"os.getenv", "os.environ.get"}


def _is_sorted_wrapped(node: ast.AST, parents: dict[int, ast.AST]) -> bool:
    """True when the set expression is immediately consumed by
    ``sorted(...)`` -- the sanctioned way to iterate a set."""
    parent = parents.get(id(node))
    if isinstance(parent, ast.Call) and isinstance(parent.func, ast.Name):
        return parent.func.id == "sorted"
    return False


def _parent_map(tree: ast.AST) -> dict[int, ast.AST]:
    parents: dict[int, ast.AST] = {}
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            parents[id(child)] = parent
    return parents


def _is_set_expr(node: ast.AST, ctx: FileContext) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        qualname = ctx.call_qualname(node)
        return qualname in {"set", "frozenset"}
    return False


@register
class WallClockRule(Rule):
    id = "AMBIENT-TIME"
    title = "wall-clock read in a compute path"
    severity = Severity.ERROR
    scope = "compute"
    rationale = (
        "A clock read in compute code either feeds the result (replay "
        "diverges) or is profiling that belongs in the orchestration "
        "layer.  Report-metadata timing that provably never feeds a "
        "verdict carries an allow pragma saying exactly that."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qualname = ctx.call_qualname(node) or ""
            if qualname in CLOCK_CALLS:
                yield self.finding(
                    ctx,
                    node,
                    f"{qualname}() reads ambient time inside a compute "
                    "path; deterministic replay cannot reproduce it",
                )


@register
class EnvironRule(Rule):
    id = "AMBIENT-ENV"
    title = "environment read in a compute path"
    severity = Severity.ERROR
    scope = "compute"
    rationale = (
        "os.environ consulted inside compute code makes results depend "
        "on launcher state that no artifact records.  Configuration "
        "belongs in explicit config objects (repro.api.config) resolved "
        "at the boundary."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            qualname = None
            if isinstance(node, ast.Call):
                qualname = ctx.call_qualname(node)
                if qualname not in ENV_CALLS:
                    qualname = None
            elif isinstance(node, (ast.Attribute, ast.Subscript)):
                target = node.value if isinstance(node, ast.Subscript) else node
                resolved = ctx.qualname(target)
                if resolved == "os.environ":
                    qualname = "os.environ"
            if qualname:
                yield self.finding(
                    ctx,
                    node,
                    f"{qualname} read inside a compute path; route "
                    "configuration through explicit config objects",
                )


@register
class IdKeyedRule(Rule):
    id = "AMBIENT-ID"
    title = "id()-keyed logic in a compute path"
    severity = Severity.ERROR
    scope = "compute"
    rationale = (
        "id() exposes CPython heap addresses: dicts keyed by it iterate "
        "in allocation order, logs built from it never replay, and "
        "state maps silently alias when an object is freed and its "
        "address reused.  Key by explicit slot/index instead (the "
        "nn.optim state maps were the in-tree instance)."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "id"
                and "id" not in ctx.imports
            ):
                yield self.finding(
                    ctx,
                    node,
                    "id() leaks heap addresses into compute state; key by "
                    "an explicit slot or index",
                )


@register
class SetIterationRule(Rule):
    id = "SET-ITER"
    title = "direct set iteration feeding computation"
    severity = Severity.ERROR
    scope = "compute"
    rationale = (
        "Set iteration order follows hash values -- for str keys it "
        "changes per process (PYTHONHASHSEED), and float accumulation "
        "over it changes with order.  Wrap the set in sorted() before "
        "iterating or accumulating."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        parents = _parent_map(ctx.tree)
        for node in ast.walk(ctx.tree):
            iter_expr = None
            if isinstance(node, ast.For):
                iter_expr = node.iter
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp, ast.SetComp)):
                iter_expr = node.generators[0].iter
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "sum"
                and node.args
            ):
                iter_expr = node.args[0]
            if iter_expr is None or not _is_set_expr(iter_expr, ctx):
                continue
            if _is_sorted_wrapped(iter_expr, parents):
                continue
            yield self.finding(
                ctx,
                node,
                "iterating a set in hash order inside a compute path; "
                "wrap it in sorted() to pin the order",
            )

"""Rule modules.  Importing this package registers every rule.

One module per hazard family; each rule's docstring/rationale cites
the incident that motivated it (PR 2/3/4 post-mortems).
"""

from repro.lint.rules import (  # noqa: F401  (registration side effects)
    ambient,
    float_compare,
    hygiene,
    locks,
    randomness,
    reductions,
)
from repro.lint.rules import interproc  # noqa: F401  (imports the above)

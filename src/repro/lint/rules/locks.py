"""LOCK-GUARD: machine-checked lock discipline for shared state.

Classes that share mutable attributes across threads declare the
contract as data, in the class body::

    class PipelineServer:
        #: attributes only touched under the named lock
        _guarded_by = {"_state_lock": ("_accepting", "_draining", "_thread")}

The rule then enforces it lexically: every load/store of a guarded
attribute through ``self`` must sit inside ``with self._state_lock:``.
``__init__``/``__del__`` are exempt (the object is not yet / no longer
shared).  Deliberate unlocked accesses -- optimistic gate reads,
single-writer flags -- are exactly the places that deserve a written
justification, which is what the allow pragma forces.

This lands ahead of the multi-worker serving tier so the serving
layer's thread-safety contract is checked before it multiplies.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.context import FileContext
from repro.lint.findings import Finding, Severity
from repro.lint.registry import Rule, register

DECLARATION = "_guarded_by"
REQUIRES = "_requires_lock"
EXEMPT_METHODS = {"__init__", "__del__"}


def _literal_str_seq(node: ast.AST) -> list[str] | None:
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        out = []
        for element in node.elts:
            if not (
                isinstance(element, ast.Constant)
                and isinstance(element.value, str)
            ):
                return None
            out.append(element.value)
        return out
    return None


def _guarded_map(class_node: ast.ClassDef) -> dict[str, str]:
    """attr name -> lock attr name, from the ``_guarded_by`` class
    attribute (a dict literal of str -> tuple/list of str)."""
    guarded: dict[str, str] = {}
    for stmt in class_node.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if not any(
            isinstance(t, ast.Name) and t.id == DECLARATION for t in targets
        ):
            continue
        if not isinstance(value, ast.Dict):
            continue
        for key, val in zip(value.keys, value.values):
            if not (
                isinstance(key, ast.Constant) and isinstance(key.value, str)
            ):
                continue
            attrs = _literal_str_seq(val)
            if attrs is None:
                continue
            for attr in attrs:
                guarded[attr] = key.value
    return guarded


def _requires_map(class_node: ast.ClassDef) -> dict[str, list[str]]:
    """method name -> lock attrs, from the ``_requires_lock`` class
    attribute.  An annotated helper is checked *as if* its declared
    locks were held; the project pass (LOCK-CALL) then verifies every
    call site actually holds them."""
    requires: dict[str, list[str]] = {}
    for stmt in class_node.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if not any(
            isinstance(t, ast.Name) and t.id == REQUIRES for t in targets
        ):
            continue
        if not isinstance(value, ast.Dict):
            continue
        for key, val in zip(value.keys, value.values):
            if not (
                isinstance(key, ast.Constant) and isinstance(key.value, str)
            ):
                continue
            locks = _literal_str_seq(val)
            if locks is not None:
                requires[key.value] = locks
    return requires


def _self_attr(node: ast.AST, self_name: str) -> str | None:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == self_name
    ):
        return node.attr
    return None


class _MethodChecker(ast.NodeVisitor):
    """Walks one method body tracking the lexical ``with self.<lock>``
    stack.  Accesses inside nested functions count as *outside* the
    lock: the closure runs later, when the lock may not be held."""

    def __init__(self, rule, ctx, guarded, self_name):
        self.rule = rule
        self.ctx = ctx
        self.guarded = guarded
        self.self_name = self_name
        self.held: list[str] = []
        self.depth = 0  # nested function depth
        self.findings: list[Finding] = []

    # -- lock tracking ---------------------------------------------------
    def visit_With(self, node: ast.With) -> None:
        acquired = []
        for item in node.items:
            attr = _self_attr(item.context_expr, self.self_name)
            if attr is not None:
                acquired.append(attr)
        if self.depth:
            acquired = []  # a with inside a nested def guards that def only
        self.held.extend(acquired)
        self.generic_visit(node)
        for _ in acquired:
            self.held.pop()

    def _enter_nested(self, node) -> None:
        self.depth += 1
        held, self.held = self.held, []
        self.generic_visit(node)
        self.held = held
        self.depth -= 1

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_nested(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_nested(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._enter_nested(node)

    # -- accesses --------------------------------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        attr = _self_attr(node, self.self_name)
        if attr is not None and attr in self.guarded:
            lock = self.guarded[attr]
            if lock not in self.held:
                self.findings.append(
                    self.rule.finding(
                        self.ctx,
                        node,
                        f"self.{attr} is declared lock-guarded but accessed "
                        f"outside `with self.{lock}`",
                    )
                )
        self.generic_visit(node)


@register
class LockDisciplineRule(Rule):
    id = "LOCK-GUARD"
    title = "lock-guarded attribute accessed outside its lock"
    severity = Severity.ERROR
    scope = "all"
    rationale = (
        "Shared mutable state with an implicit locking convention is how "
        "thread-safety contracts rot.  _guarded_by declares the contract "
        "as data; every unlocked access is then either a bug or a "
        "deliberate racy read that must carry its justification inline."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for class_node in ast.walk(ctx.tree):
            if not isinstance(class_node, ast.ClassDef):
                continue
            guarded = _guarded_map(class_node)
            if not guarded:
                continue
            requires = _requires_map(class_node)
            for method in class_node.body:
                if not isinstance(
                    method, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                if method.name in EXEMPT_METHODS:
                    continue
                args = method.args.posonlyargs + method.args.args
                if not args:
                    continue  # staticmethod-style: no self to track
                checker = _MethodChecker(self, ctx, guarded, args[0].arg)
                checker.held.extend(requires.get(method.name, []))
                for stmt in method.body:
                    checker.visit(stmt)
                yield from checker.findings

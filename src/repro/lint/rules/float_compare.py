"""FLOAT-EQ / FLOAT-APPROX: value-level float comparison in parity code.

The PR 3 incident: qualifier agreement used float ``==``, so
``NaN == NaN`` being False sent identical true-NaN results into an
infinite rollback loop, and ``+0.0 == -0.0`` being True silently
qualified sign-bit upsets on zero results (golden pin moved 198 -> 202
when fixed).  In parity-critical modules the only sanctioned
comparison is the IEEE-754 storage word
(:mod:`repro.reliable.bits`: ``same_word`` / ``word_view``).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.context import FileContext
from repro.lint.findings import Finding, Severity
from repro.lint.registry import Rule, register

#: Value-level comparison helpers that have no place in bitwise code:
#: tolerance comparators hide single-bit upsets by design, and
#: ``array_equal`` on floats inherits ``==``'s NaN/signed-zero holes.
APPROX_CALLS = {
    "numpy.array_equal",
    "numpy.array_equiv",
    "numpy.allclose",
    "numpy.isclose",
    "numpy.testing.assert_allclose",
    "numpy.testing.assert_array_almost_equal",
    "math.isclose",
}

FLOAT_CONSTANTS = {
    "numpy.nan",
    "numpy.NaN",
    "numpy.NAN",
    "numpy.inf",
    "numpy.Inf",
    "numpy.NINF",
    "numpy.PINF",
    "numpy.e",
    "numpy.pi",
    "math.nan",
    "math.inf",
    "math.e",
    "math.pi",
    "math.tau",
}

FLOAT_CALLS = {"float", "numpy.float64", "numpy.float32", "numpy.float16"}


def _float_like(node: ast.AST, ctx: FileContext) -> bool:
    """Conservative "this operand is a float value" detector.

    Only shapes that are unambiguously floating-point count -- float
    literals, ``float()``/``np.float64()`` conversions, float
    constants, and arithmetic over those.  Anything fuzzier (plain
    names, attribute loads) stays unflagged: a determinism gate earns
    its keep by being quiet on clean code.
    """
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp):
        return _float_like(node.operand, ctx)
    if isinstance(node, ast.BinOp):
        return _float_like(node.left, ctx) or _float_like(node.right, ctx)
    if isinstance(node, ast.Call):
        return (ctx.call_qualname(node) or "") in FLOAT_CALLS
    if isinstance(node, (ast.Attribute, ast.Name)):
        return (ctx.qualname(node) or "") in FLOAT_CONSTANTS
    return False


@register
class FloatEqualityRule(Rule):
    id = "FLOAT-EQ"
    title = "float == / != in parity-critical code"
    severity = Severity.ERROR
    scope = "parity"
    rationale = (
        "Float == treats +0.0 as -0.0 (missed sign-bit upset) and NaN as "
        "unequal to itself (infinite rollback on true-NaN results) -- the "
        "PR 3 incident.  Compare storage words via repro.reliable.bits "
        "(same_word / word_view) instead."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left, *node.comparators]
            if any(_float_like(operand, ctx) for operand in operands):
                yield self.finding(
                    ctx,
                    node,
                    "float ==/!= compares values, not storage words; use "
                    "repro.reliable.bits.same_word/word_view",
                )


@register
class FloatApproxRule(Rule):
    id = "FLOAT-APPROX"
    title = "tolerance/value comparator call in parity-critical code"
    severity = Severity.ERROR
    scope = "parity"
    rationale = (
        "allclose/isclose/array_equal compare numeric values: tolerance "
        "hides single-bit upsets and array_equal inherits ==' NaN and "
        "signed-zero holes.  Bitwise contracts compare word views.  "
        "Word-dtype call sites carry an allow pragma stating the operands "
        "are integer storage words."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qualname = ctx.call_qualname(node)
            if qualname in APPROX_CALLS:
                yield self.finding(
                    ctx,
                    node,
                    f"{qualname} is a value-level comparison; parity code "
                    "compares storage words (repro.reliable.bits)",
                )

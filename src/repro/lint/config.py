"""Lint configuration: roots, excludes, path scopes, rule options.

Defaults encode this repo's layout; ``lint.toml`` at the repo root
overrides them (stdlib ``tomllib``, no third-party parser).  Path
patterns are ``fnmatch`` globs over repo-relative POSIX paths, where
``*`` crosses ``/`` -- ``src/repro/reliable/*`` covers the whole
subtree.

Scopes map the invariant surface, not the directory tree:

* ``parity`` -- modules and tests that promise *bitwise* results
  (reliable/, core/, serving/, the fuzz harness, parity/golden
  tests).  Float ``==`` and order-sensitive reductions are hazards
  here and nowhere else.
* ``compute`` -- numeric compute paths whose outputs feed verdicts.
  Wall-clock, environment, ``id()`` and set-iteration hazards apply;
  orchestration layers (campaigns, workflows, serving) legitimately
  read clocks and are excluded.
* ``src`` -- all shipped library code (RNG discipline).
* ``all`` -- everything the walker reaches (hygiene rules).
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path

#: Name of the repo-root config file picked up automatically.
DEFAULT_CONFIG_FILE = "lint.toml"

DEFAULT_ROOTS = ["src", "tests", "benchmarks"]

#: Generated/vendored files the walker never descends into.
DEFAULT_EXCLUDE = [
    "benchmarks/artifacts/*",
    "tests/lint/fixtures/*",
    "*/.git/*",
    "*/.hypothesis/*",
    "*/.pytest_cache/*",
    "*/__pycache__/*",
    "*.egg-info/*",
]

DEFAULT_SCOPES: dict[str, list[str]] = {
    "parity": [
        "src/repro/reliable/*",
        "src/repro/core/*",
        "src/repro/serving/*",
        "tests/support/fuzz.py",
        "tests/*parity*",
        "tests/*golden*",
    ],
    "compute": [
        "src/repro/reliable/*",
        "src/repro/core/*",
        "src/repro/vision/*",
        "src/repro/sax/*",
        "src/repro/nn/*",
        "src/repro/data/*",
        "src/repro/faults/*",
        "src/repro/analysis/*",
        "src/repro/hybridir/*",
        "src/repro/baselines/*",
    ],
    "src": ["src/*"],
}

#: Extra per-rule options with repo-tuned defaults (see each rule's
#: docstring for semantics).
DEFAULT_RULE_OPTIONS: dict[str, dict] = {
    # default_rng() / default_rng(<literal>) is only a hazard where
    # streams must be independent or campaign-controlled; weight-init
    # fallbacks like ``rng or default_rng(0)`` are deterministic by
    # design and stay unflagged outside these paths.
    "RNG-SEED": {
        "strict_paths": [
            "src/repro/faults/*",
            "src/repro/campaigns/*",
            "src/repro/serving/*",
        ],
    },
    # Where a public *_batch callable may discharge its parity
    # obligation (PARITY-ORPHAN).
    "PARITY-ORPHAN": {
        "test_globs": [
            "tests/*parity*",
            "tests/*golden*",
            "tests/*fuzz*",
            "tests/*determinism*",
            "tests/support/fuzz.py",
        ],
    },
}


@dataclass
class LintConfig:
    root: Path
    roots: list[str] = field(default_factory=lambda: list(DEFAULT_ROOTS))
    exclude: list[str] = field(default_factory=lambda: list(DEFAULT_EXCLUDE))
    baseline_path: str = "lint-baseline.json"
    #: On-disk summary cache for the ``--project`` pass (repo-relative).
    project_cache: str = ".lint-cache/project.json"
    scopes: dict[str, list[str]] = field(
        default_factory=lambda: {k: list(v) for k, v in DEFAULT_SCOPES.items()}
    )
    rule_excludes: dict[str, list[str]] = field(default_factory=dict)
    rule_options: dict[str, dict] = field(
        default_factory=lambda: {
            k: dict(v) for k, v in DEFAULT_RULE_OPTIONS.items()
        }
    )
    disabled: set[str] = field(default_factory=set)

    # -- path predicates -------------------------------------------------
    def is_excluded(self, rel_path: str) -> bool:
        return any(fnmatch(rel_path, pat) for pat in self.exclude)

    def in_scope(self, scope: str, rel_path: str) -> bool:
        if scope == "all":
            return True
        patterns = self.scopes.get(scope, [])
        return any(fnmatch(rel_path, pat) for pat in patterns)

    def rule_applies(self, rule, rel_path: str) -> bool:
        if rule.id in self.disabled:
            return False
        if not self.in_scope(rule.scope, rel_path):
            return False
        return not any(
            fnmatch(rel_path, pat)
            for pat in self.rule_excludes.get(rule.id, [])
        )

    def options_for(self, rule_id: str) -> dict:
        return self.rule_options.get(rule_id, {})


def load_config(root: Path, config_path: Path | None = None) -> LintConfig:
    """Config for ``root``, merged with ``lint.toml`` when present.

    TOML keys live under ``[lint]`` (``roots``, ``exclude``,
    ``baseline``, ``disabled``), ``[lint.scopes]`` (scope -> glob
    list, replacing the default list per key), and
    ``[lint.rules."RULE-ID"]`` (``exclude`` globs plus arbitrary rule
    options).  Lists *replace* defaults rather than appending --
    explicit beats clever for an invariant gate.
    """
    root = Path(root).resolve()
    config = LintConfig(root=root)
    path = config_path or (root / DEFAULT_CONFIG_FILE)
    if not Path(path).exists():
        if config_path is not None:
            raise FileNotFoundError(f"lint config not found: {config_path}")
        return config
    with open(path, "rb") as handle:
        data = tomllib.load(handle)
    section = data.get("lint", {})
    if "roots" in section:
        config.roots = [str(p) for p in section["roots"]]
    if "exclude" in section:
        config.exclude = [str(p) for p in section["exclude"]]
    if "baseline" in section:
        config.baseline_path = str(section["baseline"])
    if "project_cache" in section:
        config.project_cache = str(section["project_cache"])
    if "disabled" in section:
        config.disabled = {str(r) for r in section["disabled"]}
    for scope, patterns in section.get("scopes", {}).items():
        config.scopes[scope] = [str(p) for p in patterns]
    for rule_id, options in section.get("rules", {}).items():
        options = dict(options)
        excludes = options.pop("exclude", None)
        if excludes is not None:
            config.rule_excludes[rule_id] = [str(p) for p in excludes]
        if options:
            merged = dict(config.rule_options.get(rule_id, {}))
            merged.update(options)
            config.rule_options[rule_id] = merged
    return config

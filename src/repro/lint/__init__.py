"""Determinism & dependability linter for the repro stack.

Every guarantee this reproduction makes -- bitwise engine parity,
word-level voting, worker-count-invariant campaigns -- has been broken
at least once by a hazard that is mechanically detectable:

* float ``==`` silently qualifying sign-bit upsets on zero results
  (fixed in PR 3 by moving every qualifier comparison onto IEEE-754
  storage words, golden pin 198 -> 202);
* a shared ``default_rng(0)`` making nominally independent fault
  streams identical and campaigns order-dependent (fixed in PR 2);
* BLAS kernel selection changing reduction order and breaking bitwise
  batch-vs-scalar parity (fixed in PR 4 by tap-sequential
  accumulation).

This package catches those classes of bug *statically*, at CI time,
instead of re-discovering them one golden-pin regression at a time.
It is deliberately stdlib-only (``ast`` + ``tokenize``) so the lint
gate needs no third-party installs.

Entry points::

    python -m repro.lint                  # lint configured roots
    python -m repro.lint src tests        # lint explicit paths
    scripts/lint.py --changed             # only git-modified files

Suppression: ``# repro: allow[RULE-ID] -- justification`` on (or on a
standalone line above) the offending line; ``allow-file[RULE-ID]`` in
the file's first comment block for whole-file waivers.  Grandfathered
findings live in the committed baseline (``lint-baseline.json``).
"""

from __future__ import annotations

from repro.lint.baseline import Baseline, BaselineEntry
from repro.lint.callgraph import CallGraph
from repro.lint.config import DEFAULT_CONFIG_FILE, LintConfig, load_config
from repro.lint.engine import LintResult, iter_python_files, lint_file, run_lint
from repro.lint.findings import Finding, Severity
from repro.lint.project import ProjectModel, build_project
from repro.lint.registry import RULES, ProjectRule, Rule, register
from repro.lint.reporters import REPORT_VERSION, render_human, render_json

# Importing the rules package populates the registry.
from repro.lint import rules as _rules  # noqa: F401  (side-effect import)

__all__ = [
    "Baseline",
    "BaselineEntry",
    "CallGraph",
    "DEFAULT_CONFIG_FILE",
    "Finding",
    "LintConfig",
    "LintResult",
    "ProjectModel",
    "ProjectRule",
    "REPORT_VERSION",
    "RULES",
    "Rule",
    "Severity",
    "build_project",
    "iter_python_files",
    "lint_file",
    "load_config",
    "register",
    "render_human",
    "render_json",
    "run_lint",
]

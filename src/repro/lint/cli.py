"""Command-line entry point: ``python -m repro.lint`` / ``scripts/lint.py``.

Exit codes: 0 gate passes, 1 findings (or stale baseline entries),
2 usage/config error.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path

from repro.lint.baseline import Baseline
from repro.lint.config import LintConfig, load_config
from repro.lint.engine import run_lint
from repro.lint.reporters import render_human, render_json, render_rule_list


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description=(
            "Determinism & dependability linter for the repro stack "
            "(AST-based; see docs/lint.md)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint (default: configured roots)",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repo root for config, baseline and relative paths",
    )
    parser.add_argument(
        "--config", default=None, help="explicit lint.toml path"
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="report format on stdout",
    )
    parser.add_argument(
        "--json-output",
        default=None,
        metavar="PATH",
        help="additionally write the JSON report to PATH (CI artifact)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="baseline file (default: from config; need not exist)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline: report every finding as new",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help=(
            "rewrite the baseline to cover exactly the current "
            "findings (prunes stale entries, keeps notes) and exit 0"
        ),
    )
    parser.add_argument(
        "--project",
        action="store_true",
        help=(
            "also run the whole-program pass: call-graph taint flow, "
            "inter-procedural lock discipline, parity obligations"
        ),
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help=(
            "lint git-modified/untracked .py files plus their "
            "reverse-call-graph callers (fast local loop; baseline "
            "still applies)"
        ),
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule set and exit"
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true", help="also list baselined findings"
    )
    return parser


def _git_changed_files(root: Path) -> list[Path]:
    """Tracked-modified plus untracked .py files, repo-relative."""
    files: set[str] = set()
    for cmd in (
        ["git", "diff", "--name-only", "HEAD", "--"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        proc = subprocess.run(
            cmd, cwd=root, capture_output=True, text=True, check=True
        )
        files.update(line.strip() for line in proc.stdout.splitlines())
    return sorted(
        root / name
        for name in files
        if name.endswith(".py") and (root / name).exists()
    )


def _with_callers(paths: list[Path], config: LintConfig) -> list[Path]:
    """Impact analysis for ``--changed``: expand the changed set with
    every file whose call graph reaches into it -- an edit to a helper
    re-lints the paths that depend on it, not just the helper."""
    from repro.lint.callgraph import CallGraph
    from repro.lint.engine import _rel_path, iter_python_files
    from repro.lint.project import build_project

    all_files = iter_python_files(
        [config.root / root for root in config.roots], config
    )
    model = build_project(all_files, config)
    graph = CallGraph(model)
    changed_rel = {_rel_path(p, config.root) for p in paths}
    impacted = graph.caller_files(changed_rel)
    extra = [
        path
        for path in all_files
        if _rel_path(path, config.root) in impacted
    ]
    return sorted({*paths, *extra})


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        # Rule registration happens on package import; importing here
        # keeps --list-rules honest even if cli is imported bare.
        import repro.lint  # noqa: F401

        print(render_rule_list())
        return 0

    root = Path(args.root).resolve()
    try:
        config = load_config(
            root, Path(args.config) if args.config else None
        )
    except (FileNotFoundError, ValueError) as error:
        print(f"repro.lint: {error}", file=sys.stderr)
        return 2

    import repro.lint  # noqa: F401  (register rules)

    if args.changed:
        try:
            paths = _git_changed_files(root)
        except (OSError, subprocess.CalledProcessError) as error:
            print(
                f"repro.lint: --changed needs a git checkout: {error}",
                file=sys.stderr,
            )
            return 2
        if not paths:
            print("0 findings in 0 file(s) [--changed: nothing modified]")
            return 0
        paths = _with_callers(paths, config)
    else:
        paths = [Path(p) for p in args.paths] or [
            root / r for r in config.roots
        ]

    baseline_path = Path(args.baseline) if args.baseline else (
        root / config.baseline_path
    )
    if args.no_baseline:
        baseline = Baseline()
    else:
        try:
            baseline = Baseline.load(baseline_path)
        except (ValueError, OSError, KeyError) as error:
            print(f"repro.lint: bad baseline: {error}", file=sys.stderr)
            return 2

    result = run_lint(paths, config, baseline, project=args.project)

    if args.update_baseline:
        notes = {e.fingerprint: e.note for e in baseline.entries if e.note}
        updated = Baseline.from_findings(
            result.findings + result.baselined, notes
        )
        updated.save(baseline_path)
        print(
            f"baseline updated: {len(updated.entries)} entr"
            f"{'y' if len(updated.entries) == 1 else 'ies'} -> {baseline_path}"
        )
        return 0

    if args.format == "json":
        print(render_json(result))
    else:
        print(render_human(result, verbose=args.verbose))
    if args.json_output:
        Path(args.json_output).parent.mkdir(parents=True, exist_ok=True)
        Path(args.json_output).write_text(
            render_json(result) + "\n", encoding="utf-8"
        )
    return 0 if result.ok else 1


__all__ = ["build_parser", "main", "LintConfig"]

"""Finding and severity types shared by every lint layer."""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field


class Severity(str, enum.Enum):
    """How bad a finding is.

    Both severities fail the zero-new-findings gate; the split exists
    so reports surface dependability hazards (``ERROR`` -- breaks a
    bitwise/determinism contract) ahead of hygiene debt (``WARNING``).
    """

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def normalize_snippet(snippet: str) -> str:
    """Whitespace-collapsed source line, the stable part of a
    fingerprint (line *numbers* drift on every edit; the offending
    line's text rarely does)."""
    return " ".join(snippet.split())


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    severity: Severity
    path: str  #: repo-relative POSIX path
    line: int
    col: int
    message: str
    snippet: str = ""
    #: sorts findings into (file, position, rule) order
    sort_key: tuple = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "sort_key", (self.path, self.line, self.col, self.rule)
        )

    @property
    def fingerprint(self) -> str:
        """Line-number-independent identity used for baseline matching:
        two findings on the same (rule, file, normalized line text)
        share a fingerprint."""
        payload = f"{self.rule}|{self.path}|{normalize_snippet(self.snippet)}"
        return hashlib.sha1(payload.encode("utf-8")).hexdigest()

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint,
        }

"""The lint driver: walk files, run scoped rules, apply the baseline.

Kept free of CLI concerns so tests (and future tooling) can call
:func:`run_lint` in-process and get structured results back.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.baseline import Baseline, BaselineEntry
from repro.lint.config import LintConfig
from repro.lint.context import FileContext
from repro.lint.findings import Finding, Severity
from repro.lint.registry import RULES, ProjectRule

#: Pseudo-rule id for files the parser rejects: a file that cannot be
#: parsed cannot be checked, which must fail the gate rather than pass
#: it silently.
PARSE_ERROR = "PARSE-ERROR"


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)  #: new (gate-failing)
    baselined: list[Finding] = field(default_factory=list)
    stale_baseline: list[BaselineEntry] = field(default_factory=list)
    files_scanned: int = 0
    #: call-graph statistics when the ``--project`` pass ran, else None
    project: dict | None = None

    @property
    def ok(self) -> bool:
        """True when the zero-new-findings gate passes: nothing new
        *and* no dead baseline entries."""
        return not self.findings and not self.stale_baseline

    def counts_by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))


def _rel_path(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root).as_posix()
    except ValueError:
        # Outside the root (absolute fixture paths in tests): keep the
        # name stable rather than erroring.
        return path.as_posix()


def iter_python_files(paths: list[Path], config: LintConfig) -> list[Path]:
    """Expand files/directories into the sorted, de-duplicated list of
    lintable ``.py`` files, honouring config excludes."""
    seen: set[Path] = set()
    out: list[Path] = []
    for path in paths:
        path = Path(path)
        if not path.is_absolute():
            path = config.root / path
        candidates = (
            sorted(path.rglob("*.py")) if path.is_dir() else [path]
        )
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            if candidate.suffix != ".py":
                continue
            if config.is_excluded(_rel_path(candidate, config.root)):
                continue
            out.append(candidate)
    return out


def lint_file(
    path: Path, config: LintConfig, rules: list | None = None
) -> list[Finding]:
    """All non-suppressed findings for one file."""
    rel = _rel_path(Path(path), config.root)
    source = Path(path).read_text(encoding="utf-8")
    try:
        ctx = FileContext.parse(rel, source)
        ctx.config = config
    except SyntaxError as error:
        return [
            Finding(
                rule=PARSE_ERROR,
                severity=Severity.ERROR,
                path=rel,
                line=error.lineno or 1,
                col=(error.offset or 1) - 1,
                message=f"file does not parse: {error.msg}",
            )
        ]
    active = rules if rules is not None else list(RULES.values())
    findings: list[Finding] = []
    for rule in active:
        if not config.rule_applies(rule, rel):
            continue
        for finding in rule.check(ctx):
            if not ctx.is_suppressed(finding):
                findings.append(finding)
    findings.sort(key=lambda f: f.sort_key)
    return findings


def run_project_pass(
    lint_rel_paths: set[str], config: LintConfig
) -> tuple[list[Finding], dict]:
    """The whole-program pass: build the project model over *all*
    configured roots (an inter-procedural property of a file depends
    on its callers elsewhere), run every :class:`ProjectRule`, and
    keep the findings anchored in ``lint_rel_paths``."""
    from repro.lint.callgraph import CallGraph
    from repro.lint.project import build_project

    files = iter_python_files(
        [config.root / root for root in config.roots], config
    )
    model = build_project(files, config)
    graph = CallGraph(model)
    findings: list[Finding] = []
    for rule in RULES.values():
        if not isinstance(rule, ProjectRule):
            continue
        for finding in rule.check_project(model, graph, config):
            if finding.path not in lint_rel_paths:
                continue
            if not config.rule_applies(rule, finding.path):
                continue
            supp = model.suppressions_for(finding.path)
            if supp.allows(finding.rule, finding.line):
                continue
            findings.append(finding)
    stats = {
        "modules": len(model.summaries),
        "functions": model.function_count,
        "call_edges": graph.edge_count,
        "cache_hits": model.cache_hits,
        "cache_misses": model.cache_misses,
    }
    return findings, stats


def run_lint(
    paths: list[Path],
    config: LintConfig,
    baseline: Baseline | None = None,
    project: bool = False,
) -> LintResult:
    """Lint ``paths`` and split findings against ``baseline``.  With
    ``project=True`` the whole-program pass runs on top and its
    findings join the same baseline/exit-code machinery."""
    result = LintResult()
    all_findings: list[Finding] = []
    lint_rel_paths: set[str] = set()
    for path in iter_python_files(paths, config):
        all_findings.extend(lint_file(path, config))
        lint_rel_paths.add(_rel_path(path, config.root))
        result.files_scanned += 1
    if project:
        project_findings, result.project = run_project_pass(
            lint_rel_paths, config
        )
        all_findings.extend(project_findings)
    all_findings.sort(key=lambda f: f.sort_key)
    if baseline is None:
        baseline = Baseline()
    new, baselined, stale = baseline.partition(all_findings)
    result.findings = new
    result.baselined = baselined
    result.stale_baseline = stale
    return result

"""Per-file analysis context: parsed tree, import aliases, source.

Rules see one :class:`FileContext` per file.  The context's job is to
answer the two questions every AST rule asks:

* *what does this dotted expression actually refer to?* --
  :meth:`FileContext.qualname` resolves local aliases through the
  file's imports, so ``rng = npr.default_rng()`` under
  ``import numpy.random as npr`` and ``from numpy.random import
  default_rng`` both resolve to ``numpy.random.default_rng``;
* *what text is on line N?* -- for snippets and fingerprints.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from typing import TYPE_CHECKING

from repro.lint.findings import Finding
from repro.lint.pragmas import Suppressions

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.config import LintConfig


def build_import_map(tree: ast.AST) -> dict[str, str]:
    """Local name -> fully dotted module/symbol path, from every
    ``import``/``from ... import`` in the file (any nesting level).

    Relative imports (``from .foo import bar``) stay unresolved -- the
    linter targets absolute third-party/stdlib hazards, and a relative
    alias can never shadow ``numpy``/``time``/``random``.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.partition(".")[0]
                full = alias.name if alias.asname else local
                aliases[local] = full
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{node.module}.{alias.name}"
    return aliases


@dataclass
class FileContext:
    """Everything a rule needs to analyse one file."""

    rel_path: str
    source: str
    tree: ast.AST
    suppressions: Suppressions
    imports: dict[str, str] = field(default_factory=dict)
    lines: list[str] = field(default_factory=list)
    #: set by the engine; rules read per-rule options through
    #: :meth:`options_for` so standalone (test) contexts fall back to
    #: packaged defaults.
    config: "LintConfig | None" = None

    @classmethod
    def parse(cls, rel_path: str, source: str) -> "FileContext":
        tree = ast.parse(source)
        return cls(
            rel_path=rel_path,
            source=source,
            tree=tree,
            suppressions=Suppressions.scan(source),
            imports=build_import_map(tree),
            lines=source.splitlines(),
        )

    def line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def qualname(self, node: ast.AST) -> str | None:
        """Resolve a Name/Attribute chain to a dotted path through the
        import map; None when the expression is not a plain chain
        (calls, subscripts, literals...).

        A local variable that happens to share a module's name wins --
        alias resolution is a heuristic, which is the right trade for
        a linter: the repo convention (``import numpy as np``) resolves
        exactly, and a shadowing false positive is one pragma away.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.imports.get(node.id, node.id)
        parts.append(base)
        return ".".join(reversed(parts))

    def call_qualname(self, node: ast.Call) -> str | None:
        """:meth:`qualname` of a call's callee."""
        return self.qualname(node.func)

    def is_suppressed(self, finding: Finding) -> bool:
        return self.suppressions.allows(finding.rule, finding.line)

    def options_for(self, rule_id: str) -> dict:
        """Per-rule options from the active config, falling back to
        the packaged defaults when the context was built bare."""
        if self.config is not None:
            return self.config.options_for(rule_id)
        from repro.lint.config import DEFAULT_RULE_OPTIONS

        return DEFAULT_RULE_OPTIONS.get(rule_id, {})

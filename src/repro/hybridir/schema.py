"""Graph schema: ONNX-like nodes plus reliability annotations."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

SCHEMA_VERSION = 1

#: Supported ops and the attributes each carries.
OP_ATTRS: dict[str, tuple[str, ...]] = {
    "conv2d": ("in_channels", "out_channels", "kernel_size", "stride",
               "padding"),
    "dense": ("in_features", "out_features"),
    "relu": (),
    "softmax": (),
    "maxpool2d": ("pool_size", "stride"),
    "flatten": (),
    "lrn": ("size", "k", "alpha", "beta"),
    "dropout": ("rate",),
}


@dataclass
class LayerNode:
    """One topology node: an op, its name, and its attributes."""

    op: str
    name: str
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {"op": self.op, "name": self.name, "attrs": dict(self.attrs)}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "LayerNode":
        return cls(
            op=data["op"], name=data["name"],
            attrs=dict(data.get("attrs", {})),
        )


@dataclass
class QualifierSpec:
    """Serialised qualifier configuration (the dependable model)."""

    shape: str = "octagon"
    word_length: int = 32
    alphabet_size: int = 8
    threshold: float = 3.0
    n_samples: int = 128
    redundant: bool = True

    def to_dict(self) -> dict[str, Any]:
        return {
            "shape": self.shape,
            "word_length": self.word_length,
            "alphabet_size": self.alphabet_size,
            "threshold": self.threshold,
            "n_samples": self.n_samples,
            "redundant": self.redundant,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "QualifierSpec":
        return cls(**data)


@dataclass
class ReliabilityAnnotation:
    """The hybrid extension: what executes dependably, and how.

    This is the information an ONNX extension would need to carry for
    a downstream FPGA/accelerator toolchain to reproduce the paper's
    architecture: everything else in the graph is standard topology.
    """

    reliable_filters: dict[str, list[int]] = field(
        default_factory=lambda: {"conv1": [0, 1]}
    )
    bifurcation_layer: str = "conv1"
    redundancy: str = "dmr"
    safety_class: int = 0
    qualifier: QualifierSpec = field(default_factory=QualifierSpec)

    def to_dict(self) -> dict[str, Any]:
        return {
            "reliable_filters": {
                name: list(filters)
                for name, filters in self.reliable_filters.items()
            },
            "bifurcation_layer": self.bifurcation_layer,
            "redundancy": self.redundancy,
            "safety_class": self.safety_class,
            "qualifier": self.qualifier.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ReliabilityAnnotation":
        return cls(
            reliable_filters={
                name: list(filters)
                for name, filters in data["reliable_filters"].items()
            },
            bifurcation_layer=data["bifurcation_layer"],
            redundancy=data["redundancy"],
            safety_class=data["safety_class"],
            qualifier=QualifierSpec.from_dict(data["qualifier"]),
        )


@dataclass
class HybridGraph:
    """A complete hybrid-CNN description."""

    name: str
    input_shape: tuple[int, int, int]
    layers: list[LayerNode]
    reliability: ReliabilityAnnotation
    weights_file: str | None = None
    schema_version: int = SCHEMA_VERSION

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "name": self.name,
            "input_shape": list(self.input_shape),
            "layers": [layer.to_dict() for layer in self.layers],
            "reliability": self.reliability.to_dict(),
            "weights_file": self.weights_file,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "HybridGraph":
        version = data.get("schema_version", 0)
        if version != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported schema version {version} "
                f"(this build reads {SCHEMA_VERSION})"
            )
        return cls(
            name=data["name"],
            input_shape=tuple(data["input_shape"]),
            layers=[LayerNode.from_dict(d) for d in data["layers"]],
            reliability=ReliabilityAnnotation.from_dict(
                data["reliability"]
            ),
            weights_file=data.get("weights_file"),
            schema_version=version,
        )

    def layer_names(self) -> list[str]:
        return [layer.name for layer in self.layers]

"""Rebuild running hybrids from the interchange format."""

from __future__ import annotations

import json
import os

import numpy as np

from repro.api import (
    PartitionConfig,
    PipelineConfig,
    QualifierConfig,
    build_pipeline,
)
from repro.core.hybrid import IntegratedHybridCNN
from repro.hybridir.schema import HybridGraph, LayerNode
from repro.hybridir.validate import validate_graph
from repro.nn.layers import (
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    LocalResponseNorm,
    MaxPool2D,
    ReLU,
    Softmax,
)
from repro.nn.network import Sequential
from repro.nn.serialize import load_model


def _node_to_layer(node: LayerNode, rng: np.random.Generator):
    attrs = node.attrs
    if node.op == "conv2d":
        return Conv2D(
            attrs["in_channels"], attrs["out_channels"],
            attrs["kernel_size"], stride=attrs["stride"],
            padding=attrs["padding"], rng=rng, name=node.name,
        )
    if node.op == "dense":
        return Dense(
            attrs["in_features"], attrs["out_features"],
            rng=rng, name=node.name,
        )
    if node.op == "relu":
        return ReLU(name=node.name)
    if node.op == "softmax":
        return Softmax(name=node.name)
    if node.op == "maxpool2d":
        return MaxPool2D(
            attrs["pool_size"], stride=attrs["stride"], name=node.name
        )
    if node.op == "flatten":
        return Flatten(name=node.name)
    if node.op == "lrn":
        return LocalResponseNorm(
            size=attrs["size"], k=attrs["k"],
            alpha=attrs["alpha"], beta=attrs["beta"], name=node.name,
        )
    if node.op == "dropout":
        return Dropout(attrs["rate"], rng=rng, name=node.name)
    raise ValueError(f"unknown op {node.op!r} in node {node.name!r}")


def build_model(
    graph: HybridGraph, rng: np.random.Generator | None = None
) -> Sequential:
    """Instantiate the topology (fresh weights) from a graph."""
    validate_graph(graph)
    rng = rng or np.random.default_rng(0)
    layers = [_node_to_layer(node, rng) for node in graph.layers]
    return Sequential(layers, name=graph.name)


def build_hybrid(
    graph: HybridGraph,
    model: Sequential | None = None,
    rng: np.random.Generator | None = None,
) -> IntegratedHybridCNN:
    """Instantiate the full integrated hybrid a graph describes.

    The graph's reliability annotation is translated into a
    :class:`repro.api.PipelineConfig` and built through the pipeline
    layer, so interchange files construct exactly like hand-written
    configs.
    """
    if model is None:
        model = build_model(graph, rng)
    annotation = graph.reliability
    spec = annotation.qualifier
    config = PipelineConfig(
        architecture="integrated",
        safety_class=annotation.safety_class,
        qualifier=QualifierConfig(
            shape=spec.shape,
            word_length=spec.word_length,
            alphabet_size=spec.alphabet_size,
            threshold=spec.threshold,
            redundant=spec.redundant,
            n_samples=spec.n_samples,
        ),
        partition=PartitionConfig(
            reliable_filters={
                name: tuple(filters)
                for name, filters in annotation.reliable_filters.items()
            },
            bifurcation_layer=annotation.bifurcation_layer,
            redundancy=annotation.redundancy,
        ),
        name=graph.name,
    )
    hybrid = build_pipeline(config, model).hybrid
    if not isinstance(hybrid, IntegratedHybridCNN):
        raise TypeError(
            "the 'integrated' architecture builder returned "
            f"{type(hybrid).__name__}; hybridir graphs describe "
            "IntegratedHybridCNN deployments"
        )
    return hybrid


def load_hybrid(path: str | os.PathLike) -> IntegratedHybridCNN:
    """Load ``<path>.json`` (+ weights sidecar) into a running hybrid."""
    base = os.fspath(path)
    with open(base + ".json", encoding="utf-8") as handle:
        graph = HybridGraph.from_dict(json.load(handle))
    model = build_model(graph)
    if graph.weights_file:
        weights_path = os.path.join(
            os.path.dirname(base) or ".", graph.weights_file
        )
        load_model(model, weights_path)
    return build_hybrid(graph, model=model)

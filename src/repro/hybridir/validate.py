"""Structural validation of hybrid graphs.

A graph is checked *before* instantiation so a toolchain consuming
the format can reject malformed descriptions with actionable errors
-- the role ONNX checker plays for plain graphs, extended with the
reliability-annotation rules:

* the bifurcation layer exists, is a conv2d, and owns every filter
  index the annotation claims;
* shape inference succeeds end to end (channel/feature mismatches
  between consecutive nodes are caught here);
* the safety class fits the classifier head;
* qualifier parameters are within the ranges the SAX machinery
  supports.
"""

from __future__ import annotations

from repro.hybridir import schema
from repro.reliable.operators import operator_kinds, operator_multiplier
from repro.hybridir.schema import HybridGraph, LayerNode
from repro.sax.breakpoints import MAX_ALPHABET


class ValidationError(ValueError):
    """A hybrid graph failed structural validation."""


def _check_node(node: LayerNode) -> None:
    if node.op not in schema.OP_ATTRS:
        raise ValidationError(
            f"node {node.name!r}: unknown op {node.op!r}"
        )
    expected = set(schema.OP_ATTRS[node.op])
    actual = set(node.attrs)
    missing = expected - actual
    extra = actual - expected
    if missing:
        raise ValidationError(
            f"node {node.name!r}: missing attrs {sorted(missing)}"
        )
    if extra:
        raise ValidationError(
            f"node {node.name!r}: unexpected attrs {sorted(extra)}"
        )


def _infer_shapes(graph: HybridGraph) -> list[tuple[int, ...]]:
    """Shape-infer through the node list; raises on mismatch."""
    shape: tuple[int, ...] = tuple(graph.input_shape)
    shapes = [shape]
    for node in graph.layers:
        attrs = node.attrs
        if node.op == "conv2d":
            c, h, w = _expect_rank(shape, 3, node)
            if c != attrs["in_channels"]:
                raise ValidationError(
                    f"node {node.name!r}: expects "
                    f"{attrs['in_channels']} channels, gets {c}"
                )
            out_h = _conv_size(h, attrs, node)
            out_w = _conv_size(w, attrs, node)
            shape = (attrs["out_channels"], out_h, out_w)
        elif node.op == "maxpool2d":
            c, h, w = _expect_rank(shape, 3, node)
            pool, stride = attrs["pool_size"], attrs["stride"]
            out_h = (h - pool) // stride + 1
            out_w = (w - pool) // stride + 1
            if out_h <= 0 or out_w <= 0:
                raise ValidationError(
                    f"node {node.name!r}: pooling empties the tensor"
                )
            shape = (c, out_h, out_w)
        elif node.op == "flatten":
            total = 1
            for dim in shape:
                total *= dim
            shape = (total,)
        elif node.op == "dense":
            (features,) = _expect_rank(shape, 1, node)
            if features != attrs["in_features"]:
                raise ValidationError(
                    f"node {node.name!r}: expects "
                    f"{attrs['in_features']} features, gets {features}"
                )
            shape = (attrs["out_features"],)
        # relu/softmax/lrn/dropout preserve shape
        shapes.append(shape)
    return shapes


def _conv_size(size: int, attrs: dict, node: LayerNode) -> int:
    out = (size + 2 * attrs["padding"] - attrs["kernel_size"]) \
        // attrs["stride"] + 1
    if out <= 0:
        raise ValidationError(
            f"node {node.name!r}: convolution empties the tensor"
        )
    return out


def _expect_rank(shape: tuple[int, ...], rank: int, node: LayerNode):
    if len(shape) != rank:
        raise ValidationError(
            f"node {node.name!r}: expects rank-{rank} input, "
            f"gets shape {shape}"
        )
    return shape


def validate_graph(graph: HybridGraph) -> None:
    """Validate topology + reliability annotation; raises
    :class:`ValidationError` with a precise message on failure."""
    if not graph.layers:
        raise ValidationError("graph has no layers")
    names = graph.layer_names()
    if len(set(names)) != len(names):
        raise ValidationError("duplicate layer names")
    if len(graph.input_shape) != 3:
        raise ValidationError("input_shape must be (channels, h, w)")
    for node in graph.layers:
        _check_node(node)
    shapes = _infer_shapes(graph)

    annotation = graph.reliability
    by_name = {node.name: node for node in graph.layers}
    if annotation.bifurcation_layer not in annotation.reliable_filters:
        raise ValidationError(
            "bifurcation layer has no reliable filters configured"
        )
    for layer_name, filters in annotation.reliable_filters.items():
        node = by_name.get(layer_name)
        if node is None:
            raise ValidationError(
                f"reliability annotation references unknown layer "
                f"{layer_name!r}"
            )
        if node.op != "conv2d":
            raise ValidationError(
                f"reliable layer {layer_name!r} is {node.op}, "
                "only conv2d filters can be dependable"
            )
        out_channels = node.attrs["out_channels"]
        bad = [f for f in filters if not 0 <= f < out_channels]
        if bad:
            raise ValidationError(
                f"layer {layer_name!r}: filter indices {bad} outside "
                f"[0, {out_channels})"
            )
        if len(set(filters)) != len(filters):
            raise ValidationError(
                f"layer {layer_name!r}: duplicate filter indices"
            )
    # Same rule as HybridPartition: any registered operator kind that
    # actually executes redundantly (so graphs built from custom
    # OPERATORS registrations round-trip through the IR).
    if annotation.redundancy not in operator_kinds():
        raise ValidationError(
            f"unknown redundancy {annotation.redundancy!r}; "
            f"registered kinds: {operator_kinds()}"
        )
    if operator_multiplier(annotation.redundancy) < 2:
        raise ValidationError(
            f"redundancy {annotation.redundancy!r} executes only once "
            "per operation; the dependable partition requires a "
            "redundant operator"
        )

    final_shape = shapes[-1]
    if len(final_shape) != 1:
        raise ValidationError(
            f"graph must end in a class vector, ends in {final_shape}"
        )
    if not 0 <= annotation.safety_class < final_shape[0]:
        raise ValidationError(
            f"safety class {annotation.safety_class} outside the "
            f"{final_shape[0]}-class head"
        )

    spec = annotation.qualifier
    if not 2 <= spec.alphabet_size <= MAX_ALPHABET:
        raise ValidationError("qualifier alphabet_size out of range")
    if spec.word_length <= 0 or spec.word_length > spec.n_samples:
        raise ValidationError(
            "qualifier word_length must be in (0, n_samples]"
        )
    if spec.threshold < 0:
        raise ValidationError("qualifier threshold must be >= 0")

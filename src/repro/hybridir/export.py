"""Export a live hybrid configuration to the interchange format."""

from __future__ import annotations

import json
import os

from repro.core.partition import HybridPartition
from repro.core.qualifier import ShapeQualifier
from repro.hybridir.schema import (
    HybridGraph,
    LayerNode,
    QualifierSpec,
    ReliabilityAnnotation,
)
from repro.nn.layers import (
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    LocalResponseNorm,
    MaxPool2D,
    ReLU,
    Softmax,
)
from repro.nn.network import Sequential
from repro.nn.serialize import save_model


def _layer_to_node(layer) -> LayerNode:
    if isinstance(layer, Conv2D):
        return LayerNode("conv2d", layer.name, {
            "in_channels": layer.in_channels,
            "out_channels": layer.out_channels,
            "kernel_size": layer.kernel_size,
            "stride": layer.stride,
            "padding": layer.padding,
        })
    if isinstance(layer, Dense):
        return LayerNode("dense", layer.name, {
            "in_features": layer.in_features,
            "out_features": layer.out_features,
        })
    if isinstance(layer, ReLU):
        return LayerNode("relu", layer.name)
    if isinstance(layer, Softmax):
        return LayerNode("softmax", layer.name)
    if isinstance(layer, MaxPool2D):
        return LayerNode("maxpool2d", layer.name, {
            "pool_size": layer.pool_size,
            "stride": layer.stride,
        })
    if isinstance(layer, Flatten):
        return LayerNode("flatten", layer.name)
    if isinstance(layer, LocalResponseNorm):
        return LayerNode("lrn", layer.name, {
            "size": layer.size, "k": layer.k,
            "alpha": layer.alpha, "beta": layer.beta,
        })
    if isinstance(layer, Dropout):
        return LayerNode("dropout", layer.name, {"rate": layer.rate})
    raise TypeError(
        f"layer {layer.name!r} ({type(layer).__name__}) has no "
        "interchange-format op"
    )


def export_hybrid(
    model: Sequential,
    partition: HybridPartition,
    qualifier: ShapeQualifier,
    safety_class: int,
    input_shape: tuple[int, int, int],
    name: str | None = None,
) -> HybridGraph:
    """Describe a hybrid configuration as a :class:`HybridGraph`.

    The graph carries topology and the reliability annotation; weights
    travel separately (see :func:`save_hybrid`).
    """
    partition.validate_against(model)
    annotation = ReliabilityAnnotation(
        reliable_filters={
            layer: list(filters)
            for layer, filters in partition.reliable_filters.items()
        },
        bifurcation_layer=partition.bifurcation_layer,
        redundancy=partition.redundancy,
        safety_class=safety_class,
        qualifier=QualifierSpec(
            shape=qualifier.shape,
            word_length=qualifier.encoder.word_length,
            alphabet_size=qualifier.encoder.alphabet_size,
            threshold=qualifier.threshold,
            n_samples=qualifier.n_samples,
            redundant=qualifier.redundant,
        ),
    )
    return HybridGraph(
        name=name or model.name,
        input_shape=input_shape,
        layers=[_layer_to_node(layer) for layer in model],
        reliability=annotation,
    )


def save_hybrid(
    graph: HybridGraph,
    model: Sequential,
    path: str | os.PathLike,
) -> None:
    """Write ``<path>.json`` (graph) and ``<path>.npz`` (weights)."""
    base = os.fspath(path)
    weights_file = base + ".npz"
    save_model(model, weights_file)
    graph.weights_file = os.path.basename(weights_file)
    with open(base + ".json", "w", encoding="utf-8") as handle:
        json.dump(graph.to_dict(), handle, indent=2)

"""Hybrid-CNN interchange format (the paper's proposed future work).

Section V.B: "we believe that focus should be placed on researching
extensions to the ONNX standard to facilitate the platform-agnostic
description of hybrid-CNNs."  This package implements that extension
in miniature: a JSON graph format that describes

* the network topology (an ONNX-like op list with attributes),
* the **reliability annotation** -- which filters of which layers are
  dependable, the redundancy scheme, the bifurcation point, and the
  qualifier configuration (shape, SAX parameters, threshold), and
* the safety contract (which class requires qualification).

A hybrid graph can be exported from a live
:class:`~repro.core.hybrid.IntegratedHybridCNN` configuration,
validated structurally, saved/loaded as JSON (+ ``.npz`` weights),
and rebuilt into a running hybrid on the other side -- the
"platform-agnostic description" round trip.
"""

from repro.hybridir.schema import (
    SCHEMA_VERSION,
    HybridGraph,
    LayerNode,
    QualifierSpec,
    ReliabilityAnnotation,
)
from repro.hybridir.export import export_hybrid, save_hybrid
from repro.hybridir.build import build_hybrid, build_model, load_hybrid
from repro.hybridir.validate import ValidationError, validate_graph

__all__ = [
    "SCHEMA_VERSION",
    "LayerNode",
    "QualifierSpec",
    "ReliabilityAnnotation",
    "HybridGraph",
    "export_hybrid",
    "save_hybrid",
    "build_model",
    "build_hybrid",
    "load_hybrid",
    "validate_graph",
    "ValidationError",
]

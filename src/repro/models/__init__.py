"""Model zoo: AlexNet (paper-faithful and scaled) and a small CNN."""

from repro.models.alexnet import (
    AlexNetConfig,
    alexnet,
    alexnet_full,
    alexnet_scaled,
)
from repro.models.smallcnn import small_cnn

__all__ = [
    "AlexNetConfig",
    "alexnet",
    "alexnet_full",
    "alexnet_scaled",
    "small_cnn",
]

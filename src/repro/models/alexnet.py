"""AlexNet (Krizhevsky et al.) -- full-size and scaled variants.

The paper chooses AlexNet "as this requires a barely acceptable for
deterministic edge recognition 227*227*3 input image" whose first
convolution layer "reduces the input using 96 11*11*3 filters".
:func:`alexnet_full` builds exactly that topology.

Training the full network in pure NumPy is possible but slow, and the
paper's own experiments only exercise the first convolution layer plus
classification quality.  :func:`alexnet_scaled` keeps the topology --
five convolutions with the same stride/pool pattern, LRN after conv1
and conv2, three dense layers -- while shrinking the input and channel
counts, so every experiment runs on a laptop.  Both variants are built
through one parameterised factory, guaranteeing no code-path
divergence between the scales.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.layers import (
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    LocalResponseNorm,
    MaxPool2D,
    ReLU,
)
from repro.nn.network import Sequential


@dataclass(frozen=True)
class AlexNetConfig:
    """Geometry of an AlexNet variant.

    ``conv_channels`` are the five convolution widths (AlexNet:
    96, 256, 384, 384, 256); ``dense_units`` the two hidden dense
    widths (AlexNet: 4096, 4096).
    """

    input_size: int = 227
    conv1_kernel: int = 11
    conv1_stride: int = 4
    conv_channels: tuple[int, int, int, int, int] = (96, 256, 384, 384, 256)
    dense_units: tuple[int, int] = (4096, 4096)
    n_classes: int = 43  # GTSRB class count
    dropout: float = 0.5
    use_lrn: bool = True

    def validate(self) -> None:
        if self.input_size < self.conv1_kernel:
            raise ValueError("input smaller than first kernel")
        if len(self.conv_channels) != 5:
            raise ValueError("AlexNet has exactly five convolutions")
        if any(c <= 0 for c in self.conv_channels):
            raise ValueError("conv channels must be positive")


FULL_CONFIG = AlexNetConfig()

# Laptop-scale variant: same topology, 64x64 input, slimmer channels.
SCALED_CONFIG = AlexNetConfig(
    input_size=64,
    conv1_kernel=7,
    conv1_stride=2,
    conv_channels=(16, 32, 48, 48, 32),
    dense_units=(128, 64),
    n_classes=8,  # synthetic sign classes
    dropout=0.5,
)


def alexnet(
    config: AlexNetConfig, rng: np.random.Generator | None = None
) -> Sequential:
    """Build an AlexNet variant from a config.

    Layer naming is stable (``conv1`` .. ``conv5``, ``fc6`` .. ``fc8``)
    so experiments can address layers symbolically; the network ends
    in logits (apply softmax externally for confidences).
    """
    config.validate()
    rng = rng or np.random.default_rng(0)
    c1, c2, c3, c4, c5 = config.conv_channels
    d1, d2 = config.dense_units
    layers = [
        Conv2D(3, c1, config.conv1_kernel, stride=config.conv1_stride,
               rng=rng, name="conv1"),
        ReLU(name="relu1"),
    ]
    if config.use_lrn:
        layers.append(LocalResponseNorm(name="lrn1"))
    layers.append(MaxPool2D(3, stride=2, name="pool1"))
    layers.extend([
        Conv2D(c1, c2, 5, stride=1, padding=2, rng=rng, name="conv2"),
        ReLU(name="relu2"),
    ])
    if config.use_lrn:
        layers.append(LocalResponseNorm(name="lrn2"))
    layers.append(MaxPool2D(3, stride=2, name="pool2"))
    layers.extend([
        Conv2D(c2, c3, 3, stride=1, padding=1, rng=rng, name="conv3"),
        ReLU(name="relu3"),
        Conv2D(c3, c4, 3, stride=1, padding=1, rng=rng, name="conv4"),
        ReLU(name="relu4"),
        Conv2D(c4, c5, 3, stride=1, padding=1, rng=rng, name="conv5"),
        ReLU(name="relu5"),
        MaxPool2D(3, stride=2, name="pool5"),
        Flatten(name="flatten"),
    ])
    model_head = Sequential(layers, name="probe")
    feature_size = model_head.output_shape(
        (3, config.input_size, config.input_size)
    )[0]
    layers.extend([
        Dense(feature_size, d1, rng=rng, name="fc6"),
        ReLU(name="relu6"),
        Dropout(config.dropout, rng=rng, name="drop6"),
        Dense(d1, d2, rng=rng, name="fc7"),
        ReLU(name="relu7"),
        Dropout(config.dropout, rng=rng, name="drop7"),
        Dense(d2, config.n_classes, rng=rng, name="fc8"),
    ])
    return Sequential(layers, name="alexnet")


def alexnet_full(
    n_classes: int = 43, rng: np.random.Generator | None = None
) -> Sequential:
    """Paper-faithful AlexNet: 227x227x3 input, 96 11x11x3 filters."""
    config = AlexNetConfig(n_classes=n_classes)
    return alexnet(config, rng)


def alexnet_scaled(
    n_classes: int = 8,
    input_size: int = 64,
    conv1_filters: int = 16,
    rng: np.random.Generator | None = None,
) -> Sequential:
    """Laptop-scale AlexNet with the same topology and code paths."""
    channels = list(SCALED_CONFIG.conv_channels)
    channels[0] = conv1_filters
    config = AlexNetConfig(
        input_size=input_size,
        conv1_kernel=SCALED_CONFIG.conv1_kernel,
        conv1_stride=SCALED_CONFIG.conv1_stride,
        conv_channels=tuple(channels),
        dense_units=SCALED_CONFIG.dense_units,
        n_classes=n_classes,
        dropout=SCALED_CONFIG.dropout,
    )
    return alexnet(config, rng)

"""A small CNN baseline for fast tests and experiments."""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Conv2D, Dense, Flatten, MaxPool2D, ReLU
from repro.nn.network import Sequential


def small_cnn(
    input_size: int = 32,
    n_classes: int = 8,
    conv1_filters: int = 8,
    rng: np.random.Generator | None = None,
) -> Sequential:
    """Two-convolution CNN that trains to high accuracy on the
    synthetic sign dataset in seconds.

    Keeps the structural features the experiments rely on: a named
    ``conv1`` whose filters can be replaced/pinned, ReLU/pool stages
    and a logits head.
    """
    rng = rng or np.random.default_rng(0)
    layers = [
        Conv2D(3, conv1_filters, 5, stride=1, padding=2, rng=rng,
               name="conv1"),
        ReLU(name="relu1"),
        MaxPool2D(2, name="pool1"),
        Conv2D(conv1_filters, 16, 3, stride=1, padding=1, rng=rng,
               name="conv2"),
        ReLU(name="relu2"),
        MaxPool2D(2, name="pool2"),
        Flatten(name="flatten"),
    ]
    probe = Sequential(layers, name="probe")
    feature_size = probe.output_shape((3, input_size, input_size))[0]
    layers.extend([
        Dense(feature_size, 64, rng=rng, name="fc1"),
        ReLU(name="relu3"),
        Dense(64, n_classes, rng=rng, name="fc2"),
    ])
    return Sequential(layers, name="small_cnn")

"""Binary morphology (3x3 structuring element)."""

from __future__ import annotations

import numpy as np


def binary_dilate(mask: np.ndarray, iterations: int = 1) -> np.ndarray:
    """Dilate a boolean mask with a 3x3 full structuring element.

    Used to reconnect edge ridges broken by strided sampling before
    contour tracing: a convolution feature map samples the edge
    response every ``stride`` pixels, which can split a thin ridge
    into 8-disconnected fragments.
    """
    if iterations < 0:
        raise ValueError("iterations must be >= 0")
    mask = np.asarray(mask, dtype=bool)
    out = mask.copy()
    for _ in range(iterations):
        grown = out.copy()
        grown[1:] |= out[:-1]
        grown[:-1] |= out[1:]
        grown[:, 1:] |= out[:, :-1]
        grown[:, :-1] |= out[:, 1:]
        grown[1:, 1:] |= out[:-1, :-1]
        grown[:-1, :-1] |= out[1:, 1:]
        grown[1:, :-1] |= out[:-1, 1:]
        grown[:-1, 1:] |= out[1:, :-1]
        out = grown
    return out


def binary_dilate_batch(
    masks: np.ndarray, iterations: int = 1
) -> np.ndarray:
    """Batched :func:`binary_dilate` over ``(n, h, w)`` boolean masks.

    Shifts run along the two trailing (spatial) axes only, so images
    never bleed into each other; results equal n scalar calls exactly
    (boolean algebra has no rounding).
    """
    if iterations < 0:
        raise ValueError("iterations must be >= 0")
    masks = np.asarray(masks, dtype=bool)
    if masks.ndim != 3:
        raise ValueError(f"expected (n, h, w) masks, got {masks.shape}")
    out = masks.copy()
    for _ in range(iterations):
        grown = out.copy()
        grown[:, 1:] |= out[:, :-1]
        grown[:, :-1] |= out[:, 1:]
        grown[:, :, 1:] |= out[:, :, :-1]
        grown[:, :, :-1] |= out[:, :, 1:]
        grown[:, 1:, 1:] |= out[:, :-1, :-1]
        grown[:, :-1, :-1] |= out[:, 1:, 1:]
        grown[:, 1:, :-1] |= out[:, :-1, 1:]
        grown[:, :-1, 1:] |= out[:, 1:, :-1]
        out = grown
    return out


def binary_erode(mask: np.ndarray, iterations: int = 1) -> np.ndarray:
    """Erode a boolean mask with a 3x3 full structuring element."""
    if iterations < 0:
        raise ValueError("iterations must be >= 0")
    mask = np.asarray(mask, dtype=bool)
    out = mask.copy()
    for _ in range(iterations):
        out = ~binary_dilate(~out, 1)
    return out

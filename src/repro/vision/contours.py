"""Connected components and Moore-neighbourhood boundary tracing.

Pure-Python/NumPy implementations, deliberately simple and auditable:
the contour trace is part of the paper's *dependable* path, where an
explainable algorithm beats a fast opaque one.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

# Moore neighbourhood in clockwise order starting from "west".
_MOORE = [
    (0, -1), (-1, -1), (-1, 0), (-1, 1),
    (0, 1), (1, 1), (1, 0), (1, -1),
]


@dataclass
class Contour:
    """A traced shape boundary.

    Attributes
    ----------
    points:
        ``(n, 2)`` integer array of (row, col) boundary pixels in
        traversal order (closed: the walk returns to the start).
    area:
        Pixel count of the connected component the contour bounds.
    """

    points: np.ndarray
    area: int

    def __len__(self) -> int:
        return len(self.points)

    def centroid(self) -> tuple[float, float]:
        """Mean (row, col) of the boundary points."""
        rows, cols = self.points[:, 0], self.points[:, 1]
        return float(rows.mean()), float(cols.mean())


def label_components(mask: np.ndarray) -> tuple[np.ndarray, int]:
    """8-connected component labelling via BFS.

    Returns ``(labels, count)`` where ``labels`` is 0 for background
    and 1..count for components.
    """
    mask = np.asarray(mask, dtype=bool)
    labels = np.zeros(mask.shape, dtype=np.int32)
    h, w = mask.shape
    current = 0
    for seed_r, seed_c in zip(*np.nonzero(mask)):
        if labels[seed_r, seed_c]:
            continue
        current += 1
        queue = deque([(int(seed_r), int(seed_c))])
        labels[seed_r, seed_c] = current
        while queue:
            r, c = queue.popleft()
            for dr, dc in _MOORE:
                nr, nc = r + dr, c + dc
                if 0 <= nr < h and 0 <= nc < w:
                    if mask[nr, nc] and not labels[nr, nc]:
                        labels[nr, nc] = current
                        queue.append((nr, nc))
    return labels, current


def trace_boundary(mask: np.ndarray) -> np.ndarray:
    """Trace the outer boundary of the single shape in ``mask``.

    Moore-neighbour tracing.  The walk carries a *backtrack* pixel --
    the background neighbour it arrived from -- and at every step scans
    the Moore neighbourhood clockwise starting just after the
    backtrack, advancing to the first foreground pixel found.  The
    trace terminates when a (pixel, backtrack) state repeats, which is
    both a correct loop-closure test and a hard termination guarantee.

    Returns an ``(n, 2)`` array of (row, col) points in traversal
    order.  ``mask`` must contain at least one foreground pixel.
    """
    mask = np.asarray(mask, dtype=bool)
    coords = np.argwhere(mask)
    if len(coords) == 0:
        raise ValueError("mask contains no foreground pixels")
    # Start at the top-most, then left-most foreground pixel: its west
    # neighbour is guaranteed background.
    start = tuple(
        int(v) for v in coords[np.lexsort((coords[:, 1], coords[:, 0]))][0]
    )
    if len(coords) == 1:
        return np.array([start], dtype=np.int64)

    h, w = mask.shape

    def is_foreground(r: int, c: int) -> bool:
        return 0 <= r < h and 0 <= c < w and bool(mask[r, c])

    boundary: list[tuple[int, int]] = [start]
    current = start
    backtrack = (start[0], start[1] - 1)  # west of start: background
    seen_states: set[tuple[tuple[int, int], tuple[int, int]]] = set()
    while (current, backtrack) not in seen_states:
        seen_states.add((current, backtrack))
        offset = (backtrack[0] - current[0], backtrack[1] - current[1])
        scan_from = _MOORE.index(offset)
        advanced = False
        for step in range(1, 9):
            d = (scan_from + step) % 8
            nr = current[0] + _MOORE[d][0]
            nc = current[1] + _MOORE[d][1]
            if is_foreground(nr, nc):
                prev = (scan_from + step - 1) % 8
                backtrack = (
                    current[0] + _MOORE[prev][0],
                    current[1] + _MOORE[prev][1],
                )
                current = (nr, nc)
                advanced = True
                break
        if not advanced:  # isolated pixel
            break
        if current == start:
            break
        boundary.append(current)
    return np.array(boundary, dtype=np.int64)


def largest_contour(mask: np.ndarray) -> Contour:
    """Boundary of the largest 8-connected component in ``mask``."""
    labels, count = label_components(mask)
    if count == 0:
        raise ValueError("mask contains no foreground pixels")
    sizes = np.bincount(labels.ravel())
    sizes[0] = 0
    best = int(sizes.argmax())
    component = labels == best
    points = trace_boundary(component)
    return Contour(points=points, area=int(sizes[best]))

"""Connected components and Moore-neighbourhood boundary tracing.

Pure-Python/NumPy implementations, deliberately simple and auditable:
the contour trace is part of the paper's *dependable* path, where an
explainable algorithm beats a fast opaque one.

Two labelling implementations coexist, with identical outputs:

* :func:`label_components` -- the per-pixel BFS, paper-faithful and
  trivially auditable; the scalar qualifier path keeps it.
* :func:`label_components_array` / :func:`label_components_batch` --
  iterative minimum-label propagation with pointer jumping over whole
  offset arrays (the classic array-parallel connected-components
  scheme).  Every pixel starts labelled with its own flat index, each
  sweep takes the minimum over the 8-neighbourhood, and a
  pointer-jump step short-circuits label chains; at the fixpoint every
  pixel holds its component's minimum flat index.  Renumbering those
  representatives in ascending order reproduces the BFS numbering
  *exactly* (a BFS seed is precisely a component's first row-major --
  i.e. minimum-flat-index -- pixel), so the two functions are
  interchangeable bit for bit.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

# Moore neighbourhood in clockwise order starting from "west".
_MOORE = [
    (0, -1), (-1, -1), (-1, 0), (-1, 1),
    (0, 1), (1, 1), (1, 0), (1, -1),
]


def _rebase_table() -> list[list[int | None]]:
    """``_REBASE[prev][d]``: the offset ``_MOORE[prev] - _MOORE[d]``
    expressed as a Moore direction index (None where the two
    neighbours are not themselves adjacent; the trace only ever asks
    for consecutive scan positions, which always are)."""
    table: list[list[int | None]] = []
    for prev in _MOORE:
        row: list[int | None] = []
        for d in _MOORE:
            offset = (prev[0] - d[0], prev[1] - d[1])
            row.append(_MOORE.index(offset) if offset in _MOORE else None)
        table.append(row)
    return table


_REBASE = _rebase_table()

#: The rebase table as an int8 array for vectorized lookup; the None
#: entries (non-adjacent neighbour pairs) become -1, which the trace
#: never selects (see :func:`_rebase_table`).
_REBASE_ARRAY = np.array(
    [[-1 if v is None else v for v in row] for row in _REBASE],
    dtype=np.int8,
)


@dataclass
class Contour:
    """A traced shape boundary.

    Attributes
    ----------
    points:
        ``(n, 2)`` integer array of (row, col) boundary pixels in
        traversal order (closed: the walk returns to the start).
    area:
        Pixel count of the connected component the contour bounds.
    """

    points: np.ndarray
    area: int

    def __len__(self) -> int:
        return len(self.points)

    def centroid(self) -> tuple[float, float]:
        """Mean (row, col) of the boundary points."""
        rows, cols = self.points[:, 0], self.points[:, 1]
        return float(rows.mean()), float(cols.mean())


def label_components(mask: np.ndarray) -> tuple[np.ndarray, int]:
    """8-connected component labelling via BFS.

    Returns ``(labels, count)`` where ``labels`` is 0 for background
    and 1..count for components.
    """
    mask = np.asarray(mask, dtype=bool)
    labels = np.zeros(mask.shape, dtype=np.int32)
    h, w = mask.shape
    current = 0
    for seed_r, seed_c in zip(*np.nonzero(mask)):
        if labels[seed_r, seed_c]:
            continue
        current += 1
        queue = deque([(int(seed_r), int(seed_c))])
        labels[seed_r, seed_c] = current
        while queue:
            r, c = queue.popleft()
            for dr, dc in _MOORE:
                nr, nc = r + dr, c + dc
                if 0 <= nr < h and 0 <= nc < w:
                    if mask[nr, nc] and not labels[nr, nc]:
                        labels[nr, nc] = current
                        queue.append((nr, nc))
    return labels, current


#: The four directed neighbour offsets that, with their mirrors, span
#: the 8-neighbourhood (E, S, SE, SW); undirected edges need one
#: direction only.
_EDGE_OFFSETS = ((0, 1), (1, 0), (1, 1), (1, -1))


def _resolve_min_labels(masks: np.ndarray) -> np.ndarray:
    """Component-minimum flat indices for an ``(n, h, w)`` mask stack.

    Returns an int64 ``(n, h, w)`` array holding, for every foreground
    pixel, the minimum per-image flat index of its 8-connected
    component; background pixels hold the sentinel ``h * w``.

    Union-find over offset arrays: foreground pixels become nodes
    (numbered in row-major order, images concatenated -- so node order
    is flat-index order within each image), adjacency comes from four
    shifted mask overlaps, and components resolve by alternating
    pointer doubling (full path compression) with minimum-hooking of
    edge endpoints' roots.  Hooking always points the larger root at
    the smaller, so every root converges to its component's minimum
    node -- i.e. the component's first row-major pixel, the exact
    pixel a BFS would have seeded from.
    """
    n, h, w = masks.shape
    sentinel = np.int64(h * w)
    representatives = np.full((n, h, w), sentinel, dtype=np.int64)
    img, rows, cols = np.nonzero(masks)
    total = len(img)
    if total == 0:
        return representatives
    node_of = np.empty((n, h, w), dtype=np.int32)
    node_of[img, rows, cols] = np.arange(total, dtype=np.int32)
    heads: list[np.ndarray] = []
    tails: list[np.ndarray] = []
    for dr, dc in _EDGE_OFFSETS:
        a_r = slice(max(0, -dr), h - max(0, dr))
        a_c = slice(max(0, -dc), w - max(0, dc))
        b_r = slice(max(0, dr), h - max(0, -dr))
        b_c = slice(max(0, dc), w - max(0, -dc))
        both = masks[:, a_r, a_c] & masks[:, b_r, b_c]
        heads.append(node_of[:, a_r, a_c][both])
        tails.append(node_of[:, b_r, b_c][both])
    edge_a = np.concatenate(heads)
    edge_b = np.concatenate(tails)
    parent = np.arange(total, dtype=np.int32)
    while True:
        # Full path compression by pointer doubling.
        while True:
            grand = parent[parent]
            if np.array_equal(grand, parent):
                break
            parent = grand
        root_a = parent[edge_a]
        root_b = parent[edge_b]
        lo = np.minimum(root_a, root_b)
        hi = np.maximum(root_a, root_b)
        live = lo != hi
        if not live.any():
            break
        # Hook every still-split edge's larger root onto the smaller;
        # minimum.at resolves duplicate targets deterministically.
        np.minimum.at(parent, hi[live], lo[live])
    roots = parent
    representatives[img, rows, cols] = rows[roots] * w + cols[roots]
    return representatives


def label_components_batch(
    masks: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Array-parallel 8-connected labelling of an ``(n, h, w)`` stack.

    Returns ``(labels, counts)``: per-image label maps (0 background,
    1..counts[i] components) and the per-image component counts.  Each
    image's labelling is identical to :func:`label_components` on that
    image (see the module docstring for why the numbering agrees).
    """
    masks = np.asarray(masks, dtype=bool)
    if masks.ndim != 3:
        raise ValueError(f"expected (n, h, w) masks, got {masks.shape}")
    n, h, w = masks.shape
    labels = np.zeros((n, h, w), dtype=np.int32)
    counts = np.zeros(n, dtype=np.int64)
    if masks.size == 0 or not masks.any():
        return labels, counts
    representatives = _resolve_min_labels(masks)
    for i in range(n):
        fg = masks[i]
        if not fg.any():
            continue
        unique, inverse = np.unique(
            representatives[i][fg], return_inverse=True
        )
        labels[i][fg] = inverse.astype(np.int32) + 1
        counts[i] = len(unique)
    return labels, counts


def largest_component_batch(
    masks: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Largest 8-connected component of each mask in an ``(n, h, w)``
    stack, without materialising full label maps.

    Returns ``(components, found)``: per-image boolean masks of the
    largest component (all-False where the image has no foreground)
    and the per-image foreground indicator.  Selection is identical to
    ``largest_component(label_components(mask)[0])``: component sizes
    come from the same pixel partition, and ties break towards the
    component whose representative (minimum flat index, i.e. first
    row-major pixel) is smallest -- the lowest BFS label -- because
    ``np.unique`` sorts representatives ascending and ``argmax`` takes
    the first maximum.
    """
    masks = np.asarray(masks, dtype=bool)
    if masks.ndim != 3:
        raise ValueError(f"expected (n, h, w) masks, got {masks.shape}")
    components = np.zeros(masks.shape, dtype=bool)
    found = masks.any(axis=(1, 2))
    if not found.any():
        return components, found
    n, h, w = masks.shape
    representatives = _resolve_min_labels(masks)
    # Per-image component sizes as one global bincount over
    # image-offset representative keys.  argmax over each image's row
    # returns the smallest representative among tied maxima -- the
    # same tie-break as the sorted-unique formulation (ascending
    # representatives, first maximum), which is the lowest BFS label.
    img, rows, cols = np.nonzero(masks)
    keys = img * np.int64(h * w) + representatives[img, rows, cols]
    sizes = np.bincount(keys, minlength=n * h * w).reshape(n, h * w)
    best = sizes.argmax(axis=1)
    # Background pixels hold the sentinel h * w, never a representative
    # (representatives are flat indices < h * w), so the comparison
    # selects foreground only; images without foreground stay all-False
    # because `best` can only address counted (foreground) keys there
    # -- their whole row is zero, argmax returns 0, and no pixel of an
    # empty mask holds representative 0.
    components = representatives == best[:, None, None]
    components[~found] = False
    return components, found


def label_components_array(mask: np.ndarray) -> tuple[np.ndarray, int]:
    """Array-parallel drop-in for :func:`label_components` (one mask)."""
    mask = np.asarray(mask, dtype=bool)
    if mask.ndim != 2:
        raise ValueError(f"expected an (h, w) mask, got {mask.shape}")
    labels, counts = label_components_batch(mask[None])
    return labels[0], int(counts[0])


def trace_boundary(mask: np.ndarray) -> np.ndarray:
    """Trace the outer boundary of the single shape in ``mask``.

    Moore-neighbour tracing.  The walk carries a *backtrack* pixel --
    the background neighbour it arrived from -- and at every step scans
    the Moore neighbourhood clockwise starting just after the
    backtrack, advancing to the first foreground pixel found.  The
    trace terminates when a (pixel, backtrack) state repeats, which is
    both a correct loop-closure test and a hard termination guarantee.

    Returns an ``(n, 2)`` array of (row, col) points in traversal
    order.  ``mask`` must contain at least one foreground pixel.
    """
    mask = np.asarray(mask, dtype=bool)
    coords = np.argwhere(mask)
    if len(coords) == 0:
        raise ValueError("mask contains no foreground pixels")
    # Start at the top-most, then left-most foreground pixel: its west
    # neighbour is guaranteed background.
    start = tuple(
        int(v) for v in coords[np.lexsort((coords[:, 1], coords[:, 0]))][0]
    )
    if len(coords) == 1:
        return np.array([start], dtype=np.int64)

    h, w = mask.shape
    # The walk is inherently sequential Python; keep each step cheap.
    # Embedding the mask in a one-pixel background frame of plain
    # bytes makes neighbour membership a single index with no bounds
    # branch or NumPy scalar boxing, and encoding the (pixel,
    # backtrack-direction) state as one int keeps the loop-closure set
    # on the fast small-int path.  The visited sequence is exactly the
    # original tuple-based walk's.
    fw = w + 2
    framed = np.zeros((h + 2, fw), dtype=np.uint8)
    framed[1:-1, 1:-1] = mask
    cells = framed.tobytes()
    moore_flat = [dr * fw + dc for dr, dc in _MOORE]

    pos = (start[0] + 1) * fw + (start[1] + 1)
    start_pos = pos
    scan_from = 0  # backtrack direction: west of start is background
    boundary: list[int] = [pos]
    seen_states = bytearray(len(cells) * 8)
    while True:
        state = pos * 8 + scan_from
        if seen_states[state]:
            break
        seen_states[state] = 1
        advanced = False
        for step in range(1, 9):
            d = (scan_from + step) % 8
            neighbour = pos + moore_flat[d]
            if cells[neighbour]:
                # Backtrack = the previously scanned (background)
                # neighbour, re-expressed as a direction from the
                # pixel we advance to.
                scan_from = _REBASE[(scan_from + step - 1) % 8][d]
                pos = neighbour
                advanced = True
                break
        if not advanced:  # isolated pixel
            break
        if pos == start_pos:
            break
        boundary.append(pos)
    points = np.array(boundary, dtype=np.int64)
    return np.stack([points // fw - 1, points % fw - 1], axis=1)


def trace_boundary_batch(
    masks: np.ndarray,
) -> list[np.ndarray | None]:
    """Moore-trace every mask of an ``(n, h, w)`` stack in lockstep.

    Returns one entry per mask: ``None`` where the mask has no
    foreground, otherwise the exact ``(m, 2)`` point array
    :func:`trace_boundary` produces for that mask.  All walks advance
    together -- each step probes the eight Moore neighbours of every
    still-active walk with whole-batch gathers -- so the per-step
    Python overhead is paid once per *step* instead of once per
    *boundary pixel*.  The decision rule at each step (clockwise scan
    from just past the backtrack, first foreground neighbour wins,
    terminate on state repeat / isolated pixel / start return) is the
    scalar walk's, applied lane-wise, so the visited sequences are
    identical by construction; ``tests/vision`` pins the equality on
    random and degenerate masks.
    """
    masks = np.asarray(masks, dtype=bool)
    if masks.ndim != 3:
        raise ValueError(f"expected (n, h, w) masks, got {masks.shape}")
    n, h, w = masks.shape
    results: list[np.ndarray | None] = [None] * n
    if masks.size == 0:
        return results
    fw = w + 2
    framed = np.zeros((n, h + 2, fw), dtype=np.uint8)
    framed[:, 1:-1, 1:-1] = masks
    cells = framed.reshape(n, -1)
    flat = masks.reshape(n, -1)
    counts = flat.sum(axis=1)
    # Row-major first foreground pixel == the top-most then left-most
    # start pixel of the scalar trace.
    first = flat.argmax(axis=1)
    start_r = first // w
    start_c = first % w
    start_pos = (start_r + 1) * fw + (start_c + 1)
    for i in np.nonzero(counts == 1)[0]:
        results[i] = np.array(
            [[int(start_r[i]), int(start_c[i])]], dtype=np.int64
        )
    lanes = np.nonzero(counts > 1)[0]
    if len(lanes) == 0:
        return results
    k = len(lanes)
    moore_flat = np.array([dr * fw + dc for dr, dc in _MOORE],
                          dtype=np.int64)
    cells = cells[lanes]
    pos = start_pos[lanes].astype(np.int64)
    start = pos.copy()
    scan_from = np.zeros(k, dtype=np.int64)  # west of start: background
    seen = np.zeros((k, cells.shape[1] * 8), dtype=bool)
    capacity = 64
    out = np.zeros((k, capacity), dtype=np.int64)
    out[:, 0] = pos
    lengths = np.ones(k, dtype=np.int64)
    active = np.arange(k)
    steps = np.arange(1, 9, dtype=np.int64)
    while len(active):
        p = pos[active]
        s = scan_from[active]
        state = p * 8 + s
        # Scalar loop order per lane: check/mark the (pixel, backtrack)
        # state, scan clockwise from just past the backtrack, advance
        # to the first foreground neighbour.
        fresh = ~seen[active, state]
        seen[active[fresh], state[fresh]] = True
        active = active[fresh]
        if not len(active):
            break
        p = p[fresh]
        s = s[fresh]
        dirs = (s[:, None] + steps[None, :]) % 8
        neighbours = p[:, None] + moore_flat[dirs]
        hits = (
            cells[active[:, None], neighbours] != 0
        )
        advanced = hits.any(axis=1)
        active = active[advanced]
        if not len(active):
            break
        row = np.arange(len(advanced))[advanced]
        probe = hits[row].argmax(axis=1)  # first foreground direction
        s = s[advanced]
        d = (s + probe + 1) % 8
        # Backtrack = the last scanned background neighbour,
        # re-expressed as a direction from the advanced-to pixel.
        scan_from[active] = _REBASE_ARRAY[(s + probe) % 8, d]
        new_pos = p[advanced] + moore_flat[d]
        pos[active] = new_pos
        closing = new_pos == start[active]
        active = active[~closing]
        if not len(active):
            break
        if lengths[active].max() == capacity:
            capacity *= 2
            grown = np.zeros((k, capacity), dtype=np.int64)
            grown[:, : out.shape[1]] = out
            out = grown
        out[active, lengths[active]] = pos[active]
        lengths[active] += 1
    for row, i in enumerate(lanes):
        points = out[row, : lengths[row]]
        results[i] = np.stack([points // fw - 1, points % fw - 1], axis=1)
    return results


def largest_component(labels: np.ndarray) -> tuple[np.ndarray, int]:
    """(mask, area) of the largest labelled component in a label map.

    Ties break towards the lowest label -- the component whose first
    row-major pixel comes first -- via ``argmax``'s first-maximum
    rule, the same rule for either labelling implementation since both
    number components identically.  ``labels`` must contain at least
    one nonzero label.
    """
    sizes = np.bincount(labels.ravel())
    sizes[0] = 0
    best = int(sizes.argmax())
    if best == 0:
        raise ValueError("label map contains no components")
    return labels == best, int(sizes[best])


def largest_contour(mask: np.ndarray) -> Contour:
    """Boundary of the largest 8-connected component in ``mask``."""
    labels, count = label_components(mask)
    if count == 0:
        raise ValueError("mask contains no foreground pixels")
    component, area = largest_component(labels)
    points = trace_boundary(component)
    return Contour(points=points, area=area)

"""Classical image processing for the dependable (qualifier) path.

The paper's qualifier turns an image into a shape verdict through a
fully deterministic pipeline: Sobel edges -> binary edge map -> largest
closed contour -> centroid -> centroid-to-edge distance time-series
(Figure 3).  Everything here is implemented from scratch on NumPy so
the pipeline is explainable end to end -- a property the paper calls
out as necessary for safety certification.
"""

from repro.vision.filters import (
    SOBEL_X,
    SOBEL_Y,
    correlate2d_batch,
    gradient_magnitude,
    gradient_magnitude_batch,
    prewitt_kernels,
    scharr_kernels,
    sobel_axis_stack,
    sobel_filter_stack,
)
from repro.vision.edges import (
    edge_map,
    edge_map_batch,
    sobel_edges,
    sobel_edges_batch,
    to_grayscale_batch,
)
from repro.vision.contours import (
    Contour,
    label_components,
    label_components_array,
    label_components_batch,
    largest_component,
    largest_contour,
    trace_boundary,
    trace_boundary_batch,
)
from repro.vision.morphology import (
    binary_dilate,
    binary_dilate_batch,
    binary_erode,
)
from repro.vision.series import (
    centroid,
    centroid_distance_series,
    centroid_distance_series_batch,
    resample_series,
    shape_signature,
)

__all__ = [
    "SOBEL_X",
    "SOBEL_Y",
    "sobel_filter_stack",
    "sobel_axis_stack",
    "scharr_kernels",
    "prewitt_kernels",
    "correlate2d_batch",
    "gradient_magnitude",
    "gradient_magnitude_batch",
    "sobel_edges",
    "sobel_edges_batch",
    "to_grayscale_batch",
    "edge_map",
    "edge_map_batch",
    "binary_dilate",
    "binary_dilate_batch",
    "binary_erode",
    "Contour",
    "trace_boundary",
    "trace_boundary_batch",
    "label_components",
    "label_components_array",
    "label_components_batch",
    "largest_component",
    "largest_contour",
    "centroid",
    "centroid_distance_series",
    "centroid_distance_series_batch",
    "resample_series",
    "shape_signature",
]

"""Derivative kernels and 2-D correlation.

The paper replaces learnt AlexNet filters with a "Sobel-x, Sobel-y,
Sobel-x" stack across the three input channels (Section III.B);
:func:`sobel_filter_stack` builds exactly that object at any kernel
size by embedding the 3x3 Sobel operator centred in a zero kernel, so
it can stand in for an 11x11x3 AlexNet filter.
"""

from __future__ import annotations

import numpy as np

SOBEL_X = np.array(
    [[-1.0, 0.0, 1.0], [-2.0, 0.0, 2.0], [-1.0, 0.0, 1.0]], dtype=np.float32
)
SOBEL_Y = SOBEL_X.T.copy()


def scharr_kernels() -> tuple[np.ndarray, np.ndarray]:
    """Scharr x/y kernels (rotation-optimised Sobel alternative)."""
    gx = np.array(
        [[-3.0, 0.0, 3.0], [-10.0, 0.0, 10.0], [-3.0, 0.0, 3.0]],
        dtype=np.float32,
    )
    return gx, gx.T.copy()


def prewitt_kernels() -> tuple[np.ndarray, np.ndarray]:
    """Prewitt x/y kernels."""
    gx = np.array(
        [[-1.0, 0.0, 1.0], [-1.0, 0.0, 1.0], [-1.0, 0.0, 1.0]],
        dtype=np.float32,
    )
    return gx, gx.T.copy()


def embed_kernel(kernel: np.ndarray, size: int) -> np.ndarray:
    """Centre a small kernel inside a ``size x size`` zero kernel."""
    kernel = np.asarray(kernel, dtype=np.float32)
    kh, kw = kernel.shape
    if kh > size or kw > size:
        raise ValueError(f"kernel {kernel.shape} larger than target {size}")
    out = np.zeros((size, size), dtype=np.float32)
    top = (size - kh) // 2
    left = (size - kw) // 2
    out[top : top + kh, left : left + kw] = kernel
    return out


def sobel_filter_stack(size: int = 3, in_channels: int = 3) -> np.ndarray:
    """The paper's Sobel replacement filter ``(in_channels, size, size)``.

    Channels alternate Sobel-x, Sobel-y, Sobel-x, ... matching the
    paper's "Sobel-x, Sobel-y, Sobel-x" description for RGB input.
    """
    if in_channels < 1:
        raise ValueError("in_channels must be >= 1")
    sx = embed_kernel(SOBEL_X, size)
    sy = embed_kernel(SOBEL_Y, size)
    planes = [sx if c % 2 == 0 else sy for c in range(in_channels)]
    return np.stack(planes, axis=0)


def sobel_axis_stack(
    axis: str, size: int = 3, in_channels: int = 3
) -> np.ndarray:
    """A single-direction Sobel filter ``(in_channels, size, size)``.

    All channels carry the same kernel (Sobel-x for ``axis="x"``,
    Sobel-y for ``axis="y"``), so the filter response is the chosen
    directional derivative of the summed channels.  The integrated
    hybrid pins one x and one y filter and reconstructs a gradient
    magnitude in the qualifier -- a single mixed filter (like
    :func:`sobel_filter_stack`) responds directionally and leaves
    gaps in contours parallel to its direction.
    """
    if axis not in ("x", "y"):
        raise ValueError("axis must be 'x' or 'y'")
    kernel = SOBEL_X if axis == "x" else SOBEL_Y
    plane = embed_kernel(kernel, size)
    return np.stack([plane] * in_channels, axis=0)


def correlate2d(image: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    """'Same'-size 2-D cross-correlation with zero padding.

    This is the conv-layer convention (no kernel flip), so results
    match applying the kernel through :class:`repro.nn.layers.Conv2D`.
    """
    image = np.asarray(image, dtype=np.float32)
    kernel = np.asarray(kernel, dtype=np.float32)
    if image.ndim != 2 or kernel.ndim != 2:
        raise ValueError("correlate2d expects 2-D arrays")
    kh, kw = kernel.shape
    ph, pw = kh // 2, kw // 2
    # Replicate-pad so derivative kernels see no artificial step at the
    # image border (zero padding would add a spurious frame of edges).
    padded = np.pad(
        image, ((ph, kh - 1 - ph), (pw, kw - 1 - pw)), mode="edge"
    )
    h, w = image.shape
    sh, sw = padded.strides
    windows = np.lib.stride_tricks.as_strided(
        padded, shape=(h, w, kh, kw), strides=(sh, sw, sh, sw),
        writeable=False,
    )
    return np.einsum("ijkl,kl->ij", windows, kernel, optimize=True)


def gradient_magnitude(image: np.ndarray) -> np.ndarray:
    """Sobel gradient magnitude of a greyscale image."""
    gx = correlate2d(image, SOBEL_X)
    gy = correlate2d(image, SOBEL_Y)
    return np.hypot(gx, gy)

"""Derivative kernels and 2-D correlation.

The paper replaces learnt AlexNet filters with a "Sobel-x, Sobel-y,
Sobel-x" stack across the three input channels (Section III.B);
:func:`sobel_filter_stack` builds exactly that object at any kernel
size by embedding the 3x3 Sobel operator centred in a zero kernel, so
it can stand in for an 11x11x3 AlexNet filter.
"""

from __future__ import annotations

import numpy as np

SOBEL_X = np.array(
    [[-1.0, 0.0, 1.0], [-2.0, 0.0, 2.0], [-1.0, 0.0, 1.0]], dtype=np.float32
)
SOBEL_Y = SOBEL_X.T.copy()


def scharr_kernels() -> tuple[np.ndarray, np.ndarray]:
    """Scharr x/y kernels (rotation-optimised Sobel alternative)."""
    gx = np.array(
        [[-3.0, 0.0, 3.0], [-10.0, 0.0, 10.0], [-3.0, 0.0, 3.0]],
        dtype=np.float32,
    )
    return gx, gx.T.copy()


def prewitt_kernels() -> tuple[np.ndarray, np.ndarray]:
    """Prewitt x/y kernels."""
    gx = np.array(
        [[-1.0, 0.0, 1.0], [-1.0, 0.0, 1.0], [-1.0, 0.0, 1.0]],
        dtype=np.float32,
    )
    return gx, gx.T.copy()


def embed_kernel(kernel: np.ndarray, size: int) -> np.ndarray:
    """Centre a small kernel inside a ``size x size`` zero kernel."""
    kernel = np.asarray(kernel, dtype=np.float32)
    kh, kw = kernel.shape
    if kh > size or kw > size:
        raise ValueError(f"kernel {kernel.shape} larger than target {size}")
    out = np.zeros((size, size), dtype=np.float32)
    top = (size - kh) // 2
    left = (size - kw) // 2
    out[top : top + kh, left : left + kw] = kernel
    return out


def sobel_filter_stack(size: int = 3, in_channels: int = 3) -> np.ndarray:
    """The paper's Sobel replacement filter ``(in_channels, size, size)``.

    Channels alternate Sobel-x, Sobel-y, Sobel-x, ... matching the
    paper's "Sobel-x, Sobel-y, Sobel-x" description for RGB input.
    """
    if in_channels < 1:
        raise ValueError("in_channels must be >= 1")
    sx = embed_kernel(SOBEL_X, size)
    sy = embed_kernel(SOBEL_Y, size)
    planes = [sx if c % 2 == 0 else sy for c in range(in_channels)]
    return np.stack(planes, axis=0)


def sobel_axis_stack(
    axis: str, size: int = 3, in_channels: int = 3
) -> np.ndarray:
    """A single-direction Sobel filter ``(in_channels, size, size)``.

    All channels carry the same kernel (Sobel-x for ``axis="x"``,
    Sobel-y for ``axis="y"``), so the filter response is the chosen
    directional derivative of the summed channels.  The integrated
    hybrid pins one x and one y filter and reconstructs a gradient
    magnitude in the qualifier -- a single mixed filter (like
    :func:`sobel_filter_stack`) responds directionally and leaves
    gaps in contours parallel to its direction.
    """
    if axis not in ("x", "y"):
        raise ValueError("axis must be 'x' or 'y'")
    kernel = SOBEL_X if axis == "x" else SOBEL_Y
    plane = embed_kernel(kernel, size)
    return np.stack([plane] * in_channels, axis=0)


def _correlate_taps(images: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    """Tap-sequential 'same' correlation over an ``(n, h, w)`` stack.

    Accumulates ``kernel[u, v] * shifted_image`` in row-major tap
    order through plain float32 ufunc passes.  Every output element's
    float chain is the same fixed multiply/accumulate sequence
    whatever the batch size -- elementwise ufuncs never re-associate a
    reduction the way a BLAS contraction may when its kernel choice
    changes with problem size -- so scalar and batched calls agree
    bitwise by construction (the same property the reliable engine's
    speculative passes rely on).
    """
    kh, kw = kernel.shape
    ph, pw = kh // 2, kw // 2
    # Replicate-pad so derivative kernels see no artificial step at the
    # image border (zero padding would add a spurious frame of edges).
    padded = np.pad(
        images, ((0, 0), (ph, kh - 1 - ph), (pw, kw - 1 - pw)), mode="edge"
    )
    n, h, w = images.shape
    acc = np.zeros((n, h, w), dtype=np.float32)
    term = np.empty((n, h, w), dtype=np.float32)
    for u in range(kh):
        for v in range(kw):
            np.multiply(
                padded[:, u : u + h, v : v + w], kernel[u, v], out=term
            )
            acc += term
    return acc


def correlate2d(image: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    """'Same'-size 2-D cross-correlation with replicate padding.

    This is the conv-layer convention (no kernel flip), so results
    match applying the kernel through :class:`repro.nn.layers.Conv2D`.
    """
    image = np.asarray(image, dtype=np.float32)
    kernel = np.asarray(kernel, dtype=np.float32)
    if image.ndim != 2 or kernel.ndim != 2:
        raise ValueError("correlate2d expects 2-D arrays")
    return _correlate_taps(image[None], kernel)[0]


def correlate2d_batch(images: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    """Batched :func:`correlate2d` over an ``(n, h, w)`` image stack.

    Bitwise identical per image to n scalar calls by construction:
    both run the same tap-sequential accumulation (see
    :func:`_correlate_taps`), padding applied per image.
    """
    images = np.asarray(images, dtype=np.float32)
    kernel = np.asarray(kernel, dtype=np.float32)
    if images.ndim != 3 or kernel.ndim != 2:
        raise ValueError(
            "correlate2d_batch expects (n, h, w) images and a 2-D kernel"
        )
    return _correlate_taps(images, kernel)


def gradient_magnitude(image: np.ndarray) -> np.ndarray:
    """Sobel gradient magnitude of a greyscale image."""
    gx = correlate2d(image, SOBEL_X)
    gy = correlate2d(image, SOBEL_Y)
    return np.hypot(gx, gy)


def gradient_magnitude_batch(images: np.ndarray) -> np.ndarray:
    """Sobel gradient magnitudes of an ``(n, h, w)`` greyscale stack.

    Bitwise identical per image to :func:`gradient_magnitude` by
    construction: both derivative responses run the shared
    tap-sequential correlation (:func:`_correlate_taps`).
    """
    gx = correlate2d_batch(images, SOBEL_X)
    gy = correlate2d_batch(images, SOBEL_Y)
    return np.hypot(gx, gy)

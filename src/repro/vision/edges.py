"""Edge maps (single-image and batched forms).

The ``*_batch`` functions process an ``(n, ...)`` image stack in
single array passes and are bitwise identical per image to the scalar
forms -- the contract the batched qualifier engine
(:mod:`repro.core.qualifier_batch`) is built on.
"""

from __future__ import annotations

import numpy as np

from repro.vision.filters import gradient_magnitude, gradient_magnitude_batch


def to_grayscale(image: np.ndarray) -> np.ndarray:
    """Convert ``(c, h, w)`` or ``(h, w)`` to a greyscale ``(h, w)``.

    Uses ITU-R BT.601 luma weights for 3-channel input; any other
    channel count is averaged.
    """
    image = np.asarray(image, dtype=np.float32)
    if image.ndim == 2:
        return image
    if image.ndim != 3:
        raise ValueError(f"expected (c, h, w) or (h, w), got {image.shape}")
    if image.shape[0] == 3:
        weights = np.array([0.299, 0.587, 0.114], dtype=np.float32)
        return np.tensordot(weights, image, axes=1)
    return image.mean(axis=0)


def sobel_edges(image: np.ndarray) -> np.ndarray:
    """Sobel gradient magnitude of an image (any supported layout)."""
    return gradient_magnitude(to_grayscale(image))


def edge_map(image: np.ndarray, threshold: float | None = None) -> np.ndarray:
    """Binary edge map from Sobel magnitude.

    ``threshold`` defaults to half the maximum magnitude, a simple
    deterministic rule (no Otsu iteration) in keeping with the paper's
    explainability requirement for the dependable path.
    """
    magnitude = sobel_edges(image)
    peak = float(magnitude.max())
    if peak == 0.0:
        return np.zeros_like(magnitude, dtype=bool)
    if threshold is None:
        threshold = 0.5 * peak
    return magnitude >= threshold


def to_grayscale_batch(images: np.ndarray) -> np.ndarray:
    """Batched :func:`to_grayscale`: ``(n, c, h, w)`` or ``(n, h, w)``
    to ``(n, h, w)``, bitwise identical per image.

    The 3-channel luma contraction deliberately runs per image through
    the exact scalar ``tensordot`` call: BLAS picks its GEMV kernel by
    problem size, and a whole-batch contraction can select a kernel
    whose 3-tap accumulation rounds differently from the per-image
    one.  The contraction is a negligible slice of the frontend, so
    exactness wins over the (measured-irrelevant) batching gain here.
    """
    images = np.asarray(images, dtype=np.float32)
    if images.ndim == 3:
        return images
    if images.ndim != 4:
        raise ValueError(
            f"expected (n, c, h, w) or (n, h, w), got {images.shape}"
        )
    if images.shape[1] == 3:
        return np.stack([to_grayscale(image) for image in images])
    return images.mean(axis=1)


def sobel_edges_batch(images: np.ndarray) -> np.ndarray:
    """Batched :func:`sobel_edges` over an image stack."""
    return gradient_magnitude_batch(to_grayscale_batch(images))


def edge_map_batch(
    images: np.ndarray, threshold: float | None = None
) -> np.ndarray:
    """Batched :func:`edge_map`: ``(n, h, w)`` boolean masks.

    The default threshold is half of each image's own peak magnitude,
    exactly as the scalar rule computes it (per-image peak cast
    through ``float``, so the comparison promotes to float64 the same
    way); all-zero magnitude images yield all-background masks.
    """
    magnitude = sobel_edges_batch(images)
    if magnitude.ndim != 3:
        raise ValueError(f"expected an image stack, got {magnitude.shape}")
    peaks = magnitude.max(axis=(1, 2)).astype(np.float64)
    if threshold is not None:
        mask = magnitude >= threshold
    else:
        mask = magnitude >= (0.5 * peaks)[:, None, None]
    # The scalar rule blanks zero-magnitude images *before* looking at
    # the threshold, so a non-positive explicit threshold still yields
    # an all-background mask for a featureless image.
    mask[peaks == 0.0] = False
    return mask

"""Edge maps."""

from __future__ import annotations

import numpy as np

from repro.vision.filters import gradient_magnitude


def to_grayscale(image: np.ndarray) -> np.ndarray:
    """Convert ``(c, h, w)`` or ``(h, w)`` to a greyscale ``(h, w)``.

    Uses ITU-R BT.601 luma weights for 3-channel input; any other
    channel count is averaged.
    """
    image = np.asarray(image, dtype=np.float32)
    if image.ndim == 2:
        return image
    if image.ndim != 3:
        raise ValueError(f"expected (c, h, w) or (h, w), got {image.shape}")
    if image.shape[0] == 3:
        weights = np.array([0.299, 0.587, 0.114], dtype=np.float32)
        return np.tensordot(weights, image, axes=1)
    return image.mean(axis=0)


def sobel_edges(image: np.ndarray) -> np.ndarray:
    """Sobel gradient magnitude of an image (any supported layout)."""
    return gradient_magnitude(to_grayscale(image))


def edge_map(image: np.ndarray, threshold: float | None = None) -> np.ndarray:
    """Binary edge map from Sobel magnitude.

    ``threshold`` defaults to half the maximum magnitude, a simple
    deterministic rule (no Otsu iteration) in keeping with the paper's
    explainability requirement for the dependable path.
    """
    magnitude = sobel_edges(image)
    peak = float(magnitude.max())
    if peak == 0.0:
        return np.zeros_like(magnitude, dtype=bool)
    if threshold is None:
        threshold = 0.5 * peak
    return magnitude >= threshold

"""Centroid-to-edge distance time-series (paper Figure 3).

The shape of a traffic sign is reduced to a 1-D signal: the distance
from the shape's centroid to each boundary point, ordered by the angle
of the boundary point around the centroid.  An octagon yields eight
distinct peaks (the corners); a circle is flat; a triangle has three
peaks.  The signal feeds :mod:`repro.sax` for symbolic comparison.
"""

from __future__ import annotations

import numpy as np

from repro.vision.contours import Contour, largest_contour
from repro.vision.edges import edge_map


def centroid(points: np.ndarray) -> tuple[float, float]:
    """Mean (row, col) of an ``(n, 2)`` point set."""
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError(f"expected (n, 2) points, got {points.shape}")
    return float(points[:, 0].mean()), float(points[:, 1].mean())


def centroid_distance_series(
    contour: Contour | np.ndarray, n_samples: int = 128
) -> np.ndarray:
    """Angle-ordered centroid-to-boundary distances.

    Boundary points are sorted by their polar angle around the
    centroid and the resulting distance sequence is resampled to
    ``n_samples`` evenly spaced angles, making the series length
    independent of image resolution.
    """
    points = contour.points if isinstance(contour, Contour) else contour
    points = np.asarray(points, dtype=np.float64)
    if len(points) < 3:
        raise ValueError("need at least 3 boundary points")
    cr, cc = centroid(points)
    dr = points[:, 0] - cr
    dc = points[:, 1] - cc
    angles = np.arctan2(dr, dc)  # [-pi, pi)
    distances = np.hypot(dr, dc)
    order = np.argsort(angles, kind="stable")
    angles = angles[order]
    distances = distances[order]
    # Resample on a uniform angular grid with circular interpolation.
    grid = np.linspace(-np.pi, np.pi, n_samples, endpoint=False)
    extended_angles = np.concatenate(
        [angles - 2 * np.pi, angles, angles + 2 * np.pi]
    )
    extended_dist = np.concatenate([distances, distances, distances])
    return np.interp(grid, extended_angles, extended_dist)


def resample_series(series: np.ndarray, n_samples: int) -> np.ndarray:
    """Linear resampling of a 1-D series to ``n_samples`` points."""
    series = np.asarray(series, dtype=np.float64)
    if series.ndim != 1 or len(series) < 2:
        raise ValueError("series must be 1-D with >= 2 points")
    old = np.linspace(0.0, 1.0, len(series))
    new = np.linspace(0.0, 1.0, n_samples)
    return np.interp(new, old, series)


def shape_signature(
    image: np.ndarray,
    n_samples: int = 128,
    threshold: float | None = None,
) -> np.ndarray:
    """Full Figure-3 pipeline: image -> edge map -> contour -> series.

    Parameters
    ----------
    image:
        ``(c, h, w)`` or ``(h, w)`` image containing one dominant shape.
    n_samples:
        Length of the returned distance series.
    threshold:
        Optional edge threshold forwarded to
        :func:`repro.vision.edges.edge_map`.
    """
    mask = edge_map(image, threshold=threshold)
    contour = largest_contour(mask)
    return centroid_distance_series(contour, n_samples=n_samples)

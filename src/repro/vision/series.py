"""Centroid-to-edge distance time-series (paper Figure 3).

The shape of a traffic sign is reduced to a 1-D signal: the distance
from the shape's centroid to each boundary point, ordered by the angle
of the boundary point around the centroid.  An octagon yields eight
distinct peaks (the corners); a circle is flat; a triangle has three
peaks.  The signal feeds :mod:`repro.sax` for symbolic comparison.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.vision.contours import Contour, largest_contour
from repro.vision.edges import edge_map


@lru_cache(maxsize=8)
def _angle_grid(n_samples: int) -> np.ndarray:
    """The uniform angular resampling grid (pure function of its
    length; cached so batched extraction stops rebuilding it)."""
    grid = np.linspace(-np.pi, np.pi, n_samples, endpoint=False)
    grid.setflags(write=False)
    return grid


def centroid(points: np.ndarray) -> tuple[float, float]:
    """Mean (row, col) of an ``(n, 2)`` point set."""
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError(f"expected (n, 2) points, got {points.shape}")
    return float(points[:, 0].mean()), float(points[:, 1].mean())


def centroid_distance_series(
    contour: Contour | np.ndarray, n_samples: int = 128
) -> np.ndarray:
    """Angle-ordered centroid-to-boundary distances.

    Boundary points are sorted by their polar angle around the
    centroid and the resulting distance sequence is resampled to
    ``n_samples`` evenly spaced angles, making the series length
    independent of image resolution.
    """
    points = contour.points if isinstance(contour, Contour) else contour
    points = np.asarray(points, dtype=np.float64)
    if len(points) < 3:
        raise ValueError("need at least 3 boundary points")
    cr, cc = centroid(points)
    dr = points[:, 0] - cr
    dc = points[:, 1] - cc
    angles = np.arctan2(dr, dc)  # [-pi, pi)
    distances = np.hypot(dr, dc)
    order = np.argsort(angles, kind="stable")
    angles = angles[order]
    distances = distances[order]
    # Resample on a uniform angular grid with circular interpolation.
    grid = _angle_grid(n_samples)
    extended_angles = np.concatenate(
        [angles - 2 * np.pi, angles, angles + 2 * np.pi]
    )
    extended_dist = np.concatenate([distances, distances, distances])
    return np.interp(grid, extended_angles, extended_dist)


def centroid_distance_series_batch(
    contours: list[np.ndarray], n_samples: int = 128
) -> np.ndarray:
    """:func:`centroid_distance_series` over many boundaries at once.

    ``contours`` is a list of ``(m_i, 2)`` integer point arrays (each
    with at least 3 points); the result row ``j`` is bitwise identical
    to ``centroid_distance_series(contours[j], n_samples)``.  Boundaries
    are grouped by length so every array pass reduces rows of one
    common length: a row-wise reduction over a ``(g, m)`` stack walks
    each row with the same pairwise-summation tree as the scalar
    ``(m,)`` reduction, which is what keeps the centroid -- and
    everything downstream of it -- bit-exact.  (Mixing lengths into
    one padded array would change the summation trees and break that.)
    """
    series = np.empty((len(contours), n_samples), dtype=np.float64)
    if not contours:
        return series
    grid = _angle_grid(n_samples)
    by_length: dict[int, list[int]] = {}
    for j, points in enumerate(contours):
        if len(points) < 3:
            raise ValueError("need at least 3 boundary points")
        by_length.setdefault(len(points), []).append(j)
    for rows in by_length.values():
        stacked = np.stack(
            [np.asarray(contours[j], dtype=np.float64) for j in rows]
        )
        # Same strided (stride-2) row reductions as the scalar
        # ``points[:, 0].mean()`` on each (m, 2) member.
        cr = stacked[:, :, 0].mean(axis=1)
        cc = stacked[:, :, 1].mean(axis=1)
        dr = stacked[:, :, 0] - cr[:, None]
        dc = stacked[:, :, 1] - cc[:, None]
        angles = np.arctan2(dr, dc)
        distances = np.hypot(dr, dc)
        order = np.argsort(angles, axis=1, kind="stable")
        angles = np.take_along_axis(angles, order, axis=1)
        distances = np.take_along_axis(distances, order, axis=1)
        extended_angles = np.concatenate(
            [angles - 2 * np.pi, angles, angles + 2 * np.pi], axis=1
        )
        extended_dist = np.concatenate(
            [distances, distances, distances], axis=1
        )
        # np.interp has no batch axis; the per-row call is a single C
        # pass and is not the hot part of extraction.
        for row, j in enumerate(rows):
            series[j] = np.interp(
                grid, extended_angles[row], extended_dist[row]
            )
    return series


def resample_series(series: np.ndarray, n_samples: int) -> np.ndarray:
    """Linear resampling of a 1-D series to ``n_samples`` points."""
    series = np.asarray(series, dtype=np.float64)
    if series.ndim != 1 or len(series) < 2:
        raise ValueError("series must be 1-D with >= 2 points")
    old = np.linspace(0.0, 1.0, len(series))
    new = np.linspace(0.0, 1.0, n_samples)
    return np.interp(new, old, series)


def shape_signature(
    image: np.ndarray,
    n_samples: int = 128,
    threshold: float | None = None,
) -> np.ndarray:
    """Full Figure-3 pipeline: image -> edge map -> contour -> series.

    Parameters
    ----------
    image:
        ``(c, h, w)`` or ``(h, w)`` image containing one dominant shape.
    n_samples:
        Length of the returned distance series.
    threshold:
        Optional edge threshold forwarded to
        :func:`repro.vision.edges.edge_map`.
    """
    mask = edge_map(image, threshold=threshold)
    contour = largest_contour(mask)
    return centroid_distance_series(contour, n_samples=n_samples)

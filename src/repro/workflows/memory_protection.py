"""Extension E13: weight-storage protection (ECC) and spatial
redundancy vs permanent PE faults.

Two studies completing the design space the paper surveys in
Section II:

* :func:`run_ecc_study` -- SEC-DED-protected weight storage under
  memory SEUs, against raw storage: classification accuracy of a
  trained model as stored-bit upsets accumulate, with and without
  ECC, plus correction/detection counters.  (Section II.C: vendors
  answer memory upsets with ECC; arithmetic upsets need the paper's
  redundant execution -- the two compose.)
* :func:`run_spatial_vs_temporal` -- the redundancy-kind comparison
  on permanent faults: temporal DMR (same unit twice) is silently
  wrong, spatial DMR (two different PEs) detects, retires the faulty
  PE and completes correctly in degraded mode (Section II.B's
  "graceful degradation strategies").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.metrics import accuracy
from repro.faults.models import PermanentFault
from repro.faults.injector import FaultyExecutionUnit
from repro.reliable.convolution import ConvolutionStats, reliable_convolution
from repro.reliable.ecc import ECCProtectedTensor
from repro.reliable.errors import PersistentFailureError
from repro.reliable.execution_unit import PerfectExecutionUnit
from repro.reliable.leaky_bucket import LeakyBucket
from repro.reliable.operators import RedundantOperator
from repro.reliable.spatial import PEArray, SpatialRedundantOperator


# ---------------------------------------------------------------------------
# ECC weight storage
# ---------------------------------------------------------------------------

@dataclass
class ECCRow:
    n_flips: int
    raw_accuracy: float
    ecc_accuracy: float
    corrected: int
    uncorrectable: int


@dataclass
class ECCStudyResult:
    rows: list[ECCRow] = field(default_factory=list)
    clean_accuracy: float = 0.0

    def to_text(self) -> str:
        lines = [
            f"clean accuracy: {self.clean_accuracy:.3f}",
            f"{'flips':>6} {'raw acc':>8} {'ECC acc':>8} "
            f"{'corrected':>10} {'uncorrectable':>14}",
        ]
        for row in self.rows:
            lines.append(
                f"{row.n_flips:>6} {row.raw_accuracy:>8.3f} "
                f"{row.ecc_accuracy:>8.3f} {row.corrected:>10} "
                f"{row.uncorrectable:>14}"
            )
        return "\n".join(lines)


def run_ecc_study(
    trained_model,
    flip_counts: tuple[int, ...] = (1, 8, 32, 128),
    seed: int = 0,
) -> ECCStudyResult:
    """Accuracy under stored-weight upsets, raw vs SEC-DED storage.

    For each flip count: corrupt conv1's stored weights (raw arm:
    in-place float bit flips in data bits; ECC arm: the same number
    of upsets in the 39-bit codewords, then decode-with-correction)
    and measure test accuracy.
    """
    model = trained_model.model
    conv1 = model.layer("conv1")
    pristine = conv1.weight.value.copy()
    result = ECCStudyResult(clean_accuracy=trained_model.test_accuracy)
    x, y = trained_model.test_x, trained_model.test_y
    try:
        for n_flips in flip_counts:
            rng = np.random.default_rng(seed + n_flips)
            # Raw storage arm: flips land in the 32 data bits.
            from repro.faults.injector import corrupt_tensor

            corrupted, _ = corrupt_tensor(pristine, n_flips, rng)
            conv1.weight.value = corrupted
            with np.errstate(over="ignore", invalid="ignore"):
                raw_acc = accuracy(model, x, y)

            # ECC arm: the same upset count in codeword bits.
            storage = ECCProtectedTensor(pristine)
            storage.inject_random_flips(n_flips, rng)
            recovered, report = storage.read()
            conv1.weight.value = recovered
            with np.errstate(over="ignore", invalid="ignore"):
                ecc_acc = accuracy(model, x, y)

            result.rows.append(ECCRow(
                n_flips=n_flips,
                raw_accuracy=raw_acc,
                ecc_accuracy=ecc_acc,
                corrected=report.corrected,
                uncorrectable=report.uncorrectable,
            ))
    finally:
        conv1.weight.value = pristine
    return result


# ---------------------------------------------------------------------------
# Spatial vs temporal redundancy on permanent faults
# ---------------------------------------------------------------------------

@dataclass
class RedundancyKindResult:
    temporal_correct: bool = False
    temporal_detected: bool = False
    spatial_correct: bool = False
    spatial_detected: bool = False
    spatial_degraded: bool = False
    retired_pe: int | None = None
    health_summary: str = ""

    def to_text(self) -> str:
        return "\n".join([
            "permanent stuck-at fault in one execution unit:",
            f"  temporal DMR: detected={self.temporal_detected}  "
            f"result correct={self.temporal_correct}   "
            "(common-mode blind spot)",
            f"  spatial DMR:  detected={self.spatial_detected}  "
            f"result correct={self.spatial_correct}  "
            f"degraded mode={self.spatial_degraded} "
            f"(PE{self.retired_pe} retired)",
            self.health_summary,
        ])


def run_spatial_vs_temporal(
    vector_length: int = 128,
    n_elements: int = 4,
    faulty_pe: int = 2,
    stuck_bit: int = 28,
    seed: int = 0,
) -> RedundancyKindResult:
    """One permanent fault, two redundancy kinds, opposite outcomes."""
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(vector_length)
    w = rng.standard_normal(vector_length)
    golden = 0.0
    for xi, wi in zip(x, w):
        golden += float(xi) * float(wi)

    result = RedundancyKindResult()

    # Temporal: both executions on the same (faulty) unit.
    faulty_unit = FaultyExecutionUnit(
        PermanentFault(bit=stuck_bit, rng=rng)
    )
    stats = ConvolutionStats()
    try:
        value = reliable_convolution(
            x, w, 0.0, RedundantOperator(faulty_unit),
            bucket=LeakyBucket(ceiling=10_000), stats=stats,
        ).value
        result.temporal_correct = abs(value - golden) < 1e-6
    except PersistentFailureError:
        result.temporal_detected = True
    result.temporal_detected = (
        result.temporal_detected or stats.errors_detected > 0
    )

    # Spatial: two different PEs; one is permanently faulty.
    units = [PerfectExecutionUnit() for _ in range(n_elements)]
    units[faulty_pe] = FaultyExecutionUnit(
        PermanentFault(bit=stuck_bit, rng=rng)
    )
    array = PEArray(units)
    operator = SpatialRedundantOperator(array)
    stats = ConvolutionStats()
    try:
        value = reliable_convolution(
            x, w, 0.0, operator,
            bucket=LeakyBucket(ceiling=10_000), stats=stats,
        ).value
        result.spatial_correct = abs(value - golden) < 1e-6
    except PersistentFailureError:
        pass
    result.spatial_detected = stats.errors_detected > 0
    result.spatial_degraded = array.degraded
    retired = [pe.index for pe in array.elements if pe.retired]
    result.retired_pe = retired[0] if retired else None
    result.health_summary = array.health_summary()
    return result

"""Experiment E1/E6: Table 1 execution times.

The paper measures the reliable convolution algorithm on the first
AlexNet layer (96 feature maps from 96 11x11x3 filters) on a desktop
CPU:

=========================  ==========
Configuration              Time
=========================  ==========
native TensorFlow          0.05 s
Algorithm 3 + Algorithm 1  301.91 s
Algorithm 3 + Algorithm 2  648.87 s
naive SAX (shape)          1.942 s
=========================  ==========

Absolute numbers are platform-bound; the claims that survive
replication are the *ratios*: redundant/plain is ~2.15x (two
multiplies and a comparison replace one multiply), and per-operation
reliable execution in Python is 3-4 orders of magnitude above the
vectorised native path.

By default the workflow measures a scaled layer and reports
per-operation costs alongside an extrapolation to the paper's
geometry; set ``full=True`` (or the ``REPRO_FULL=1`` environment
variable for the bench) to run the paper's exact layer.

This workflow always runs ``engine="scalar"`` -- it exists to
reproduce the paper's per-operation timing.  The production path is
the speculate-then-verify engine (:mod:`repro.reliable.vectorized`),
benchmarked against this one in
``benchmarks/test_reliable_vectorized.py``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.api import QualifierConfig, build_qualifier
from repro.data.signs import render_sign
from repro.nn.layers.conv import Conv2D
from repro.reliable.execution_unit import Float32ExecutionUnit
from repro.reliable.executor import ReliableConv2D
from repro.reliable.operators import PlainOperator, RedundantOperator


#: Multiply-accumulate count of the paper's layer: 96 filters of
#: 11*11*3 over a 55x55 output grid, multiplies + accumulates + bias.
PAPER_LAYER_OPS = 96 * 55 * 55 * (11 * 11 * 3 * 2 + 1)


@dataclass
class Table1Result:
    """Measured Table 1 row set."""

    native_seconds: float
    plain_seconds: float
    redundant_seconds: float
    plain_ops: int
    redundant_ops: int
    layer_description: str
    full_scale: bool

    @property
    def redundant_over_plain(self) -> float:
        """The wall-clock ratio Table 1 implies (648.87/301.91=2.15).

        In this Python implementation per-operation dispatch overhead
        is shared by both configurations, compressing the measured
        ratio below 2; the *unit-execution* ratio (see
        :attr:`unit_execution_ratio`) is exactly 2, which is the
        paper's structural claim ("Algorithm 2 performs two
        multiplications and a comparison").
        """
        return self.redundant_seconds / self.plain_seconds

    @property
    def unit_execution_ratio(self) -> float:
        """Arithmetic-unit executions, redundant / plain (exactly 2)."""
        return (RedundantOperator.executions_per_op
                / PlainOperator.executions_per_op)

    @property
    def plain_over_native(self) -> float:
        return self.plain_seconds / self.native_seconds

    def extrapolated_plain_full(self) -> float:
        """Projected plain-operator seconds for the paper's geometry."""
        if self.full_scale:
            return self.plain_seconds
        return self.plain_seconds * PAPER_LAYER_OPS / self.plain_ops

    def extrapolated_redundant_full(self) -> float:
        if self.full_scale:
            return self.redundant_seconds
        return self.redundant_seconds * PAPER_LAYER_OPS / self.redundant_ops

    def to_text(self) -> str:
        lines = [
            f"layer: {self.layer_description}",
            f"{'native (vectorised)':<28} {self.native_seconds:>10.4f} s",
            f"{'Algorithm 1 (plain)':<28} {self.plain_seconds:>10.2f} s",
            f"{'Algorithm 2 (redundant)':<28} {self.redundant_seconds:>10.2f} s",
            f"{'redundant / plain (time)':<28} "
            f"{self.redundant_over_plain:>10.2f} x   (paper: 2.15x)",
            f"{'redundant / plain (unit ops)':<28} "
            f"{self.unit_execution_ratio:>10.2f} x",
            f"{'plain / native':<28} {self.plain_over_native:>10.0f} x",
        ]
        if not self.full_scale:
            lines.append(
                f"{'extrapolated full plain':<28} "
                f"{self.extrapolated_plain_full():>10.1f} s   (paper: 301.91 s)"
            )
            lines.append(
                f"{'extrapolated full redundant':<28} "
                f"{self.extrapolated_redundant_full():>10.1f} s   (paper: 648.87 s)"
            )
        return "\n".join(lines)


def _first_layer(full: bool, rng: np.random.Generator) -> tuple[Conv2D, int, str]:
    if full:
        layer = Conv2D(3, 96, 11, stride=4, rng=rng, name="conv1")
        return layer, 227, "96 filters 11x11x3, 227x227 input (paper scale)"
    layer = Conv2D(3, 8, 5, stride=2, rng=rng, name="conv1")
    return layer, 32, "8 filters 5x5x3, 32x32 input (scaled)"


def run_table1(full: bool = False, seed: int = 0) -> Table1Result:
    """Measure Table 1 on this machine.

    ``full=True`` runs the paper's exact first-layer geometry; expect
    minutes-to-hours of runtime, exactly as the paper reports.
    """
    rng = np.random.default_rng(seed)
    layer, size, description = _first_layer(full, rng)
    image = render_sign(0, size=size)[None]

    start = time.perf_counter()
    layer.forward(image)
    native_seconds = time.perf_counter() - start

    # Bit-exact float32 arithmetic: the values a hardware comparator
    # would see, and a unit whose cost is visible next to the wrapper.
    # engine="scalar" pins the paper-literal per-operation loop: this
    # workflow *measures* Algorithm 3's per-op dispatch cost, which the
    # default speculate-then-verify engine exists to eliminate.
    unit = Float32ExecutionUnit()
    _, plain_report = ReliableConv2D(
        layer, PlainOperator(unit), engine="scalar"
    ).forward(image)
    _, redundant_report = ReliableConv2D(
        layer, RedundantOperator(unit), engine="scalar"
    ).forward(image)

    return Table1Result(
        native_seconds=native_seconds,
        plain_seconds=plain_report.elapsed_seconds,
        redundant_seconds=redundant_report.elapsed_seconds,
        plain_ops=plain_report.operations,
        redundant_ops=redundant_report.operations,
        layer_description=description,
        full_scale=full,
    )


def time_sax_qualifier(
    image_size: int = 227, repeats: int = 5, seed: int = 0
) -> float:
    """Section IV: "a naive version of the SAX algorithm to determine
    shape completes in 1.942 seconds".

    Returns the mean wall time of one full qualifier evaluation
    (edge map, contour, series, SAX, template comparison) on a
    stop-sign image of the paper's input size.
    """
    del seed  # the qualifier is deterministic
    qualifier = build_qualifier(QualifierConfig(redundant=False))
    image = render_sign(0, size=image_size, rotation=np.deg2rad(5))
    qualifier.check(image)  # warm-up outside timing
    start = time.perf_counter()
    for _ in range(repeats):
        qualifier.check(image)
    return (time.perf_counter() - start) / repeats

"""Shared training helper for the data-set-integration experiments.

The paper trains an AlexNet on GTSRB; experiments E3-E5 here train a
scaled AlexNet (or the small CNN, for speed) on the synthetic sign
dataset.  One function owns that procedure so that every experiment
uses the same data pipeline and hyper-parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data import SIGN_CLASSES, make_dataset, train_test_split
from repro.models import alexnet_scaled, small_cnn
from repro.nn import Adam, FilterPin, Sequential, Trainer
from repro.nn.layers.conv import Conv2D


@dataclass
class TrainedSignModel:
    """A trained classifier with its data and accuracy."""

    model: Sequential
    train_x: np.ndarray
    train_y: np.ndarray
    test_x: np.ndarray
    test_y: np.ndarray
    test_accuracy: float
    history_loss: list[float]


def train_sign_model(
    arch: str = "small",
    image_size: int = 32,
    n_per_class: int = 40,
    epochs: int = 8,
    conv1_filters: int = 8,
    seed: int = 0,
    pins: list[FilterPin] | None = None,
    model: Sequential | None = None,
) -> TrainedSignModel:
    """Train a sign classifier on the synthetic dataset.

    Parameters
    ----------
    arch:
        ``"small"`` (fast; default) or ``"alexnet"`` (scaled AlexNet).
    image_size:
        Input image side length.
    conv1_filters:
        Width of the first convolution -- the filter population that
        Figure 4 sweeps (the paper uses AlexNet's 96).
    pins:
        Optional :class:`FilterPin` list (the Sobel pre-initialisation
        experiment builds these around the returned model's conv1, so
        it passes ``model`` explicitly instead).
    model:
        Pre-built model to train; overrides ``arch``/``conv1_filters``.
    """
    rng = np.random.default_rng(seed)
    dataset = make_dataset(n_per_class, size=image_size, seed=seed)
    (train_x, train_y), (test_x, test_y) = train_test_split(
        dataset, test_fraction=0.25, seed=seed
    )
    if model is None:
        if arch == "small":
            model = small_cnn(image_size, len(SIGN_CLASSES),
                              conv1_filters=conv1_filters, rng=rng)
        elif arch == "alexnet":
            model = alexnet_scaled(
                n_classes=len(SIGN_CLASSES),
                input_size=image_size,
                conv1_filters=conv1_filters,
                rng=rng,
            )
        else:
            raise ValueError(f"unknown arch {arch!r}")
    trainer = Trainer(
        model,
        Adam(model.parameters(), lr=1e-3),
        pins=pins,
        rng=rng,
    )
    history = trainer.fit(
        train_x, train_y, epochs=epochs, batch_size=32,
    )
    test_accuracy = trainer.evaluate(test_x, test_y)
    return TrainedSignModel(
        model=model,
        train_x=train_x,
        train_y=train_y,
        test_x=test_x,
        test_y=test_y,
        test_accuracy=test_accuracy,
        history_loss=history.loss,
    )


def conv1_of(model: Sequential) -> Conv2D:
    """The first convolution layer of a model built here."""
    layer = model.layer("conv1")
    if not isinstance(layer, Conv2D):
        raise TypeError("conv1 is not a Conv2D")
    return layer

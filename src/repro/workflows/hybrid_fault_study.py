"""End-to-end fault studies on the hybrid and the caging baselines.

Two experiments beyond the paper's explicit artefacts:

* :func:`run_hybrid_under_faults` -- the integrated hybrid's
  dependable path under processing-element transients: detection,
  rollback and the decision taken when the leaky bucket gives up
  (never a silent confirm).
* :func:`run_baseline_comparison` -- weight-corruption campaign
  comparing the unprotected CNN, activation-range supervision
  (ref [28]), output caging (ref [27]) and the hybrid's qualifier on
  the metric that matters for the paper's use-case: **false confirms
  of the safety class** (saying "dependable stop" when the input is
  not a stop sign or the network is corrupted).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.api import QualifierConfig, build_baseline, build_qualifier
from repro.core import Decision
from repro.data import STOP_CLASS_INDEX, render_sign
from repro.faults.injector import flip_weight_bits


# ---------------------------------------------------------------------------
# Hybrid under processing-element transients
# ---------------------------------------------------------------------------

@dataclass
class HybridFaultRow:
    fault_probability: float
    decision: str
    qualifier_matches: bool
    errors_detected: int
    rollbacks: int
    persistent_failures: int


@dataclass
class HybridFaultResult:
    rows: list[HybridFaultRow] = field(default_factory=list)

    def to_text(self) -> str:
        lines = [
            f"{'p':>9} {'decision':<22} {'qualifier':<10} "
            f"{'errors':>7} {'rollbacks':>9} {'aborts':>7}"
        ]
        for row in self.rows:
            lines.append(
                f"{row.fault_probability:>9.1e} {row.decision:<22} "
                f"{str(row.qualifier_matches):<10} "
                f"{row.errors_detected:>7} {row.rollbacks:>9} "
                f"{row.persistent_failures:>7}"
            )
        return "\n".join(lines)

    def never_silently_confirmed_under_abort(self) -> bool:
        """Safety invariant: an aborted dependable path never yields
        a confirmed decision."""
        return all(
            row.decision != Decision.CONFIRMED.value
            for row in self.rows
            if row.persistent_failures > 0
        )


def _pinned_model(input_size: int, rng: np.random.Generator):
    # Historical entry point; one shared implementation with the
    # campaign engine's "pipeline" target.
    from repro.campaigns.targets import pinned_stop_model

    return pinned_stop_model(input_size, rng)


def build_hybrid_fault_spec(
    probabilities: tuple[float, ...] = (0.0, 1e-5, 1e-4),
    input_size: int = 96,
    bucket_ceiling: int = 1000,
    seed: int = 0,
    trials: int = 1,
) -> "CampaignSpec":
    """The campaign spec behind :func:`run_hybrid_under_faults`.

    One grid cell per fault probability, ``trials`` full-pipeline
    inferences each -- scale ``trials`` and add ``workers`` at the
    engine call for distribution-level statistics instead of the
    historical single-shot rows.
    """
    from repro.campaigns import CampaignSpec, FaultSpec

    return CampaignSpec(
        name="hybrid-under-faults",
        target="pipeline",
        fault=FaultSpec(kind="transient", params={"probability": 0.0}),
        trials=trials,
        seed=seed,
        grid={"fault.probability": probabilities},
        target_params={
            "input_size": input_size,
            "bucket_ceiling": bucket_ceiling,
        },
    )


def run_hybrid_under_faults(
    probabilities: tuple[float, ...] = (0.0, 1e-5, 1e-4),
    input_size: int = 96,
    bucket_ceiling: int = 1000,
    seed: int = 0,
    workers: int | None = None,
) -> HybridFaultResult:
    """Integrated hybrid inference with transient PE faults injected
    into the dependable partition's arithmetic.

    A generous bucket ceiling keeps moderate fault rates inside the
    rollback regime (errors detected and recovered); tightening it
    trades availability for fail-fast behaviour, as Algorithm 3
    intends.  Runs on the campaign engine: one cell per probability,
    and the returned rows are bitwise identical for any ``workers``.
    """
    from repro.campaigns import run_campaign

    spec = build_hybrid_fault_spec(
        probabilities=probabilities,
        input_size=input_size,
        bucket_ceiling=bucket_ceiling,
        seed=seed,
    )
    report = run_campaign(spec, workers=workers, keep_records=True)
    cells = spec.cells()
    result = HybridFaultResult()
    for record in report.records:
        result.rows.append(HybridFaultRow(
            fault_probability=cells[record.cell].overrides[
                "fault.probability"
            ],
            decision=record.observed,
            qualifier_matches=bool(
                record.metrics["qualifier_matches"]
            ),
            errors_detected=record.errors_detected,
            rollbacks=record.rollbacks,
            persistent_failures=int(
                record.metrics["persistent_failures"]
            ),
        ))
    return result


# ---------------------------------------------------------------------------
# Baseline comparison under weight corruption
# ---------------------------------------------------------------------------

@dataclass
class BaselineRow:
    protection: str
    false_confirms: int
    rejected: int
    trials: int

    @property
    def false_confirm_rate(self) -> float:
        return self.false_confirms / self.trials if self.trials else 0.0


@dataclass
class BaselineComparisonResult:
    rows: list[BaselineRow] = field(default_factory=list)
    n_flips: int = 0

    def to_text(self) -> str:
        lines = [
            f"weight corruption: {self.n_flips} bit flips in conv1 "
            "per trial; non-stop inputs only",
            f"{'protection':<24} {'false confirms':>15} "
            f"{'rejected':>9} {'trials':>7}",
        ]
        for row in self.rows:
            lines.append(
                f"{row.protection:<24} {row.false_confirms:>15} "
                f"{row.rejected:>9} {row.trials:>7}"
            )
        return "\n".join(lines)


def run_baseline_comparison(
    trained_model,
    trials: int = 60,
    n_flips: int = 80,
    bit_range: tuple[int, int] = (23, 31),
    seed: int = 0,
) -> BaselineComparisonResult:
    """False-confirm comparison under weight bit flips.

    Each trial: corrupt conv1 weights with ``n_flips`` random bit
    flips, present a random *non-stop* sign, and ask each protection
    whether it would report a dependable "stop":

    * **unprotected** -- confirm whenever argmax == stop;
    * **range-guard** (ref [28]) -- clipped inference, confirm on
      argmax == stop (clipping masks but never vetoes);
    * **output cage** (ref [27]) -- confirm on argmax == stop AND the
      output is inside the calibrated feasible region;
    * **hybrid qualifier** (this paper) -- confirm on argmax == stop
      AND the octagon qualifier accepts the input image.

    The hybrid's qualifier consults the *input*, which the weight
    corruption cannot touch, so its false-confirm count is
    structurally zero -- the comparison makes the paper's argument
    against pure-output caging concrete.

    Corruption defaults target float32 exponent bits: mantissa flips
    rarely move a trained network's argmax, while exponent flips
    produce the large deviations (including overflow to inf/NaN,
    whose argmax conventionally lands on class 0 -- the stop class)
    that hardware studies report as the dangerous case.
    """
    model = trained_model.model
    rng = np.random.default_rng(seed)

    guard = build_baseline("ranger", model)
    guard.calibrate(trained_model.train_x[:128])
    cage = build_baseline("caging", model)
    cage.calibrate(trained_model.train_x[:128])
    qualifier = build_qualifier(QualifierConfig())

    conv1 = model.layer("conv1")
    pristine = conv1.weight.value.copy()
    rows = {
        name: BaselineRow(name, 0, 0, trials)
        for name in ("unprotected", "range-guard", "output-cage",
                     "hybrid-qualifier")
    }
    non_stop_classes = [i for i in range(8) if i != STOP_CLASS_INDEX]
    try:
        for _ in range(trials):
            class_index = int(rng.choice(non_stop_classes))
            rotation = float(rng.uniform(-0.15, 0.15))
            cnn_view = render_sign(class_index, size=32,
                                   rotation=rotation)
            qualifier_view = render_sign(class_index, size=128,
                                         rotation=rotation)
            flip_weight_bits(conv1, n_flips, rng, bit_range=bit_range)

            with np.errstate(over="ignore", invalid="ignore"):
                logits = model.forward(cnn_view[None])
            says_stop = int(logits.argmax()) == STOP_CLASS_INDEX
            if says_stop:
                rows["unprotected"].false_confirms += 1

            with np.errstate(over="ignore", invalid="ignore"):
                guarded, _ = guard.forward(cnn_view[None])
            if int(guarded.argmax()) == STOP_CLASS_INDEX:
                rows["range-guard"].false_confirms += 1

            feasible = bool(cage.check(logits)[0])
            if says_stop and feasible:
                rows["output-cage"].false_confirms += 1
            elif says_stop:
                rows["output-cage"].rejected += 1

            if says_stop:
                verdict = qualifier.check(qualifier_view)
                if verdict.matches and verdict.reliable:
                    rows["hybrid-qualifier"].false_confirms += 1
                else:
                    rows["hybrid-qualifier"].rejected += 1

            conv1.weight.value = pristine.copy()
    finally:
        conv1.weight.value = pristine
    result = BaselineComparisonResult(
        rows=list(rows.values()), n_flips=n_flips
    )
    return result

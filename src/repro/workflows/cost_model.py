"""Experiment E8: the hybrid's compute saving vs full duplication.

Paper Section V: "The advantage of our proposal is that we can reduce
the necessary reliable execution to limits that a dependable model
determines rather than just reliably executing an entire CNN or
maintaining two parallel yet independent execution paths.  We conserve
both footprint and computational power."

The workflow counts scalar multiply-accumulates per inference for:

* the unprotected network,
* whole-network duplication (DMR) and triplication (TMR),
* the hybrid (native net + redundant partition + qualifier),

and sweeps the partition size (how many conv1 filters are dependable)
to expose the cost curve.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.guarantee import CostModel, ReliabilityGuarantee
from repro.core.partition import HybridPartition
from repro.nn.network import Sequential


@dataclass
class CostComparison:
    """Operation counts for one model under each protection scheme."""

    native_ops: int
    duplicated_ops: int
    triplicated_ops: int
    hybrid_ops: int
    hybrid_savings_vs_dmr: float
    reliable_fraction: float
    partition_sweep: list[tuple[int, int, float]] = field(
        default_factory=list
    )  # (n_filters, hybrid_ops, savings)
    unprotected_sdc: float = 0.0
    protected_sdc: float = 0.0

    def to_text(self) -> str:
        lines = [
            f"{'native (no protection)':<28} {self.native_ops:>14,}",
            f"{'full duplication (DMR)':<28} {self.duplicated_ops:>14,}",
            f"{'full triplication (TMR)':<28} {self.triplicated_ops:>14,}",
            f"{'hybrid (partition + qual.)':<28} {self.hybrid_ops:>14,}",
            f"hybrid saves {100 * self.hybrid_savings_vs_dmr:.1f}% of the "
            "duplicated cost",
            f"reliable fraction of network ops: "
            f"{100 * self.reliable_fraction:.2f}%",
            f"SDC per inference: unprotected {self.unprotected_sdc:.3e}, "
            f"dependable path {self.protected_sdc:.3e}",
        ]
        if self.partition_sweep:
            lines.append("partition sweep (filters -> hybrid ops, savings):")
            for n_filters, ops, savings in self.partition_sweep:
                lines.append(
                    f"  {n_filters:>3} filters: {ops:>14,}  "
                    f"({100 * savings:5.1f}% saved)"
                )
        return "\n".join(lines)


def run_cost_comparison(
    model: Sequential,
    input_shape: tuple[int, int, int],
    partition: HybridPartition | None = None,
    fault_probability: float = 1e-7,
    sweep_filters: bool = True,
) -> CostComparison:
    """Count protection costs for ``model`` (see module docstring)."""
    partition = partition or HybridPartition()
    cost = CostModel(model, input_shape, partition)
    native = cost.native_ops()
    hybrid = cost.hybrid_ops()
    guarantee = ReliabilityGuarantee(
        model, input_shape, partition,
        fault_probability=fault_probability,
    )

    sweep: list[tuple[int, int, float]] = []
    if sweep_filters:
        layer_name = partition.bifurcation_layer
        conv = model.layer(layer_name)
        for n_filters in _sweep_sizes(conv.out_channels):
            swept = HybridPartition(
                reliable_filters={layer_name: tuple(range(n_filters))},
                bifurcation_layer=layer_name,
                redundancy=partition.redundancy,
            )
            swept_cost = CostModel(model, input_shape, swept)
            sweep.append((
                n_filters,
                swept_cost.hybrid_ops(),
                swept_cost.savings_vs_duplication(),
            ))

    reliable_ops = partition.reliable_operation_count(model, input_shape)
    return CostComparison(
        native_ops=native,
        duplicated_ops=2 * native,
        triplicated_ops=3 * native,
        hybrid_ops=hybrid,
        hybrid_savings_vs_dmr=cost.savings_vs_duplication(),
        reliable_fraction=reliable_ops / native,
        partition_sweep=sweep,
        unprotected_sdc=guarantee.unprotected_sdc(),
        protected_sdc=guarantee.protected_path_sdc(),
    )


def _sweep_sizes(out_channels: int) -> list[int]:
    sizes = [1, 2, 4, 8, 16, 32, 64, 96]
    picked = [s for s in sizes if s <= out_channels]
    if out_channels not in picked:
        picked.append(out_channels)
    return picked

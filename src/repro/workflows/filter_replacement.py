"""Experiments E3/E4: Figure 4 and the confusion-matrix comparison.

Paper Section III.B: on a trained AlexNet,

* replacing *the first* learnt conv1 filter with a Sobel stack leaves
  the confusion matrix and accuracy essentially unchanged (E4);
* "Replacing all the 96 filters one at a time with the Sobel filters
  results in the plot of class confidence values shown ... in
  Figure 4.  The red dotted line in the plot indicates the accuracy of
  the original model.  It is clearly visible that the accuracy varies
  substantially depending on which filter has been replaced." (E3)

The workflow trains a sign classifier, then for every first-layer
filter index: saves the filter, writes the Sobel stack, measures the
stop-class confidence (and accuracy), restores the filter.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.confusion import ConfusionMatrix, confusion_matrix
from repro.analysis.metrics import (
    accuracy as model_accuracy,
    mean_class_confidence,
    predictions,
)
from repro.data.signs import SIGN_CLASSES, STOP_CLASS_INDEX, class_names
from repro.vision.filters import sobel_filter_stack
from repro.workflows.shape_series import ascii_plot
from repro.workflows.training import TrainedSignModel, conv1_of, train_sign_model


@dataclass
class Figure4Result:
    """Per-filter replacement measurements (Figure 4's data)."""

    confidences: np.ndarray      # stop-class confidence per replaced filter
    accuracies: np.ndarray       # overall accuracy per replaced filter
    original_confidence: float
    original_accuracy: float     # the red dotted reference line
    n_filters: int

    @property
    def confidence_spread(self) -> float:
        """Max - min confidence across replacements ("varies
        substantially depending on which filter has been replaced")."""
        return float(self.confidences.max() - self.confidences.min())

    def most_sensitive_filter(self) -> int:
        """Filter whose replacement hurts stop confidence most."""
        return int(np.argmin(self.confidences))

    def to_text(self) -> str:
        lines = [
            "stop-class confidence after replacing each conv1 filter "
            "with the Sobel stack",
            f"original accuracy (reference line): "
            f"{self.original_accuracy:.3f}",
            ascii_plot(self.confidences, height=10,
                       width=max(16, 2 * self.n_filters)),
            f"confidence range: [{self.confidences.min():.3f}, "
            f"{self.confidences.max():.3f}] "
            f"(original {self.original_confidence:.3f})",
        ]
        return "\n".join(lines)


def run_figure4(
    trained: TrainedSignModel | None = None,
    conv1_filters: int = 8,
    image_size: int = 32,
    epochs: int = 8,
    seed: int = 0,
) -> Figure4Result:
    """Replace each first-layer filter in turn; measure stop confidence.

    Paper scale is 96 filters on AlexNet; the default here sweeps the
    8 filters of the small CNN (pass a ``trained`` scaled AlexNet for
    a bigger sweep -- the code path is identical).
    """
    if trained is None:
        trained = train_sign_model(
            arch="small",
            image_size=image_size,
            conv1_filters=conv1_filters,
            epochs=epochs,
            seed=seed,
        )
    model = trained.model
    conv1 = conv1_of(model)
    sobel = sobel_filter_stack(conv1.kernel_size, conv1.in_channels)

    original_confidence = mean_class_confidence(
        model, trained.test_x, trained.test_y, STOP_CLASS_INDEX
    )
    original_accuracy = trained.test_accuracy

    confidences = np.empty(conv1.out_channels)
    accuracies = np.empty(conv1.out_channels)
    for index in range(conv1.out_channels):
        saved = conv1.get_filter(index)
        conv1.set_filter(index, sobel)
        confidences[index] = mean_class_confidence(
            model, trained.test_x, trained.test_y, STOP_CLASS_INDEX
        )
        accuracies[index] = model_accuracy(
            model, trained.test_x, trained.test_y
        )
        conv1.set_filter(index, saved)

    return Figure4Result(
        confidences=confidences,
        accuracies=accuracies,
        original_confidence=original_confidence,
        original_accuracy=original_accuracy,
        n_filters=conv1.out_channels,
    )


@dataclass
class ConfusionComparison:
    """E4: confusion matrices before/after replacing one filter."""

    original: ConfusionMatrix
    replaced: ConfusionMatrix
    original_accuracy: float
    replaced_accuracy: float
    replaced_filter: int

    @property
    def accuracy_drop(self) -> float:
        return self.original_accuracy - self.replaced_accuracy

    def to_text(self) -> str:
        return "\n".join([
            f"filter {self.replaced_filter} replaced with Sobel stack",
            f"accuracy: {self.original_accuracy:.3f} -> "
            f"{self.replaced_accuracy:.3f} "
            f"(drop {self.accuracy_drop:+.3f})",
            f"max confusion-cell difference: "
            f"{self.original.max_abs_difference(self.replaced)}",
            "original confusion matrix:",
            self.original.to_text(),
            "replaced confusion matrix:",
            self.replaced.to_text(),
        ])


def run_confusion_comparison(
    trained: TrainedSignModel | None = None,
    replaced_filter: int = 0,
    seed: int = 0,
) -> ConfusionComparison:
    """E4: replace one filter, compare confusion matrices.

    The paper replaces "the first of the filters with a Sobel-x,
    Sobel-y, Sobel-x filter ... and note[s] no substantial difference
    in classification accuracy."
    """
    if trained is None:
        trained = train_sign_model(seed=seed)
    model = trained.model
    conv1 = conv1_of(model)
    names = class_names()
    n = len(SIGN_CLASSES)

    pred_before = predictions(model, trained.test_x)
    original = confusion_matrix(trained.test_y, pred_before, n, names)
    original_accuracy = original.accuracy()

    saved = conv1.get_filter(replaced_filter)
    conv1.set_filter(
        replaced_filter,
        sobel_filter_stack(conv1.kernel_size, conv1.in_channels),
    )
    pred_after = predictions(model, trained.test_x)
    replaced = confusion_matrix(trained.test_y, pred_after, n, names)
    replaced_accuracy = replaced.accuracy()
    conv1.set_filter(replaced_filter, saved)

    return ConfusionComparison(
        original=original,
        replaced=replaced,
        original_accuracy=original_accuracy,
        replaced_accuracy=replaced_accuracy,
        replaced_filter=replaced_filter,
    )

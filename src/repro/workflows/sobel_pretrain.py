"""Experiment E5: Sobel pre-initialisation with freeze-during-training.

Paper Section III.B: "We then begin pre-initializing one of the
three-dimensional AlexNet filters to Sobel filters and train the
network keeping this initialisation constant.  In theory the training
tool ... offers the ability to freeze a filter during training.  In
practice, after every epoch or batch, the filter values are minimally
changed ... The accuracy of the model is not affected whether the
kernels are replaced after training is completed or set before
training has begun and re-set after every epoch or batch."

Three arms reproduce that paragraph:

* **baseline** -- unconstrained training;
* **pinned** -- filter 0 pre-initialised to the Sobel stack and re-set
  after every batch (the paper's working method);
* **frozen-only** -- filter 0 initialised to Sobel and excluded from
  optimiser updates *without* re-setting, measuring the drift the
  paper observed ("the (learnt) filter undergoes subtle changes").

In our framework the optimiser honours freezing exactly, so the
drift channel is different from TensorFlow's: the LRN/pooling-driven
re-balancing the paper saw appears here when the filter is *not*
excluded from updates.  The drift arm therefore trains the filter
normally from the Sobel initialisation and reports how far it moves
-- the quantity the paper's re-set mechanism exists to cancel.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.signs import STOP_CLASS_INDEX
from repro.analysis.metrics import mean_class_confidence
from repro.nn import FilterPin
from repro.vision.filters import sobel_filter_stack
from repro.workflows.training import TrainedSignModel, conv1_of, train_sign_model


@dataclass
class SobelPretrainResult:
    """Accuracies and drift for the three training arms."""

    baseline_accuracy: float
    pinned_accuracy: float
    drift_accuracy: float
    drift_l2: float                 # final L2 distance from the Sobel stack
    pin_drift_history: list[float]  # drift absorbed by each re-set
    stop_confidence_pinned: float

    @property
    def accuracy_cost_of_pinning(self) -> float:
        """Accuracy lost by pinning (paper: "clearly exhibits no
        negative effects", i.e. ~0)."""
        return self.baseline_accuracy - self.pinned_accuracy

    def to_text(self) -> str:
        mean_drift = (
            float(np.mean(self.pin_drift_history))
            if self.pin_drift_history else 0.0
        )
        return "\n".join([
            f"baseline accuracy:            {self.baseline_accuracy:.3f}",
            f"pinned-Sobel accuracy:        {self.pinned_accuracy:.3f} "
            f"(cost {self.accuracy_cost_of_pinning:+.3f})",
            f"unpinned-drift accuracy:      {self.drift_accuracy:.3f}",
            f"filter drift without re-set:  {self.drift_l2:.4f} (L2)",
            f"mean drift absorbed per re-set: {mean_drift:.6f}",
            f"stop confidence (pinned):     "
            f"{self.stop_confidence_pinned:.3f}",
        ])


def run_sobel_pretrain(
    image_size: int = 32,
    n_per_class: int = 40,
    epochs: int = 8,
    conv1_filters: int = 8,
    seed: int = 0,
) -> SobelPretrainResult:
    """Run the three arms on identical data and seeds."""
    # Arm 1: unconstrained baseline.
    baseline = train_sign_model(
        image_size=image_size, n_per_class=n_per_class, epochs=epochs,
        conv1_filters=conv1_filters, seed=seed,
    )

    # Arm 2: Sobel-pinned with per-batch re-set.
    pinned = _train_pinned(
        image_size, n_per_class, epochs, conv1_filters, seed
    )
    pin = pinned_pin_holder[0]

    # Arm 3: Sobel-initialised, trained without re-set -> drift.
    drift = _train_drifting(
        image_size, n_per_class, epochs, conv1_filters, seed
    )
    conv1 = conv1_of(drift.model)
    sobel = sobel_filter_stack(conv1.kernel_size, conv1.in_channels)
    drift_l2 = float(np.linalg.norm(conv1.get_filter(0) - sobel))

    stop_confidence = mean_class_confidence(
        pinned.model, pinned.test_x, pinned.test_y, STOP_CLASS_INDEX
    )
    return SobelPretrainResult(
        baseline_accuracy=baseline.test_accuracy,
        pinned_accuracy=pinned.test_accuracy,
        drift_accuracy=drift.test_accuracy,
        drift_l2=drift_l2,
        pin_drift_history=list(pin.drift_history),
        stop_confidence_pinned=stop_confidence,
    )


# The pin object is created inside the training helper (it needs the
# model's conv1); stashing it lets the caller read its drift history.
pinned_pin_holder: list[FilterPin] = []


def _train_pinned(
    image_size: int, n_per_class: int, epochs: int,
    conv1_filters: int, seed: int,
) -> TrainedSignModel:
    from repro.data.signs import SIGN_CLASSES
    from repro.models import small_cnn

    rng = np.random.default_rng(seed)
    model = small_cnn(image_size, len(SIGN_CLASSES),
                      conv1_filters=conv1_filters, rng=rng)
    conv1 = conv1_of(model)
    pin = FilterPin(
        conv1, 0,
        sobel_filter_stack(conv1.kernel_size, conv1.in_channels),
        reset_every="batch",
    )
    pinned_pin_holder.clear()
    pinned_pin_holder.append(pin)
    return train_sign_model(
        image_size=image_size, n_per_class=n_per_class, epochs=epochs,
        seed=seed, pins=[pin], model=model,
    )


def _train_drifting(
    image_size: int, n_per_class: int, epochs: int,
    conv1_filters: int, seed: int,
) -> TrainedSignModel:
    from repro.data.signs import SIGN_CLASSES
    from repro.models import small_cnn

    rng = np.random.default_rng(seed)
    model = small_cnn(image_size, len(SIGN_CLASSES),
                      conv1_filters=conv1_filters, rng=rng)
    conv1 = conv1_of(model)
    conv1.set_filter(
        0, sobel_filter_stack(conv1.kernel_size, conv1.in_channels)
    )
    return train_sign_model(
        image_size=image_size, n_per_class=n_per_class, epochs=epochs,
        seed=seed, model=model,
    )

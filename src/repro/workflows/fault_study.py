"""Experiments E7/E9: leaky-bucket dynamics and injection coverage.

E7 operationalises the paper's Algorithm 3 claim: "a stream of
correctly executed operations will cancel one, but not two successive
errors."  The workflow drives the bucket with crafted error/success
streams and with seeded random streams, mapping the survive/abort
boundary as a function of the bucket factor and ceiling.

E9 measures what the paper's "reliability guarantee" buys under
injection: detection coverage and silent-data-corruption (SDC) rates
for plain / DMR / TMR kernels across fault probabilities and fault
types, with Wilson confidence bounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.reliability import empirical_coverage_interval
from repro.campaigns import CampaignSpec, FaultSpec, run_campaign
from repro.campaigns.report import CellReport
from repro.faults.campaign import Outcome
from repro.reliable.leaky_bucket import LeakyBucket


# ---------------------------------------------------------------------------
# E7: bucket dynamics
# ---------------------------------------------------------------------------

@dataclass
class BucketDynamicsResult:
    """Outcomes of crafted error patterns against bucket geometries."""

    #: (factor, ceiling, pattern, overflowed)
    rows: list[tuple[int, int, str, bool]] = field(default_factory=list)

    def to_text(self) -> str:
        lines = ["factor ceiling pattern           overflow"]
        for factor, ceiling, pattern, overflowed in self.rows:
            lines.append(
                f"{factor:>6} {ceiling:>7} {pattern:<17} "
                f"{'ABORT' if overflowed else 'survive'}"
            )
        return "\n".join(lines)


def drive_bucket(bucket: LeakyBucket, pattern: str) -> bool:
    """Feed a pattern of ``E`` (error) / ``s`` (success) to a bucket.

    Returns True when the bucket overflowed at any point.
    """
    overflowed = False
    for ch in pattern:
        if ch == "E":
            overflowed = bucket.record_error() or overflowed
        elif ch == "s":
            bucket.record_success()
        else:
            raise ValueError(f"pattern may contain only E/s, got {ch!r}")
    return overflowed


#: The patterns that pin the paper's sentence: one error amid correct
#: operations survives; two successive errors abort.
CANONICAL_PATTERNS = [
    "ssssssEssssss",     # single error -> survive
    "ssssssEEssssss",    # two successive errors -> abort
    "ssEssssssEss",      # two well-separated errors -> survive
    "ssEsEss",           # two errors, one success apart
    "EssssssssssssE",    # errors at stream edges
]


def run_bucket_dynamics(
    factors: tuple[int, ...] = (1, 2, 3),
    patterns: tuple[str, ...] = tuple(CANONICAL_PATTERNS),
) -> BucketDynamicsResult:
    """Map bucket behaviour across factors and canonical patterns."""
    result = BucketDynamicsResult()
    for factor in factors:
        bucket_probe = LeakyBucket(factor=factor)
        ceiling = bucket_probe.ceiling
        for pattern in patterns:
            bucket = LeakyBucket(factor=factor)
            overflowed = drive_bucket(bucket, pattern)
            result.rows.append((factor, ceiling, pattern, overflowed))
    return result


# ---------------------------------------------------------------------------
# E9: coverage campaigns
# ---------------------------------------------------------------------------

@dataclass
class CoverageRow:
    """One campaign's headline numbers."""

    fault_kind: str
    fault_probability: float
    operator_kind: str
    coverage: float
    sdc_rate: float
    sdc_upper_bound: float  # 95% Wilson upper bound
    aborts: int
    runs: int


@dataclass
class CoverageResult:
    rows: list[CoverageRow] = field(default_factory=list)

    def to_text(self) -> str:
        header = (
            f"{'fault':<13}{'p':>9} {'op':<6} {'coverage':>9} "
            f"{'sdc':>7} {'sdc<=95%':>9} {'aborts':>7}"
        )
        lines = [header]
        for r in self.rows:
            lines.append(
                f"{r.fault_kind:<13}{r.fault_probability:>9.1e} "
                f"{r.operator_kind:<6}{r.coverage:>9.3f} "
                f"{r.sdc_rate:>7.3f} {r.sdc_upper_bound:>9.3f} "
                f"{r.aborts:>7}"
            )
        return "\n".join(lines)


def build_coverage_spec(
    fault_kind: str,
    probabilities: tuple[float, ...],
    operator_kinds: tuple[str, ...],
    runs: int,
    vector_length: int,
    seed: int,
) -> CampaignSpec:
    """The campaign spec for one fault kind's coverage sweep.

    The probability axis maps onto the fault parameter the kind
    actually exposes: ``probability`` for transients, ``burst_start``
    (with the canonical ``burst_end=0.5``) for intermittents; the
    permanent stuck-at model fires unconditionally, so its sweep has
    no probability axis at all.
    """
    grid: dict = {"operator_kind": operator_kinds}
    if fault_kind == "transient":
        fault = FaultSpec(kind="transient")
        grid["fault.probability"] = probabilities
    elif fault_kind == "intermittent":
        fault = FaultSpec(
            kind="intermittent", params={"burst_end": 0.5}
        )
        grid["fault.burst_start"] = probabilities
    elif fault_kind == "permanent":
        fault = FaultSpec(kind="permanent", params={"bit": 28})
    else:
        raise ValueError(f"unknown fault kind {fault_kind!r}")
    return CampaignSpec(
        name=f"coverage-{fault_kind}",
        target="reliable_conv",
        fault=fault,
        trials=runs,
        seed=seed,
        grid=grid,
        target_params={"vector_length": vector_length},
    )


def run_coverage_study(
    fault_kinds: tuple[str, ...] = ("transient", "intermittent", "permanent"),
    probabilities: tuple[float, ...] = (1e-3, 1e-2),
    operator_kinds: tuple[str, ...] = ("plain", "dmr", "tmr"),
    runs: int = 150,
    vector_length: int = 32,
    seed: int = 0,
    workers: int | None = None,
) -> CoverageResult:
    """Sweep fault model x probability x protection level.

    One engine campaign per fault kind (probability x operator grid);
    pass ``workers`` to shard the trials across processes -- rows are
    bitwise identical either way.
    """
    result = CoverageResult()
    for fault_kind in fault_kinds:
        spec = build_coverage_spec(
            fault_kind, probabilities, operator_kinds, runs,
            vector_length, seed,
        )
        report = run_campaign(spec, workers=workers)
        # Grid axes enumerate probability-major ("fault.*" sorts
        # before "operator_kind"), matching the historical row order.
        for index in sorted(report.cells):
            cell = report.cells[index]
            probability = 1.0
            for axis, value in cell.overrides.items():
                if axis.startswith("fault."):
                    probability = value
            result.rows.append(
                _row_from_cell(
                    fault_kind,
                    probability,
                    cell.overrides["operator_kind"],
                    cell,
                )
            )
    return result


def _row_from_cell(
    fault_kind: str,
    probability: float,
    operator_kind: str,
    cell: CellReport,
) -> CoverageRow:
    sdc = cell.counts[Outcome.SILENT_CORRUPTION.value]
    if cell.faulted > 0:
        _, upper = empirical_coverage_interval(sdc, cell.faulted)
    else:
        upper = 0.0
    return CoverageRow(
        fault_kind=fault_kind,
        fault_probability=probability,
        operator_kind=operator_kind,
        coverage=cell.detection_coverage,
        sdc_rate=cell.silent_corruption_rate,
        sdc_upper_bound=upper,
        aborts=cell.counts[Outcome.DETECTED_ABORTED.value],
        runs=cell.trials,
    )

"""Experiments E7/E9: leaky-bucket dynamics and injection coverage.

E7 operationalises the paper's Algorithm 3 claim: "a stream of
correctly executed operations will cancel one, but not two successive
errors."  The workflow drives the bucket with crafted error/success
streams and with seeded random streams, mapping the survive/abort
boundary as a function of the bucket factor and ceiling.

E9 measures what the paper's "reliability guarantee" buys under
injection: detection coverage and silent-data-corruption (SDC) rates
for plain / DMR / TMR kernels across fault probabilities and fault
types, with Wilson confidence bounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.reliability import empirical_coverage_interval
from repro.faults.campaign import CampaignResult, Outcome, run_operator_campaign
from repro.faults.models import IntermittentFault, PermanentFault, TransientFault
from repro.reliable.leaky_bucket import LeakyBucket


# ---------------------------------------------------------------------------
# E7: bucket dynamics
# ---------------------------------------------------------------------------

@dataclass
class BucketDynamicsResult:
    """Outcomes of crafted error patterns against bucket geometries."""

    #: (factor, ceiling, pattern, overflowed)
    rows: list[tuple[int, int, str, bool]] = field(default_factory=list)

    def to_text(self) -> str:
        lines = ["factor ceiling pattern           overflow"]
        for factor, ceiling, pattern, overflowed in self.rows:
            lines.append(
                f"{factor:>6} {ceiling:>7} {pattern:<17} "
                f"{'ABORT' if overflowed else 'survive'}"
            )
        return "\n".join(lines)


def drive_bucket(bucket: LeakyBucket, pattern: str) -> bool:
    """Feed a pattern of ``E`` (error) / ``s`` (success) to a bucket.

    Returns True when the bucket overflowed at any point.
    """
    overflowed = False
    for ch in pattern:
        if ch == "E":
            overflowed = bucket.record_error() or overflowed
        elif ch == "s":
            bucket.record_success()
        else:
            raise ValueError(f"pattern may contain only E/s, got {ch!r}")
    return overflowed


#: The patterns that pin the paper's sentence: one error amid correct
#: operations survives; two successive errors abort.
CANONICAL_PATTERNS = [
    "ssssssEssssss",     # single error -> survive
    "ssssssEEssssss",    # two successive errors -> abort
    "ssEssssssEss",      # two well-separated errors -> survive
    "ssEsEss",           # two errors, one success apart
    "EssssssssssssE",    # errors at stream edges
]


def run_bucket_dynamics(
    factors: tuple[int, ...] = (1, 2, 3),
    patterns: tuple[str, ...] = tuple(CANONICAL_PATTERNS),
) -> BucketDynamicsResult:
    """Map bucket behaviour across factors and canonical patterns."""
    result = BucketDynamicsResult()
    for factor in factors:
        bucket_probe = LeakyBucket(factor=factor)
        ceiling = bucket_probe.ceiling
        for pattern in patterns:
            bucket = LeakyBucket(factor=factor)
            overflowed = drive_bucket(bucket, pattern)
            result.rows.append((factor, ceiling, pattern, overflowed))
    return result


# ---------------------------------------------------------------------------
# E9: coverage campaigns
# ---------------------------------------------------------------------------

@dataclass
class CoverageRow:
    """One campaign's headline numbers."""

    fault_kind: str
    fault_probability: float
    operator_kind: str
    coverage: float
    sdc_rate: float
    sdc_upper_bound: float  # 95% Wilson upper bound
    aborts: int
    runs: int


@dataclass
class CoverageResult:
    rows: list[CoverageRow] = field(default_factory=list)

    def to_text(self) -> str:
        header = (
            f"{'fault':<13}{'p':>9} {'op':<6} {'coverage':>9} "
            f"{'sdc':>7} {'sdc<=95%':>9} {'aborts':>7}"
        )
        lines = [header]
        for r in self.rows:
            lines.append(
                f"{r.fault_kind:<13}{r.fault_probability:>9.1e} "
                f"{r.operator_kind:<6}{r.coverage:>9.3f} "
                f"{r.sdc_rate:>7.3f} {r.sdc_upper_bound:>9.3f} "
                f"{r.aborts:>7}"
            )
        return "\n".join(lines)


def _fault_factories(kind: str, probability: float):
    if kind == "transient":
        return lambda rng: TransientFault(probability, rng)
    if kind == "intermittent":
        return lambda rng: IntermittentFault(
            burst_start=probability, burst_end=0.5, rng=rng
        )
    if kind == "permanent":
        return lambda rng: PermanentFault(bit=28, rng=rng)
    raise ValueError(f"unknown fault kind {kind!r}")


def run_coverage_study(
    fault_kinds: tuple[str, ...] = ("transient", "intermittent", "permanent"),
    probabilities: tuple[float, ...] = (1e-3, 1e-2),
    operator_kinds: tuple[str, ...] = ("plain", "dmr", "tmr"),
    runs: int = 150,
    vector_length: int = 32,
    seed: int = 0,
) -> CoverageResult:
    """Sweep fault model x probability x protection level."""
    result = CoverageResult()
    for fault_kind in fault_kinds:
        probs = (
            probabilities if fault_kind != "permanent" else (1.0,)
        )
        for probability in probs:
            factory = _fault_factories(fault_kind, probability)
            for operator_kind in operator_kinds:
                campaign = run_operator_campaign(
                    factory,
                    operator_kind=operator_kind,
                    runs=runs,
                    vector_length=vector_length,
                    seed=seed,
                )
                result.rows.append(
                    _row_from_campaign(
                        fault_kind, probability, operator_kind, campaign
                    )
                )
    return result


def _row_from_campaign(
    fault_kind: str,
    probability: float,
    operator_kind: str,
    campaign: CampaignResult,
) -> CoverageRow:
    faulted = campaign.runs - campaign.counts[Outcome.CLEAN]
    sdc = campaign.counts[Outcome.SILENT_CORRUPTION]
    if faulted > 0:
        _, upper = empirical_coverage_interval(sdc, faulted)
    else:
        upper = 0.0
    return CoverageRow(
        fault_kind=fault_kind,
        fault_probability=probability,
        operator_kind=operator_kind,
        coverage=campaign.detection_coverage,
        sdc_rate=campaign.silent_corruption_rate,
        sdc_upper_bound=upper,
        aborts=campaign.counts[Outcome.DETECTED_ABORTED],
        runs=campaign.runs,
    )

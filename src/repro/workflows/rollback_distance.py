"""Ablation: rollback distance (checkpoint granularity).

Paper Section II.E: "Once there are hard or soft deadlines to be met,
the rollback-distance becomes a significant consideration ... in a
convolution layer ... the rollback-distance can be reduced to one
operation."

This workflow quantifies the trade-off the paper argues
qualitatively.  Under DMR with per-segment comparison, a segment of
``s`` operations costs one comparison per attempt but re-executes all
``s`` operations on any mismatch; with per-operation fault
probability ``p`` the expected cost is

    E[cost](s) = (2 s + c) / (1 - q)^2,   q = 1 - (1 - p)^s

where ``c`` is the checkpoint/comparison overhead in operation units
and ``(1-q)^2`` the probability both copies of the segment are clean.
Small segments waste little work per rollback but pay ``c`` often;
large segments amortise ``c`` but re-execute massively under faults
-- so the optimal rollback distance falls as the fault rate rises,
which is why the paper picks s = 1 for its high-SEU environment.

The simulation arm reproduces the analytic curve with the actual
:class:`~repro.reliable.checkpoint.CheckpointedSegment` machinery and
injected faults.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def expected_cost(
    segment_size: int, fault_probability: float, compare_cost: float
) -> float:
    """Expected DMR executions (in op units) per completed segment,
    normalised per operation."""
    if segment_size < 1:
        raise ValueError("segment_size must be >= 1")
    if not 0.0 <= fault_probability < 1.0:
        raise ValueError("fault_probability must be in [0, 1)")
    clean_copy = (1.0 - fault_probability) ** segment_size
    success = clean_copy * clean_copy
    if success == 0.0:
        return float("inf")
    per_segment = (2.0 * segment_size + compare_cost) / success
    return per_segment / segment_size


def optimal_segment_size(
    fault_probability: float,
    compare_cost: float,
    candidates: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256,
                                   512, 1024),
) -> int:
    """Cheapest rollback distance among candidate sizes."""
    return min(
        candidates,
        key=lambda s: expected_cost(s, fault_probability, compare_cost),
    )


@dataclass
class RollbackDistanceResult:
    """Analytic sweep + simulation check."""

    #: (fault_probability, segment_size) -> expected cost per op.
    analytic: dict[tuple[float, int], float] = field(default_factory=dict)
    #: fault_probability -> optimal segment size.
    optima: dict[float, int] = field(default_factory=dict)
    #: (fault_probability, segment_size) -> simulated cost per op.
    simulated: dict[tuple[float, int], float] = field(
        default_factory=dict
    )
    compare_cost: float = 8.0

    def to_text(self) -> str:
        probs = sorted({p for p, _ in self.analytic})
        sizes = sorted({s for _, s in self.analytic})
        header = "p \\ s     " + " ".join(f"{s:>8}" for s in sizes)
        lines = [
            f"expected DMR cost per operation "
            f"(compare cost {self.compare_cost} ops):",
            header,
        ]
        for p in probs:
            cells = []
            for s in sizes:
                value = self.analytic[(p, s)]
                mark = "*" if self.optima.get(p) == s else " "
                cells.append(f"{value:>7.2f}{mark}")
            lines.append(f"{p:<9.0e} " + " ".join(cells))
        lines.append("(* = optimal rollback distance at that fault rate)")
        if self.simulated:
            lines.append("simulated (CheckpointedSegment + injection):")
            for (p, s), cost in sorted(self.simulated.items()):
                expected = self.analytic.get((p, s))
                lines.append(
                    f"  p={p:.0e} s={s:>4}: simulated {cost:6.2f} "
                    f"analytic {expected:6.2f}"
                )
        return "\n".join(lines)


def build_segment_cost_spec(
    segment_size: int,
    fault_probability: float,
    compare_cost: float,
    trials: int,
    seed: int,
) -> "CampaignSpec":
    """Campaign spec for one (fault rate, segment size) corner."""
    from repro.campaigns import CampaignSpec, FaultSpec

    return CampaignSpec(
        name=f"segment-cost-s{segment_size}",
        target="checkpoint_segment",
        fault=FaultSpec(
            kind="transient", params={"probability": fault_probability}
        ),
        trials=trials,
        seed=seed,
        target_params={
            "segment_size": segment_size,
            "compare_cost": compare_cost,
        },
    )


def _simulate_segment_cost(
    segment_size: int,
    fault_probability: float,
    compare_cost: float,
    trials: int,
    seed: int,
) -> float:
    """Measure executions/op using the real checkpoint machinery.

    Runs on the campaign engine's ``"checkpoint_segment"`` target;
    the cost ratio comes from the cell's aggregated operation
    metrics, so the number is bitwise identical serial or sharded.
    """
    from repro.campaigns import run_campaign

    spec = build_segment_cost_spec(
        segment_size, fault_probability, compare_cost, trials, seed
    )
    report = run_campaign(spec)
    sums = report.cell(0).metric_sums
    return sums["total_ops"] / sums["completed_ops"]


def run_rollback_distance(
    probabilities: tuple[float, ...] = (1e-4, 1e-3, 1e-2, 5e-2),
    sizes: tuple[int, ...] = (1, 4, 16, 64, 256),
    compare_cost: float = 8.0,
    simulate: bool = True,
    trials: int = 60,
    seed: int = 0,
) -> RollbackDistanceResult:
    """Sweep fault rate x segment size; optionally cross-check by
    simulation at the sweep's corner points."""
    result = RollbackDistanceResult(compare_cost=compare_cost)
    for p in probabilities:
        for s in sizes:
            result.analytic[(p, s)] = expected_cost(s, p, compare_cost)
        result.optima[p] = optimal_segment_size(
            p, compare_cost, candidates=sizes
        )
    if simulate:
        # Corners where the analytic expectation is finite and small
        # enough for an honest comparison; the high-p/large-s corner
        # is analytically astronomical (every attempt corrupts) and a
        # bounded simulation would only measure its rollback cap.
        p_low, p_high = probabilities[0], probabilities[-1]
        corners = [
            (p_low, sizes[0]),
            (p_low, sizes[-1]),
            (p_high, sizes[0]),
            (p_high, result.optima[p_high]),
        ]
        for p, s in dict.fromkeys(corners):
            result.simulated[(p, s)] = _simulate_segment_cost(
                s, p, compare_cost, trials, seed
            )
    return result

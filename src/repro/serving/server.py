"""Concurrent micro-batching server around a hybrid pipeline.

The deployment gap this closes: the batched engines (vectorized
reliable conv, batched qualifier, batch-invariant CNN forward) make
``infer_batch`` several times cheaper per image than ``infer``, but
real traffic arrives one image per request.  :class:`PipelineServer`
accepts single-image submissions from any number of client threads and
transparently coalesces them into ``infer_batch`` calls -- flushing on
whichever comes first, ``max_batch`` requests or ``max_wait_ms``
elapsed since the oldest queued request.

The load-bearing guarantee is **parity, not just speed**: every
per-request result is bitwise identical to what a serial
``pipeline.infer()`` call would have produced, *regardless of how
requests interleave into micro-batches*.  This is exactly what the
batched engines' per-image bitwise stability buys (each stage's
arithmetic for image ``i`` is independent of which other images share
its batch); the serving tests and throughput benchmark assert it
rather than assume it.

Threading model: one batcher thread owns the pipeline and performs all
inference.  The pipeline is deliberately *not* shared between
concurrent ``infer_batch`` calls -- the model's batch-invariant mode is
toggled around each call and the qualifier's rollback machinery is
stateful, so a second in-flight call could observe half-configured
layers.  Micro-batching, not thread parallelism, is where the
throughput comes from.
"""

from __future__ import annotations

import queue
import threading
import time
from collections.abc import Callable

import numpy as np

from repro.api.config import ServingConfig
from repro.serving.cache import ResponseCache
from repro.serving.stats import ServerStats, StatsRecorder


class ServerError(RuntimeError):
    """Base class for serving-layer errors."""


class ServerClosed(ServerError):
    """Submission attempted on a server that is not accepting work."""


class ServerOverloaded(ServerError):
    """Backpressure refused a submission (bounded queue at capacity)."""


class BatcherCrash(BaseException):
    """Kills the batcher thread from inside a flush -- the crash seam
    the chaos layer's BATCHER_CRASH fault injects (see
    :mod:`repro.chaos`).

    Deliberately derives from ``BaseException``: ``_flush`` absorbs
    ``Exception``-level pipeline failures into per-request errors, but
    a crash must escape that demux so it exercises the serve loop's
    death handler -- which fails every in-flight and queued request
    with full accounting, the behaviour a real batcher death (OOM,
    interpreter shutdown) gets.  Anything that raises this from a
    pipeline receives the same accounted-crash semantics.
    """


class PendingResult:
    """Future-like handle for one submitted request.

    The batcher completes it exactly once -- with a
    :class:`~repro.core.hybrid.HybridResult`, or with the exception the
    pipeline raised, or with :class:`ServerClosed` if the server was
    stopped without draining.
    """

    __slots__ = ("_event", "_result", "_error", "_submitted_at",
                 "_latency_s")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._result = None
        self._error: BaseException | None = None
        self._submitted_at = time.perf_counter()
        self._latency_s: float | None = None

    # -- batcher side ----------------------------------------------------
    def _complete(self, result) -> None:
        self._result = result
        self._latency_s = time.perf_counter() - self._submitted_at
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._latency_s = time.perf_counter() - self._submitted_at
        self._event.set()

    # -- client side -----------------------------------------------------
    def done(self) -> bool:
        """True once a result or an error is available."""
        return self._event.is_set()

    def result(self, timeout: float | None = None):
        """Block for the result; re-raises the pipeline's exception if
        the batch failed, raises ``TimeoutError`` on timeout."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"no result within {timeout} s (server busy or stopped?)"
            )
        if self._error is not None:
            raise self._error
        return self._result

    def exception(self, timeout: float | None = None) -> BaseException | None:
        """Block like :meth:`result` but return the error (or None)."""
        if not self._event.wait(timeout):
            raise TimeoutError(f"no result within {timeout} s")
        return self._error

    @property
    def latency_seconds(self) -> float | None:
        """Submit-to-completion latency; None while pending."""
        return self._latency_s


class _Request:
    __slots__ = ("image", "qualifier_view", "pending", "cache_key")

    def __init__(
        self,
        image: np.ndarray,
        qualifier_view: np.ndarray | None,
        pending: PendingResult,
    ) -> None:
        self.image = image
        self.qualifier_view = qualifier_view
        self.pending = pending
        #: Set only on a cache *leader*: the key whose single flight
        #: this request carries.  Every completion path (flush,
        #: failure demux, cancel, batcher crash) must close the flight
        #: -- publish on success, abort otherwise -- so joined
        #: followers never hang.
        self.cache_key: tuple[str, str] | None = None


class PipelineServer:
    """Micro-batching front-end for a :class:`~repro.api.pipeline.
    HybridPipeline`.

    Parameters
    ----------
    pipeline:
        The pipeline to serve.  Anything with the facade's
        ``infer_batch(images, qualifier_views=None)`` shape works; the
        batcher thread becomes its sole user while the server runs.
    config:
        Batching and backpressure knobs
        (:class:`~repro.api.config.ServingConfig`); defaults apply
        when omitted.
    on_degraded:
        Optional graceful-degradation hook: called from the batcher
        thread with each completed :class:`~repro.core.hybrid.
        HybridResult` whose decision is qualifier-flagged (rejected by
        the qualifier, shape without class, or qualifier unavailable
        -- see ``HybridResult.flagged``).  This is *routing*, not
        replacement: the submitting client still receives the result;
        the hook feeds whatever supervisory layer watches the fleet.
        Exceptions it raises are swallowed (counted as served).

    Use as a context manager for exception-safe draining::

        with PipelineServer(pipeline, ServingConfig(max_batch=32)) as srv:
            pending = [srv.submit(image) for image in images]
            results = [p.result() for p in pending]
    """

    #: Thread-safety contract, machine-checked by the LOCK-GUARD lint
    #: rule: these attributes are written only under ``_state_lock``.
    #: The deliberate lock-free *reads* (optimistic gates on the
    #: submit/batcher hot paths) each carry an allow pragma with the
    #: reasoning.  ``_inflight`` is not listed: it is owned by the
    #: batcher thread alone (its crash handler included).
    _guarded_by = {"_state_lock": ("_accepting", "_draining", "_thread")}

    #: Helpers extracted from locked regions.  Declaring the lock they
    #: need keeps them honest both ways: the lexical LOCK-GUARD rule
    #: checks their guarded-attribute accesses as if the lock were
    #: held, and the project pass (LOCK-CALL) verifies every call site
    #: actually holds it.
    _requires_lock = {
        "_launch_batcher": ("_state_lock",),
        "_close_intake": ("_state_lock",),
    }

    def __init__(
        self,
        pipeline,
        config: ServingConfig | None = None,
        on_degraded: Callable | None = None,
    ) -> None:
        self.pipeline = pipeline
        self.config = config or ServingConfig()
        self.on_degraded = on_degraded
        self._queue: queue.Queue[_Request | None] = queue.Queue(
            maxsize=self.config.queue_capacity
        )
        self._recorder = StatsRecorder(self.config.latency_window)
        #: Content-addressed response cache (None under cache="off").
        #: Safe because served results are bitwise-deterministic per
        #: (input digest, pipeline content hash) -- see
        #: repro.serving.cache.  Duck-typed pipelines without a
        #: PipelineConfig hash as "" (the cache is private to this
        #: server instance, so an empty hash cannot collide across
        #: differently-wired pipelines).
        self._cache: ResponseCache | None = None
        if self.config.cache == "lru":
            pipeline_config = getattr(pipeline, "config", None)
            content_hash = (
                pipeline_config.content_hash()
                if hasattr(pipeline_config, "content_hash")
                else ""
            )
            self._cache = ResponseCache(
                self.config.cache_max_entries, config_hash=content_hash
            )
        self._thread: threading.Thread | None = None
        self._accepting = False
        self._draining = True
        self._state_lock = threading.Lock()
        #: Requests popped from the queue but not yet demuxed; the
        #: batcher's crash handler fails these so no handle ever
        #: hangs on a dead thread.
        self._inflight: list[_Request] = []

    # -- lifecycle -------------------------------------------------------
    @property
    def running(self) -> bool:
        """True between a successful ``start()`` and ``stop()``."""
        # repro: allow[LOCK-GUARD] -- single racy snapshot read; any
        # answer is stale the moment it returns, lock or no lock, and
        # is_alive() tolerates a thread in any state.
        thread = self._thread
        return thread is not None and thread.is_alive()

    def start(self) -> PipelineServer:
        """Launch the batcher thread; idempotence is an error (a
        second ``start`` on a running server raises)."""
        with self._state_lock:
            if self.running:
                raise ServerError("server already running")
            self._launch_batcher()
        return self

    def _launch_batcher(self) -> None:
        """Arm the intake gates and start the batcher thread."""
        self._draining = True
        self._thread = threading.Thread(
            target=self._serve_loop,
            name="pipeline-server-batcher",
            daemon=True,
        )
        self._accepting = True
        self._recorder.mark_started()
        self._thread.start()

    def stop(self, drain: bool = True, timeout: float | None = None) -> None:
        """Stop accepting work and shut the batcher down.

        ``drain=True`` (default) serves every already-queued request
        before returning; ``drain=False`` fails queued requests with
        :class:`ServerClosed`.  Calling stop on a stopped server is a
        no-op.
        """
        with self._state_lock:
            thread = self._thread
            if thread is None:
                return
            self._close_intake(drain)
        thread.join(timeout)
        if thread.is_alive():
            raise ServerError(
                f"batcher did not stop within {timeout} s"
            )
        with self._state_lock:
            self._thread = None
        # Fail any stragglers that raced past the closed gate after
        # the batcher's final drain, so no PendingResult ever hangs.
        self._cancel_remaining()
        self._recorder.mark_stopped()

    def _close_intake(self, drain: bool) -> None:
        """Close the submission gate and nudge the batcher awake."""
        self._accepting = False
        self._draining = drain
        try:
            # Sentinel unblocks the batcher's blocking get.  A full
            # queue can refuse it; the batcher then notices
            # ``_accepting`` on its own (it re-checks around every
            # flush and idle poll), so stop still terminates.
            self._queue.put_nowait(None)
        except queue.Full:
            pass

    def __enter__(self) -> PipelineServer:
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop(drain=exc_type is None)

    # -- submission ------------------------------------------------------
    def submit(
        self,
        image: np.ndarray,
        qualifier_view: np.ndarray | None = None,
        use_cache: bool = True,
    ) -> PendingResult:
        """Enqueue one image; returns immediately with the pending
        handle (unless backpressure applies -- see below).

        ``qualifier_view`` optionally gives the dependable block a
        different rendering of the same scene, exactly as
        ``pipeline.infer(image, qualifier_view=...)`` would; requests
        with and without views may be freely mixed (the batcher groups
        compatible requests, see :meth:`_flush`).

        Response cache (``config.cache="lru"``): the request's inputs
        are digested (:func:`~repro.serving.cache.response_digest`)
        before any dtype cast, and the cache resolves the key -- a
        stored result completes the handle immediately (in the
        submitting thread, degradation routing included), a duplicate
        of an in-flight request coalesces onto that single flight, and
        only a genuinely new key enters the batch queue.
        ``use_cache=False`` opts this one submission out entirely: it
        is neither answered from, nor joined to, nor published into
        the cache.

        Backpressure (``config.overflow``): with ``"block"`` a full
        queue blocks the caller up to ``submit_timeout_s`` (forever
        when None) and then raises :class:`ServerOverloaded`; with
        ``"reject"`` a full queue raises immediately.  Either way the
        rejection is counted in :meth:`stats`.
        """
        # repro: allow[LOCK-GUARD] -- optimistic gate: a GIL-atomic
        # bool read; the post-enqueue re-check below (plus stop()'s
        # final _cancel_remaining) closes the race window, so taking
        # the lock here would buy nothing but submit-path contention.
        if not self._accepting:
            raise ServerClosed("server is not accepting submissions")
        raw_image = np.asarray(image)
        raw_view = (
            None if qualifier_view is None else np.asarray(qualifier_view)
        )
        request = _Request(
            np.asarray(raw_image, dtype=np.float32),
            None
            if raw_view is None
            else np.asarray(raw_view, dtype=np.float32),
            PendingResult(),
        )
        if self._cache is not None and use_cache:
            # Key over the *submitted* storage words (pre-cast): any
            # bit difference in what the caller handed us keys
            # distinctly, so the cache can only under-share.
            key = self._cache.key_for(raw_image, raw_view)
            outcome, cached = self._cache.lookup_or_join(
                key, request.pending
            )
            if outcome == "hit":
                self._recorder.record_submitted()
                flagged = bool(getattr(cached, "flagged", False))
                if flagged:
                    self._route_degraded(cached)
                request.pending._complete(cached)
                self._recorder.record_cache_hit(
                    request.pending.latency_seconds, degraded=flagged
                )
                return request.pending
            if outcome == "joined":
                self._recorder.record_submitted()
                self._recorder.record_coalesced_join()
                return request.pending
            request.cache_key = key
            self._recorder.record_cache_miss()
        try:
            if self.config.overflow == "reject":
                self._queue.put_nowait(request)
            else:
                self._queue.put(
                    request, timeout=self.config.submit_timeout_s
                )
        except queue.Full:
            self._recorder.record_rejected()
            # A refused leader must close its flight: followers that
            # joined during the enqueue attempt fail with it.  They
            # were already counted submitted, so they are accounted as
            # cancelled (accepted but abandoned), not rejected.
            refused = self._abort_cached_flight(
                request,
                ServerOverloaded(
                    "coalesced onto a submission that backpressure "
                    "refused"
                ),
            )
            if refused:
                self._recorder.record_cancelled(refused)
            raise ServerOverloaded(
                f"queue at capacity ({self.config.queue_capacity}); "
                f"overflow policy {self.config.overflow!r}"
            ) from None
        self._recorder.record_submitted()
        # repro: allow[LOCK-GUARD] -- the documented post-enqueue
        # re-check pairing with the optimistic gate above.
        if not self._accepting and not self.running:
            # The server shut down while this submission was in
            # flight; the batcher will never pop it -- fail it now
            # rather than strand the caller on a dead queue.
            self._cancel_remaining()
        return request.pending

    # -- metrics ---------------------------------------------------------
    def stats(self) -> ServerStats:
        """A consistent snapshot of the server's counters."""
        return self._recorder.snapshot(
            self._queue.qsize(),
            cache_entries=(
                len(self._cache) if self._cache is not None else 0
            ),
        )

    # -- batcher ---------------------------------------------------------
    def _serve_loop(self) -> None:
        try:
            self._serve_until_stopped()
        except BaseException as error:  # noqa: BLE001 -- must not hang
            # The loop itself failed (only _flush's per-group work is
            # individually guarded -- e.g. a MemoryError while
            # stacking a batch).  A dead batcher must not strand
            # blocked clients: fail everything still queued so every
            # PendingResult completes with the error instead of
            # hanging forever.
            failure = ServerError(f"batcher thread died: {error!r}")
            failure.__cause__ = error
            for request in self._inflight:
                if not request.pending.done():
                    request.pending._fail(failure)
                    self._recorder.record_cancelled()
                joined = self._abort_cached_flight(request, failure)
                if joined:
                    self._recorder.record_cancelled(joined)
            while True:
                try:
                    item = self._queue.get_nowait()
                except queue.Empty:
                    break
                if item is not None:
                    item.pending._fail(failure)
                    self._recorder.record_cancelled()
                    joined = self._abort_cached_flight(item, failure)
                    if joined:
                        self._recorder.record_cancelled(joined)
            with self._state_lock:
                self._accepting = False

    def _serve_until_stopped(self) -> None:
        max_wait = self.config.max_wait_ms / 1e3
        while True:
            try:
                item = self._queue.get(timeout=0.05)
            except queue.Empty:
                # repro: allow[LOCK-GUARD] -- batcher-side flag read:
                # written under lock by stop(), read lock-free here so
                # the idle poll never contends with submitters; a
                # stale read only delays shutdown by one 50 ms poll.
                if not self._accepting:
                    break
                continue
            # Batcher-side flag reads; worst case is one extra pass.
            if item is None or (
                not self._accepting and not self._draining  # repro: allow[LOCK-GUARD] -- see poll-loop note
            ):
                # repro: allow[LOCK-GUARD] -- see above.
                if self._draining:
                    self._drain_remaining()
                else:
                    if item is not None:
                        closed = ServerClosed(
                            "server stopped without draining"
                        )
                        item.pending._fail(closed)
                        self._recorder.record_cancelled()
                        joined = self._abort_cached_flight(item, closed)
                        if joined:
                            self._recorder.record_cancelled(joined)
                    self._cancel_remaining()
                break
            batch = [item]
            self._inflight = batch  # crash handler's view of the batch
            stopping = False
            # Adaptive coalescing: sweep whatever is already queued
            # (a burst batches immediately, with no timer in the way),
            # then wait out the remainder of ``max_wait_ms`` for the
            # batch to fill.
            deadline = time.perf_counter() + max_wait
            while len(batch) < self.config.max_batch:
                try:
                    extra = self._queue.get_nowait()
                except queue.Empty:
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0:
                        break
                    try:
                        extra = self._queue.get(timeout=remaining)
                    except queue.Empty:
                        break
                if extra is None:
                    stopping = True
                    break
                # A non-draining stop whose sentinel was refused by a
                # full queue (see _close_intake) has no sentinel for
                # this sweep to trip over: re-check the gates after
                # every pop, or the sweep keeps coalescing -- and
                # flushing -- requests the stop already promised to
                # fail with ServerClosed.
                # repro: allow[LOCK-GUARD] -- batcher-side flag read
                # (see the poll-loop justification above).
                if not self._accepting and not self._draining:
                    closed = ServerClosed(
                        "server stopped without draining"
                    )
                    extra.pending._fail(closed)
                    self._recorder.record_cancelled()
                    joined = self._abort_cached_flight(extra, closed)
                    if joined:
                        self._recorder.record_cancelled(joined)
                    stopping = True
                    break
                batch.append(extra)
            self._flush(batch)
            self._inflight = []
            if stopping:
                # repro: allow[LOCK-GUARD] -- batcher-side flag read
                # (see the poll-loop justification above).
                if self._draining:
                    self._drain_remaining()
                else:
                    self._cancel_remaining()
                break

    def _drain_remaining(self) -> None:
        """Serve whatever is still queued, in arrival order, in
        ``max_batch``-sized flushes."""
        batch: list[_Request] = []
        self._inflight = batch
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is None:
                continue
            batch.append(item)
            if len(batch) == self.config.max_batch:
                self._flush(batch)
                batch = []
                self._inflight = batch
        if batch:
            self._flush(batch)
        self._inflight = []

    def _cancel_remaining(self) -> None:
        cancelled = 0
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is None:
                continue
            closed = ServerClosed("server stopped without draining")
            item.pending._fail(closed)
            cancelled += 1
            # A cancelled leader closes its flight: joiners were
            # counted submitted, so they count as cancelled too.
            cancelled += self._abort_cached_flight(item, closed)
        if cancelled:
            self._recorder.record_cancelled(cancelled)

    def _flush(self, batch: list[_Request]) -> None:
        """Run one micro-batch and demux results to their requests.

        Requests are grouped into ``infer_batch``-compatible runs --
        same image shape, and views either absent or present with one
        shape -- so heterogeneous traffic (mixed resolutions, mixed
        view usage) batches as far as possible and never errors
        because of *other* requests in the flush.  Parity holds within
        any grouping because every batched stage is per-image
        bitwise-stable.
        """
        groups: dict[tuple, list[_Request]] = {}
        for request in batch:
            view = request.qualifier_view
            key = (
                request.image.shape,
                None if view is None else view.shape,
            )
            groups.setdefault(key, []).append(request)
        degraded = 0
        failures = 0
        completed = 0
        latencies: list[float] = []
        # The ledger entry is written in a finally so a flush that
        # dies mid-way (BatcherCrash below, MemoryError while
        # stacking) still accounts for the groups it already demuxed;
        # the serve loop's crash handler then accounts for the rest --
        # without this, completions delivered before the crash would
        # vanish from the books.
        try:
            for (image_shape, view_shape), requests in groups.items():
                try:
                    images = np.stack([r.image for r in requests])
                    views = (
                        None
                        if view_shape is None
                        else np.stack(
                            [r.qualifier_view for r in requests]
                        )
                    )
                    if views is None:
                        results = list(self.pipeline.infer_batch(images))
                    else:
                        results = list(
                            self.pipeline.infer_batch(
                                images, qualifier_views=views
                            )
                        )
                    if len(results) != len(requests):
                        raise ServerError(
                            f"pipeline returned {len(results)} results "
                            f"for {len(requests)} requests"
                        )
                except BatcherCrash:
                    # The deliberate crash seam: escape the demux so
                    # the serve loop's death handler fails this group
                    # (and everything queued) with full accounting.
                    raise
                except BaseException as error:  # noqa: BLE001 -- demuxed
                    for request in requests:
                        request.pending._fail(error)
                        failures += 1
                        # Errors are never cached: close the flight so
                        # the key recomputes next time, and fail its
                        # joiners.
                        joined = self._abort_cached_flight(request, error)
                        if joined:
                            self._recorder.record_followers_failed(joined)
                    continue
                for request, result in zip(requests, results):
                    flagged = bool(getattr(result, "flagged", False))
                    if flagged:
                        degraded += 1
                        self._route_degraded(result)
                    request.pending._complete(result)
                    completed += 1
                    latency = request.pending.latency_seconds
                    if latency is not None:
                        latencies.append(latency)
                    self._publish_cached_result(request, result, flagged)
        finally:
            self._recorder.record_batch(
                len(batch), latencies, completed=completed,
                failures=failures, degraded=degraded,
            )

    def _route_degraded(self, result) -> None:
        """Fire the degradation hook for one qualifier-flagged logical
        request (delivery is unaffected; hook errors are swallowed).
        Cached and coalesced deliveries route here too -- once per
        logical request, not once per inference."""
        if self.on_degraded is not None:
            try:
                self.on_degraded(result)
            except Exception:  # noqa: BLE001 -- supervisory
                pass

    def _publish_cached_result(
        self, request: _Request, result, flagged: bool
    ) -> None:
        """Store a leader's result and complete its joined followers
        with the *same object* -- bitwise-identical delivery by
        construction."""
        if request.cache_key is None or self._cache is None:
            return
        followers, evicted = self._cache.publish(
            request.cache_key, result
        )
        if evicted:
            self._recorder.record_cache_evictions(evicted)
        if not followers:
            return
        follower_latencies: list[float] = []
        follower_degraded = 0
        for pending in followers:
            if flagged:
                follower_degraded += 1
                self._route_degraded(result)
            pending._complete(result)
            latency = pending.latency_seconds
            if latency is not None:
                follower_latencies.append(latency)
        self._recorder.record_followers_completed(
            follower_latencies, degraded=follower_degraded
        )

    def _abort_cached_flight(
        self, request: _Request, error: BaseException
    ) -> int:
        """Close a leader's flight without caching; fail its joined
        followers with ``error``.  Returns how many were failed."""
        if request.cache_key is None or self._cache is None:
            return 0
        followers = self._cache.abort(request.cache_key)
        for pending in followers:
            if not pending.done():
                pending._fail(error)
        return len(followers)

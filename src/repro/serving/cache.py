"""Content-addressed response cache with in-flight coalescing.

At production traffic, repeat and near-duplicate images dominate the
request mix.  The repo's end-to-end bitwise-determinism guarantee
(every served result is word-identical to a serial ``infer()`` call)
makes response caching *trivially safe*: two requests whose inputs
have identical storage bits, served by pipelines with the same
:meth:`~repro.api.config.PipelineConfig.content_hash`, are guaranteed
word-identical answers -- so handing the second caller the first
caller's result changes nothing observable, bit for bit.

Keying rule
-----------

A cache key is ``(digest, pipeline_content_hash)`` where ``digest`` is
:func:`response_digest`: sha256 over the submitted image's **storage
bytes, shape and dtype** (and the qualifier view's, when one is
present).  Digesting storage words rather than numeric values is the
same word-view discipline the redundancy comparators use
(:mod:`repro.reliable.bits`): ``+0.0`` and ``-0.0`` key distinctly,
NaNs key by payload, and dtype-differing renderings of the same values
key distinctly -- the cache can only ever *under*-share, never
conflate two inputs the pipeline could treat differently.

Single-flight in-flight coalescing
----------------------------------

Concurrent submissions of the same key do not each enter the batch
queue.  The first becomes the *leader* and is enqueued; every
concurrent duplicate *joins* the leader's in-flight entry and is
completed -- with the leader's result object -- the moment the leader's
micro-batch flushes.  A hot key therefore costs **one inference
regardless of fan-in**.  Errors are never cached: a failed leader
fails its joiners and the next submission of the key leads again.

The store itself is a bounded LRU guarded by one lock; the
:class:`~repro.serving.server.PipelineServer` owns all bookkeeping
(hit/miss/join/eviction counters live in its
:class:`~repro.serving.stats.StatsRecorder`).
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict

import numpy as np

__all__ = ["ResponseCache", "response_digest"]


def response_digest(
    image: np.ndarray, qualifier_view: np.ndarray | None = None
) -> str:
    """Content digest of one request's inputs.

    sha256 over each array's dtype, shape and storage bytes (in a
    fixed order, with an explicit marker for an absent view, so field
    boundaries can never alias).  Arrays are normalised to C order
    first: logically identical values digest identically whatever
    their memory layout, while any storage-bit difference -- a sign
    flip on zero, a NaN payload, a one-ULP nudge, a different dtype --
    produces a different key.
    """
    digest = hashlib.sha256()
    for array in (image, qualifier_view):
        if array is None:
            digest.update(b"|none|")
            continue
        contiguous = np.ascontiguousarray(array)
        digest.update(
            f"|{contiguous.dtype.str}|{contiguous.shape}|".encode()
        )
        digest.update(contiguous.tobytes())
    return digest.hexdigest()


class ResponseCache:
    """Bounded LRU result store with single-flight coalescing.

    Three states per key, all transitions under one lock:

    * **absent** -- :meth:`lookup_or_join` returns ``("lead", None)``
      and opens an in-flight entry; the caller must eventually
      :meth:`publish` or :meth:`abort` the key (the server does so on
      every completion path, crash handler included).
    * **in flight** -- ``lookup_or_join`` appends the caller's pending
      handle to the entry and returns ``("joined", None)``.
    * **stored** -- ``lookup_or_join`` returns ``("hit", result)`` and
      refreshes the key's recency.

    The cache holds completed results only; it never holds errors
    (an aborted key simply becomes absent again).
    """

    #: Thread-safety contract, machine-checked by the LOCK-GUARD lint
    #: rule: both maps are read and written only under ``_lock``
    #: (submit threads and the batcher thread race on every one).
    _guarded_by = {"_lock": ("_store", "_inflight")}

    def __init__(self, max_entries: int, config_hash: str = "") -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.config_hash = config_hash
        self._lock = threading.Lock()
        self._store: OrderedDict[tuple[str, str], object] = OrderedDict()
        self._inflight: dict[tuple[str, str], list] = {}

    # -- keying ----------------------------------------------------------
    def key_for(
        self,
        image: np.ndarray,
        qualifier_view: np.ndarray | None = None,
    ) -> tuple[str, str]:
        """The full cache key for one request's inputs."""
        return (response_digest(image, qualifier_view), self.config_hash)

    # -- the three-state transition --------------------------------------
    def lookup_or_join(self, key: tuple[str, str], pending):
        """Resolve ``key`` to a cached result, an in-flight join, or a
        leadership grant.

        Returns ``("hit", result)``, ``("joined", None)`` (``pending``
        is now attached to the leader's entry), or ``("lead", None)``
        (the caller owns the key's single flight).
        """
        with self._lock:
            if key in self._store:
                self._store.move_to_end(key)
                return "hit", self._store[key]
            waiters = self._inflight.get(key)
            if waiters is not None:
                waiters.append(pending)
                return "joined", None
            self._inflight[key] = []
            return "lead", None

    def publish(self, key: tuple[str, str], result):
        """Store a leader's result and close its flight.

        Returns ``(followers, evicted)``: the pending handles that
        joined while the key was in flight (the caller completes them
        with ``result``), and how many LRU entries the insert evicted.
        """
        with self._lock:
            followers = self._inflight.pop(key, [])
            self._store[key] = result
            self._store.move_to_end(key)
            evicted = 0
            while len(self._store) > self.max_entries:
                self._store.popitem(last=False)
                evicted += 1
            return followers, evicted

    def abort(self, key: tuple[str, str]) -> list:
        """Close a flight without storing anything (failed or
        cancelled leader).  Returns the joined pending handles; the
        caller fails them, and the key is absent again (the next
        submission recomputes)."""
        with self._lock:
            return self._inflight.pop(key, [])

    # -- introspection ---------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    def keys(self) -> list[tuple[str, str]]:
        """Stored keys, least- to most-recently used (a snapshot)."""
        with self._lock:
            return list(self._store)

    def inflight_count(self) -> int:
        with self._lock:
            return len(self._inflight)

    def clear(self) -> None:
        """Drop every stored result (in-flight entries are untouched:
        their leaders still owe their followers a completion)."""
        with self._lock:
            self._store.clear()
